//! BFS kernel benchmarks: sequential baseline vs parallel top-down vs
//! direction-optimizing (the Table 3 / Figure 3 BFS-phase story, plus the
//! α/β ablation of DESIGN.md §5.2).

use criterion::{criterion_group, criterion_main, Criterion};
use parhde_bfs::direction_opt::{bfs_direction_opt, bfs_direction_opt_params, BETA};
use parhde_bfs::multi::bfs_multi_source;
use parhde_bfs::serial::bfs_serial;
use parhde_bfs::top_down::bfs_top_down;
use parhde_graph::gen::{geometric, kron, pref_attach};
use std::hint::black_box;

fn bench_bfs(c: &mut Criterion) {
    let skewed = pref_attach(20_000, 12, 1);
    let kron_g = kron(13, 12, 2);
    let road = geometric(20_000, 3.0, 3);

    let mut group = c.benchmark_group("bfs/skewed_20k");
    group.bench_function("serial", |b| {
        b.iter(|| black_box(bfs_serial(&skewed, 0)))
    });
    group.bench_function("top_down_parallel", |b| {
        b.iter(|| black_box(bfs_top_down(&skewed, 0)))
    });
    group.bench_function("direction_optimizing", |b| {
        b.iter(|| black_box(bfs_direction_opt(&skewed, 0)))
    });
    group.bench_function("direction_opt_alpha_off", |b| {
        b.iter(|| black_box(bfs_direction_opt_params(&skewed, 0, 0, BETA)))
    });
    group.finish();

    let mut group = c.benchmark_group("bfs/kron_s13");
    group.bench_function("serial", |b| {
        b.iter(|| black_box(bfs_serial(&kron_g, 0)))
    });
    group.bench_function("direction_optimizing", |b| {
        b.iter(|| black_box(bfs_direction_opt(&kron_g, 0)))
    });
    group.finish();

    // High-diameter graphs: the case where direction optimization cannot
    // help (the paper's road_usa explanation).
    let mut group = c.benchmark_group("bfs/road_20k");
    group.bench_function("serial", |b| {
        b.iter(|| black_box(bfs_serial(&road, 0)))
    });
    group.bench_function("direction_optimizing", |b| {
        b.iter(|| black_box(bfs_direction_opt(&road, 0)))
    });
    group.finish();

    // Table 6 kernel: one parallel BFS per source vs concurrent serial
    // BFSes over 30 random sources.
    let sources: Vec<u32> = (0..30).map(|i| i * 600 + 7).collect();
    let mut group = c.benchmark_group("bfs/multi_source_30");
    group.sample_size(10);
    group.bench_function("serialized_parallel_bfs", |b| {
        b.iter(|| {
            for &s in &sources {
                black_box(bfs_direction_opt(&road, s));
            }
        })
    });
    group.bench_function("concurrent_serial_bfs", |b| {
        b.iter(|| black_box(bfs_multi_source(&road, &sources)))
    });
    group.finish();
}

criterion_group!(benches, bench_bfs);
criterion_main!(benches);
