//! Multi-source BFS mode shoot-out: the three BFS-phase execution modes the
//! planner chooses among (DESIGN.md §10), on the three graph families whose
//! structure drives the decision table — a low-diameter Kronecker graph, a
//! 2-D grid, and a road-like geometric graph. The acceptance bar for the
//! batched kernel is the `msbfs/kron_s50` group: `batched` must beat
//! `per_source` (`bfs_multi_source`) wall-clock at the default thread
//! count.

use criterion::{criterion_group, criterion_main, Criterion};
use parhde_bfs::batch::bfs_batched;
use parhde_bfs::direction_opt::bfs_direction_opt;
use parhde_bfs::multi::bfs_multi_source;
use parhde_graph::gen::{geometric, grid2d, kron};
use parhde_graph::CsrGraph;
use std::hint::black_box;

/// `s` evenly spread sources over `g`'s vertex range (deterministic, so
/// every mode traverses the identical workload).
fn spread_sources(g: &CsrGraph, s: usize) -> Vec<u32> {
    let n = g.num_vertices();
    (0..s).map(|i| ((i * n) / s) as u32).collect()
}

fn bench_modes(c: &mut Criterion, label: &str, g: &CsrGraph, s: usize) {
    let sources = spread_sources(g, s);
    let mut group = c.benchmark_group(format!("msbfs/{label}"));
    group.sample_size(10);
    group.bench_function("per_source", |b| {
        b.iter(|| black_box(bfs_multi_source(g, &sources)))
    });
    group.bench_function("batched", |b| {
        b.iter(|| black_box(bfs_batched(g, &sources)))
    });
    group.bench_function("direction_opt_serialized", |b| {
        b.iter(|| {
            for &src in &sources {
                black_box(bfs_direction_opt(g, src));
            }
        })
    });
    group.finish();
}

fn bench_msbfs(c: &mut Criterion) {
    // The Table 6 acceptance configuration: kron graph, s = 50.
    let kron_g = kron(13, 12, 2);
    bench_modes(c, "kron_s50", &kron_g, 50);

    // Mid-diameter mesh: batching still amortizes, fewer lanes per level.
    let grid = grid2d(160, 125);
    bench_modes(c, "grid_s50", &grid, 50);

    // High-diameter road-like graph: the planner's per-source regime.
    let road = geometric(20_000, 3.0, 3);
    bench_modes(c, "road_s50", &road, 50);

    // Lane-word boundary: 64 vs 65 sources doubles the word count.
    bench_modes(c, "kron_s64", &kron_g, 64);
    bench_modes(c, "kron_s65", &kron_g, 65);
}

criterion_group!(benches, bench_msbfs);
criterion_main!(benches);
