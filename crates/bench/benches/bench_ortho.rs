//! DOrtho kernel benchmarks: Modified vs Classical Gram-Schmidt, plain vs
//! D-weighted (Table 7), at the paper's two subspace sizes, plus the small
//! Jacobi eigensolve to document its "negligible" cost claim.

use criterion::{criterion_group, criterion_main, Criterion};
use parhde_linalg::dense::ColMajorMatrix;
use parhde_linalg::eig::jacobi::symmetric_eigen;
use parhde_linalg::ortho::{cgs, mgs, DROP_TOLERANCE};
use parhde_util::Xoshiro256StarStar;
use std::hint::black_box;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> ColMajorMatrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let data = (0..rows * cols).map(|_| rng.next_f64()).collect();
    ColMajorMatrix::from_data(rows, cols, data)
}

fn bench_ortho(c: &mut Criterion) {
    let n = 100_000;
    let weights: Vec<f64> = {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        (0..n).map(|_| 1.0 + rng.next_f64() * 15.0).collect()
    };
    for s in [10usize, 30] {
        let base = random_matrix(n, s + 1, 11);
        let mut group = c.benchmark_group(format!("dortho/n100k_s{s}"));
        group.sample_size(10);
        group.bench_function("mgs_dweighted", |b| {
            b.iter(|| {
                let mut m = base.clone();
                black_box(mgs(&mut m, Some(&weights), DROP_TOLERANCE))
            })
        });
        group.bench_function("cgs_dweighted", |b| {
            b.iter(|| {
                let mut m = base.clone();
                black_box(cgs(&mut m, Some(&weights), DROP_TOLERANCE))
            })
        });
        group.bench_function("mgs_plain", |b| {
            b.iter(|| {
                let mut m = base.clone();
                black_box(mgs(&mut m, None, DROP_TOLERANCE))
            })
        });
        group.bench_function("cgs_plain", |b| {
            b.iter(|| {
                let mut m = base.clone();
                black_box(cgs(&mut m, None, DROP_TOLERANCE))
            })
        });
        group.finish();
    }

    // The s×s eigensolve the paper calls negligible — confirm it stays in
    // the microsecond range even at s = 50.
    for s in [10usize, 50] {
        let mut sym = ColMajorMatrix::zeros(s, s);
        let mut rng = Xoshiro256StarStar::seed_from_u64(13);
        for i in 0..s {
            for j in 0..=i {
                let v = rng.next_f64();
                sym.set(i, j, v);
                sym.set(j, i, v);
            }
        }
        c.bench_function(&format!("eigensolve/jacobi_s{s}"), |b| {
            b.iter(|| black_box(symmetric_eigen(&sym)))
        });
    }
}

criterion_group!(benches, bench_ortho);
criterion_main!(benches);
