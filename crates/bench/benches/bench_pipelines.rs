//! Whole-pipeline benchmarks: ParHDE vs the prior-work baseline (Table 3),
//! PHDE and PivotMDS (Table 5), pivot strategies (Table 6), and the
//! eigen-projection / raw-projection variants (§4.5.1).

use criterion::{criterion_group, criterion_main, Criterion};
use parhde::config::{OrthoMethod, ParHdeConfig, PivotStrategy};
use parhde::phde::PhdeConfig;
use parhde::prior::prior_hde;
use parhde::zoom::zoom;
use parhde::{par_hde, phde, pivot_mds};
use parhde_graph::gen::{barth5_like, geometric, pref_attach};
use std::hint::black_box;

fn bench_pipelines(c: &mut Criterion) {
    let skewed = pref_attach(20_000, 12, 1);
    let road = geometric(20_000, 3.0, 3);

    // Table 3: ParHDE vs prior, per graph family.
    for (name, g) in [("skewed", &skewed), ("road", &road)] {
        let cfg = ParHdeConfig::default();
        let mut group = c.benchmark_group(format!("pipeline/{name}_20k"));
        group.sample_size(10);
        group.bench_function("parhde", |b| b.iter(|| black_box(par_hde(g, &cfg))));
        group.bench_function("prior_baseline", |b| {
            b.iter(|| black_box(prior_hde(g, &cfg)))
        });
        let pcfg = PhdeConfig::default();
        group.bench_function("phde", |b| b.iter(|| black_box(phde(g, &pcfg))));
        group.bench_function("pivot_mds", |b| {
            b.iter(|| black_box(pivot_mds(g, &pcfg)))
        });
        group.finish();
    }

    // Table 6: pivot strategies at s = 30 on the high-diameter graph.
    let mut group = c.benchmark_group("pivots/road_20k_s30");
    group.sample_size(10);
    for (label, pivots) in [
        ("kcenters", PivotStrategy::KCenters),
        ("random", PivotStrategy::Random),
    ] {
        let cfg = ParHdeConfig { subspace: 30, pivots, ..ParHdeConfig::default() };
        group.bench_function(label, |b| b.iter(|| black_box(par_hde(&road, &cfg))));
    }
    group.finish();

    // Variant ablations on the mesh used by the figure reproductions.
    let mesh = barth5_like();
    let mut group = c.benchmark_group("variants/barth5");
    group.sample_size(10);
    for (label, cfg) in [
        ("default_dortho_mgs", ParHdeConfig::default()),
        (
            "cgs",
            ParHdeConfig { ortho: OrthoMethod::Cgs, ..ParHdeConfig::default() },
        ),
        (
            "plain_ortho",
            ParHdeConfig { d_orthogonalize: false, ..ParHdeConfig::default() },
        ),
        (
            "project_from_raw",
            ParHdeConfig { project_from_raw: true, ..ParHdeConfig::default() },
        ),
    ] {
        group.bench_function(label, |b| b.iter(|| black_box(par_hde(&mesh, &cfg))));
    }
    group.finish();

    // The §4.5.2 zoom feature must stay interactive-speed.
    c.bench_function("zoom/barth5_10hop", |b| {
        b.iter(|| black_box(zoom(&mesh, 7000, 10, &ParHdeConfig::default())))
    });

    // Future-work extensions: multilevel driver and geometric partitioning.
    let mut group = c.benchmark_group("extensions/barth5");
    group.sample_size(10);
    group.bench_function("multilevel_hde", |b| {
        b.iter(|| {
            black_box(parhde::multilevel::multilevel_hde(
                &mesh,
                &parhde::multilevel::MultilevelConfig::default(),
            ))
        })
    });
    let (layout, _) = par_hde(&mesh, &ParHdeConfig::default());
    group.bench_function("coordinate_bisection_8", |b| {
        b.iter(|| black_box(parhde::partition::coordinate_bisection(&layout, 8)))
    });
    group.finish();
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
