//! TripleProd kernel benchmarks (the `P = L·S` step that dominates §4.4):
//! implicit Laplacian vs explicitly materialized CSR Laplacian (the
//! `mkl_sparse_d_mm` ablation — the paper measured its implicit kernel
//! 2.5× faster than MKL's), the vertex-ordering effect, and the small
//! `Z = SᵀP` gemm.

use criterion::{criterion_group, criterion_main, Criterion};
use parhde_graph::order::shuffle_vertices;
use parhde_graph::gen::{grid2d, web_locality};
use parhde_linalg::dense::ColMajorMatrix;
use parhde_linalg::gemm::at_b;
use parhde_linalg::spmm::{laplacian_spmm, laplacian_spmm_by_columns, ExplicitLaplacian};
use parhde_util::Xoshiro256StarStar;
use std::hint::black_box;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> ColMajorMatrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let data = (0..rows * cols).map(|_| rng.next_f64()).collect();
    ColMajorMatrix::from_data(rows, cols, data)
}

fn bench_spmm(c: &mut Criterion) {
    let web = web_locality(40_000, 14, 1);
    let n = web.num_vertices();
    let s = random_matrix(n, 10, 7);
    let deg = web.degree_vector();
    let explicit = ExplicitLaplacian::build(&web);

    let mut group = c.benchmark_group("spmm/web_40k_s10");
    group.bench_function("implicit_laplacian", |b| {
        b.iter(|| black_box(laplacian_spmm(&web, &deg, &s)))
    });
    group.bench_function("explicit_laplacian", |b| {
        b.iter(|| black_box(explicit.spmm(&s)))
    });
    group.bench_function("column_at_a_time", |b| {
        b.iter(|| black_box(laplacian_spmm_by_columns(&web, &deg, &s)))
    });
    group.finish();

    // Ordering ablation (§4.4: shuffled sk-2005 slows LS 6.8×).
    let shuffled = shuffle_vertices(&web, 99);
    let deg_shuf = shuffled.degree_vector();
    let mut group = c.benchmark_group("spmm/ordering");
    group.bench_function("native_locality_order", |b| {
        b.iter(|| black_box(laplacian_spmm(&web, &deg, &s)))
    });
    group.bench_function("random_permutation", |b| {
        b.iter(|| black_box(laplacian_spmm(&shuffled, &deg_shuf, &s)))
    });
    group.finish();

    // The Sᵀ(LS) dgemm step at both paper subspace sizes.
    let grid = grid2d(180, 180);
    let gn = grid.num_vertices();
    for s_dim in [10usize, 50] {
        let sm = random_matrix(gn, s_dim, 3);
        let p = random_matrix(gn, s_dim, 4);
        c.bench_function(&format!("gemm/at_b_32k_s{s_dim}"), |b| {
            b.iter(|| black_box(at_b(&sm, &p)))
        });
    }
}

criterion_group!(benches, bench_spmm);
criterion_main!(benches);
