//! SSSP benchmarks (§3.3 / §4.4): Dijkstra baseline vs Δ-stepping across
//! bucket widths, on unit and random integer weights — the paper notes the
//! weighted slowdown "is dependent on the setting for Δ".

use criterion::{criterion_group, criterion_main, Criterion};
use parhde_graph::builder::build_weighted_from_edges;
use parhde_graph::gen::geometric;
use parhde_graph::WeightedCsr;
use parhde_sssp::{delta_stepping, dijkstra, suggest_delta};
use parhde_util::Xoshiro256StarStar;
use std::hint::black_box;

fn bench_sssp(c: &mut Criterion) {
    let road = geometric(30_000, 3.0, 1);
    let unit = WeightedCsr::unit_weights(road.clone());
    let mut rng = Xoshiro256StarStar::seed_from_u64(9);
    let edges: Vec<(u32, u32, f64)> = road
        .edges()
        .map(|(u, v)| (u, v, (1 + rng.next_below(255)) as f64))
        .collect();
    let weighted = build_weighted_from_edges(road.num_vertices(), edges);

    let mut group = c.benchmark_group("sssp/unit_weights_30k");
    group.sample_size(10);
    group.bench_function("dijkstra", |b| b.iter(|| black_box(dijkstra(&unit, 0))));
    group.bench_function("delta_stepping_d1", |b| {
        b.iter(|| black_box(delta_stepping(&unit, 0, 1.0)))
    });
    group.finish();

    let suggested = suggest_delta(&weighted);
    let mut group = c.benchmark_group("sssp/random_weights_30k");
    group.sample_size(10);
    group.bench_function("dijkstra", |b| {
        b.iter(|| black_box(dijkstra(&weighted, 0)))
    });
    for delta in [16.0, 64.0, suggested, 1024.0] {
        group.bench_function(format!("delta_stepping_d{delta:.0}"), |b| {
            b.iter(|| black_box(delta_stepping(&weighted, 0, delta)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sssp);
criterion_main!(benches);
