//! `bench-baseline` — merge per-run reports and a BFS-mode shoot-out into
//! one perf-baseline JSON artifact (`BENCH_pr3.json`).
//!
//! CI runs `parhde-layout --json-report` on the three pseudo-inputs, then
//! this tool to (a) fold those run reports into a single document via
//! `parhde_bench::reports` and (b) measure the three BFS-phase execution
//! modes head-to-head on kron / grid / road generators — the acceptance
//! check that the batched kernel beats `bfs_multi_source` wall-clock on a
//! kron graph with `s = 50`. The resulting file is uploaded as a CI
//! artifact so later PRs can diff against it.
//!
//! `--supervision-overhead` adds a second shoot-out (`BENCH_pr4.json`):
//! the plain `try_par_hde_nd` pipeline vs the supervised entry point with
//! no budget set, on the same three families — the acceptance check that
//! an unbudgeted supervised run pays under 2% for its cooperative checks,
//! installation, and ladder bookkeeping.
//!
//! ```text
//! bench-baseline --out BENCH_pr3.json [--skip-kernel-bench]
//!                [--supervision-overhead] [report.json ...]
//! ```

use parhde::config::ParHdeConfig;
use parhde::{try_par_hde_nd, try_par_hde_nd_supervised, SuperviseOptions};
use parhde_bench::reports;
use parhde_bfs::batch::bfs_batched;
use parhde_bfs::direction_opt::bfs_direction_opt;
use parhde_bfs::multi::bfs_multi_source;
use parhde_graph::gen::{geometric, grid2d, kron};
use parhde_graph::CsrGraph;
use parhde_trace::json::{escape, number};
use parhde_trace::RunReport;
use parhde_util::Timer;
use std::path::{Path, PathBuf};
use std::process::exit;

/// Best-of-`reps` wall seconds for one closure.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Timer::start();
        f();
        best = best.min(t.seconds());
    }
    best
}

/// One graph's three-mode measurement.
struct ModeTiming {
    label: &'static str,
    n: usize,
    m: usize,
    s: usize,
    per_source_s: f64,
    batched_s: f64,
    direction_opt_s: f64,
}

impl ModeTiming {
    fn measure(label: &'static str, g: &CsrGraph, s: usize, reps: usize) -> Self {
        let n = g.num_vertices();
        let sources: Vec<u32> = (0..s).map(|i| ((i * n) / s) as u32).collect();
        let per_source_s = best_of(reps, || {
            std::hint::black_box(bfs_multi_source(g, &sources));
        });
        let batched_s = best_of(reps, || {
            std::hint::black_box(bfs_batched(g, &sources));
        });
        let direction_opt_s = best_of(reps, || {
            for &src in &sources {
                std::hint::black_box(bfs_direction_opt(g, src));
            }
        });
        Self {
            label,
            n,
            m: g.num_edges(),
            s,
            per_source_s,
            batched_s,
            direction_opt_s,
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"graph\":\"{}\",\"n\":{},\"m\":{},\"s\":{},\
             \"per_source_s\":{},\"batched_s\":{},\"direction_opt_s\":{},\
             \"batched_speedup_vs_per_source\":{}}}",
            escape(self.label),
            self.n,
            self.m,
            self.s,
            number(self.per_source_s),
            number(self.batched_s),
            number(self.direction_opt_s),
            number(self.per_source_s / self.batched_s),
        )
    }
}

/// One graph's plain-vs-supervised pipeline measurement.
struct OverheadTiming {
    label: &'static str,
    n: usize,
    m: usize,
    s: usize,
    plain_s: f64,
    supervised_s: f64,
}

impl OverheadTiming {
    /// Relative cost of the unbudgeted supervised entry over the plain
    /// pipeline, in percent (negative when noise favors the supervised run).
    fn overhead_percent(&self) -> f64 {
        (self.supervised_s / self.plain_s - 1.0) * 100.0
    }

    fn measure(label: &'static str, g: &CsrGraph, s: usize, reps: usize) -> Self {
        let cfg = ParHdeConfig { subspace: s, ..ParHdeConfig::default() };
        let opts = SuperviseOptions::default();
        let run_plain = || {
            std::hint::black_box(try_par_hde_nd(g, &cfg, 2).unwrap());
        };
        let run_supervised = || {
            std::hint::black_box(try_par_hde_nd_supervised(g, &cfg, 2, &opts).unwrap());
        };
        // Warm caches and the allocator once, then interleave the two sides
        // rep by rep so slow machine drift hits both measurements equally.
        run_plain();
        run_supervised();
        let (mut plain_s, mut supervised_s) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            let t = Timer::start();
            run_plain();
            plain_s = plain_s.min(t.seconds());
            let t = Timer::start();
            run_supervised();
            supervised_s = supervised_s.min(t.seconds());
        }
        Self {
            label,
            n: g.num_vertices(),
            m: g.num_edges(),
            s,
            plain_s,
            supervised_s,
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"graph\":\"{}\",\"n\":{},\"m\":{},\"s\":{},\
             \"plain_s\":{},\"supervised_s\":{},\"overhead_percent\":{}}}",
            escape(self.label),
            self.n,
            self.m,
            self.s,
            number(self.plain_s),
            number(self.supervised_s),
            number(self.overhead_percent()),
        )
    }
}

/// Renders one embedded run report as a JSON object (reusing the report's
/// own serialization, which is itself a JSON document).
fn embedded_report(path: &Path, report: &RunReport) -> String {
    format!(
        "{{\"path\":\"{}\",\"summary\":\"{}\",\"report\":{}}}",
        escape(&path.display().to_string()),
        escape(reports::summarize(report).trim_end()),
        report.to_json().trim_end()
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<PathBuf> = None;
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut skip_kernel = false;
    let mut supervision_overhead = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench-baseline --out BENCH.json \
                     [--skip-kernel-bench] [report.json ...]"
                );
                exit(0);
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(v) => out = Some(PathBuf::from(v)),
                    None => {
                        eprintln!("bench-baseline: missing value for --out");
                        exit(2);
                    }
                }
            }
            "--skip-kernel-bench" => skip_kernel = true,
            "--supervision-overhead" => supervision_overhead = true,
            other => inputs.push(PathBuf::from(other)),
        }
        i += 1;
    }
    let Some(out) = out else {
        eprintln!("bench-baseline: --out is required");
        exit(2);
    };

    // Load and validate every run report; a malformed report is a hard
    // error (the artifact must stay diffable).
    let mut embedded = Vec::new();
    for path in &inputs {
        match reports::load(path) {
            Ok(r) => {
                eprintln!("{}", reports::summarize(&r).trim_end());
                embedded.push(embedded_report(path, &r));
            }
            Err(e) => {
                eprintln!("bench-baseline: {}: {e}", path.display());
                exit(2);
            }
        }
    }

    // The kernel shoot-out: the three planner modes on the three decision
    // families. Kept deliberately small so CI pays seconds, not minutes.
    let mut timings = Vec::new();
    if !skip_kernel {
        let reps = 3;
        let kron_g = kron(13, 12, 2);
        timings.push(ModeTiming::measure("kron_scale13_ef12", &kron_g, 50, reps));
        timings.push(ModeTiming::measure(
            "grid_160x125",
            &grid2d(160, 125),
            50,
            reps,
        ));
        timings.push(ModeTiming::measure(
            "road_geometric_20k",
            &geometric(20_000, 3.0, 3),
            50,
            reps,
        ));
        for t in &timings {
            eprintln!(
                "{}: per_source {:.1} ms, batched {:.1} ms ({:.2}x), \
                 direction_opt {:.1} ms",
                t.label,
                t.per_source_s * 1e3,
                t.batched_s * 1e3,
                t.per_source_s / t.batched_s,
                t.direction_opt_s * 1e3,
            );
        }
        // The acceptance criterion this artifact exists to witness.
        let kron_timing = &timings[0];
        if kron_timing.batched_s >= kron_timing.per_source_s {
            eprintln!(
                "bench-baseline: WARNING: batched ({:.1} ms) did not beat \
                 per-source ({:.1} ms) on {}",
                kron_timing.batched_s * 1e3,
                kron_timing.per_source_s * 1e3,
                kron_timing.label,
            );
        }
    }

    // The supervision shoot-out: plain pipeline vs the unbudgeted
    // supervised entry. Best-of-`reps` on both sides so the comparison
    // measures machinery, not scheduler noise.
    let mut overheads = Vec::new();
    if supervision_overhead {
        let reps = 9;
        let kron_g = kron(13, 12, 2);
        overheads.push(OverheadTiming::measure("kron_scale13_ef12", &kron_g, 50, reps));
        overheads.push(OverheadTiming::measure(
            "grid_160x125",
            &grid2d(160, 125),
            50,
            reps,
        ));
        overheads.push(OverheadTiming::measure(
            "road_geometric_20k",
            &geometric(20_000, 3.0, 3),
            50,
            reps,
        ));
        for t in &overheads {
            eprintln!(
                "{}: plain {:.1} ms, supervised {:.1} ms ({:+.2}%)",
                t.label,
                t.plain_s * 1e3,
                t.supervised_s * 1e3,
                t.overhead_percent(),
            );
            // The acceptance criterion this measurement exists to witness.
            if t.overhead_percent() >= 2.0 {
                eprintln!(
                    "bench-baseline: WARNING: supervision overhead {:.2}% \
                     on {} exceeds the 2% target",
                    t.overhead_percent(),
                    t.label,
                );
            }
        }
    }

    let doc = format!(
        "{{\n  \"schema\": \"parhde-bench-baseline\",\n  \"version\": 1,\n  \
         \"threads\": {},\n  \"bfs_mode_timings\": [{}],\n  \
         \"supervision_overhead\": [{}],\n  \
         \"runs\": [{}]\n}}\n",
        rayon::current_num_threads(),
        timings.iter().map(ModeTiming::to_json).collect::<Vec<_>>().join(","),
        overheads.iter().map(OverheadTiming::to_json).collect::<Vec<_>>().join(","),
        embedded.join(","),
    );
    if let Err(e) = std::fs::write(&out, doc) {
        eprintln!("bench-baseline: cannot write {}: {e}", out.display());
        exit(2);
    }
    println!("wrote {}", out.display());
}
