//! `bench-baseline` — merge per-run reports and a BFS-mode shoot-out into
//! one perf-baseline JSON artifact (`BENCH_pr3.json`).
//!
//! CI runs `parhde-layout --json-report` on the three pseudo-inputs, then
//! this tool to (a) fold those run reports into a single document via
//! `parhde_bench::reports` and (b) measure the three BFS-phase execution
//! modes head-to-head on kron / grid / road generators — the acceptance
//! check that the batched kernel beats `bfs_multi_source` wall-clock on a
//! kron graph with `s = 50`. The resulting file is uploaded as a CI
//! artifact so later PRs can diff against it.
//!
//! `--supervision-overhead` adds a second shoot-out (`BENCH_pr4.json`):
//! the plain `try_par_hde_nd` pipeline vs the supervised entry point with
//! no budget set, on the same three families — the acceptance check that
//! an unbudgeted supervised run pays under 2% for its cooperative checks,
//! installation, and ladder bookkeeping.
//!
//! `--linalg-shootout` adds the PR-5 kernel comparison (`BENCH_pr5.json`):
//! the fused one-pass `Sᵀ·L·S` vs the staged `laplacian_spmm` + `at_b`
//! pair (bit-identical outputs, verified here per graph), and the three
//! DOrtho variants (MGS / CGS / BCGS2), all at `s = 50` on the same trio.
//!
//! `--backend-shootout` adds the PR-8 comparison (`BENCH_pr8.json`): the
//! scalar reference kernels vs the explicit-SIMD (AVX2+FMA) backend, per
//! kernel — fused TripleProd, SYRK, staged SpMM, BCGS2, dot, axpy — on the
//! same kron / grid / pref trio. Exact-class kernels are asserted bitwise
//! identical across backends while timing. On a CPU without the SIMD
//! backend only the scalar column is measured.
//!
//! `--gate BASELINE.json` turns the tool into a regression gate: the
//! grouped TripleProd and DOrtho buckets of the current run reports are
//! compared against the baseline's embedded runs (paired by position);
//! any >25% slowdown in either bucket fails the invocation with exit 3.
//! With `--backend-shootout` the gate also fails (exit 3) if SIMD loses
//! to scalar on fused TripleProd or BCGS2 on any measured graph.
//!
//! ```text
//! bench-baseline --out BENCH_pr3.json [--skip-kernel-bench]
//!                [--supervision-overhead] [--linalg-shootout]
//!                [--backend-shootout] [--gate BASELINE.json]
//!                [report.json ...]
//! ```

use parhde::config::ParHdeConfig;
use parhde::{try_par_hde_nd, try_par_hde_nd_supervised, SuperviseOptions};
use parhde_bench::reports;
use parhde_bfs::batch::bfs_batched;
use parhde_bfs::direction_opt::bfs_direction_opt;
use parhde_bfs::multi::bfs_multi_source;
use parhde_graph::gen::{geometric, grid2d, kron, pref_attach};
use parhde_graph::CsrGraph;
use parhde_trace::json::{escape, number};
use parhde_trace::RunReport;
use parhde_util::Timer;
use std::path::{Path, PathBuf};
use std::process::exit;

/// Best-of-`reps` wall seconds for one closure.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Timer::start();
        f();
        best = best.min(t.seconds());
    }
    best
}

/// One graph's three-mode measurement.
struct ModeTiming {
    label: &'static str,
    n: usize,
    m: usize,
    s: usize,
    per_source_s: f64,
    batched_s: f64,
    direction_opt_s: f64,
}

impl ModeTiming {
    fn measure(label: &'static str, g: &CsrGraph, s: usize, reps: usize) -> Self {
        let n = g.num_vertices();
        let sources: Vec<u32> = (0..s).map(|i| ((i * n) / s) as u32).collect();
        let per_source_s = best_of(reps, || {
            std::hint::black_box(bfs_multi_source(g, &sources));
        });
        let batched_s = best_of(reps, || {
            std::hint::black_box(bfs_batched(g, &sources));
        });
        let direction_opt_s = best_of(reps, || {
            for &src in &sources {
                std::hint::black_box(bfs_direction_opt(g, src));
            }
        });
        Self {
            label,
            n,
            m: g.num_edges(),
            s,
            per_source_s,
            batched_s,
            direction_opt_s,
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"graph\":\"{}\",\"n\":{},\"m\":{},\"s\":{},\
             \"per_source_s\":{},\"batched_s\":{},\"direction_opt_s\":{},\
             \"batched_speedup_vs_per_source\":{}}}",
            escape(self.label),
            self.n,
            self.m,
            self.s,
            number(self.per_source_s),
            number(self.batched_s),
            number(self.direction_opt_s),
            number(self.per_source_s / self.batched_s),
        )
    }
}

/// One graph's plain-vs-supervised pipeline measurement.
struct OverheadTiming {
    label: &'static str,
    n: usize,
    m: usize,
    s: usize,
    plain_s: f64,
    supervised_s: f64,
}

impl OverheadTiming {
    /// Relative cost of the unbudgeted supervised entry over the plain
    /// pipeline, in percent (negative when noise favors the supervised run).
    fn overhead_percent(&self) -> f64 {
        (self.supervised_s / self.plain_s - 1.0) * 100.0
    }

    fn measure(label: &'static str, g: &CsrGraph, s: usize, reps: usize) -> Self {
        let cfg = ParHdeConfig { subspace: s, ..ParHdeConfig::default() };
        let opts = SuperviseOptions::default();
        let run_plain = || {
            std::hint::black_box(try_par_hde_nd(g, &cfg, 2).unwrap());
        };
        let run_supervised = || {
            std::hint::black_box(try_par_hde_nd_supervised(g, &cfg, 2, &opts).unwrap());
        };
        // Warm caches and the allocator once, then interleave the two sides
        // rep by rep so slow machine drift hits both measurements equally.
        run_plain();
        run_supervised();
        let (mut plain_s, mut supervised_s) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            let t = Timer::start();
            run_plain();
            plain_s = plain_s.min(t.seconds());
            let t = Timer::start();
            run_supervised();
            supervised_s = supervised_s.min(t.seconds());
        }
        Self {
            label,
            n: g.num_vertices(),
            m: g.num_edges(),
            s,
            plain_s,
            supervised_s,
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"graph\":\"{}\",\"n\":{},\"m\":{},\"s\":{},\
             \"plain_s\":{},\"supervised_s\":{},\"overhead_percent\":{}}}",
            escape(self.label),
            self.n,
            self.m,
            self.s,
            number(self.plain_s),
            number(self.supervised_s),
            number(self.overhead_percent()),
        )
    }
}

/// One graph's fused-vs-staged TripleProd and DOrtho-variant measurement.
struct LinalgTiming {
    label: &'static str,
    n: usize,
    m: usize,
    s: usize,
    fused_s: f64,
    staged_s: f64,
    mgs_s: f64,
    cgs_s: f64,
    bcgs2_s: f64,
}

impl LinalgTiming {
    fn measure(label: &'static str, g: &CsrGraph, s: usize, reps: usize) -> Self {
        use parhde_linalg::{fused, gemm, ortho, spmm, ColMajorMatrix};
        let n = g.num_vertices();
        let degrees = g.degree_vector();
        // A deterministic dense S of the pipeline's exact shape (n × (s+1),
        // constant column + pseudo-distance columns). Kernel cost depends
        // only on the shape and the graph, not on orthonormality.
        let mut rng = parhde_util::Xoshiro256StarStar::seed_from_u64(0x9a7de);
        let mut smat = ColMajorMatrix::zeros(n, s + 1);
        smat.col_mut(0).fill(1.0 / (n as f64).sqrt());
        for c in 1..=s {
            for v in smat.col_mut(c) {
                *v = (rng.next_f64() * 64.0).floor();
            }
        }
        let fused_s = best_of(reps, || {
            std::hint::black_box(fused::triple_product(g, &degrees, &smat));
        });
        let staged_s = best_of(reps, || {
            let p = spmm::laplacian_spmm(g, &degrees, &smat);
            std::hint::black_box(gemm::at_b(&smat, &p));
        });
        // The fused path must be a pure reschedule: identical bits.
        let zf = fused::triple_product(g, &degrees, &smat);
        let zs = gemm::at_b(&smat, &spmm::laplacian_spmm(g, &degrees, &smat));
        assert_eq!(
            zf.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            zs.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "fused and staged TripleProd disagree on {label}"
        );
        // DOrtho variants mutate S, so each rep runs on a fresh clone; the
        // clone cost is identical across variants and cancels in ratios.
        let mgs_s = best_of(reps, || {
            let mut c = smat.clone();
            std::hint::black_box(ortho::mgs(&mut c, Some(&degrees), 1e-3));
        });
        let cgs_s = best_of(reps, || {
            let mut c = smat.clone();
            std::hint::black_box(ortho::cgs(&mut c, Some(&degrees), 1e-3));
        });
        let bcgs2_s = best_of(reps, || {
            let mut c = smat.clone();
            std::hint::black_box(ortho::bcgs2(&mut c, Some(&degrees), 1e-3));
        });
        Self {
            label,
            n,
            m: g.num_edges(),
            s,
            fused_s,
            staged_s,
            mgs_s,
            cgs_s,
            bcgs2_s,
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"graph\":\"{}\",\"n\":{},\"m\":{},\"s\":{},\
             \"fused_s\":{},\"staged_s\":{},\"fused_speedup_vs_staged\":{},\
             \"mgs_s\":{},\"cgs_s\":{},\"bcgs2_s\":{},\
             \"bcgs2_speedup_vs_mgs\":{}}}",
            escape(self.label),
            self.n,
            self.m,
            self.s,
            number(self.fused_s),
            number(self.staged_s),
            number(self.staged_s / self.fused_s),
            number(self.mgs_s),
            number(self.cgs_s),
            number(self.bcgs2_s),
            number(self.mgs_s / self.bcgs2_s),
        )
    }
}

/// Per-kernel best-of wall seconds under one backend.
struct KernelSet {
    fused_s: f64,
    syrk_s: f64,
    spmm_s: f64,
    bcgs2_s: f64,
    dot_s: f64,
    axpy_s: f64,
}

impl KernelSet {
    fn to_json(&self, prefix: &str) -> String {
        format!(
            "\"{prefix}_fused_s\":{},\"{prefix}_syrk_s\":{},\
             \"{prefix}_spmm_s\":{},\"{prefix}_bcgs2_s\":{},\
             \"{prefix}_dot_s\":{},\"{prefix}_axpy_s\":{}",
            number(self.fused_s),
            number(self.syrk_s),
            number(self.spmm_s),
            number(self.bcgs2_s),
            number(self.dot_s),
            number(self.axpy_s),
        )
    }
}

/// One graph's scalar-vs-SIMD backend measurement. The SIMD column is
/// absent on CPUs without AVX2+FMA.
struct BackendTiming {
    label: &'static str,
    n: usize,
    m: usize,
    s: usize,
    scalar: KernelSet,
    simd: Option<KernelSet>,
}

impl BackendTiming {
    /// Measures every kernel under `choice` (installed process-wide for
    /// the duration; the caller restores the backend afterwards).
    fn measure_set(
        g: &CsrGraph,
        smat: &parhde_linalg::ColMajorMatrix,
        degrees: &[f64],
        choice: parhde_linalg::backend::Choice,
        reps: usize,
    ) -> KernelSet {
        use parhde_linalg::{blas1, fused, ortho, spmm, syrk};
        parhde_linalg::backend::install(choice).expect("backend install");
        let fused_s = best_of(reps, || {
            std::hint::black_box(fused::triple_product(g, degrees, smat));
        });
        let syrk_s = best_of(reps, || {
            std::hint::black_box(syrk::at_a(smat));
        });
        let spmm_s = best_of(reps, || {
            std::hint::black_box(spmm::laplacian_spmm(g, degrees, smat));
        });
        let bcgs2_s = best_of(reps, || {
            let mut c = smat.clone();
            std::hint::black_box(ortho::bcgs2(&mut c, Some(degrees), 1e-3));
        });
        // BLAS-1 on the whole n×(s+1) buffer, repeated so the measurement
        // is not all clone/allocation cost.
        let x = smat.data().to_vec();
        let dot_s = best_of(reps, || {
            for _ in 0..8 {
                std::hint::black_box(blas1::dot(&x, smat.data()));
            }
        });
        let mut y = smat.data().to_vec();
        let axpy_s = best_of(reps, || {
            for _ in 0..8 {
                blas1::axpy(1.0e-9, &x, &mut y);
            }
            std::hint::black_box(&y);
        });
        KernelSet { fused_s, syrk_s, spmm_s, bcgs2_s, dot_s, axpy_s }
    }

    fn measure(label: &'static str, g: &CsrGraph, s: usize, reps: usize) -> Self {
        use parhde_linalg::backend::Choice;
        use parhde_linalg::{fused, ortho, syrk};
        let n = g.num_vertices();
        let degrees = g.degree_vector();
        let mut rng = parhde_util::Xoshiro256StarStar::seed_from_u64(0x9a7de);
        let mut smat = parhde_linalg::ColMajorMatrix::zeros(n, s + 1);
        smat.col_mut(0).fill(1.0 / (n as f64).sqrt());
        for c in 1..=s {
            for v in smat.col_mut(c) {
                *v = (rng.next_f64() * 64.0).floor();
            }
        }
        let scalar = Self::measure_set(g, &smat, &degrees, Choice::Scalar, reps);
        let simd = parhde_linalg::backend::simd_supported().then(|| {
            Self::measure_set(g, &smat, &degrees, Choice::Simd, reps)
        });
        if simd.is_some() {
            // Exact-class kernels must be a pure reschedule across
            // backends: identical bits; BCGS2's kept/dropped decisions
            // must agree even where dots are tolerance-class.
            let bits = |m: &parhde_linalg::ColMajorMatrix| {
                m.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            };
            parhde_linalg::backend::install(Choice::Scalar).unwrap();
            let fused_ref = fused::triple_product(g, &degrees, &smat);
            let syrk_ref = syrk::at_a(&smat);
            let mut c = smat.clone();
            let ortho_ref = ortho::bcgs2(&mut c, Some(&degrees), 1e-3);
            parhde_linalg::backend::install(Choice::Simd).unwrap();
            assert_eq!(
                bits(&fused::triple_product(g, &degrees, &smat)),
                bits(&fused_ref),
                "fused TripleProd differs across backends on {label}"
            );
            assert_eq!(
                bits(&syrk::at_a(&smat)),
                bits(&syrk_ref),
                "SYRK differs across backends on {label}"
            );
            let mut c = smat.clone();
            assert_eq!(
                ortho::bcgs2(&mut c, Some(&degrees), 1e-3).kept,
                ortho_ref.kept,
                "BCGS2 kept-column decisions differ across backends on {label}"
            );
        }
        // Leave the process on auto for whatever runs next.
        parhde_linalg::backend::install(Choice::Auto).unwrap();
        Self { label, n, m: g.num_edges(), s, scalar, simd }
    }

    /// SIMD speedup on one kernel (scalar / simd), when SIMD was measured.
    fn speedup(&self, pick: impl Fn(&KernelSet) -> f64) -> Option<f64> {
        self.simd.as_ref().map(|s| pick(&self.scalar) / pick(s))
    }

    fn to_json(&self) -> String {
        let mut body = format!(
            "{{\"graph\":\"{}\",\"n\":{},\"m\":{},\"s\":{},\
             \"simd_supported\":{},{}",
            escape(self.label),
            self.n,
            self.m,
            self.s,
            self.simd.is_some(),
            self.scalar.to_json("scalar"),
        );
        if let Some(simd) = &self.simd {
            body.push(',');
            body.push_str(&simd.to_json("simd"));
            for (name, pick) in [
                ("fused", (|k: &KernelSet| k.fused_s) as fn(&KernelSet) -> f64),
                ("syrk", |k| k.syrk_s),
                ("spmm", |k| k.spmm_s),
                ("bcgs2", |k| k.bcgs2_s),
                ("dot", |k| k.dot_s),
                ("axpy", |k| k.axpy_s),
            ] {
                body.push_str(&format!(
                    ",\"simd_speedup_{name}\":{}",
                    number(self.scalar_over(simd, pick))
                ));
            }
        }
        body.push('}');
        body
    }

    fn scalar_over(&self, simd: &KernelSet, pick: fn(&KernelSet) -> f64) -> f64 {
        pick(&self.scalar) / pick(simd)
    }
}

/// One run's `(input_label, grouped_buckets)` as stored in a baseline doc.
type BaselineRun = (String, Vec<(String, f64)>);

/// Extracts `(input_label, grouped_buckets)` for every run embedded in a
/// bench-baseline document — the baseline side of `--gate`.
fn baseline_grouped(text: &str) -> Result<Vec<BaselineRun>, String> {
    let doc = parhde_trace::json::parse(text)?;
    let runs = doc
        .get("runs")
        .and_then(|v| v.as_arr())
        .ok_or("baseline has no runs array")?;
    let mut out = Vec::new();
    for run in runs {
        let report = run.get("report").ok_or("baseline run missing report")?;
        let input = report
            .get("config")
            .and_then(|v| v.as_arr())
            .and_then(|pairs| {
                pairs.iter().find(|p| {
                    p.get("key").and_then(|k| k.as_str()) == Some("input")
                })
            })
            .and_then(|p| p.get("value").and_then(|v| v.as_str()))
            .unwrap_or("?")
            .to_string();
        let grouped = report
            .get("grouped")
            .and_then(|v| v.as_arr())
            .ok_or("baseline report missing grouped buckets")?
            .iter()
            .map(|p| {
                let k = p.get("key").and_then(|v| v.as_str()).ok_or("bad bucket key")?;
                let v = p.get("value").and_then(parhde_trace::json::Value::as_f64)
                    .ok_or("bad bucket value")?;
                Ok((k.to_string(), v))
            })
            .collect::<Result<Vec<_>, String>>()?;
        out.push((input, grouped));
    }
    Ok(out)
}

/// The `--gate` mode: compares the grouped TripleProd and DOrtho buckets of
/// the freshly loaded `current` reports against the committed baseline,
/// paired by position. Returns the number of >`threshold`× regressions.
fn gate_against_baseline(
    baseline_path: &Path,
    current: &[RunReport],
    threshold: f64,
) -> Result<usize, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
    let baseline = baseline_grouped(&text)?;
    if baseline.len() != current.len() {
        return Err(format!(
            "baseline embeds {} runs but {} reports were supplied",
            baseline.len(),
            current.len()
        ));
    }
    let mut regressions = 0;
    for ((input, base_grouped), cur) in baseline.iter().zip(current) {
        // Borrow RunReport/compare for the bucket pairing and the table:
        // grouped buckets stand in for the fine-grained phases.
        let before = RunReport { phases: base_grouped.clone(), ..RunReport::default() };
        let after = RunReport { phases: cur.grouped.clone(), ..RunReport::default() };
        let deltas = reports::compare(&before, &after);
        eprintln!("gate {input}:");
        eprint!("{}", reports::render_comparison(&deltas));
        for d in &deltas {
            if !matches!(d.name.as_str(), "TripleProd" | "DOrtho") {
                continue;
            }
            // Sub-millisecond buckets are all scheduler noise at CI scale.
            if d.before < 1e-3 {
                continue;
            }
            if let Some(r) = d.ratio() {
                if r > threshold {
                    regressions += 1;
                    eprintln!(
                        "bench-baseline: REGRESSION: {input} {} {:.4} s -> \
                         {:.4} s ({r:.2}x > {threshold:.2}x)",
                        d.name, d.before, d.after
                    );
                }
            }
        }
    }
    Ok(regressions)
}

/// Renders one embedded run report as a JSON object (reusing the report's
/// own serialization, which is itself a JSON document).
fn embedded_report(path: &Path, report: &RunReport) -> String {
    format!(
        "{{\"path\":\"{}\",\"summary\":\"{}\",\"report\":{}}}",
        escape(&path.display().to_string()),
        escape(reports::summarize(report).trim_end()),
        report.to_json().trim_end()
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<PathBuf> = None;
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut skip_kernel = false;
    let mut supervision_overhead = false;
    let mut linalg_shootout = false;
    let mut backend_shootout = false;
    let mut gate: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench-baseline --out BENCH.json \
                     [--skip-kernel-bench] [--supervision-overhead] \
                     [--linalg-shootout] [--backend-shootout] \
                     [--gate BASELINE.json] [report.json ...]"
                );
                exit(0);
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(v) => out = Some(PathBuf::from(v)),
                    None => {
                        eprintln!("bench-baseline: missing value for --out");
                        exit(2);
                    }
                }
            }
            "--gate" => {
                i += 1;
                match args.get(i) {
                    Some(v) => gate = Some(PathBuf::from(v)),
                    None => {
                        eprintln!("bench-baseline: missing value for --gate");
                        exit(2);
                    }
                }
            }
            "--skip-kernel-bench" => skip_kernel = true,
            "--supervision-overhead" => supervision_overhead = true,
            "--linalg-shootout" => linalg_shootout = true,
            "--backend-shootout" => backend_shootout = true,
            other => inputs.push(PathBuf::from(other)),
        }
        i += 1;
    }
    let Some(out) = out else {
        eprintln!("bench-baseline: --out is required");
        exit(2);
    };

    // Load and validate every run report; a malformed report is a hard
    // error (the artifact must stay diffable).
    let mut embedded = Vec::new();
    let mut loaded = Vec::new();
    for path in &inputs {
        match reports::load(path) {
            Ok(r) => {
                eprintln!("{}", reports::summarize(&r).trim_end());
                embedded.push(embedded_report(path, &r));
                loaded.push(r);
            }
            Err(e) => {
                eprintln!("bench-baseline: {}: {e}", path.display());
                exit(2);
            }
        }
    }

    // Regression-gate mode: compare the fresh reports against a committed
    // baseline before anything else, so CI fails fast and loudly.
    if let Some(baseline_path) = &gate {
        match gate_against_baseline(baseline_path, &loaded, 1.25) {
            Ok(0) => eprintln!(
                "gate: no TripleProd/DOrtho regression vs {}",
                baseline_path.display()
            ),
            Ok(k) => {
                eprintln!(
                    "bench-baseline: {k} grouped-bucket regression(s) vs {}",
                    baseline_path.display()
                );
                exit(3);
            }
            Err(e) => {
                eprintln!("bench-baseline: gate: {e}");
                exit(2);
            }
        }
    }

    // The kernel shoot-out: the three planner modes on the three decision
    // families. Kept deliberately small so CI pays seconds, not minutes.
    let mut timings = Vec::new();
    if !skip_kernel {
        let reps = 3;
        let kron_g = kron(13, 12, 2);
        timings.push(ModeTiming::measure("kron_scale13_ef12", &kron_g, 50, reps));
        timings.push(ModeTiming::measure(
            "grid_160x125",
            &grid2d(160, 125),
            50,
            reps,
        ));
        timings.push(ModeTiming::measure(
            "road_geometric_20k",
            &geometric(20_000, 3.0, 3),
            50,
            reps,
        ));
        for t in &timings {
            eprintln!(
                "{}: per_source {:.1} ms, batched {:.1} ms ({:.2}x), \
                 direction_opt {:.1} ms",
                t.label,
                t.per_source_s * 1e3,
                t.batched_s * 1e3,
                t.per_source_s / t.batched_s,
                t.direction_opt_s * 1e3,
            );
        }
        // The acceptance criterion this artifact exists to witness.
        let kron_timing = &timings[0];
        if kron_timing.batched_s >= kron_timing.per_source_s {
            eprintln!(
                "bench-baseline: WARNING: batched ({:.1} ms) did not beat \
                 per-source ({:.1} ms) on {}",
                kron_timing.batched_s * 1e3,
                kron_timing.per_source_s * 1e3,
                kron_timing.label,
            );
        }
    }

    // The supervision shoot-out: plain pipeline vs the unbudgeted
    // supervised entry. Best-of-`reps` on both sides so the comparison
    // measures machinery, not scheduler noise.
    let mut overheads = Vec::new();
    if supervision_overhead {
        let reps = 9;
        let kron_g = kron(13, 12, 2);
        overheads.push(OverheadTiming::measure("kron_scale13_ef12", &kron_g, 50, reps));
        overheads.push(OverheadTiming::measure(
            "grid_160x125",
            &grid2d(160, 125),
            50,
            reps,
        ));
        overheads.push(OverheadTiming::measure(
            "road_geometric_20k",
            &geometric(20_000, 3.0, 3),
            50,
            reps,
        ));
        for t in &overheads {
            eprintln!(
                "{}: plain {:.1} ms, supervised {:.1} ms ({:+.2}%)",
                t.label,
                t.plain_s * 1e3,
                t.supervised_s * 1e3,
                t.overhead_percent(),
            );
            // The acceptance criterion this measurement exists to witness.
            if t.overhead_percent() >= 2.0 {
                eprintln!(
                    "bench-baseline: WARNING: supervision overhead {:.2}% \
                     on {} exceeds the 2% target",
                    t.overhead_percent(),
                    t.label,
                );
            }
        }
    }

    // The linalg shoot-out: fused vs staged TripleProd and the three
    // DOrtho variants, on the same trio at the paper's layout-scale s.
    let mut linalgs = Vec::new();
    if linalg_shootout {
        let reps = 5;
        let kron_g = kron(13, 12, 2);
        linalgs.push(LinalgTiming::measure("kron_scale13_ef12", &kron_g, 50, reps));
        linalgs.push(LinalgTiming::measure(
            "grid_160x125",
            &grid2d(160, 125),
            50,
            reps,
        ));
        linalgs.push(LinalgTiming::measure(
            "pref_20000_a8",
            &pref_attach(20_000, 8, 0x9a7de),
            50,
            reps,
        ));
        for t in &linalgs {
            eprintln!(
                "{}: fused {:.1} ms, staged {:.1} ms ({:.2}x); dortho mgs \
                 {:.1} ms, cgs {:.1} ms, bcgs2 {:.1} ms ({:.2}x vs mgs)",
                t.label,
                t.fused_s * 1e3,
                t.staged_s * 1e3,
                t.staged_s / t.fused_s,
                t.mgs_s * 1e3,
                t.cgs_s * 1e3,
                t.bcgs2_s * 1e3,
                t.mgs_s / t.bcgs2_s,
            );
            // The acceptance criteria this artifact exists to witness.
            if t.fused_s >= t.staged_s {
                eprintln!(
                    "bench-baseline: WARNING: fused ({:.1} ms) did not beat \
                     staged ({:.1} ms) on {}",
                    t.fused_s * 1e3,
                    t.staged_s * 1e3,
                    t.label,
                );
            }
            if t.bcgs2_s >= t.mgs_s {
                eprintln!(
                    "bench-baseline: WARNING: bcgs2 ({:.1} ms) did not beat \
                     mgs ({:.1} ms) on {}",
                    t.bcgs2_s * 1e3,
                    t.mgs_s * 1e3,
                    t.label,
                );
            }
        }
    }

    // The backend shoot-out: the scalar reference kernels vs the SIMD
    // backend, per kernel, on the same trio. With `--gate`, SIMD losing
    // to scalar on fused TripleProd or BCGS2 fails the invocation.
    let mut backends = Vec::new();
    if backend_shootout {
        let reps = 5;
        let kron_g = kron(13, 12, 2);
        backends.push(BackendTiming::measure("kron_scale13_ef12", &kron_g, 50, reps));
        backends.push(BackendTiming::measure(
            "grid_160x125",
            &grid2d(160, 125),
            50,
            reps,
        ));
        backends.push(BackendTiming::measure(
            "pref_20000_a8",
            &pref_attach(20_000, 8, 0x9a7de),
            50,
            reps,
        ));
        let mut losses = 0usize;
        for t in &backends {
            let Some(simd) = &t.simd else {
                eprintln!(
                    "{}: scalar only (cpu: {})",
                    t.label,
                    parhde_linalg::backend::cpu_features()
                );
                continue;
            };
            eprintln!(
                "{}: fused {:.1} -> {:.1} ms ({:.2}x), syrk {:.2}x, \
                 spmm {:.2}x, bcgs2 {:.1} -> {:.1} ms ({:.2}x), \
                 dot {:.2}x, axpy {:.2}x",
                t.label,
                t.scalar.fused_s * 1e3,
                simd.fused_s * 1e3,
                t.speedup(|k| k.fused_s).unwrap(),
                t.speedup(|k| k.syrk_s).unwrap(),
                t.speedup(|k| k.spmm_s).unwrap(),
                t.scalar.bcgs2_s * 1e3,
                simd.bcgs2_s * 1e3,
                t.speedup(|k| k.bcgs2_s).unwrap(),
                t.speedup(|k| k.dot_s).unwrap(),
                t.speedup(|k| k.axpy_s).unwrap(),
            );
            // The acceptance criteria this artifact exists to witness:
            // SIMD must not lose to scalar on the two headline kernels.
            for (name, speedup) in [
                ("fused TripleProd", t.speedup(|k| k.fused_s).unwrap()),
                ("bcgs2", t.speedup(|k| k.bcgs2_s).unwrap()),
            ] {
                if speedup < 1.0 {
                    losses += 1;
                    eprintln!(
                        "bench-baseline: WARNING: simd {name} lost to \
                         scalar on {} ({speedup:.2}x)",
                        t.label,
                    );
                }
            }
        }
        if losses > 0 && gate.is_some() {
            eprintln!(
                "bench-baseline: {losses} backend shoot-out loss(es); \
                 the SIMD backend must not lose to scalar"
            );
            exit(3);
        }
    }

    let doc = format!(
        "{{\n  \"schema\": \"parhde-bench-baseline\",\n  \"version\": 1,\n  \
         \"threads\": {},\n  \"cpu\": \"{}\",\n  \
         \"bfs_mode_timings\": [{}],\n  \
         \"supervision_overhead\": [{}],\n  \
         \"linalg_timings\": [{}],\n  \
         \"backend_timings\": [{}],\n  \
         \"runs\": [{}]\n}}\n",
        rayon::current_num_threads(),
        escape(parhde_linalg::backend::cpu_features()),
        timings.iter().map(ModeTiming::to_json).collect::<Vec<_>>().join(","),
        overheads.iter().map(OverheadTiming::to_json).collect::<Vec<_>>().join(","),
        linalgs.iter().map(LinalgTiming::to_json).collect::<Vec<_>>().join(","),
        backends.iter().map(BackendTiming::to_json).collect::<Vec<_>>().join(","),
        embedded.join(","),
    );
    if let Err(e) = std::fs::write(&out, doc) {
        eprintln!("bench-baseline: cannot write {}: {e}", out.display());
        exit(2);
    }
    println!("wrote {}", out.display());
}
