//! `parhde-layout` — command-line graph layout.
//!
//! Reads a graph (Matrix Market or whitespace edge list), preprocesses it
//! the way the paper does (simple, undirected, largest connected
//! component), lays it out, and writes a PNG drawing plus an optional
//! coordinate CSV. With `--trace`/`--trace-ndjson`/`--json-report` the run
//! also emits machine-readable observability artifacts (see DESIGN.md §9).
//!
//! ```text
//! parhde-layout <input> [options]
//!
//!   <input>                .mtx (MatrixMarket) or edge-list text file, a
//!                          packed compressed snapshot (.phdegrf, from
//!                          parhde-pack — opened mmap-backed so graphs
//!                          larger than RAM stream through the kernels;
//!                          --algo parhde only), or a generated
//!                          pseudo-input:
//!                            gen:kron:<scale>[:<edgefactor>]   Kronecker
//!                            gen:grid:<rows>[x<cols>]          2-D grid
//!                            gen:pref:<n>[:<attach>]           pref. attachment
//!   --algo parhde|phde|pivotmds|multilevel   (default parhde)
//!   --subspace <s>         pivot count (default 50)
//!   --random-pivots        uniform random pivots instead of k-centers
//!   --bfs-mode <mode>      auto|direction-opt|per-source|batched — BFS-phase
//!                          execution mode (default auto: the planner picks
//!                          from n, m, s and the thread count)
//!   --ortho <mgs|cgs|bcgs2> Gram-Schmidt variant for DOrtho (default mgs)
//!   --cgs                  shorthand for --ortho cgs
//!   --linalg-mode <mode>   fused|staged — TripleProd execution (default
//!                          fused: one-pass Sᵀ·L·S; staged: SpMM then GEMM;
//!                          bit-identical layouts either way)
//!   --backend <be>         auto|scalar|simd — compute backend for the dense
//!                          kernels (default auto: SIMD when the CPU supports
//!                          AVX2+FMA, scalar otherwise; simd on an unsupported
//!                          CPU is a typed error, exit 12). $PARHDE_BACKEND
//!                          supplies the value when the flag is absent.
//!   --plain-ortho          plain orthogonalization (eigen-projection)
//!   --seed <u64>           PRNG seed (default 0x9a7de)
//!   --size <px>            image width/height (default 1000)
//!   --vertices <r>         draw vertex discs of radius r
//!   --out <file.png>       output image (default <input>.png)
//!   --no-png               skip the drawing (trace/report-only runs)
//!   --csv <file.csv>       also write "id,x,y" coordinates
//!   --report               print the structural graph report first
//!   --trace <file.json>    write a Chrome trace_event file (chrome://tracing,
//!                          Perfetto); also honours $PARHDE_TRACE when unset
//!   --trace-ndjson <file>  write the span/counter stream as NDJSON
//!   --json-report <file>   write the machine-readable run report (written
//!                          even when the run degrades or fails)
//!   --deadline <dur>       wall-clock budget ("2s", "500ms", "2.5" = seconds);
//!                          algo=parhde degrades down the supervisor ladder
//!                          instead of failing (DESIGN.md §11)
//!   --mem-budget <bytes>   soft memory budget ("512M", "2G", "400000");
//!                          admission may shrink the subspace up front
//!   --checkpoint <dir>     write a post-BFS checkpoint into <dir> so an
//!                          interrupted run can be resumed
//!   --resume <file>        restart from a checkpoint file; the input graph,
//!                          seed and settings must match (exit 11 otherwise)
//! ```
//!
//! SIGINT/SIGTERM request cooperative cancellation: the pipeline unwinds at
//! the next check, artifacts (JSON report, trace) are flushed, and the
//! process exits 130. A degraded-but-successful supervised run exits 0.
//!
//! When any trace output is requested the per-phase breakdown table (the
//! paper's Figure-3 split) is printed after the layout completes; the
//! percentages in the Chrome trace match it because both views are fed by
//! the same `PhaseSpan` intervals.

use parhde::config::{
    BfsMode, LinalgBackend, LinalgMode, OrthoMethod, ParHdeConfig, PivotStrategy,
};
use parhde::multilevel::{multilevel_hde, MultilevelConfig};
use parhde::phde::PhdeConfig;
use parhde::{
    try_par_hde_nd_supervised, try_par_hde_resume, try_phde, try_pivot_mds,
    Checkpoint, CheckpointSpec, HdeError, HdeStats, Layout, SuperviseOptions,
};
use parhde_util::supervisor;
use std::time::Duration;
use parhde_draw::render::{try_render_graph, RenderOptions};
use parhde_graph::prep::largest_component;
use parhde_graph::report::GraphReport;
use parhde_graph::store::GraphStore;
use parhde_graph::{gen, CompressedCsr, CsrGraph};
use parhde_trace::{RunReport, TraceSession};
use parhde_util::Timer;
use std::path::PathBuf;
use std::process::exit;

/// Owns the trace session and every requested output artifact, so that
/// *any* exit path — success, typed failure, bad usage after the session
/// started — flushes what was observed. The `--json-report` contract is
/// that a report lands on disk even for degraded and failed runs.
struct Emitter {
    session: Option<TraceSession>,
    chrome: Option<PathBuf>,
    ndjson: Option<PathBuf>,
    report_path: Option<PathBuf>,
    report: RunReport,
    started: Timer,
}

impl Emitter {
    fn new() -> Self {
        Self {
            session: None,
            chrome: None,
            ndjson: None,
            report_path: None,
            report: RunReport { binary: "parhde-layout".into(), ..RunReport::default() },
            started: Timer::start(),
        }
    }

    /// Whether any observability output was requested.
    fn active(&self) -> bool {
        self.chrome.is_some() || self.ndjson.is_some() || self.report_path.is_some()
    }

    /// Finishes the session and writes every requested artifact. Output
    /// failures are diagnosed but do not mask the run's own exit code.
    fn finish(&mut self, exit_code: i32, error: Option<&str>) {
        let trace = match self.session.take() {
            Some(s) => s.finish(),
            None => return,
        };
        if let Some(path) = &self.chrome {
            let out = std::fs::File::create(path)
                .and_then(|f| parhde_trace::chrome::write_chrome_trace(&trace, f));
            match out {
                Ok(()) => eprintln!("trace: wrote {}", path.display()),
                Err(e) => eprintln!("trace: cannot write {}: {e}", path.display()),
            }
        }
        if let Some(path) = &self.ndjson {
            let out = std::fs::File::create(path)
                .and_then(|f| parhde_trace::ndjson::write_ndjson(&trace, f));
            match out {
                Ok(()) => eprintln!("trace: wrote {}", path.display()),
                Err(e) => eprintln!("trace: cannot write {}: {e}", path.display()),
            }
        }
        if let Some(path) = &self.report_path {
            let r = &mut self.report;
            r.exit_code = exit_code;
            r.error = error.map(String::from);
            r.total_seconds = self.started.seconds();
            r.counters = trace.counter_totals();
            r.gauges = trace.gauge_finals();
            if let Some(rss) = parhde_trace::peak_rss_bytes() {
                r.gauges.push(("process.peak_rss_bytes".into(), rss as f64));
            }
            // A failed run may never have produced HdeStats; fall back to
            // whatever phase spans the trace captured before the error.
            if r.phases.is_empty() {
                r.phases = trace.phase_seconds();
            }
            if r.warnings.is_empty() {
                r.warnings =
                    trace.warnings().iter().map(|w| w.message.clone()).collect();
            }
            match std::fs::write(path, self.report.to_json()) {
                Ok(()) => eprintln!("report: wrote {}", path.display()),
                Err(e) => eprintln!("report: cannot write {}: {e}", path.display()),
            }
        }
    }

    /// Usage/IO failure: diagnose, flush artifacts, exit.
    fn fail(&mut self, code: i32, msg: &str) -> ! {
        eprintln!("parhde-layout: {msg}");
        self.finish(code, Some(msg));
        exit(code)
    }

    /// Typed pipeline failure: diagnose with the phase, flush, exit with
    /// the error's distinct code (3 = I/O, 4 = parse, 5 = config, 6 =
    /// disconnected, 7 = degenerate subspace, 8 = non-finite, 12 = backend
    /// unavailable, 70 = bug).
    fn fail_typed(&mut self, context: &str, e: &HdeError) -> ! {
        let msg = match e.phase() {
            Some(phase) => format!("{context} (phase {phase}): {e}"),
            None => format!("{context}: {e}"),
        };
        eprintln!("parhde-layout: {msg}");
        self.finish(e.exit_code(), Some(&msg));
        exit(e.exit_code())
    }
}

/// Reports degradations the fail-soft pipeline absorbed and folds the run's
/// statistics into the pending JSON report.
fn absorb_stats(em: &mut Emitter, stats: &HdeStats) {
    for w in &stats.warnings {
        eprintln!("parhde-layout: warning: {w}");
    }
    em.report.phases = stats
        .phases
        .iter()
        .map(|(name, d)| (name.to_string(), d.as_secs_f64()))
        .collect();
    em.report.grouped = stats.grouped().entries();
    em.report.warnings = stats.warnings.iter().map(|w| w.to_string()).collect();
    if let Some(mode) = stats.bfs_mode {
        em.report.config.push(("bfs_mode_executed".into(), mode.into()));
    }
    if let Some(mode) = stats.linalg_mode {
        em.report.config.push(("linalg_mode_executed".into(), mode.into()));
    }
    if let Some(be) = stats.backend_executed {
        em.report.config.push(("backend_executed".into(), be.into()));
    }
}

/// Prints the per-phase wall-time split — the textual Figure 3.
fn print_breakdown(stats: &HdeStats) {
    let entries: Vec<(String, f64)> = stats
        .phases
        .iter()
        .map(|(name, d)| (name.to_string(), d.as_secs_f64()))
        .collect();
    eprint!("{}", parhde_trace::phases::render_breakdown(&entries));
}

/// Parses a human-friendly duration: `"2s"`, `"500ms"`, `"90m"`, or a bare
/// float meaning seconds (`"2.5"`).
fn parse_duration(text: &str) -> Option<Duration> {
    let t = text.trim();
    let (num, scale) = if let Some(v) = t.strip_suffix("ms") {
        (v, 1e-3)
    } else if let Some(v) = t.strip_suffix('s') {
        (v, 1.0)
    } else if let Some(v) = t.strip_suffix('m') {
        (v, 60.0)
    } else {
        (t, 1.0)
    };
    let secs: f64 = num.trim().parse().ok()?;
    if !secs.is_finite() || secs < 0.0 {
        return None;
    }
    Some(Duration::from_secs_f64(secs * scale))
}

/// Parses a byte count with an optional `K`/`M`/`G` suffix (powers of 1024):
/// `"512M"`, `"2G"`, `"400000"`.
fn parse_bytes(text: &str) -> Option<u64> {
    let t = text.trim();
    let (num, scale) = match t.chars().last()? {
        'k' | 'K' => (&t[..t.len() - 1], 1u64 << 10),
        'm' | 'M' => (&t[..t.len() - 1], 1u64 << 20),
        'g' | 'G' => (&t[..t.len() - 1], 1u64 << 30),
        _ => (t, 1),
    };
    num.trim().parse::<u64>().ok()?.checked_mul(scale)
}

/// Builds a graph from a `gen:` pseudo-input (`gen:kron:10:16`,
/// `gen:grid:200x120`, `gen:pref:50000:12`).
fn generate(spec: &str, seed: u64, em: &mut Emitter) -> CsrGraph {
    let parts: Vec<&str> = spec.split(':').collect();
    let bad = |em: &mut Emitter| -> ! {
        em.fail(2, &format!(
            "bad generator spec {spec:?} (want gen:kron:<scale>[:<ef>], \
             gen:grid:<rows>[x<cols>], or gen:pref:<n>[:<attach>])"
        ))
    };
    match parts.as_slice() {
        ["gen", "kron", rest @ ..] => {
            let scale: u32 = rest.first().and_then(|v| v.parse().ok()).unwrap_or(10);
            let ef: usize = rest.get(1).and_then(|v| v.parse().ok()).unwrap_or(16);
            if scale > 24 {
                em.fail(2, "gen:kron scale capped at 24");
            }
            gen::kron(scale, ef, seed)
        }
        ["gen", "grid", dims] => {
            let (r, c) = match dims.split_once('x') {
                Some((r, c)) => (r.parse().ok(), c.parse().ok()),
                None => (dims.parse().ok(), dims.parse().ok()),
            };
            match (r, c) {
                (Some(r), Some(c)) if r * c >= 8 => gen::grid2d(r, c),
                _ => bad(em),
            }
        }
        ["gen", "pref", rest @ ..] => {
            let n: usize = rest.first().and_then(|v| v.parse().ok()).unwrap_or(10_000);
            let attach: usize = rest.get(1).and_then(|v| v.parse().ok()).unwrap_or(8);
            gen::pref_attach(n, attach.max(1), seed)
        }
        _ => bad(em),
    }
}

fn main() {
    // SIGINT/SIGTERM set the global cancel flag; budgets built with
    // `honoring_global_cancel` observe it at the next cooperative check and
    // the pipeline unwinds as a typed Cancelled error (exit 130) with all
    // requested artifacts flushed.
    supervisor::install_signal_handlers();
    // Panic boundary: anything that escapes `run` as a panic is a bug, not
    // a user error — report it distinctly from the typed failures above.
    let outcome = std::panic::catch_unwind(run);
    if let Err(payload) = outcome {
        if supervisor::global_cancel_requested() {
            // A strict pipeline (e.g. multilevel) surfaces cancellation as
            // a panic; honor the interrupt contract rather than calling
            // the user's ^C a bug.
            eprintln!("parhde-layout: interrupted");
            exit(130);
        }
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("unknown panic");
        // Strict pipelines report budget trips by panicking with the typed
        // error's message; keep their exit codes aligned with the fail-soft
        // paths (9 = deadline, 10 = memory) instead of claiming a bug.
        if msg.starts_with("wall-clock deadline exceeded") {
            eprintln!("parhde-layout: {msg}");
            exit(9);
        }
        if msg.starts_with("memory budget exceeded") {
            eprintln!("parhde-layout: {msg}");
            exit(10);
        }
        eprintln!("parhde-layout: internal failure (bug): {msg}");
        exit(70);
    }
}

fn run() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: parhde-layout <input.mtx|edges.txt|gen:...> [options] (see source header)");
        exit(if args.is_empty() { 2 } else { 0 });
    }
    let input = args[0].clone();
    let mut em = Emitter::new();
    let mut algo = "parhde".to_string();
    let mut subspace = 50usize;
    let mut pivots = PivotStrategy::KCenters;
    let mut bfs_mode = BfsMode::Auto;
    let mut ortho = OrthoMethod::Mgs;
    let mut linalg_mode = LinalgMode::Fused;
    let mut backend: Option<LinalgBackend> = None;
    let mut d_orthogonalize = true;
    let mut seed = 0x9a_7deu64;
    let mut size = 1000u32;
    let mut vertex_radius = 0.0f64;
    let mut out: Option<PathBuf> = None;
    let mut no_png = false;
    let mut csv: Option<PathBuf> = None;
    let mut report = false;
    let mut deadline: Option<Duration> = None;
    let mut mem_budget: Option<u64> = None;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut resume_path: Option<PathBuf> = None;

    let mut i = 1;
    while i < args.len() {
        // Inlined rather than a closure so error paths can borrow `em`.
        macro_rules! value {
            () => {{
                i += 1;
                match args.get(i) {
                    Some(v) => v.clone(),
                    None => em.fail(2, &format!("missing value for {}", args[i - 1])),
                }
            }};
        }
        macro_rules! parsed {
            ($opt:literal) => {
                match value!().parse() {
                    Ok(v) => v,
                    Err(_) => em.fail(2, concat!("bad ", $opt)),
                }
            };
        }
        match args[i].as_str() {
            "--algo" => algo = value!(),
            "--subspace" => subspace = parsed!("--subspace"),
            "--random-pivots" => pivots = PivotStrategy::Random,
            "--bfs-mode" => bfs_mode = parsed!("--bfs-mode"),
            "--ortho" => ortho = parsed!("--ortho"),
            "--cgs" => ortho = OrthoMethod::Cgs,
            "--linalg-mode" => linalg_mode = parsed!("--linalg-mode"),
            "--backend" => backend = Some(parsed!("--backend")),
            "--plain-ortho" => d_orthogonalize = false,
            "--seed" => seed = parsed!("--seed"),
            "--size" => size = parsed!("--size"),
            "--vertices" => vertex_radius = parsed!("--vertices"),
            "--out" => out = Some(PathBuf::from(value!())),
            "--no-png" => no_png = true,
            "--csv" => csv = Some(PathBuf::from(value!())),
            "--report" => report = true,
            "--trace" => em.chrome = Some(PathBuf::from(value!())),
            "--trace-ndjson" => em.ndjson = Some(PathBuf::from(value!())),
            "--json-report" => em.report_path = Some(PathBuf::from(value!())),
            "--deadline" => match parse_duration(&value!()) {
                Some(d) => deadline = Some(d),
                None => em.fail(2, "bad --deadline (want e.g. 2s, 500ms, 2.5)"),
            },
            "--mem-budget" => match parse_bytes(&value!()) {
                Some(b) => mem_budget = Some(b),
                None => em.fail(2, "bad --mem-budget (want e.g. 512M, 2G, 400000)"),
            },
            "--checkpoint" => checkpoint_dir = Some(PathBuf::from(value!())),
            "--resume" => resume_path = Some(PathBuf::from(value!())),
            other => {
                let msg = format!("unknown option {other}");
                em.fail(2, &msg)
            }
        }
        i += 1;
    }
    // Environment fallback: PARHDE_TRACE names a Chrome trace destination
    // when --trace was not given, so wrapper scripts can turn tracing on
    // without threading a flag through.
    if em.chrome.is_none() {
        if let Ok(path) = std::env::var("PARHDE_TRACE") {
            if !path.is_empty() {
                em.chrome = Some(PathBuf::from(path));
            }
        }
    }
    // Environment fallback: PARHDE_BACKEND selects the compute backend when
    // --backend was not given (the flag wins). A bad value is a usage error
    // here, not a silent auto-fallback.
    let backend = match backend {
        Some(b) => b,
        None => match std::env::var("PARHDE_BACKEND") {
            Ok(v) if !v.trim().is_empty() => match v.trim().parse() {
                Ok(b) => b,
                Err(e) => em.fail(2, &format!("bad PARHDE_BACKEND: {e}")),
            },
            _ => LinalgBackend::Auto,
        },
    };
    if em.active() {
        em.session = Some(TraceSession::begin());
    }
    em.report.algo = algo.clone();
    em.report.config = vec![
        ("input".into(), input.clone()),
        ("algo".into(), algo.clone()),
        ("subspace".into(), subspace.to_string()),
        ("pivots".into(), format!("{pivots:?}")),
        ("bfs_mode".into(), format!("{bfs_mode:?}")),
        ("ortho".into(), format!("{ortho:?}")),
        ("linalg_mode".into(), linalg_mode.label().into()),
        ("backend".into(), backend.label().into()),
        ("d_orthogonalize".into(), d_orthogonalize.to_string()),
        ("seed".into(), seed.to_string()),
    ];
    if let Some(d) = deadline {
        em.report.config.push(("deadline_seconds".into(), format!("{}", d.as_secs_f64())));
    }
    if let Some(b) = mem_budget {
        em.report.config.push(("mem_budget_bytes".into(), b.to_string()));
    }

    let cli = CliOpts {
        input: input.clone(),
        algo,
        report,
        size,
        vertex_radius,
        out,
        no_png,
        csv,
        deadline,
        mem_budget,
        checkpoint_dir,
        resume_path,
    };
    let base_cfg = ParHdeConfig {
        subspace,
        pivots,
        bfs_mode,
        ortho,
        linalg_mode,
        backend,
        d_orthogonalize,
        seed,
        ..ParHdeConfig::default()
    };

    // Load: file input, or a generated pseudo-input. A packed snapshot
    // (`PHDEGRF1` magic, from parhde-pack) is binary — the sniff happens on
    // raw file bytes, *before* any UTF-8 text decode — and is opened
    // mmap-backed: neighbor blocks stay behind a read-only file mapping the
    // kernel pages in on demand, so the graph may exceed RAM.
    if input.starts_with("gen:") {
        let raw = {
            let _s = parhde_trace::span!("load");
            generate(&input, seed, &mut em)
        };
        run_plain(em, raw, base_cfg, cli);
        return;
    }
    let path = PathBuf::from(&input);
    if sniff_packed(&path) {
        let load_span = parhde_trace::span!("load");
        let g = match CompressedCsr::open_mmap(&path) {
            Ok(g) => g,
            Err(e) => em.fail_typed(
                &format!("cannot open packed snapshot {}", path.display()),
                &HdeError::from(e),
            ),
        };
        drop(load_span);
        eprintln!(
            "loaded {input}: n = {} m = {} (packed {:.2}x, {:.1} MB resident, {:.1} MB mapped)",
            g.num_vertices(),
            g.num_edges(),
            g.compression_ratio(),
            g.resident_bytes() as f64 / (1024.0 * 1024.0),
            g.mapped_bytes() as f64 / (1024.0 * 1024.0),
        );
        em.report.config.push(("storage".into(), g.storage().label().into()));
        layout_and_emit(em, &g, None, base_cfg, cli);
        return;
    }
    let raw: CsrGraph = {
        let _s = parhde_trace::span!("load");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => em.fail_typed(
                &format!("cannot read {}", path.display()),
                &HdeError::from(e),
            ),
        };
        if text.trim_start().starts_with("%%MatrixMarket") {
            match parhde_graph::io::parse_matrix_market(&text) {
                Ok(g) => g,
                Err(e) => em.fail_typed(
                    "MatrixMarket parse error",
                    &HdeError::from(parhde_graph::io::GraphIoError::from(e)),
                ),
            }
        } else {
            match parhde_graph::io::parse_edge_list(&text, 0) {
                Ok(g) => g,
                Err(e) => em.fail_typed("edge-list parse error", &HdeError::from(e)),
            }
        }
    };
    run_plain(em, raw, base_cfg, cli);
}

/// `true` when the file starts with the `PHDEGRF1` snapshot magic. A short
/// or unreadable file is simply "not packed" — the text loader will produce
/// the proper diagnostic.
fn sniff_packed(path: &PathBuf) -> bool {
    use std::io::Read as _;
    let mut magic = [0u8; 8];
    match std::fs::File::open(path) {
        Ok(mut f) => f.read_exact(&mut magic).is_ok() && &magic == parhde_graph::SNAPSHOT_MAGIC,
        Err(_) => false,
    }
}

/// Everything parsed off the command line that the layout/render/export
/// stages need after the graph is loaded.
struct CliOpts {
    input: String,
    algo: String,
    report: bool,
    size: u32,
    vertex_radius: f64,
    out: Option<PathBuf>,
    no_png: bool,
    csv: Option<PathBuf>,
    deadline: Option<Duration>,
    mem_budget: Option<u64>,
    checkpoint_dir: Option<PathBuf>,
    resume_path: Option<PathBuf>,
}

/// The plain-CSR path: preprocess to the largest connected component
/// (§4.1), then hand off to the storage-generic pipeline with the id
/// mapping for CSV export.
fn run_plain(em: Emitter, raw: CsrGraph, cfg: ParHdeConfig, cli: CliOpts) {
    let prep_span = parhde_trace::span!("preprocess");
    let ex = largest_component(&raw);
    let g = ex.graph;
    drop(prep_span);
    eprintln!(
        "loaded {}: n = {} m = {} (largest component of {} vertices)",
        cli.input,
        g.num_vertices(),
        g.num_edges(),
        raw.num_vertices()
    );
    layout_and_emit(em, &g, Some(&ex.old_ids), cfg, cli);
}

/// Lays out, renders and exports a loaded graph through any
/// [`GraphStore`]. `old_ids` maps component-local vertex ids back to the
/// original input ids (absent for packed snapshots, whose ids are already
/// final). Algorithms that rebuild plain CSR graphs (phde, pivotmds,
/// multilevel) are gated on [`GraphStore::as_csr`].
fn layout_and_emit<G: GraphStore>(
    mut em: Emitter,
    g: &G,
    old_ids: Option<&[u32]>,
    mut cfg: ParHdeConfig,
    cli: CliOpts,
) {
    em.report.graph_n = g.num_vertices() as u64;
    em.report.graph_m = g.num_edges() as u64;
    if cli.report {
        match g.as_csr() {
            Some(csr) => eprintln!("report: {}", GraphReport::of(csr).summary()),
            None => eprintln!(
                "report: n = {} m = {} (structural report needs a plain input)",
                g.num_vertices(),
                g.num_edges()
            ),
        }
    }
    if g.num_vertices() < 8 {
        em.fail(2, "graph too small to lay out (need ≥ 8 vertices)");
    }
    cfg.subspace = cfg.subspace.min(g.num_vertices() / 2).max(2);
    let algo = cli.algo.clone();
    let backend = cfg.backend;

    // Install the backend eagerly so a forced-but-unsupported `simd` fails
    // with its typed error (exit 12) on every algo path, including the
    // panicking multilevel pipeline.
    match parhde_linalg::backend::install(backend) {
        Ok(executed) => {
            if backend != LinalgBackend::Auto || executed != "scalar" {
                eprintln!("backend: {executed} (requested {})", backend.label());
            }
        }
        Err(e) => em.fail_typed("backend selection failed", &HdeError::from(e)),
    }

    // Lay out (fail-soft: typed errors exit with distinct codes, absorbed
    // degradations are reported as warnings and land in the JSON report).
    //
    // algo=parhde runs through the supervisor (which installs its own
    // ambient budget and owns the degradation ladder); every other path
    // gets a manually installed budget so deadlines, memory trips and
    // SIGINT/SIGTERM still unwind cooperatively.
    let mut manual = supervisor::RunBudget::unbounded();
    if let Some(d) = cli.deadline {
        manual = manual.with_deadline(d);
    }
    if let Some(b) = cli.mem_budget {
        manual = manual.with_mem_budget(b);
    }
    let manual = manual.honoring_global_cancel();
    let _guard = if algo != "parhde" || cli.resume_path.is_some() {
        Some(supervisor::install(&manual))
    } else {
        None
    };
    let t = Timer::start();
    let layout: Layout = match algo.as_str() {
        "parhde" if cli.resume_path.is_some() => {
            // Resume shares the cooperative checks (via the manual budget
            // above) but not the ladder: the checkpoint pins the subspace.
            let ckpt_path = cli.resume_path.as_deref().unwrap();
            let ckpt = match Checkpoint::read(ckpt_path) {
                Ok(c) => c,
                Err(e) => em.fail_typed(
                    &format!("cannot resume from {}", ckpt_path.display()),
                    &e,
                ),
            };
            match try_par_hde_resume(g, &cfg, 2, &ckpt) {
                Ok((coords, stats)) => {
                    absorb_stats(&mut em, &stats);
                    if em.active() {
                        print_breakdown(&stats);
                    }
                    Layout::new(coords.col(0).to_vec(), coords.col(1).to_vec())
                }
                Err(e) => em.fail_typed("resume failed", &e),
            }
        }
        "parhde" => {
            let opts = SuperviseOptions {
                deadline: cli.deadline,
                mem_budget_bytes: cli.mem_budget,
                checkpoint: cli.checkpoint_dir.clone().map(CheckpointSpec::in_dir),
                honor_global_cancel: true,
                cancel_flag: None,
                trace_id: None,
            };
            match try_par_hde_nd_supervised(g, &cfg, 2, &opts) {
                Ok(sup) => {
                    for step in &sup.ladder {
                        eprintln!(
                            "parhde-layout: supervisor: rung {:?} abandoned: {}",
                            step.rung, step.cause
                        );
                    }
                    if sup.rung != "full" {
                        eprintln!(
                            "parhde-layout: supervisor: degraded to rung {:?}",
                            sup.rung
                        );
                    }
                    em.report.config.push(("supervisor_rung".into(), sup.rung.into()));
                    absorb_stats(&mut em, &sup.stats);
                    if em.active() {
                        print_breakdown(&sup.stats);
                    }
                    Layout::new(
                        sup.coords.col(0).to_vec(),
                        sup.coords.col(1).to_vec(),
                    )
                }
                Err(e) => em.fail_typed("layout failed", &e),
            }
        }
        // The remaining pipelines coarsen or re-slice the graph as plain
        // CSR; a packed snapshot must be laid out with --algo parhde.
        "phde" | "pivotmds" | "multilevel" => {
            let Some(csr) = g.as_csr() else {
                em.fail(2, &format!(
                    "--algo {algo} needs a plain .mtx/edge-list input \
                     (packed .phdegrf snapshots support --algo parhde)"
                ));
            };
            match algo.as_str() {
                "phde" => match try_phde(csr, &PhdeConfig::from(&cfg)) {
                    Ok((layout, stats)) => {
                        absorb_stats(&mut em, &stats);
                        if em.active() {
                            print_breakdown(&stats);
                        }
                        layout
                    }
                    Err(e) => em.fail_typed("layout failed", &e),
                },
                "pivotmds" => match try_pivot_mds(csr, &PhdeConfig::from(&cfg)) {
                    Ok((layout, stats)) => {
                        absorb_stats(&mut em, &stats);
                        if em.active() {
                            print_breakdown(&stats);
                        }
                        layout
                    }
                    Err(e) => em.fail_typed("layout failed", &e),
                },
                _ => {
                    let _s = parhde_trace::span!("multilevel");
                    multilevel_hde(csr, &MultilevelConfig { base: cfg, ..Default::default() })
                        .0
                }
            }
        }
        other => {
            let msg = format!("unknown algorithm {other}");
            em.fail(2, &msg)
        }
    };
    eprintln!("{algo} layout in {:.1} ms", t.seconds() * 1e3);

    // Render. Edge enumeration goes through the store (a packed snapshot
    // decodes block by block); the renderer collects edges anyway.
    if !cli.no_png {
        let render_span = parhde_trace::span!("render");
        let opts = RenderOptions {
            width: cli.size,
            height: cli.size,
            vertex_radius: cli.vertex_radius,
            ..RenderOptions::default()
        };
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(g.num_edges());
        g.for_each_edge(|u, v| edges.push((u, v)));
        let canvas = match try_render_graph(edges.into_iter(), &layout.x, &layout.y, &opts) {
            Ok(c) => c,
            Err(e) => {
                em.fail_typed("render failed", &HdeError::Internal(e.to_string()))
            }
        };
        let out = cli.out.clone().unwrap_or_else(|| {
            if cli.input.starts_with("gen:") {
                PathBuf::from(format!("{}.png", cli.input.replace(':', "_")))
            } else {
                PathBuf::from(&cli.input).with_extension("png")
            }
        });
        if let Err(e) = canvas.save_png(&out) {
            let msg = format!("cannot write {}: {e}", out.display());
            em.fail(2, &msg)
        }
        drop(render_span);
        println!("wrote {}", out.display());
    }

    // Optional CSV. Plain inputs map component-local vertices back to the
    // ORIGINAL input ids via the LCC mapping; packed snapshot ids are
    // already final.
    if let Some(csv_path) = &cli.csv {
        let mut text = String::from("id,x,y\n");
        for v in 0..g.num_vertices() {
            let id = old_ids.map_or(v as u32, |ids| ids[v]);
            text.push_str(&format!("{},{},{}\n", id, layout.x[v], layout.y[v]));
        }
        if let Err(e) = std::fs::write(csv_path, text) {
            let msg = format!("cannot write {}: {e}", csv_path.display());
            em.fail(2, &msg)
        }
        println!("wrote {}", csv_path.display());
    }

    em.finish(0, None);
}
