//! `parhde-layout` — command-line graph layout.
//!
//! Reads a graph (Matrix Market or whitespace edge list), preprocesses it
//! the way the paper does (simple, undirected, largest connected
//! component), lays it out, and writes a PNG drawing plus an optional
//! coordinate CSV.
//!
//! ```text
//! parhde-layout <input> [options]
//!
//!   <input>                .mtx (MatrixMarket) or edge-list text file
//!   --algo parhde|phde|pivotmds|multilevel   (default parhde)
//!   --subspace <s>         pivot count (default 50)
//!   --random-pivots        uniform random pivots instead of k-centers
//!   --cgs                  Classical Gram-Schmidt DOrtho
//!   --plain-ortho          plain orthogonalization (eigen-projection)
//!   --seed <u64>           PRNG seed (default 0x9a7de)
//!   --size <px>            image width/height (default 1000)
//!   --vertices <r>         draw vertex discs of radius r
//!   --out <file.png>       output image (default <input>.png)
//!   --csv <file.csv>       also write "id,x,y" coordinates
//!   --report               print the structural graph report first
//! ```

use parhde::config::{OrthoMethod, ParHdeConfig, PivotStrategy};
use parhde::multilevel::{multilevel_hde, MultilevelConfig};
use parhde::phde::PhdeConfig;
use parhde::{try_par_hde, try_phde, try_pivot_mds, HdeError, HdeStats, Layout};
use parhde_draw::render::{try_render_graph, RenderOptions};
use parhde_graph::prep::largest_component;
use parhde_graph::report::GraphReport;
use parhde_graph::CsrGraph;
use parhde_util::Timer;
use std::path::PathBuf;
use std::process::exit;

fn fail(msg: &str) -> ! {
    eprintln!("parhde-layout: {msg}");
    exit(2)
}

/// Maps a typed pipeline error to a diagnostic plus its distinct exit code
/// (3 = I/O, 4 = parse, 5 = config, 6 = disconnected, 7 = degenerate
/// subspace, 8 = non-finite value, 70 = internal bug).
fn fail_typed(context: &str, e: &HdeError) -> ! {
    match e.phase() {
        Some(phase) => eprintln!("parhde-layout: {context} (phase {phase}): {e}"),
        None => eprintln!("parhde-layout: {context}: {e}"),
    }
    exit(e.exit_code())
}

/// Reports degradations the fail-soft pipeline absorbed.
fn report_warnings(stats: &HdeStats) {
    for w in &stats.warnings {
        eprintln!("parhde-layout: warning: {w}");
    }
}

fn main() {
    // Panic boundary: anything that escapes `run` as a panic is a bug, not
    // a user error — report it distinctly from the typed failures above.
    let outcome = std::panic::catch_unwind(run);
    if let Err(payload) = outcome {
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("unknown panic");
        eprintln!("parhde-layout: internal failure (bug): {msg}");
        exit(70);
    }
}

fn run() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: parhde-layout <input.mtx|edges.txt> [options] (see source header)");
        exit(if args.is_empty() { 2 } else { 0 });
    }
    let input = PathBuf::from(&args[0]);
    let mut algo = "parhde".to_string();
    let mut subspace = 50usize;
    let mut pivots = PivotStrategy::KCenters;
    let mut ortho = OrthoMethod::Mgs;
    let mut d_orthogonalize = true;
    let mut seed = 0x9a_7deu64;
    let mut size = 1000u32;
    let mut vertex_radius = 0.0f64;
    let mut out: Option<PathBuf> = None;
    let mut csv: Option<PathBuf> = None;
    let mut report = false;

    let mut i = 1;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i)
            .unwrap_or_else(|| fail("missing value for option"))
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--algo" => algo = value(&mut i),
            "--subspace" => {
                subspace = value(&mut i).parse().unwrap_or_else(|_| fail("bad --subspace"))
            }
            "--random-pivots" => pivots = PivotStrategy::Random,
            "--cgs" => ortho = OrthoMethod::Cgs,
            "--plain-ortho" => d_orthogonalize = false,
            "--seed" => seed = value(&mut i).parse().unwrap_or_else(|_| fail("bad --seed")),
            "--size" => size = value(&mut i).parse().unwrap_or_else(|_| fail("bad --size")),
            "--vertices" => {
                vertex_radius = value(&mut i).parse().unwrap_or_else(|_| fail("bad --vertices"))
            }
            "--out" => out = Some(PathBuf::from(value(&mut i))),
            "--csv" => csv = Some(PathBuf::from(value(&mut i))),
            "--report" => report = true,
            other => fail(&format!("unknown option {other}")),
        }
        i += 1;
    }

    // Load.
    let text = std::fs::read_to_string(&input).unwrap_or_else(|e| {
        fail_typed(
            &format!("cannot read {}", input.display()),
            &HdeError::from(e),
        )
    });
    let raw: CsrGraph = if text.trim_start().starts_with("%%MatrixMarket") {
        parhde_graph::io::parse_matrix_market(&text).unwrap_or_else(|e| {
            fail_typed("MatrixMarket parse error", &HdeError::from(
                parhde_graph::io::GraphIoError::from(e),
            ))
        })
    } else {
        parhde_graph::io::parse_edge_list(&text, 0)
            .unwrap_or_else(|e| fail_typed("edge-list parse error", &HdeError::from(e)))
    };

    // Preprocess (§4.1).
    let ex = largest_component(&raw);
    let g = ex.graph;
    eprintln!(
        "loaded {}: n = {} m = {} (largest component of {} vertices)",
        input.display(),
        g.num_vertices(),
        g.num_edges(),
        raw.num_vertices()
    );
    if report {
        eprintln!("report: {}", GraphReport::of(&g).summary());
    }
    if g.num_vertices() < 8 {
        fail("graph too small to lay out (need ≥ 8 vertices)");
    }

    let cfg = ParHdeConfig {
        subspace: subspace.min(g.num_vertices() / 2).max(2),
        pivots,
        ortho,
        d_orthogonalize,
        seed,
        ..ParHdeConfig::default()
    };

    // Lay out (fail-soft: typed errors exit with distinct codes, absorbed
    // degradations are reported as warnings).
    let t = Timer::start();
    let layout: Layout = match algo.as_str() {
        "parhde" => match try_par_hde(&g, &cfg) {
            Ok((layout, stats)) => {
                report_warnings(&stats);
                layout
            }
            Err(e) => fail_typed("layout failed", &e),
        },
        "phde" => match try_phde(&g, &PhdeConfig::from(&cfg)) {
            Ok((layout, stats)) => {
                report_warnings(&stats);
                layout
            }
            Err(e) => fail_typed("layout failed", &e),
        },
        "pivotmds" => match try_pivot_mds(&g, &PhdeConfig::from(&cfg)) {
            Ok((layout, stats)) => {
                report_warnings(&stats);
                layout
            }
            Err(e) => fail_typed("layout failed", &e),
        },
        "multilevel" => {
            multilevel_hde(&g, &MultilevelConfig { base: cfg, ..Default::default() }).0
        }
        other => fail(&format!("unknown algorithm {other}")),
    };
    eprintln!("{algo} layout in {:.1} ms", t.seconds() * 1e3);

    // Render.
    let opts = RenderOptions {
        width: size,
        height: size,
        vertex_radius,
        ..RenderOptions::default()
    };
    let canvas = try_render_graph(g.edges(), &layout.x, &layout.y, &opts)
        .unwrap_or_else(|e| fail_typed("render failed", &HdeError::Internal(e.to_string())));
    let out = out.unwrap_or_else(|| input.with_extension("png"));
    canvas
        .save_png(&out)
        .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", out.display())));
    println!("wrote {}", out.display());

    // Optional CSV (ids are the ORIGINAL input ids via the LCC mapping).
    if let Some(csv_path) = csv {
        let mut text = String::from("id,x,y\n");
        for v in 0..g.num_vertices() {
            text.push_str(&format!(
                "{},{},{}\n",
                ex.old_ids[v], layout.x[v], layout.y[v]
            ));
        }
        std::fs::write(&csv_path, text)
            .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", csv_path.display())));
        println!("wrote {}", csv_path.display());
    }
}
