//! `parhde-pack` — convert a graph to a packed `PHDEGRF` v1 snapshot.
//!
//! Reads a graph (Matrix Market, whitespace edge list, or a `gen:`
//! pseudo-input), preprocesses it the way the layout pipeline does
//! (simple, undirected, largest connected component), gap-compresses the
//! adjacency into byte-coded varint blocks, and writes the snapshot
//! durably (tmp + fsync + rename + dirsync). The output opens mmap-backed
//! in `parhde-layout` / `parhde-serve`, so graphs whose adjacency exceeds
//! RAM stream through BFS and SpMM page by page.
//!
//! ```text
//! parhde-pack <input> [<output.phdegrf>] [options]
//!
//!   <input>               .mtx (MatrixMarket) or edge-list text file, or a
//!                         generated pseudo-input (same grammar as
//!                         parhde-layout):
//!                           gen:kron:<scale>[:<edgefactor>]   Kronecker
//!                           gen:grid:<rows>[x<cols>]          2-D grid
//!                           gen:pref:<n>[:<attach>]           pref. attachment
//!   <output>              defaults to <input>.phdegrf (gen: specs have the
//!                         colons replaced: gen_kron_23_13.phdegrf)
//!   --seed <u64>          generator seed (default 0x9a7de)
//!   --keep-disconnected   pack the whole simple graph instead of its
//!                         largest component — the layout pipeline will
//!                         then fail with a typed Disconnected error, since
//!                         compressed storage cannot re-extract a component
//!   --verify              reopen the written snapshot mmap-backed and
//!                         check every vertex's decoded neighbor list
//!                         against the source graph (exit 1 on mismatch)
//! ```
//!
//! Exit codes: 0 ok, 1 verification failure, 2 usage, otherwise the typed
//! I/O or parse error's code (3 = I/O, 4 = parse).

use parhde::HdeError;
use parhde_graph::prep::largest_component;
use parhde_graph::store::{GraphStore, NeighborScratch};
use parhde_graph::{gen, CompressedCsr, CsrGraph};
use parhde_util::Timer;
use std::path::PathBuf;
use std::process::exit;

fn fail(code: i32, msg: &str) -> ! {
    eprintln!("parhde-pack: {msg}");
    exit(code)
}

fn fail_typed(context: &str, e: &HdeError) -> ! {
    fail(e.exit_code(), &format!("{context}: {e}"))
}

/// Builds a graph from a `gen:` pseudo-input (same grammar as
/// parhde-layout, so a benched spec can be packed verbatim).
fn generate(spec: &str, seed: u64) -> CsrGraph {
    let parts: Vec<&str> = spec.split(':').collect();
    let bad = || -> ! {
        fail(2, &format!(
            "bad generator spec {spec:?} (want gen:kron:<scale>[:<ef>], \
             gen:grid:<rows>[x<cols>], or gen:pref:<n>[:<attach>])"
        ))
    };
    match parts.as_slice() {
        ["gen", "kron", rest @ ..] => {
            let scale: u32 = rest.first().and_then(|v| v.parse().ok()).unwrap_or(10);
            let ef: usize = rest.get(1).and_then(|v| v.parse().ok()).unwrap_or(16);
            if scale > 24 {
                fail(2, "gen:kron scale capped at 24");
            }
            gen::kron(scale, ef, seed)
        }
        ["gen", "grid", dims] => {
            let (r, c) = match dims.split_once('x') {
                Some((r, c)) => (r.parse().ok(), c.parse().ok()),
                None => (dims.parse().ok(), dims.parse().ok()),
            };
            match (r, c) {
                (Some(r), Some(c)) if r * c >= 8 => gen::grid2d(r, c),
                _ => bad(),
            }
        }
        ["gen", "pref", rest @ ..] => {
            let n: usize = rest.first().and_then(|v| v.parse().ok()).unwrap_or(10_000);
            let attach: usize = rest.get(1).and_then(|v| v.parse().ok()).unwrap_or(8);
            gen::pref_attach(n, attach.max(1), seed)
        }
        _ => bad(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: parhde-pack <input.mtx|edges.txt|gen:...> [<output.phdegrf>] \
             [--seed <u64>] [--keep-disconnected] [--verify]"
        );
        exit(if args.is_empty() { 2 } else { 0 });
    }
    let input = args[0].clone();
    let mut output: Option<PathBuf> = None;
    let mut seed = 0x9a_7deu64;
    let mut keep_disconnected = false;
    let mut verify = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(s) => s,
                    None => fail(2, "bad --seed"),
                };
            }
            "--keep-disconnected" => keep_disconnected = true,
            "--verify" => verify = true,
            other if !other.starts_with('-') && output.is_none() => {
                output = Some(PathBuf::from(other));
            }
            other => fail(2, &format!("unknown option {other}")),
        }
        i += 1;
    }
    let output = output.unwrap_or_else(|| {
        if input.starts_with("gen:") {
            PathBuf::from(format!("{}.phdegrf", input.replace(':', "_")))
        } else {
            PathBuf::from(format!("{input}.phdegrf"))
        }
    });

    // Load.
    let t_load = Timer::start();
    let raw: CsrGraph = if input.starts_with("gen:") {
        generate(&input, seed)
    } else {
        let path = PathBuf::from(&input);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                fail_typed(&format!("cannot read {}", path.display()), &HdeError::from(e))
            }
        };
        if text.trim_start().starts_with("%%MatrixMarket") {
            match parhde_graph::io::parse_matrix_market(&text) {
                Ok(g) => g,
                Err(e) => fail_typed(
                    "MatrixMarket parse error",
                    &HdeError::from(parhde_graph::io::GraphIoError::from(e)),
                ),
            }
        } else {
            match parhde_graph::io::parse_edge_list(&text, 0) {
                Ok(g) => g,
                Err(e) => fail_typed("edge-list parse error", &HdeError::from(e)),
            }
        }
    };

    // Preprocess: pack the largest component by default, because the layout
    // pipeline cannot extract components from compressed storage (vertex
    // relabeling needs the plain adjacency).
    let g = if keep_disconnected {
        raw
    } else {
        let n_raw = raw.num_vertices();
        let ex = largest_component(&raw);
        if ex.graph.num_vertices() < n_raw {
            eprintln!(
                "parhde-pack: kept largest component: {} of {} vertices",
                ex.graph.num_vertices(),
                n_raw
            );
        }
        ex.graph
    };
    eprintln!(
        "loaded {input}: n = {} m = {} in {:.1} ms",
        g.num_vertices(),
        g.num_edges(),
        t_load.seconds() * 1e3
    );

    // Compress + write durably.
    let t_pack = Timer::start();
    let packed = CompressedCsr::from_csr(&g);
    let pack_seconds = t_pack.seconds();
    let t_write = Timer::start();
    if let Err(e) = packed.write_snapshot(&output) {
        fail_typed(&format!("cannot write {}", output.display()), &HdeError::from(e));
    }
    let write_seconds = t_write.seconds();

    let plain_bytes = g.resident_bytes();
    let packed_bytes = std::fs::metadata(&output).map(|m| m.len()).unwrap_or(0);
    let m = g.num_edges().max(1);
    eprintln!(
        "packed: {:.1} MB plain -> {:.1} MB snapshot ({:.2}x, {:.2} bytes/edge) \
         in {:.1} ms (+{:.1} ms write)",
        plain_bytes as f64 / (1024.0 * 1024.0),
        packed_bytes as f64 / (1024.0 * 1024.0),
        packed.compression_ratio(),
        packed_bytes as f64 / m as f64,
        pack_seconds * 1e3,
        write_seconds * 1e3
    );

    // Optional decode-exactness check against the source through the mmap
    // path the layout tools will use.
    if verify {
        let t_verify = Timer::start();
        let reopened = match CompressedCsr::open_mmap(&output) {
            Ok(r) => r,
            Err(e) => fail_typed(
                &format!("cannot reopen {}", output.display()),
                &HdeError::from(e),
            ),
        };
        if reopened.num_vertices() != g.num_vertices()
            || reopened.num_edges() != g.num_edges()
        {
            fail(1, "verify: vertex/edge counts differ after round-trip");
        }
        let mut scratch = NeighborScratch::new();
        for v in 0..g.num_vertices() as u32 {
            if reopened.neighbors_in(v, &mut scratch) != g.neighbors(v) {
                fail(1, &format!("verify: neighbor list of vertex {v} differs"));
            }
        }
        eprintln!("verified: decode matches source ({:.1} ms)", t_verify.seconds() * 1e3);
    }
    println!("wrote {}", output.display());
}
