//! Figure reproductions (Figures 1–8).

use crate::report::{banner, breakdown_row, row};
use crate::Opts;
use parhde::config::{LinalgMode, ParHdeConfig, PivotStrategy};
use parhde::layout::Layout;
use parhde::phde::PhdeConfig;
use parhde::prior::prior_hde;
use parhde::stats::{phase, HdeStats};
use parhde::zoom::zoom;
use parhde::{par_hde, phde, pivot_mds};
use parhde_bench::collection;
use parhde_draw::render::{render_graph, RenderOptions};
use parhde_graph::gaps::gap_distribution;
use parhde_graph::gen::barth5_like;
use parhde_graph::CsrGraph;
use parhde_linalg::eig::power::dominant_walk_eigenvectors;
use parhde_util::threads::{run_with_threads, scaling_thread_counts};
use parhde_util::Xoshiro256StarStar;

const BREAKDOWN_W: [usize; 8] = [12, 10, 10, 10, 10, 0, 0, 0];

fn save(opts: &Opts, name: &str, g: &CsrGraph, layout: &Layout) {
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    let path = opts.out.join(name);
    let canvas = render_graph(g.edges(), &layout.x, &layout.y, &RenderOptions::default());
    canvas.save_png(&path).expect("write PNG");
    println!("wrote {}", path.display());
}

/// Figure 1 — barth5: ParHDE layout vs the dominant eigenvectors of the
/// normalized adjacency.
pub fn fig1(opts: &Opts) {
    banner(
        "Figure 1 — barth5: ParHDE vs exact spectral drawing",
        "Figure 1: both drawings capture the global four-hole structure",
    );
    let g = barth5_like();
    let (hde_layout, stats) = par_hde(&g, &ParHdeConfig::with_subspace(50));
    save(opts, "fig1_top_parhde.png", &g, &hde_layout);
    println!(
        "ParHDE: s = 50, kept {} directions, axis eigenvalues {:?}",
        stats.s_kept, stats.axis_eigenvalues
    );
    let (vecs, report) = dominant_walk_eigenvectors(&g, 2, 20_000, 1e-10, 11, None);
    let exact = Layout::new(vecs[0].clone(), vecs[1].clone());
    save(opts, "fig1_bottom_eigenvectors.png", &g, &exact);
    println!(
        "exact spectral: walk eigenvalues {:?} after {} matvecs",
        report.eigenvalues, report.matvecs
    );
    let hde_e = parhde::quality::energy_objective(&g, &hde_layout);
    let opt_e = parhde::quality::energy_objective(&g, &exact);
    println!("energy: ParHDE {hde_e:.5} vs spectral optimum {opt_e:.5}");
}

/// Figure 2 — adjacency-gap distributions with Fibonacci binning.
pub fn fig2(opts: &Opts) {
    banner(
        "Figure 2 — adjacency-list gap distributions (Fibonacci bins)",
        "Figure 2: sk-2005 gaps skew small; urand/kron/twitter skew large",
    );
    for spec in collection::large_five() {
        let g = spec.build_scaled(opts.scale);
        let d = gap_distribution(&g);
        let expect = parhde_graph::gaps::GapDistribution::expected_total(&g);
        println!(
            "\n{}: {} gaps (identity 2m−n check: {}), gaps ≤ 64: {:.1}%",
            spec.name,
            d.total,
            if d.total == expect { "ok" } else { "MISMATCH" },
            100.0 * d.fraction_below(64)
        );
        // What the gap skew is worth on disk: the exact byte-coded varint
        // cost a `parhde-pack` snapshot of this graph would spend.
        let est = parhde_graph::gaps::varint_size_estimate(&g);
        println!(
            "  packed estimate: {:.2} B/edge ({:.2} B/arc, {:.2}x vs plain u32 CSR, {} adjacency bytes)",
            est.bytes_per_edge, est.bytes_per_arc, est.ratio, est.encoded_bytes
        );
        // Log-log series, a few representative bins.
        print!("  [upper:count] ");
        for b in d.bins.iter().filter(|b| b.count > 0).take(18) {
            print!("{}:{} ", b.upper, b.count);
        }
        println!();
    }
}

fn grouped(stats: &HdeStats) -> [f64; 4] {
    stats.grouped().percentages()
}

/// Figure 3 — phase breakdowns: ParHDE on all threads, ParHDE on one
/// thread, and the prior implementation.
pub fn fig3(opts: &Opts) {
    banner(
        "Figure 3 — breakdown: ParHDE (par), ParHDE (1 thread), prior",
        "Figure 3: BFS and TripleProd dominate; prior is BFS-bound",
    );
    let cfg = ParHdeConfig::default();
    let max = *scaling_thread_counts().last().unwrap();
    row(&["Graph", "BFS%", "TriPr%", "DOrth%", "Other%"], &BREAKDOWN_W);
    println!("-- ParHDE, {max} thread(s):");
    let mut one_thread = Vec::new();
    let mut prior_rows = Vec::new();
    for spec in collection::large_five() {
        let g = spec.build_scaled(opts.scale);
        let (_, stats) = run_with_threads(max, || par_hde(&g, &cfg));
        breakdown_row(spec.name, grouped(&stats), &BREAKDOWN_W);
        let (_, s1) = run_with_threads(1, || par_hde(&g, &cfg));
        one_thread.push((spec.name, grouped(&s1)));
        let (_, sp) = prior_hde(&g, &cfg);
        prior_rows.push((spec.name, grouped(&sp)));
    }
    println!("-- ParHDE, 1 thread:");
    for (name, pct) in one_thread {
        breakdown_row(name, pct, &BREAKDOWN_W);
    }
    println!("-- prior implementation:");
    for (name, pct) in prior_rows {
        breakdown_row(name, pct, &BREAKDOWN_W);
    }
}

/// Figure 4 — relative scaling of the overall pipeline and each stage.
pub fn fig4(opts: &Opts) {
    banner(
        "Figure 4 — relative scaling of ParHDE and constituent steps",
        "Figure 4: urand27 scales best; DOrtho plateaus ≈7 threads",
    );
    let counts = scaling_thread_counts();
    println!("thread counts: {counts:?}");
    let cfg = ParHdeConfig::default();
    for spec in collection::large_five() {
        let g = spec.build_scaled(opts.scale);
        let mut base: Option<(f64, f64, f64, f64)> = None;
        println!("\n{}:", spec.name);
        row(
            &["threads", "Overall", "BFS", "TriplePr", "DOrtho"],
            &[8, 10, 10, 10, 10],
        );
        for &c in &counts {
            let (_, stats) = run_with_threads(c, || par_hde(&g, &cfg));
            let g4 = stats.grouped();
            let overall = g4.total();
            let vals = (overall, g4.bfs, g4.triple_prod, g4.dortho);
            let b = *base.get_or_insert(vals);
            row(
                &[
                    &c.to_string(),
                    &format!("{:.2}×", b.0 / vals.0),
                    &format!("{:.2}×", b.1 / vals.1),
                    &format!("{:.2}×", b.2 / vals.2),
                    &format!("{:.2}×", b.3 / vals.3),
                ],
                &[8, 10, 10, 10, 10],
            );
        }
    }
}

/// Figure 5 — s = 50 breakdown, BFS-phase split, TripleProd split.
pub fn fig5(opts: &Opts) {
    banner(
        "Figure 5 — s = 50 breakdown; BFS split; TripleProd split",
        "Figure 5: DOrtho grows at s = 50; traversal dominates BFS; \
         LS dominates except sk-2005/road_usa",
    );
    // The paper's right panel splits TripleProd into LS vs GEMM — a staged
    // notion, so pin the staged path for this figure.
    let cfg = ParHdeConfig { linalg_mode: LinalgMode::Staged, ..ParHdeConfig::with_subspace(50) };
    row(
        &["Graph", "BFS%", "TriPr%", "DOrth%", "Other%", "trav/ovh", "LS/gemm"],
        &[12, 10, 10, 10, 10, 12, 12],
    );
    for spec in collection::large_five() {
        let g = spec.build_scaled(opts.scale);
        let (_, stats) = par_hde(&g, &cfg);
        let pct = grouped(&stats);
        let bfs = stats.phases.seconds(phase::BFS);
        let ovh = stats.phases.seconds(phase::BFS_OTHER);
        let ls = stats.phases.seconds(phase::LS);
        let gemm = stats.phases.seconds(phase::GEMM);
        row(
            &[
                spec.name,
                &format!("{:.1}%", pct[0]),
                &format!("{:.1}%", pct[1]),
                &format!("{:.1}%", pct[2]),
                &format!("{:.1}%", pct[3]),
                &format!("{:.0}/{:.0}", 100.0 * bfs / (bfs + ovh), 100.0 * ovh / (bfs + ovh)),
                &format!("{:.0}/{:.0}", 100.0 * ls / (ls + gemm), 100.0 * gemm / (ls + gemm)),
            ],
            &[12, 10, 10, 10, 10, 12, 12],
        );
    }
}

/// Figure 6 — PivotMDS breakdowns (max and 1 thread) and PHDE breakdown.
pub fn fig6(opts: &Opts) {
    banner(
        "Figure 6 — PivotMDS (par, 1 thread) and PHDE breakdowns",
        "Figure 6: BFS dominates all three charts",
    );
    let cfg = PhdeConfig::default();
    let max = *scaling_thread_counts().last().unwrap();
    let header = ["Graph", "BFS%", "Cntr%", "MatMul%", "Other%"];
    let fold = |stats: &HdeStats| -> [f64; 4] {
        let p = &stats.phases;
        let bfs = p.seconds(phase::BFS) + p.seconds(phase::BFS_OTHER);
        let cntr = p.seconds(phase::COL_CENTER) + p.seconds(phase::DBL_CENTER);
        let mm = p.seconds(phase::GEMM);
        let other = p.seconds(phase::EIGEN) + p.seconds(phase::PROJECT) + p.seconds(phase::INIT);
        let total = bfs + cntr + mm + other;
        if total <= 0.0 {
            return [0.0; 4];
        }
        [bfs, cntr, mm, other].map(|v| 100.0 * v / total)
    };
    println!("-- PivotMDS, {max} thread(s):");
    row(&header, &BREAKDOWN_W);
    let mut mds1 = Vec::new();
    let mut phde_rows = Vec::new();
    for spec in collection::large_five() {
        let g = spec.build_scaled(opts.scale);
        let (_, s) = run_with_threads(max, || pivot_mds(&g, &cfg));
        breakdown_row(spec.name, fold(&s), &BREAKDOWN_W);
        let (_, s1) = run_with_threads(1, || pivot_mds(&g, &cfg));
        mds1.push((spec.name, fold(&s1)));
        let (_, sp) = run_with_threads(max, || phde(&g, &cfg));
        phde_rows.push((spec.name, fold(&sp)));
    }
    println!("-- PivotMDS, 1 thread:");
    for (name, pct) in mds1 {
        breakdown_row(name, pct, &BREAKDOWN_W);
    }
    println!("-- PHDE, {max} thread(s):");
    for (name, pct) in phde_rows {
        breakdown_row(name, pct, &BREAKDOWN_W);
    }
}

/// Figure 7 — barth5 drawings: ParHDE with random pivots, PHDE, PivotMDS.
pub fn fig7(opts: &Opts) {
    banner(
        "Figure 7 — barth5 drawings: random-pivot ParHDE, PHDE, PivotMDS",
        "Figure 7: all three capture the four-hole global structure",
    );
    let g = barth5_like();
    let cfg = ParHdeConfig {
        subspace: 50,
        pivots: PivotStrategy::Random,
        ..ParHdeConfig::default()
    };
    let (l, _) = par_hde(&g, &cfg);
    save(opts, "fig7_top_parhde_random_pivots.png", &g, &l);
    let pcfg = PhdeConfig { subspace: 50, ..PhdeConfig::default() };
    let (l, _) = phde(&g, &pcfg);
    save(opts, "fig7_middle_phde.png", &g, &l);
    let (l, _) = pivot_mds(&g, &pcfg);
    save(opts, "fig7_bottom_pivotmds.png", &g, &l);
}

/// Figure 8 — zoomed drawing of a 10-hop neighborhood.
pub fn fig8(opts: &Opts) {
    banner(
        "Figure 8 — zoom: 10-hop neighborhood of a random barth5 vertex",
        "Figure 8 / §4.5.2",
    );
    let g = barth5_like();
    let mut rng = Xoshiro256StarStar::seed_from_u64(collection::SEED);
    let center = rng.next_index(g.num_vertices()) as u32;
    let view = zoom(&g, center, 10, &ParHdeConfig::default());
    println!(
        "center {} → {} vertices, {} edges in the 10-hop ball",
        center,
        view.graph.num_vertices(),
        view.graph.num_edges()
    );
    std::fs::create_dir_all(&opts.out).expect("create output dir");
    let path = opts.out.join("fig8_zoom_10hop.png");
    let optr = RenderOptions { vertex_radius: 2.0, ..RenderOptions::default() };
    let canvas = render_graph(view.graph.edges(), &view.layout.x, &view.layout.y, &optr);
    canvas.save_png(&path).expect("write PNG");
    println!("wrote {}", path.display());
}
