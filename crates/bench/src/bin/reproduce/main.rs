//! `reproduce` — regenerates every table and figure of the ParHDE paper.
//!
//! ```text
//! cargo run -p parhde-bench --release --bin reproduce -- <experiment> [opts]
//!
//! experiments:
//!   table1   empirical validation of the Table 1 asymptotics (s vs s² scaling)
//!   table2   the graph collection (m, n after preprocessing)
//!   table3   ParHDE vs the prior parallel implementation (s = 10)
//!   table4   ParHDE time + relative speedup over thread sweep
//!   table5   PHDE and PivotMDS times + relative speedup
//!   table6   k-centers vs random pivots, BFS phase, 30 sources
//!   table7   MGS vs CGS D-orthogonalization time
//!   fig1     barth5 drawings: ParHDE vs exact eigenvectors (PNG files)
//!   fig2     adjacency-gap distributions (Fibonacci binned, log-log series)
//!   fig3     phase breakdowns: ParHDE parallel / 1-thread / prior
//!   fig4     scaling of Overall/BFS/TripleProd/DOrtho vs threads
//!   fig5     s = 50 breakdown; BFS traversal-vs-overhead; LS vs SᵀLS
//!   fig6     PivotMDS (parallel & 1-thread) and PHDE breakdowns
//!   fig7     barth5 drawings: random pivots, PHDE, PivotMDS (PNG files)
//!   fig8     zoomed 10-hop neighborhood drawing (PNG file)
//!   ordering vertex-ordering ablation (§4.4: shuffled ids slow LS)
//!   sssp     SSSP vs BFS on the road graph (§4.4)
//!   refine   HDE + centroid refinement vs cold power iteration (§4.5.3)
//!   all      everything above in order
//!
//! options:
//!   --out <dir>    output directory for PNGs (default ./figures)
//!   --scale <k>    extra graph-scale doublings (default 0 = laptop scale)
//! ```
//!
//! Absolute numbers differ from the paper (different hardware, graphs ~1000×
//! smaller); the *shapes* — who wins, phase mixes, scaling trends — are the
//! reproduction targets recorded in EXPERIMENTS.md.

mod figures;
mod report;
mod tables;

use std::path::PathBuf;

/// Parsed command-line options.
pub struct Opts {
    /// Output directory for figures.
    pub out: PathBuf,
    /// Extra scale doublings for the graph collection.
    pub scale: u32,
    /// Chrome trace_event destination (`--trace` or `$PARHDE_TRACE`).
    pub trace: Option<PathBuf>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment: Option<String> = None;
    let mut opts = Opts { out: PathBuf::from("figures"), scale: 0, trace: None };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                opts.out = PathBuf::from(args.get(i).expect("--out needs a value"));
            }
            "--trace" => {
                i += 1;
                opts.trace =
                    Some(PathBuf::from(args.get(i).expect("--trace needs a value")));
            }
            "--scale" => {
                i += 1;
                opts.scale = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs an integer");
            }
            other if experiment.is_none() => experiment = Some(other.to_string()),
            other => panic!("unexpected argument {other}"),
        }
        i += 1;
    }
    let experiment = experiment.unwrap_or_else(|| {
        eprintln!("no experiment named; running `all` (see --help in source header)");
        "all".to_string()
    });

    if opts.trace.is_none() {
        if let Ok(path) = std::env::var("PARHDE_TRACE") {
            if !path.is_empty() {
                opts.trace = Some(PathBuf::from(path));
            }
        }
    }
    let session = opts.trace.as_ref().map(|_| parhde_trace::TraceSession::begin());

    // SIGINT/SIGTERM request cooperative cancellation: the unbounded budget
    // below honors the global cancel flag, so the running experiment
    // unwinds at its next check, the trace is flushed, and we exit 130
    // instead of dying mid-write. (Installed manually — `reproduce` drives
    // many pipelines back to back, and the ambient install is exclusive.)
    parhde_util::supervisor::install_signal_handlers();
    let budget =
        parhde_util::supervisor::RunBudget::unbounded().honoring_global_cancel();
    let guard = parhde_util::supervisor::install(&budget);

    // Panic boundary: the experiments drive the strict pipelines on
    // known-good generated graphs, so any escaping panic is a bug. Exit
    // with a distinct code (70, EX_SOFTWARE) rather than the default
    // abort so harnesses can tell bugs from usage errors (2).
    let outcome = std::panic::catch_unwind(|| run(&experiment, &opts));
    drop(guard);
    // Flush the trace even when the experiment died: a partial trace of a
    // crashed run is exactly when observability pays for itself.
    if let (Some(path), Some(session)) = (&opts.trace, session) {
        let trace = session.finish();
        let written = std::fs::File::create(path)
            .and_then(|f| parhde_trace::chrome::write_chrome_trace(&trace, f));
        match written {
            Ok(()) => eprintln!("trace: wrote {}", path.display()),
            Err(e) => eprintln!("trace: cannot write {}: {e}", path.display()),
        }
    }
    if let Err(payload) = outcome {
        if parhde_util::supervisor::global_cancel_requested() {
            eprintln!("reproduce: interrupted");
            std::process::exit(130);
        }
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("unknown panic");
        eprintln!("reproduce: internal failure (bug): {msg}");
        std::process::exit(70);
    }
}

fn run(experiment: &str, opts: &Opts) {
    match experiment {
        "table1" => tables::table1(opts),
        "table2" => tables::table2(opts),
        "table3" => tables::table3(opts),
        "table4" => tables::table4(opts),
        "table5" => tables::table5(opts),
        "table6" => tables::table6(opts),
        "table7" => tables::table7(opts),
        "fig1" => figures::fig1(opts),
        "fig2" => figures::fig2(opts),
        "fig3" => figures::fig3(opts),
        "fig4" => figures::fig4(opts),
        "fig5" => figures::fig5(opts),
        "fig6" => figures::fig6(opts),
        "fig7" => figures::fig7(opts),
        "fig8" => figures::fig8(opts),
        "ordering" => tables::ordering(opts),
        "sssp" => tables::sssp(opts),
        "refine" => tables::refine(opts),
        "all" => {
            for e in [
                "table2", "table1", "table3", "table4", "table5", "table6",
                "table7", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
                "fig7", "fig8", "ordering", "sssp", "refine",
            ] {
                run(e, opts);
                println!();
            }
        }
        other => {
            eprintln!("unknown experiment {other:?}; see the source header for the list");
            std::process::exit(2);
        }
    }
}
