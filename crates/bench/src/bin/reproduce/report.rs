//! Small reporting helpers for the reproduce binary.

use parhde_util::fmt;

/// Prints a section banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{title}");
    println!("(paper: {paper_ref})");
    println!("================================================================");
}

/// Prints a fixed-width row of cells.
pub fn row(cells: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (cell, &w) in cells.iter().zip(widths) {
        line.push_str(&fmt::pad(cell, w));
        line.push_str("  ");
    }
    println!("{}", line.trim_end());
}

/// Formats seconds for table cells.
pub fn secs(s: f64) -> String {
    fmt::seconds(s)
}

/// Formats a speedup for table cells.
pub fn speedup(x: f64) -> String {
    fmt::speedup(x)
}

/// Renders a percentage-breakdown line: `name  bfs% tp% dortho% other%`.
pub fn breakdown_row(name: &str, pct: [f64; 4], widths: &[usize]) {
    row(
        &[
            name,
            &format!("{:.1}%", pct[0]),
            &format!("{:.1}%", pct[1]),
            &format!("{:.1}%", pct[2]),
            &format!("{:.1}%", pct[3]),
        ],
        widths,
    );
}
