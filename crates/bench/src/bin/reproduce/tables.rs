//! Table reproductions (Tables 1–7) and the §4.4 text experiments.

use crate::report::{banner, row, secs, speedup};
use crate::Opts;
use parhde::config::{LinalgMode, OrthoMethod, ParHdeConfig, PivotStrategy};
use parhde::phde::PhdeConfig;
use parhde::prior::prior_hde;
use parhde::quality::energy_objective;
use parhde::refine::refined_axes;
use parhde::stats::phase;
use parhde::weighted::par_hde_weighted;
use parhde::{par_hde, phde, pivot_mds};
use parhde_bench::collection;
use parhde_graph::builder::build_weighted_from_edges;
use parhde_graph::order::shuffle_vertices;
use parhde_graph::WeightedCsr;
use parhde_linalg::eig::power::dominant_walk_eigenvectors;
use parhde_util::threads::{run_with_threads, scaling_thread_counts};
use parhde_util::{fmt, Timer, Xoshiro256StarStar};

const W: [usize; 8] = [12, 10, 10, 10, 10, 10, 10, 10];

/// Table 1 — empirical check of the asymptotic work split: BFS and LS
/// scale linearly with `s`, DOrtho quadratically.
pub fn table1(opts: &Opts) {
    banner(
        "Table 1 (empirical) — phase scaling with subspace dimension s",
        "Table 1: BFS/TripleProd work ∝ s, DOrtho work ∝ s²",
    );
    let g = collection::by_name("ecology1").unwrap().build_scaled(opts.scale);
    let s_values = [5usize, 10, 20, 40];
    row(&["s", "BFS(s)", "TriPr(s)", "DOrtho(s)"], &W);
    let mut measurements = Vec::new();
    for &s in &s_values {
        let cfg = ParHdeConfig::with_subspace(s);
        let (_, stats) = par_hde(&g, &cfg);
        let bfs = stats.phases.seconds(phase::BFS);
        // Grouped bucket: LS + GEMM under staged, the fused kernel otherwise.
        let ls = stats.grouped().triple_prod;
        let dortho = stats.phases.seconds(phase::DORTHO);
        measurements.push((s, bfs, ls, dortho));
        row(
            &[&s.to_string(), &secs(bfs), &secs(ls), &secs(dortho)],
            &W,
        );
    }
    // Growth factors over the 8× increase in s.
    let (s0, b0, l0, d0) = measurements[0];
    let (s3, b3, l3, d3) = measurements[3];
    let factor = (s3 / s0) as f64;
    println!(
        "s grew {factor:.0}×: BFS grew {:.1}× (expect ≈{factor:.0}×), \
         TripleProd grew {:.1}× (expect ≈{factor:.0}×), DOrtho grew {:.1}× (expect ≈{:.0}×)",
        b3 / b0,
        l3 / l0,
        d3 / d0,
        factor * factor
    );
}

/// Table 2 — the graph collection after preprocessing.
pub fn table2(opts: &Opts) {
    banner(
        "Table 2 — benchmark collection (m, n after preprocessing)",
        "Table 2; analogues at ~1/1000 scale, see DESIGN.md §2",
    );
    row(
        &["Graph", "paper m", "paper n", "ours m", "ours n", "avg deg"],
        &[12, 14, 12, 12, 10, 8],
    );
    for spec in collection::all() {
        let g = spec.build_scaled(opts.scale);
        row(
            &[
                spec.name,
                &fmt::thousands(spec.paper_m),
                &fmt::thousands(spec.paper_n),
                &fmt::thousands(g.num_edges() as u64),
                &fmt::thousands(g.num_vertices() as u64),
                &format!("{:.1}", g.average_degree()),
            ],
            &[12, 14, 12, 12, 10, 8],
        );
    }
}

/// Table 3 — ParHDE vs the prior parallel implementation, s = 10.
pub fn table3(opts: &Opts) {
    banner(
        "Table 3 — ParHDE vs prior parallel implementation (s = 10)",
        "Table 3: speedups 18.0/14.7/7.3/10.9/2.9× on the five large graphs",
    );
    let paper: [(f64, f64, f64); 5] = [
        (72.0, 1301.0, 18.0),
        (47.0, 688.0, 14.7),
        (18.0, 131.0, 7.3),
        (34.0, 372.0, 10.9),
        (13.0, 36.0, 2.9),
    ];
    row(
        &["Graph", "ParHDE", "Prior", "Speedup", "paper"],
        &[12, 10, 10, 10, 10],
    );
    let cfg = ParHdeConfig::default();
    for (spec, (pt, pp, ps)) in collection::large_five().iter().zip(paper) {
        let g = spec.build_scaled(opts.scale);
        let t = Timer::start();
        let _ = par_hde(&g, &cfg);
        let ours = t.seconds();
        let t = Timer::start();
        let _ = prior_hde(&g, &cfg);
        let prior = t.seconds();
        row(
            &[
                spec.name,
                &secs(ours),
                &secs(prior),
                &speedup(prior / ours),
                &format!("{}/{}={}", secs(pt), secs(pp), speedup(ps)),
            ],
            &[12, 10, 10, 10, 18],
        );
    }
}

/// Table 4 — ParHDE times and relative speedup over the thread sweep.
pub fn table4(opts: &Opts) {
    banner(
        "Table 4 — ParHDE execution time and relative speedup",
        "Table 4: e.g. urand27 52.5 s / 24.5× on 28 cores",
    );
    let counts = scaling_thread_counts();
    println!("thread counts swept: {counts:?} (paper: 1,4,7,14,28)");
    let paper: [(f64, f64); 10] = [
        (52.5, 24.5), (34.3, 14.8), (9.9, 11.3), (23.8, 11.0), (4.6, 7.1),
        (0.6, 5.8), (0.5, 8.1), (0.3, 9.1), (0.3, 4.2), (0.1, 4.2),
    ];
    row(
        &["Graph", "T(max)", "T(1)", "RelSpd", "paper T", "paper spd"],
        &[12, 10, 10, 10, 10, 10],
    );
    let cfg = ParHdeConfig::default();
    for (spec, (pt, ps)) in collection::all().iter().zip(paper) {
        let g = spec.build_scaled(opts.scale);
        let mut t1 = f64::NAN;
        let mut tmax = f64::NAN;
        for &c in &counts {
            let t = Timer::start();
            run_with_threads(c, || par_hde(&g, &cfg));
            let elapsed = t.seconds();
            if c == 1 {
                t1 = elapsed;
            }
            tmax = elapsed; // counts ascend; last is max
        }
        row(
            &[
                spec.name,
                &secs(tmax),
                &secs(t1),
                &speedup(t1 / tmax),
                &secs(pt),
                &speedup(ps),
            ],
            &[12, 10, 10, 10, 10, 10],
        );
    }
}

/// Table 5 — PHDE and PivotMDS times and relative speedup.
pub fn table5(opts: &Opts) {
    banner(
        "Table 5 — PHDE and PivotMDS execution times and relative speedup",
        "Table 5: PHDE 12.5 s / 23.7× on urand27, etc.",
    );
    let paper: [(f64, f64, f64, f64); 5] = [
        (12.5, 23.7, 13.9, 23.4),
        (4.8, 12.4, 4.6, 20.1),
        (4.6, 9.2, 4.9, 11.6),
        (5.7, 6.5, 5.8, 9.1),
        (3.1, 6.1, 3.1, 7.9),
    ];
    let counts = scaling_thread_counts();
    let max = *counts.last().unwrap();
    row(
        &["Graph", "PHDE", "spd", "PvMDS", "spd", "paper PHDE", "paper MDS"],
        &[12, 10, 8, 10, 8, 12, 12],
    );
    let cfg = PhdeConfig::default();
    for (spec, (pp, pps, pm, pms)) in collection::large_five().iter().zip(paper) {
        let g = spec.build_scaled(opts.scale);
        let time = |threads: usize, which: u8| -> f64 {
            let t = Timer::start();
            run_with_threads(threads, || {
                if which == 0 {
                    let _ = phde(&g, &cfg);
                } else {
                    let _ = pivot_mds(&g, &cfg);
                }
            });
            t.seconds()
        };
        let phde_1 = time(1, 0);
        let phde_max = time(max, 0);
        let mds_1 = time(1, 1);
        let mds_max = time(max, 1);
        row(
            &[
                spec.name,
                &secs(phde_max),
                &speedup(phde_1 / phde_max),
                &secs(mds_max),
                &speedup(mds_1 / mds_max),
                &format!("{}/{}", secs(pp), speedup(pps)),
                &format!("{}/{}", secs(pm), speedup(pms)),
            ],
            &[12, 10, 8, 10, 8, 12, 12],
        );
    }
}

/// Table 6 — random pivots vs the default k-centers strategy, 30 sources,
/// BFS phase time, on the five smallest graphs.
pub fn table6(opts: &Opts) {
    banner(
        "Table 6 — BFS phase: k-centers (default) vs random pivots, s = 30",
        "Table 6: random pivots win 2.8/1.7/1.4/10.1/9.1× on the small five",
    );
    // The paper lists these graphs in this order (not m-sorted).
    let order = ["CurlCurl_4", "kkt_power", "cage14", "ecology1", "pa2010"];
    let paper = [(0.91, 0.33, 2.8), (1.10, 0.66, 1.7), (0.66, 0.47, 1.4),
                 (0.88, 0.09, 10.1), (0.42, 0.05, 9.1)];
    row(
        &["Graph", "Default", "Rand.Piv", "RelSpd", "paper"],
        &[12, 10, 10, 10, 16],
    );
    for (name, (pd, pr, ps)) in order.iter().zip(paper) {
        let g = collection::by_name(name).unwrap().build_scaled(opts.scale);
        let bfs_time = |pivots: PivotStrategy| -> f64 {
            let cfg = ParHdeConfig {
                subspace: 30,
                pivots,
                ..ParHdeConfig::default()
            };
            let (_, stats) = par_hde(&g, &cfg);
            stats.phases.seconds(phase::BFS) + stats.phases.seconds(phase::BFS_OTHER)
        };
        let default = bfs_time(PivotStrategy::KCenters);
        let random = bfs_time(PivotStrategy::Random);
        row(
            &[
                name,
                &secs(default),
                &secs(random),
                &speedup(default / random),
                &format!("{}/{}={}", secs(pd), secs(pr), speedup(ps)),
            ],
            &[12, 10, 10, 10, 16],
        );
    }
}

/// Table 7 — MGS vs CGS D-orthogonalization time on the five large graphs.
pub fn table7(opts: &Opts) {
    banner(
        "Table 7 — D-Orthogonalization: Modified vs Classical Gram-Schmidt",
        "Table 7: CGS wins 2.2/2.8/2.5/2.5/2.1× on the large five",
    );
    let paper = [(5.9, 2.7, 2.2), (3.0, 1.1, 2.8), (2.0, 0.8, 2.5),
                 (1.8, 0.7, 2.5), (0.8, 0.4, 2.1)];
    row(
        &["Graph", "MGS", "CGS", "RelSpd", "paper"],
        &[12, 10, 10, 10, 16],
    );
    for (spec, (pm, pc, ps)) in collection::large_five().iter().zip(paper) {
        let g = spec.build_scaled(opts.scale);
        let dortho_time = |ortho: OrthoMethod| -> f64 {
            let cfg = ParHdeConfig { subspace: 30, ortho, ..ParHdeConfig::default() };
            let (_, stats) = par_hde(&g, &cfg);
            stats.phases.seconds(phase::DORTHO)
        };
        let mgs_t = dortho_time(OrthoMethod::Mgs);
        let cgs_t = dortho_time(OrthoMethod::Cgs);
        row(
            &[
                spec.name,
                &secs(mgs_t),
                &secs(cgs_t),
                &speedup(mgs_t / cgs_t),
                &format!("{}/{}={}", secs(pm), secs(pc), speedup(ps)),
            ],
            &[12, 10, 10, 10, 16],
        );
    }
}

/// §4.4 text — the vertex-ordering ablation: randomly permuting a
/// locality-friendly graph slows LS by 6.8× and the whole pipeline 3.5×.
pub fn ordering(opts: &Opts) {
    banner(
        "Ordering ablation — native vs randomly permuted vertex ids",
        "§4.4: shuffling sk-2005 slows LS 6.8×, overall 3.5×",
    );
    let spec = collection::by_name("sk-2005").unwrap();
    let native = spec.build_scaled(opts.scale);
    let shuffled = shuffle_vertices(&native, 0xC0FFEE);
    // The ablation probes the staged LS kernel's locality sensitivity, so
    // pin the staged path regardless of the pipeline default.
    let cfg = ParHdeConfig { linalg_mode: LinalgMode::Staged, ..ParHdeConfig::default() };
    let measure = |g: &parhde_graph::CsrGraph| -> (f64, f64) {
        let (_, stats) = par_hde(g, &cfg);
        (stats.phases.seconds(phase::LS), stats.total_seconds())
    };
    let (ls_nat, tot_nat) = measure(&native);
    let (ls_shuf, tot_shuf) = measure(&shuffled);
    row(&["Ordering", "LS", "Overall"], &[12, 10, 10]);
    row(&["native", &secs(ls_nat), &secs(tot_nat)], &[12, 10, 10]);
    row(&["shuffled", &secs(ls_shuf), &secs(tot_shuf)], &[12, 10, 10]);
    println!(
        "LS slowdown {:.1}× (paper 6.8×), overall slowdown {:.1}× (paper 3.5×)",
        ls_shuf / ls_nat,
        tot_shuf / tot_nat
    );
    // Gap-distribution evidence (ties this to Figure 2).
    let nat = parhde_graph::gaps::gap_distribution(&native);
    let shuf = parhde_graph::gaps::gap_distribution(&shuffled);
    println!(
        "gaps ≤ 64: native {:.0}%, shuffled {:.0}%",
        100.0 * nat.fraction_below(64),
        100.0 * shuf.fraction_below(64)
    );
}

/// §4.4 text — SSSP vs BFS: unit weights cost ~18% extra; random integer
/// weights cost 3.66×+ and depend on Δ.
pub fn sssp(opts: &Opts) {
    banner(
        "SSSP ablation — Δ-stepping vs BFS on the road graph",
        "§4.4: unit-weight SSSP 18% slower; random weights ≥ 3.66× slower",
    );
    let g = collection::by_name("road_usa").unwrap().build_scaled(opts.scale);
    let cfg = ParHdeConfig::default();
    let t = Timer::start();
    let _ = par_hde(&g, &cfg);
    let bfs_time = t.seconds();
    println!("BFS-based ParHDE: {}", secs(bfs_time));

    let unit = WeightedCsr::unit_weights(g.clone());
    let t = Timer::start();
    let _ = par_hde_weighted(&unit, &cfg, 1.0);
    let unit_time = t.seconds();
    println!(
        "unit-weight SSSP: {} ({:+.0}% vs BFS; paper +18%)",
        secs(unit_time),
        100.0 * (unit_time - bfs_time) / bfs_time
    );

    let mut rng = Xoshiro256StarStar::seed_from_u64(collection::SEED);
    let edges: Vec<(u32, u32, f64)> = g
        .edges()
        .map(|(u, v)| (u, v, (1 + rng.next_below(255)) as f64))
        .collect();
    let weighted = build_weighted_from_edges(g.num_vertices(), edges);
    for delta in [16.0, 64.0, parhde_sssp::suggest_delta(&weighted), 1024.0] {
        let t = Timer::start();
        let _ = par_hde_weighted(&weighted, &cfg, delta);
        println!(
            "random-weight SSSP (Δ = {delta:.0}): {} ({:.2}× vs BFS; paper ≥ 3.66×)",
            secs(t.seconds()),
            t.seconds() / bfs_time
        );
    }

    // Anatomy of the Δ trade-off on a single source: bucket count falls
    // and per-bucket rework rises as Δ grows.
    println!("Δ anatomy (single source):");
    for delta in [16.0, 64.0, 256.0, 1024.0] {
        let (_, st) =
            parhde_sssp::delta_stepping::delta_stepping_with_stats(&weighted, 0, delta);
        println!(
            "  Δ = {delta:>5.0}: {} buckets, {} light rounds, {} light + {} heavy \
             relaxations, {} stale entries",
            st.buckets_processed,
            st.light_rounds,
            st.light_relaxations,
            st.heavy_relaxations,
            st.stale_entries
        );
    }
}

/// §4.5.3 — ParHDE + weighted-centroid refinement as an eigensolver
/// preprocessing step vs cold power iteration. Measured as the paper's
/// source [27] does: time for a cold power method (centroid sweeps from a
/// random start) to reach the energy ParHDE + refinement delivers.
pub fn refine(opts: &Opts) {
    banner(
        "Refinement — HDE(+refine) vs cold power iteration to equal quality",
        "§4.5.3: HDE+refinement 22×–131× faster than power iteration",
    );
    for name in ["ecology1", "pa2010"] {
        let g = collection::by_name(name).unwrap().build_scaled(opts.scale);
        let n = g.num_vertices();
        let t = Timer::start();
        let (layout, _) = par_hde(&g, &ParHdeConfig::default());
        let refined = refined_axes(&g, &layout, 10);
        let hde_time = t.seconds();
        let target = energy_objective(&g, &refined);

        // Cold power iteration = centroid sweeps from a random layout.
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let mut cold = parhde::Layout::new(
            (0..n).map(|_| rng.next_f64() - 0.5).collect(),
            (0..n).map(|_| rng.next_f64() - 0.5).collect(),
        );
        let t = Timer::start();
        let cap = 20_000usize;
        let mut sweeps = 0usize;
        while energy_objective(&g, &cold) > target && sweeps < cap {
            cold = refined_axes(&g, &cold, 10);
            sweeps += 10;
        }
        let cold_time = t.seconds();
        let capped = sweeps >= cap && energy_objective(&g, &cold) > target;
        println!(
            "{name}: HDE+refine {} (energy {target:.6}) vs {} for {sweeps} cold \
             sweeps{} → {}{:.0}× faster (paper: 22×–131×)",
            secs(hde_time),
            secs(cold_time),
            if capped { " (cap hit, target still unmatched)" } else { " to match" },
            if capped { "≥" } else { "" },
            cold_time / hde_time,
        );
        // The refined axes also serve as a warm start for an eigensolver;
        // report its residual quality via the Rayleigh estimates.
        let init = vec![refined.x.clone(), refined.y.clone()];
        let (_, warm) = dominant_walk_eigenvectors(&g, 2, 50, 1e-8, 7, Some(&init));
        println!(
            "  warm-start Rayleigh eigenvalue estimates after ≤50 matvecs/vector: {:?}",
            warm.eigenvalues
        );
    }
}
