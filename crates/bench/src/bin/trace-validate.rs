//! `trace-validate` — schema checker for the observability artifacts.
//!
//! Validates any mix of the three machine-readable outputs the pipeline
//! emits and exits non-zero if any file is missing or malformed, so CI can
//! guard the formats without a JSON toolchain in the image:
//!
//! ```text
//! trace-validate [--chrome <file.json>]... [--ndjson <file.ndjson>]...
//!                [--report <file.json>]... [--prometheus <file.prom>]...
//!                [--metrics-ndjson <file.ndjson>]...
//! ```
//!
//! Each `--chrome` file must be a Chrome trace_event object with balanced,
//! well-formed events; each `--ndjson` file a `parhde-trace-ndjson` v1
//! stream whose first line is the meta record; each `--report` a
//! `parhde-run-report` v1 document that round-trips through the parser;
//! each `--prometheus` file a well-formed Prometheus text exposition (as
//! served by the daemon's `STATS` verb); each `--metrics-ndjson` file a
//! `parhde-metrics-ndjson` v1 registry snapshot.
//!
//! `--report` additionally cross-checks the compute backend: when the
//! report carries a `backend_executed` config pair and any
//! `linalg.backend.*` element counters, every counted element must be
//! attributed to the executed backend — a silent scalar fallback inside
//! an `auto` run (or any disagreement between what the run claims and
//! what the kernels actually dispatched) fails validation.

use std::process::exit;

/// `--report` checker: schema validation plus the backend cross-check
/// described in the module docs.
fn check_report(text: &str) -> Result<(), String> {
    parhde_trace::RunReport::validate(text)?;
    let report = parhde_trace::RunReport::from_json(text)?;
    let Some((_, executed)) =
        report.config.iter().find(|(k, _)| k == "backend_executed")
    else {
        return Ok(());
    };
    let total = |be: &str| -> u64 {
        let prefix = format!("linalg.backend.{be}.");
        report
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix))
            .map(|(_, v)| *v)
            .sum()
    };
    let (scalar, simd) = (total("scalar"), total("simd"));
    if scalar + simd == 0 {
        // No kernel work traced: a degraded/trivial run, or counters off.
        return Ok(());
    }
    let (executed_total, other_name, other_total) = match executed.as_str() {
        "simd" => (simd, "scalar", scalar),
        _ => (scalar, "simd", simd),
    };
    if other_total != 0 {
        return Err(format!(
            "backend mismatch: backend_executed = {executed:?} but \
             {other_total} element(s) were counted under \
             linalg.backend.{other_name}.*"
        ));
    }
    if executed_total == 0 {
        return Err(format!(
            "backend mismatch: backend_executed = {executed:?} but no \
             linalg.backend.{executed}.* counters were recorded"
        ));
    }
    Ok(())
}

/// Adapter: the metrics-snapshot parser returns the snapshot; validation
/// only needs the verdict.
fn check_metrics_ndjson(text: &str) -> Result<(), String> {
    parhde_trace::registry::Snapshot::from_ndjson(text).map(|_| ())
}

/// Schema checker signature shared by all three artifact formats.
type Checker = fn(&str) -> Result<(), String>;

/// One validation job: the flag it came from, the path, and the checker.
struct Job {
    kind: &'static str,
    path: String,
    check: Checker,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: trace-validate [--chrome <file>]... [--ndjson <file>]... \
             [--report <file>]... [--prometheus <file>]... [--metrics-ndjson <file>]..."
        );
        exit(if args.is_empty() { 2 } else { 0 });
    }
    let mut jobs: Vec<Job> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let (kind, check): (&'static str, Checker) = match flag {
            "--chrome" => ("chrome", parhde_trace::chrome::validate),
            "--ndjson" => ("ndjson", parhde_trace::ndjson::validate),
            "--report" => ("report", check_report),
            "--prometheus" => {
                ("prometheus", parhde_trace::registry::validate_prometheus)
            }
            "--metrics-ndjson" => ("metrics-ndjson", check_metrics_ndjson),
            other => {
                eprintln!("trace-validate: unknown option {other}");
                exit(2);
            }
        };
        i += 1;
        let Some(path) = args.get(i) else {
            eprintln!("trace-validate: {flag} needs a file argument");
            exit(2);
        };
        jobs.push(Job { kind, path: path.clone(), check });
        i += 1;
    }

    let mut failures = 0usize;
    for job in &jobs {
        let text = match std::fs::read_to_string(&job.path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {} {}: cannot read: {e}", job.kind, job.path);
                failures += 1;
                continue;
            }
        };
        match (job.check)(&text) {
            Ok(()) => println!("ok   {} {}", job.kind, job.path),
            Err(e) => {
                eprintln!("FAIL {} {}: {e}", job.kind, job.path);
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("trace-validate: {failures} of {} file(s) invalid", jobs.len());
        exit(1);
    }
}
