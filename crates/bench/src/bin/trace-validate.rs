//! `trace-validate` — schema checker for the observability artifacts.
//!
//! Validates any mix of the three machine-readable outputs the pipeline
//! emits and exits non-zero if any file is missing or malformed, so CI can
//! guard the formats without a JSON toolchain in the image:
//!
//! ```text
//! trace-validate [--chrome <file.json>]... [--ndjson <file.ndjson>]...
//!                [--report <file.json>]... [--prometheus <file.prom>]...
//!                [--metrics-ndjson <file.ndjson>]...
//! ```
//!
//! Each `--chrome` file must be a Chrome trace_event object with balanced,
//! well-formed events; each `--ndjson` file a `parhde-trace-ndjson` v1
//! stream whose first line is the meta record; each `--report` a
//! `parhde-run-report` v1 document that round-trips through the parser;
//! each `--prometheus` file a well-formed Prometheus text exposition (as
//! served by the daemon's `STATS` verb); each `--metrics-ndjson` file a
//! `parhde-metrics-ndjson` v1 registry snapshot.

use std::process::exit;

/// Adapter: the metrics-snapshot parser returns the snapshot; validation
/// only needs the verdict.
fn check_metrics_ndjson(text: &str) -> Result<(), String> {
    parhde_trace::registry::Snapshot::from_ndjson(text).map(|_| ())
}

/// Schema checker signature shared by all three artifact formats.
type Checker = fn(&str) -> Result<(), String>;

/// One validation job: the flag it came from, the path, and the checker.
struct Job {
    kind: &'static str,
    path: String,
    check: Checker,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: trace-validate [--chrome <file>]... [--ndjson <file>]... \
             [--report <file>]... [--prometheus <file>]... [--metrics-ndjson <file>]..."
        );
        exit(if args.is_empty() { 2 } else { 0 });
    }
    let mut jobs: Vec<Job> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let (kind, check): (&'static str, Checker) = match flag {
            "--chrome" => ("chrome", parhde_trace::chrome::validate),
            "--ndjson" => ("ndjson", parhde_trace::ndjson::validate),
            "--report" => ("report", parhde_trace::RunReport::validate),
            "--prometheus" => {
                ("prometheus", parhde_trace::registry::validate_prometheus)
            }
            "--metrics-ndjson" => ("metrics-ndjson", check_metrics_ndjson),
            other => {
                eprintln!("trace-validate: unknown option {other}");
                exit(2);
            }
        };
        i += 1;
        let Some(path) = args.get(i) else {
            eprintln!("trace-validate: {flag} needs a file argument");
            exit(2);
        };
        jobs.push(Job { kind, path: path.clone(), check });
        i += 1;
    }

    let mut failures = 0usize;
    for job in &jobs {
        let text = match std::fs::read_to_string(&job.path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL {} {}: cannot read: {e}", job.kind, job.path);
                failures += 1;
                continue;
            }
        };
        match (job.check)(&text) {
            Ok(()) => println!("ok   {} {}", job.kind, job.path),
            Err(e) => {
                eprintln!("FAIL {} {}: {e}", job.kind, job.path);
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("trace-validate: {failures} of {} file(s) invalid", jobs.len());
        exit(1);
    }
}
