//! STREAM-Triad memory-bandwidth probe.
//!
//! The paper reports "a STREAM Triad bandwidth of 112 GB/s on the 28-core
//! system" (§4.1) to contextualize why DOrtho saturates early (Figure 4).
//! This binary measures the same kernel — `a[i] = b[i] + α·c[i]` — with
//! rayon across the host's cores, so EXPERIMENTS.md can record the local
//! equivalent.
//!
//! ```text
//! cargo run -p parhde-bench --release --bin triad [-- <MiB per array>]
//! ```
//!
//! Setting `PARHDE_TRACE=<file.json>` additionally records one span per
//! thread-count measurement (with a `triad.bandwidth_gbs` gauge) and writes
//! a Chrome trace_event file on exit.

use parhde_util::threads::{run_with_threads, scaling_thread_counts};
use parhde_util::Timer;
use rayon::prelude::*;

const REPS: usize = 10;

fn main() {
    let mib: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let trace_path = std::env::var("PARHDE_TRACE").ok().filter(|p| !p.is_empty());
    let session = trace_path.as_ref().map(|_| parhde_trace::TraceSession::begin());
    let len = mib * (1 << 20) / 8;
    let b = vec![1.5f64; len];
    let c = vec![2.5f64; len];
    let mut a = vec![0.0f64; len];
    let alpha = 3.0;
    println!("STREAM Triad: 3 arrays × {mib} MiB, {REPS} reps per thread count");
    for threads in scaling_thread_counts() {
        let _span = parhde_trace::span!("triad.measure");
        let secs = run_with_threads(threads, || {
            // Warm-up pass.
            triad(&mut a, &b, &c, alpha);
            let t = Timer::start();
            for _ in 0..REPS {
                triad(&mut a, &b, &c, alpha);
            }
            t.seconds()
        });
        // Triad moves 3 arrays per pass (2 reads + 1 write).
        let bytes = REPS * 3 * len * 8;
        let gbs = bytes as f64 / secs / 1e9;
        parhde_trace::gauge!("triad.threads", threads as f64);
        parhde_trace::gauge!("triad.bandwidth_gbs", gbs);
        parhde_trace::counter!("triad.bytes_moved", bytes as u64);
        println!("  {threads:>3} thread(s): {gbs:.1} GB/s");
        assert!(a[0] == 1.5 + alpha * 2.5, "triad result check");
    }
    if let (Some(path), Some(session)) = (trace_path, session) {
        let trace = session.finish();
        let out = std::fs::File::create(&path)
            .and_then(|f| parhde_trace::chrome::write_chrome_trace(&trace, f));
        match out {
            Ok(()) => eprintln!("trace: wrote {path}"),
            Err(e) => eprintln!("trace: cannot write {path}: {e}"),
        }
    }
}

fn triad(a: &mut [f64], b: &[f64], c: &[f64], alpha: f64) {
    a.par_chunks_mut(1 << 15)
        .zip(b.par_chunks(1 << 15))
        .zip(c.par_chunks(1 << 15))
        .for_each(|((ca, cb), cc)| {
            for ((x, &y), &z) in ca.iter_mut().zip(cb).zip(cc) {
                *x = y + alpha * z;
            }
        });
}
