//! The benchmark graph collection — Table 2 analogues.
//!
//! Each entry names the paper graph it stands in for, records the paper's
//! preprocessed `m`/`n` (for the paper-vs-measured tables in
//! EXPERIMENTS.md), and builds a seeded synthetic analogue that reproduces
//! the structural property the paper uses that graph to probe (degree skew,
//! ordering locality, diameter). See DESIGN.md §2 for the substitution
//! rationale.
//!
//! All graphs pass through the paper's §4.1 preprocessing: simple,
//! undirected, largest connected component, order-preserving relabeling
//! (the generators already emit simple undirected graphs; LCC extraction is
//! applied where the generator can disconnect).

use parhde_graph::gen;
use parhde_graph::prep::largest_component;
use parhde_graph::CsrGraph;

/// One benchmark workload.
#[derive(Clone, Copy, Debug)]
pub struct GraphSpec {
    /// Collection name (the paper's Table 2 graph this stands in for).
    pub name: &'static str,
    /// Edge count of the paper's preprocessed original.
    pub paper_m: u64,
    /// Vertex count of the paper's preprocessed original.
    pub paper_n: u64,
    /// Generator at default (laptop) scale.
    builder: fn(u32) -> CsrGraph,
}

/// Deterministic seed shared by the collection.
pub const SEED: u64 = 0x1CC_2020;

impl GraphSpec {
    /// Builds the analogue at default scale.
    pub fn build(&self) -> CsrGraph {
        (self.builder)(0)
    }

    /// Builds at `extra_scale` doublings above the default (for running the
    /// harness at larger sizes on bigger machines; `extra_scale = 0` is the
    /// laptop default, each increment roughly doubles the vertex count).
    pub fn build_scaled(&self, extra_scale: u32) -> CsrGraph {
        (self.builder)(extra_scale)
    }
}

fn urand27_like(extra: u32) -> CsrGraph {
    gen::urand(1 << (17 + extra), 16, SEED)
}

fn kron27_like(extra: u32) -> CsrGraph {
    largest_component(&gen::kron(16 + extra, 16, SEED)).graph
}

fn sk2005_like(extra: u32) -> CsrGraph {
    largest_component(&gen::web_locality(120_000 << extra, 16, SEED)).graph
}

fn twitter7_like(extra: u32) -> CsrGraph {
    gen::pref_attach(100_000 << extra, 12, SEED)
}

fn road_usa_like(extra: u32) -> CsrGraph {
    largest_component(&gen::geometric(180_000 << extra, 3.0, SEED)).graph
}

fn cage14_like(extra: u32) -> CsrGraph {
    largest_component(&gen::urand(32_768 << extra, 17, SEED ^ 1)).graph
}

fn curlcurl4_like(extra: u32) -> CsrGraph {
    // FEM mesh: triangulated grid (solid, no holes).
    let side = 235 << (extra / 2);
    gen::mesh_with_holes(side, side, &[])
}

fn kkt_power_like(extra: u32) -> CsrGraph {
    largest_component(&gen::geometric(32_768 << extra, 6.3, SEED ^ 2)).graph
}

fn ecology1_like(extra: u32) -> CsrGraph {
    let side = 160 << (extra / 2);
    gen::grid2d(side, side)
}

fn pa2010_like(extra: u32) -> CsrGraph {
    largest_component(&gen::geometric(13_000 << extra, 4.9, SEED ^ 3)).graph
}

/// The full ten-graph collection, ordered by paper edge count (Table 2).
pub fn all() -> Vec<GraphSpec> {
    vec![
        GraphSpec { name: "urand27", paper_m: 2_147_483_376, paper_n: 134_217_728, builder: urand27_like },
        GraphSpec { name: "kron27", paper_m: 2_111_622_405, paper_n: 63_045_458, builder: kron27_like },
        GraphSpec { name: "sk-2005", paper_m: 1_810_050_743, paper_n: 50_634_118, builder: sk2005_like },
        GraphSpec { name: "twitter7", paper_m: 1_202_513_046, paper_n: 41_652_230, builder: twitter7_like },
        GraphSpec { name: "road_usa", paper_m: 28_854_312, paper_n: 23_947_347, builder: road_usa_like },
        GraphSpec { name: "cage14", paper_m: 12_812_282, paper_n: 1_505_785, builder: cage14_like },
        GraphSpec { name: "CurlCurl_4", paper_m: 12_067_676, paper_n: 2_380_515, builder: curlcurl4_like },
        GraphSpec { name: "kkt_power", paper_m: 6_482_320, paper_n: 2_063_494, builder: kkt_power_like },
        GraphSpec { name: "ecology1", paper_m: 1_998_000, paper_n: 1_000_000, builder: ecology1_like },
        GraphSpec { name: "pa2010", paper_m: 1_029_231, paper_n: 421_545, builder: pa2010_like },
    ]
}

/// The five large graphs used by Tables 3/5/7 and Figures 2–6.
pub fn large_five() -> Vec<GraphSpec> {
    all().into_iter().take(5).collect()
}

/// The five smallest graphs, used by Table 6.
pub fn small_five() -> Vec<GraphSpec> {
    all().into_iter().skip(5).collect()
}

/// Looks up a spec by name.
pub fn by_name(name: &str) -> Option<GraphSpec> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parhde_graph::prep::is_connected;

    #[test]
    fn collection_has_ten_entries_in_paper_order() {
        let specs = all();
        assert_eq!(specs.len(), 10);
        for w in specs.windows(2) {
            assert!(w[0].paper_m >= w[1].paper_m, "collection must be m-sorted");
        }
        assert_eq!(large_five().len(), 5);
        assert_eq!(small_five().len(), 5);
        assert_eq!(large_five()[0].name, "urand27");
        assert_eq!(small_five()[0].name, "cage14");
    }

    #[test]
    fn by_name_finds_entries() {
        assert!(by_name("road_usa").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn small_graphs_build_connected() {
        // Building all ten is too slow for a unit test; the smallest three
        // cover the generator plumbing, and the reproduce binary exercises
        // the rest.
        for spec in ["kkt_power", "ecology1", "pa2010"] {
            let g = by_name(spec).unwrap().build();
            assert!(is_connected(&g), "{spec} analogue must be connected");
            assert!(g.num_edges() > 10_000, "{spec} too small");
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let a = by_name("pa2010").unwrap().build();
        let b = by_name("pa2010").unwrap().build();
        assert_eq!(a, b);
    }
}
