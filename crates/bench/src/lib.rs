//! Workload definitions shared by the `reproduce` binary and the criterion
//! benches.
//!
//! [`collection`] defines the ten-graph benchmark collection mirroring the
//! paper's Table 2 at laptop scale; [`collection::GraphSpec::scale_factor`]
//! lets the same harness regenerate paper-sized instances on bigger
//! hardware. [`reports`] reads back the machine-readable run reports the
//! binaries emit (`--json-report`) for summaries and cross-run comparison.

#![warn(missing_docs)]

pub mod collection;
pub mod reports;
