//! Consumers of the machine-readable run report (`parhde-run-report` v1).
//!
//! `parhde-layout --json-report` writes one [`RunReport`] per run; this
//! module reads them back for the bench harness: a human summary for logs
//! and a phase-by-phase comparison for diffing two runs (e.g. two commits
//! on the same graph in CI).

use parhde_trace::RunReport;
use std::path::Path;

/// Loads and schema-validates a run report from disk.
///
/// # Errors
/// A diagnostic string when the file is unreadable or not a valid
/// `parhde-run-report` document.
pub fn load(path: &Path) -> Result<RunReport, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    RunReport::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Renders a short human summary of one report: identity line, the
/// grouped Figure-3 buckets, top counters, and any warnings.
pub fn summarize(r: &RunReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} {} on n = {}, m = {}: {:.3} s (exit {})\n",
        r.binary, r.algo, r.graph_n, r.graph_m, r.total_seconds, r.exit_code
    ));
    if let Some(err) = &r.error {
        out.push_str(&format!("  error: {err}\n"));
    }
    let grouped_total: f64 = r.grouped.iter().map(|(_, s)| s).sum();
    for (name, secs) in &r.grouped {
        let pct = if grouped_total > 0.0 { 100.0 * secs / grouped_total } else { 0.0 };
        out.push_str(&format!("  {name:<10} {secs:>9.4} s  {pct:>5.1}%\n"));
    }
    for (name, total) in &r.counters {
        out.push_str(&format!("  {name:<28} {total}\n"));
    }
    for w in &r.warnings {
        out.push_str(&format!("  warning: {w}\n"));
    }
    out
}

/// One phase's before/after seconds and the resulting ratio.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseDelta {
    /// Phase name (fine-grained, pipeline order of the `before` report).
    pub name: String,
    /// Seconds in the baseline report (0 when the phase is new).
    pub before: f64,
    /// Seconds in the candidate report (0 when the phase disappeared).
    pub after: f64,
}

impl PhaseDelta {
    /// `after / before`; `None` when the baseline is zero (new phase).
    pub fn ratio(&self) -> Option<f64> {
        (self.before > 0.0).then(|| self.after / self.before)
    }
}

/// Pairs up the fine-grained phases of two reports, preserving the
/// baseline's order and appending phases only the candidate has. Useful
/// for regression gates: `deltas.iter().all(|d| d.ratio() < threshold)`.
pub fn compare(before: &RunReport, after: &RunReport) -> Vec<PhaseDelta> {
    let mut deltas: Vec<PhaseDelta> = before
        .phases
        .iter()
        .map(|(name, secs)| PhaseDelta {
            name: name.clone(),
            before: *secs,
            after: after
                .phases
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0.0, |(_, s)| *s),
        })
        .collect();
    for (name, secs) in &after.phases {
        if !before.phases.iter().any(|(n, _)| n == name) {
            deltas.push(PhaseDelta { name: name.clone(), before: 0.0, after: *secs });
        }
    }
    deltas
}

/// Renders a `compare` result as an aligned table with a total row.
pub fn render_comparison(deltas: &[PhaseDelta]) -> String {
    let mut out = String::from("phase          before s    after s    ratio\n");
    let (mut tb, mut ta) = (0.0, 0.0);
    for d in deltas {
        tb += d.before;
        ta += d.after;
        let ratio = d
            .ratio()
            .map_or_else(|| "   new".to_string(), |r| format!("{r:>6.2}"));
        out.push_str(&format!(
            "{:<12} {:>10.4} {:>10.4}   {ratio}\n",
            d.name, d.before, d.after
        ));
    }
    let total_ratio =
        if tb > 0.0 { format!("{:>6.2}", ta / tb) } else { "   new".to_string() };
    out.push_str(&format!("{:<12} {tb:>10.4} {ta:>10.4}   {total_ratio}\n", "total"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(scale: f64) -> RunReport {
        RunReport {
            binary: "parhde-layout".into(),
            algo: "parhde".into(),
            graph_n: 1000,
            graph_m: 4000,
            phases: vec![
                ("BFS".into(), 0.10 * scale),
                ("DOrtho".into(), 0.05 * scale),
            ],
            grouped: vec![
                ("BFS".into(), 0.10 * scale),
                ("DOrtho".into(), 0.05 * scale),
            ],
            counters: vec![("bfs.top_down_edges".into(), 12345)],
            total_seconds: 0.2 * scale,
            ..RunReport::default()
        }
    }

    #[test]
    fn summarize_mentions_identity_and_buckets() {
        let s = summarize(&sample(1.0));
        assert!(s.contains("parhde-layout parhde on n = 1000, m = 4000"));
        assert!(s.contains("BFS"));
        assert!(s.contains("66.7%"), "BFS share of the grouped total:\n{s}");
        assert!(s.contains("bfs.top_down_edges"));
    }

    #[test]
    fn compare_pairs_phases_and_flags_new_ones() {
        let before = sample(1.0);
        let mut after = sample(2.0);
        after.phases.push(("Eigen".into(), 0.01));
        let deltas = compare(&before, &after);
        assert_eq!(deltas.len(), 3);
        assert_eq!(deltas[0].name, "BFS");
        assert!((deltas[0].ratio().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(deltas[2].name, "Eigen");
        assert_eq!(deltas[2].ratio(), None);
    }

    #[test]
    fn comparison_table_renders_totals() {
        let table = render_comparison(&compare(&sample(1.0), &sample(1.0)));
        assert!(table.contains("total"));
        assert!(table.contains("1.00"));
    }

    #[test]
    fn load_round_trips_through_disk() {
        let path = std::env::temp_dir().join("parhde-report-roundtrip-test.json");
        let report = sample(1.0);
        std::fs::write(&path, report.to_json()).unwrap();
        let back = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, report);
    }

    #[test]
    fn load_rejects_garbage() {
        let path = std::env::temp_dir().join("parhde-report-garbage-test.json");
        std::fs::write(&path, "{\"schema\":\"nope\"}").unwrap();
        let err = load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("schema"), "{err}");
    }
}
