//! End-to-end observability tests: a [`TraceSession`] wrapped around the
//! real pipelines must agree with the wall-clock statistics the pipelines
//! report themselves, and counter totals must be invariant to the thread
//! count (they measure *work*, not schedule).
//!
//! The collector is process-global, so tests serialize on `SESSION_LOCK`.

use parhde::config::ParHdeConfig;
use parhde::try_par_hde;
use parhde_graph::gen;
use parhde_graph::prep::largest_component;
use parhde_trace::TraceSession;
use parhde_util::threads::run_with_threads;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};

static SESSION_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    SESSION_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn cfg() -> ParHdeConfig {
    ParHdeConfig { subspace: 10, ..ParHdeConfig::default() }
}

#[test]
fn trace_phase_seconds_agree_with_stats_breakdown() {
    let _l = lock();
    let g = largest_component(&gen::kron(10, 16, 42)).graph;
    let session = TraceSession::begin();
    let (_, stats) = try_par_hde(&g, &cfg()).unwrap();
    let trace = session.finish();

    let traced: HashMap<String, f64> = trace.phase_seconds().into_iter().collect();
    assert!(!stats.phases.is_empty(), "pipeline recorded no phases");
    for (name, d) in stats.phases.iter() {
        let wall = d.as_secs_f64();
        let span = *traced
            .get(name)
            .unwrap_or_else(|| panic!("phase {name} missing from trace: {traced:?}"));
        // Both views time the same PhaseSpan interval; allow scheduler
        // noise between the two clock reads.
        let diff = (span - wall).abs();
        assert!(
            diff < 0.005 + 0.05 * wall.max(span),
            "phase {name}: trace says {span} s, stats say {wall} s"
        );
    }
    // The root span covers every phase.
    let root = traced.get("parhde").copied().unwrap_or(0.0);
    let phase_sum: f64 =
        stats.phases.iter().map(|(_, d)| d.as_secs_f64()).sum();
    assert!(
        root >= phase_sum * 0.95,
        "root span ({root} s) shorter than the phases it encloses ({phase_sum} s)"
    );
}

#[test]
fn trace_captures_pipeline_counters_and_root_span() {
    let _l = lock();
    let g = gen::grid2d(30, 30);
    let session = TraceSession::begin();
    let (_, stats) = try_par_hde(&g, &cfg()).unwrap();
    let trace = session.finish();

    let totals: HashMap<String, u64> = trace.counter_totals().into_iter().collect();
    // The BFS phase traversed the graph once per pivot: edge counters must
    // reflect real work on a connected grid.
    let edges = totals.get("bfs.top_down_edges").copied().unwrap_or(0)
        + totals.get("bfs.bottom_up_edges").copied().unwrap_or(0);
    assert!(edges > 0, "no BFS edge work recorded: {totals:?}");
    // DOrtho kept the surviving columns the stats report.
    assert_eq!(
        totals.get("dortho.kept_columns").copied(),
        Some(stats.s_kept as u64 + 1),
        "kept-column counter disagrees with stats (constant column included)"
    );
    assert!(totals.contains_key("gemm.flops"), "missing gemm.flops: {totals:?}");
    // The default fused TripleProd reports its own flop/pack counters in
    // place of the staged pair's spmm.flops.
    assert!(
        totals.contains_key("linalg.fused.flops"),
        "missing linalg.fused.flops: {totals:?}"
    );
    assert!(
        totals.contains_key("linalg.fused.pack_bytes"),
        "missing linalg.fused.pack_bytes: {totals:?}"
    );
}

#[test]
fn counter_totals_are_thread_count_invariant() {
    let _l = lock();
    let g = largest_component(&gen::kron(9, 12, 7)).graph;
    let mut baseline: Option<Vec<(String, u64)>> = None;
    for threads in [1usize, 2, 4] {
        let session = TraceSession::begin();
        let result = run_with_threads(threads, || try_par_hde(&g, &cfg()));
        let trace = session.finish();
        result.unwrap();
        // Work counters measure *work* and must not depend on the schedule;
        // the process.* family measures OS memory (peak-RSS deltas), which
        // legitimately varies with the pool size, so it is exempt.
        let mut totals: Vec<(String, u64)> = trace
            .counter_totals()
            .into_iter()
            .filter(|(name, _)| !name.starts_with("process."))
            .collect();
        totals.sort();
        match &baseline {
            None => baseline = Some(totals),
            Some(b) => assert_eq!(
                &totals, b,
                "counter totals changed between 1 and {threads} threads"
            ),
        }
    }
}

#[test]
fn session_isolated_runs_do_not_leak_between_sessions() {
    let _l = lock();
    let g = gen::grid2d(12, 12);
    let s1 = TraceSession::begin();
    try_par_hde(&g, &cfg()).unwrap();
    let t1 = s1.finish();
    assert!(t1.num_events() > 0);
    // A fresh session starts empty even though the same threads recorded
    // into the previous one.
    let s2 = TraceSession::begin();
    let t2 = s2.finish();
    assert_eq!(t2.num_events(), 0, "events leaked across sessions");
}

#[test]
fn untraced_run_produces_identical_layout() {
    // Tracing must be observationally side-effect free: the layout from a
    // traced run is bit-identical to an untraced one.
    let _l = lock();
    let g = gen::grid2d(20, 20);
    let (plain, _) = try_par_hde(&g, &cfg()).unwrap();
    let session = TraceSession::begin();
    let (traced, _) = try_par_hde(&g, &cfg()).unwrap();
    session.finish();
    assert_eq!(plain, traced);
}
