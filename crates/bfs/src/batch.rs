//! Bit-parallel batched multi-source BFS (MS-BFS).
//!
//! [`multi`](crate::multi) answers `s` sources by running `s` independent
//! sequential traversals, so the CSR is streamed through the cache `s`
//! times. This module instead advances **all sources in one shared sweep**,
//! in the style of Then et al.'s MS-BFS and the batching principle of
//! BatchLayout: each vertex row carries `⌈s/64⌉` *lane words* whose bit `i`
//! means "reached by source `i`", and a single scan of an edge `(v, u)` ORs
//! `v`'s frontier word into `u`'s next-frontier word — 64 traversals per
//! word operation.
//!
//! Three bit-vectors of `n × lane_words(s)` words are kept:
//!
//! * `seen` — lanes that have reached each vertex (any level);
//! * `frontier` — lanes that reached it exactly at the previous level;
//! * `next` — lanes arriving at the current level (built by `fetch_or`).
//!
//! Every level runs two rayon-parallel sweeps: an **expand** sweep over the
//! shared frontier vertex list (one edge scan advances every active lane),
//! and an **update** sweep over row blocks that claims `next & !seen`,
//! scatters the level as an `f64` distance directly into the column-major
//! `B` matrix, and rebuilds the frontier list in deterministic block order.
//! Row blocks untouched by the expansion are skipped via per-block dirty
//! flags, so high-diameter graphs do not pay an `O(n)` scan per level.
//!
//! Total work is `O(levels · words)` full-array passes plus one shared edge
//! sweep per level — versus `s` independent edge sweeps for
//! [`multi::bfs_multi_source`](crate::multi::bfs_multi_source). The batched
//! kernel wins when `s` is large relative to the graph's effective diameter
//! (low-diameter graphs, mid-size `s`); see the planner decision table in
//! DESIGN.md §10.

use crate::frontier::{for_each_lane, lane_coords, lane_words};
use crate::{BfsResult, UNREACHED};
use parhde_graph::store::{GraphStore, NeighborScratch};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Rows per update-sweep work unit (and per dirty-flag granule).
const ROW_BLOCK: usize = 2048;

/// Frontier vertices per expand-sweep work unit. Chunking (rather than
/// per-vertex rayon items) lets each task reuse one decode scratch across
/// the whole chunk when the graph is compressed.
const EXPAND_CHUNK: usize = 256;

/// Geometry and work counters from one batched multi-source traversal.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchBfsStats {
    /// Number of bit lanes (= number of sources, including duplicates).
    pub lanes: usize,
    /// Lane words per vertex row (`⌈lanes/64⌉`).
    pub words: usize,
    /// Levels processed (max source eccentricity + 1), as in
    /// [`BfsResult::levels`].
    pub levels: usize,
    /// Frontier lane-words ORed along adjacency arcs by the expansion
    /// sweeps (the batched analogue of edges-examined; a per-source BFS
    /// ensemble would pay one word per arc per *source*).
    pub words_scanned: u64,
    /// Vertices reached per lane, in source order (including the source).
    pub reached: Vec<usize>,
}

/// Batched multi-source BFS writing each lane's distance vector into the
/// corresponding column slice of a column-major matrix buffer.
///
/// `columns` must contain exactly `sources.len()` disjoint column slices of
/// length `n` (as produced by `chunks_mut` on a column-major allocation).
/// Unreached vertices get `f64::INFINITY`. Distances are bit-identical to
/// [`bfs_serial_into_f64`](crate::serial::bfs_serial_into_f64) per column:
/// hop counts are integers, and `level as f64` is exact for any graph that
/// fits in memory.
///
/// # Panics
/// Panics on length mismatches or out-of-range sources.
pub fn bfs_batched_into_f64<G: GraphStore>(
    g: &G,
    sources: &[u32],
    columns: &mut [&mut [f64]],
) -> BatchBfsStats {
    let n = g.num_vertices();
    assert_eq!(
        sources.len(),
        columns.len(),
        "one output column required per source"
    );
    let lanes = sources.len();
    let words = lane_words(lanes);
    for &s in sources {
        assert!((s as usize) < n, "source {s} out of range {n}");
    }
    let _span = parhde_trace::span!("bfs.batched");

    // Initialize every column: all-unreached except the lane's own source.
    columns
        .par_iter_mut()
        .zip(sources.par_iter())
        .for_each(|(col, &src)| {
            assert_eq!(col.len(), n, "column length mismatch");
            col.fill(f64::INFINITY);
            col[src as usize] = 0.0;
        });
    if lanes == 0 || n == 0 {
        return BatchBfsStats { lanes, words, ..BatchBfsStats::default() };
    }

    let mut seen = vec![0u64; n * words];
    let mut frontier: Vec<AtomicU64> =
        (0..n * words).map(|_| AtomicU64::new(0)).collect();
    let mut next: Vec<AtomicU64> =
        (0..n * words).map(|_| AtomicU64::new(0)).collect();
    for (lane, &src) in sources.iter().enumerate() {
        let (w, mask) = lane_coords(lane);
        seen[src as usize * words + w] |= mask;
        *frontier[src as usize * words + w].get_mut() |= mask;
    }
    let mut frontier_verts: Vec<u32> = {
        let mut v = sources.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    };

    let nblocks = n.div_ceil(ROW_BLOCK);
    let dirty: Vec<AtomicBool> = (0..nblocks).map(|_| AtomicBool::new(false)).collect();
    let mut reached = vec![1usize; lanes];
    let mut words_scanned = 0u64;
    let mut max_level = 0u32;
    let mut level = 0u32;

    while !frontier_verts.is_empty() {
        // Cooperative cancellation point (once per shared level sweep): a
        // tripped run budget abandons the batch, leaving unvisited lanes at
        // INFINITY. Callers consult `supervisor::ambient_trip()` before
        // interpreting the partial columns.
        if parhde_util::supervisor::should_stop() {
            break;
        }
        level += 1;
        for d in &dirty {
            d.store(false, Ordering::Relaxed);
        }

        // Expand: one scan of each frontier vertex's adjacency advances all
        // of its active lanes at once.
        let scanned: u64 = frontier_verts
            .par_chunks(EXPAND_CHUNK)
            .map(|chunk| {
                let mut scratch = NeighborScratch::new();
                let mut active: Vec<(usize, u64)> = Vec::with_capacity(words);
                let mut scanned = 0u64;
                for &v in chunk {
                    let base = v as usize * words;
                    if words == 1 {
                        let fw = frontier[base].load(Ordering::Relaxed);
                        let nb = g.neighbors_in(v, &mut scratch);
                        for &u in nb {
                            next[u as usize].fetch_or(fw, Ordering::Relaxed);
                            dirty[u as usize / ROW_BLOCK]
                                .store(true, Ordering::Relaxed);
                        }
                        scanned += nb.len() as u64;
                    } else {
                        active.clear();
                        active.extend((0..words).filter_map(|w| {
                            let fw = frontier[base + w].load(Ordering::Relaxed);
                            (fw != 0).then_some((w, fw))
                        }));
                        let nb = g.neighbors_in(v, &mut scratch);
                        for &u in nb {
                            let ubase = u as usize * words;
                            for &(w, fw) in &active {
                                next[ubase + w].fetch_or(fw, Ordering::Relaxed);
                            }
                            dirty[u as usize / ROW_BLOCK]
                                .store(true, Ordering::Relaxed);
                        }
                        scanned += (nb.len() * active.len()) as u64;
                    }
                }
                scanned
            })
            .sum();
        words_scanned += scanned;

        // Update: per row block, claim `next & !seen`, scatter the level
        // into each newly-reached lane's column, and record the block's new
        // frontier vertices. Blocks the expansion never touched are skipped.
        let mut per_block: Vec<Vec<&mut [f64]>> =
            (0..nblocks).map(|_| Vec::with_capacity(lanes)).collect();
        for col in columns.iter_mut() {
            for (b, chunk) in col.chunks_mut(ROW_BLOCK).enumerate() {
                per_block[b].push(chunk);
            }
        }
        let block_results: Vec<(Vec<u32>, Vec<usize>)> = seen
            .par_chunks_mut(ROW_BLOCK * words)
            .zip(per_block.par_iter_mut())
            .enumerate()
            .map(|(b, (seen_chunk, cols))| {
                if !dirty[b].load(Ordering::Relaxed) {
                    return (Vec::new(), Vec::new());
                }
                let base_row = b * ROW_BLOCK;
                let mut newly = Vec::new();
                let mut lane_counts = vec![0usize; lanes];
                for (r, row) in seen_chunk.chunks_mut(words).enumerate() {
                    let ubase = (base_row + r) * words;
                    let mut any = false;
                    for (w, seen_word) in row.iter_mut().enumerate() {
                        let nx =
                            next[ubase + w].load(Ordering::Relaxed) & !*seen_word;
                        // Leave exactly the claimed bits behind: after the
                        // swap below, `frontier` must hold only this level's
                        // discoveries.
                        next[ubase + w].store(nx, Ordering::Relaxed);
                        if nx != 0 {
                            any = true;
                            *seen_word |= nx;
                            for_each_lane(nx, w, |lane| {
                                cols[lane][r] = level as f64;
                                lane_counts[lane] += 1;
                            });
                        }
                    }
                    if any {
                        newly.push((base_row + r) as u32);
                    }
                }
                (newly, lane_counts)
            })
            .collect();

        // Zero the old frontier rows so the buffer is all-zero again when it
        // becomes `next` after the swap (only frontier rows are nonzero).
        frontier_verts.par_iter().for_each(|&v| {
            let base = v as usize * words;
            for w in 0..words {
                frontier[base + w].store(0, Ordering::Relaxed);
            }
        });

        // Merge per-block results in block order — deterministic regardless
        // of thread count or scheduling.
        frontier_verts.clear();
        let mut discovered = 0usize;
        for (newly, lane_counts) in block_results {
            frontier_verts.extend_from_slice(&newly);
            for (lane, c) in lane_counts.into_iter().enumerate() {
                reached[lane] += c;
                discovered += c;
            }
        }
        if discovered > 0 {
            max_level = level;
        }
        std::mem::swap(&mut frontier, &mut next);
    }

    let stats = BatchBfsStats {
        lanes,
        words,
        levels: max_level as usize + 1,
        words_scanned,
        reached,
    };
    if parhde_trace::enabled() {
        parhde_trace::counter!("bfs.batch.lanes", stats.lanes as u64);
        parhde_trace::counter!("bfs.batch.words", stats.words as u64);
        parhde_trace::counter!("bfs.batch.levels", stats.levels as u64);
        parhde_trace::counter!("bfs.batch.words_scanned", stats.words_scanned);
    }
    stats
}

/// Batched multi-source BFS returning one [`BfsResult`] per source, in
/// source order — a drop-in for
/// [`multi::bfs_multi_source`](crate::multi::bfs_multi_source) backed by the
/// shared-sweep kernel.
///
/// # Panics
/// Panics if any source is out of range.
pub fn bfs_batched<G: GraphStore>(g: &G, sources: &[u32]) -> Vec<BfsResult> {
    let n = g.num_vertices();
    if sources.is_empty() {
        return Vec::new();
    }
    let mut buf = vec![0.0f64; n.max(1) * sources.len()];
    let mut cols: Vec<&mut [f64]> = buf.chunks_mut(n.max(1)).collect();
    if n == 0 {
        // All sources would be out of range; keep the same panic as the
        // distance-writing entry point.
        for &s in sources {
            assert!((s as usize) < n, "source {s} out of range {n}");
        }
    }
    let stats = bfs_batched_into_f64(g, sources, &mut cols);
    drop(cols);
    (0..sources.len())
        .map(|i| {
            let col = &buf[i * n..i * n + n];
            let mut max_d = 0u32;
            let dist: Vec<u32> = col
                .iter()
                .map(|&d| {
                    if d.is_finite() {
                        let d = d as u32;
                        max_d = max_d.max(d);
                        d
                    } else {
                        UNREACHED
                    }
                })
                .collect();
            BfsResult {
                dist,
                reached: stats.reached[i],
                levels: max_d as usize + 1,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::bfs_serial;
    use parhde_graph::gen::{chain, grid2d, star};

    #[test]
    fn matches_serial_on_grid() {
        let g = grid2d(12, 9);
        let sources = [0u32, 37, 99, 107];
        let rs = bfs_batched(&g, &sources);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(rs[i], bfs_serial(&g, s), "source {s}");
        }
    }

    #[test]
    fn duplicate_sources_get_independent_lanes() {
        let g = star(6);
        let rs = bfs_batched(&g, &[3, 3, 0]);
        assert_eq!(rs[0], rs[1]);
        assert_eq!(rs[0], bfs_serial(&g, 3));
        assert_eq!(rs[2], bfs_serial(&g, 0));
    }

    #[test]
    fn into_f64_matches_multi_source_layout() {
        let g = chain(8);
        let n = g.num_vertices();
        let mut buf = vec![0.0f64; n * 2];
        let mut cols: Vec<&mut [f64]> = buf.chunks_mut(n).collect();
        let stats = bfs_batched_into_f64(&g, &[0, 7], &mut cols);
        assert_eq!(stats.lanes, 2);
        assert_eq!(stats.words, 1);
        assert_eq!(stats.levels, 8);
        assert_eq!(stats.reached, vec![8, 8]);
        assert_eq!(&buf[..n], &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(&buf[n..], &[7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn empty_sources_is_empty() {
        let g = chain(4);
        assert!(bfs_batched(&g, &[]).is_empty());
        let mut cols: Vec<&mut [f64]> = Vec::new();
        let stats = bfs_batched_into_f64(&g, &[], &mut cols);
        assert_eq!(stats.lanes, 0);
        assert_eq!(stats.words_scanned, 0);
    }

    #[test]
    fn words_scanned_is_one_sweep_per_level_not_per_source() {
        // Star graph, many sources: per-source BFS would scan ~s·2m arcs,
        // the batch scans each arc once per level it is on the frontier.
        let g = star(100);
        let sources: Vec<u32> = (0..64).collect();
        let stats = {
            let n = g.num_vertices();
            let mut buf = vec![0.0f64; n * sources.len()];
            let mut cols: Vec<&mut [f64]> = buf.chunks_mut(n).collect();
            bfs_batched_into_f64(&g, &sources, &mut cols)
        };
        assert_eq!(stats.words, 1);
        // Per-source cost would be 64 full arc sweeps = 64 · 2m words.
        let per_source_words = 64 * g.num_arcs() as u64;
        assert!(
            stats.words_scanned < per_source_words / 8,
            "batch scanned {} words, per-source ensemble would scan {}",
            stats.words_scanned,
            per_source_words
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_panics() {
        let g = chain(4);
        bfs_batched(&g, &[4]);
    }

    #[test]
    #[should_panic(expected = "one output column required")]
    fn column_count_mismatch_panics() {
        let g = chain(4);
        let mut buf = [0.0f64; 4];
        let mut cols: Vec<&mut [f64]> = buf.chunks_mut(4).collect();
        bfs_batched_into_f64(&g, &[0, 1], &mut cols);
    }
}
