//! Parallel bottom-up BFS expansion.
//!
//! In a bottom-up step, every *unvisited* vertex scans its own adjacency
//! list looking for a neighbor on the current frontier; on the first hit it
//! adopts that neighbor as parent and stops scanning. When the frontier is a
//! large fraction of the graph this examines far fewer edges than top-down
//! (most scans exit after one or two probes), which is the entire payoff of
//! direction optimization on low-diameter, skewed-degree graphs.
//!
//! Distance updates here are the paper's "atomic-free" writes (§3.1): only
//! the rayon task that owns vertex `v`'s iteration writes `dist[v]`, so a
//! relaxed store (plain store at ISA level) suffices; the level-end join
//! publishes it to all workers.

use crate::frontier::AtomicBitmap;
use crate::UNREACHED;
use parhde_graph::store::{GraphStore, NeighborScratch};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Vertex-range grain for bottom-up sweeps.
const VERTEX_CHUNK: usize = 1024;

/// Runs one bottom-up level step.
///
/// `current` marks the frontier (vertices at `level − 1`); discovered
/// vertices are written into `next` and their distances set to `level`.
/// Returns `(awakened_count, edges_scanned)`.
pub fn bottom_up_step<G: GraphStore>(
    g: &G,
    current: &AtomicBitmap,
    next: &AtomicBitmap,
    dist: &[AtomicU32],
    level: u32,
) -> (usize, usize) {
    let n = g.num_vertices();
    let ranges: Vec<(usize, usize)> = (0..n)
        .step_by(VERTEX_CHUNK)
        .map(|lo| (lo, (lo + VERTEX_CHUNK).min(n)))
        .collect();
    let (awakened, scanned) = ranges
        .par_iter()
        .map(|&(lo, hi)| {
            let mut awakened = 0usize;
            let mut scanned = 0usize;
            let mut scratch = NeighborScratch::new();
            #[allow(clippy::needless_range_loop)] // v is simultaneously the vertex id
            for v in lo..hi {
                if dist[v].load(Ordering::Relaxed) != UNREACHED {
                    continue;
                }
                // `neighbors_while` streams adjacency (decoding varints one at
                // a time on compressed stores) so the first-parent early exit
                // skips decoding the rest of the block — the same property
                // that makes bottom-up cheap on plain CSR.
                g.neighbors_while(v as u32, &mut scratch, |u| {
                    scanned += 1;
                    if current.get(u as usize) {
                        // Atomic-free distance write: v is only touched by
                        // this task. Relaxed store compiles to a plain store.
                        dist[v].store(level, Ordering::Relaxed);
                        next.set(v);
                        awakened += 1;
                        false // early exit: first parent suffices
                    } else {
                        true
                    }
                });
            }
            (awakened, scanned)
        })
        .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
    (awakened, scanned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parhde_graph::gen::{complete, grid2d, star};

    fn fresh_dist(n: usize, source: u32) -> Vec<AtomicU32> {
        let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
        dist[source as usize].store(0, Ordering::Relaxed);
        dist
    }

    #[test]
    fn star_resolves_in_one_bottom_up_step() {
        let g = star(50);
        let dist = fresh_dist(50, 0);
        let current = AtomicBitmap::from_ids(50, &[0]);
        let next = AtomicBitmap::new(50);
        let (awakened, scanned) = bottom_up_step(&g, &current, &next, &dist, 1);
        assert_eq!(awakened, 49);
        // Each leaf scans exactly one edge (its only neighbor is the hub).
        assert_eq!(scanned, 49);
        assert!((1..50u32).all(|v| dist[v as usize].load(Ordering::Relaxed) == 1));
        assert_eq!(next.count_ones(), 49);
    }

    #[test]
    fn early_exit_reduces_scans_on_complete_graph() {
        // From a full frontier of K_n minus one vertex, the straggler scans
        // exactly 1 edge instead of n−1.
        let g = complete(20);
        let dist = fresh_dist(20, 0);
        for v in 1..19u32 {
            dist[v as usize].store(1, Ordering::Relaxed);
        }
        let frontier: Vec<u32> = (0..19).collect();
        let current = AtomicBitmap::from_ids(20, &frontier);
        let next = AtomicBitmap::new(20);
        let (awakened, scanned) = bottom_up_step(&g, &current, &next, &dist, 2);
        assert_eq!(awakened, 1);
        assert_eq!(scanned, 1, "early exit should stop at the first frontier hit");
    }

    #[test]
    fn grid_level_matches_expected_ring() {
        let g = grid2d(5, 5);
        let dist = fresh_dist(25, 12); // center
        let current = AtomicBitmap::from_ids(25, &[12]);
        let next = AtomicBitmap::new(25);
        let (awakened, _) = bottom_up_step(&g, &current, &next, &dist, 1);
        assert_eq!(awakened, 4); // von Neumann neighbors of the center
        let mut ids = next.to_vec();
        ids.sort_unstable();
        assert_eq!(ids, vec![7, 11, 13, 17]);
    }

    #[test]
    fn no_frontier_awakens_nothing() {
        let g = grid2d(3, 3);
        let dist = fresh_dist(9, 0);
        let current = AtomicBitmap::new(9);
        let next = AtomicBitmap::new(9);
        let (awakened, _) = bottom_up_step(&g, &current, &next, &dist, 1);
        assert_eq!(awakened, 0);
        assert_eq!(next.count_ones(), 0);
    }
}
