//! Direction-optimizing BFS (Beamer et al., as shipped in GAP).
//!
//! The driver runs top-down while the frontier is small, and switches to
//! bottom-up when the frontier's outgoing edge count grows past a fraction
//! of the unexplored edges — the moment when most top-down probes would hit
//! already-visited vertices. GAP's heuristic, reproduced here:
//!
//! * switch **top-down → bottom-up** when `scout_count > edges_to_check / α`
//!   (α = 15), where `scout_count` is the sum of frontier degrees and
//!   `edges_to_check` counts arcs out of still-unexplored vertices;
//! * switch **bottom-up → top-down** when the frontier shrinks below
//!   `n / β` (β = 18).
//!
//! High-diameter graphs (road networks) never grow a frontier big enough to
//! switch, so they see no benefit — exactly the paper's explanation for
//! road_usa's modest 2.9× speedup in Table 3.

use crate::bottom_up::bottom_up_step;
use crate::frontier::AtomicBitmap;
use crate::top_down::top_down_step;
use crate::{BfsResult, TraversalStats, UNREACHED};
use parhde_graph::store::GraphStore;
use std::sync::atomic::{AtomicU32, Ordering};

/// GAP's α: top-down → bottom-up threshold divisor.
pub const ALPHA: usize = 15;
/// GAP's β: bottom-up → top-down threshold divisor.
pub const BETA: usize = 18;

/// Runs a direction-optimizing parallel BFS from `source`.
///
/// # Panics
/// Panics if `source` is out of range.
pub fn bfs_direction_opt<G: GraphStore>(g: &G, source: u32) -> (BfsResult, TraversalStats) {
    bfs_direction_opt_params(g, source, ALPHA, BETA)
}

/// Direction-optimizing BFS with explicit α/β (exposed for the heuristic
/// ablation benches). Larger α switches to bottom-up *sooner* (the switch
/// threshold is `edges_to_check / α`); `alpha = 0` disables the switch
/// entirely, degenerating to pure top-down with statistics.
///
/// # Panics
/// Panics if `source` is out of range or `beta` is zero.
pub fn bfs_direction_opt_params<G: GraphStore>(
    g: &G,
    source: u32,
    alpha: usize,
    beta: usize,
) -> (BfsResult, TraversalStats) {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source {source} out of range");
    assert!(beta > 0, "beta must be positive");

    let _span = parhde_trace::span!("bfs.traversal");
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    dist[source as usize].store(0, Ordering::Relaxed);

    let mut stats = TraversalStats::default();
    let mut frontier: Vec<u32> = vec![source];
    let mut reached = 1usize;
    let mut levels = 1usize;
    let mut level = 0u32;
    // Arcs out of unexplored vertices; spent as vertices are discovered.
    let mut edges_to_check = g.num_arcs().saturating_sub(g.degree(source));
    let mut scout_count = g.degree(source);
    let mut bottom_up_mode = false;
    // In bottom-up mode the frontier lives in a bitmap.
    let mut current_bm: Option<AtomicBitmap> = None;
    let mut frontier_len = 1usize;

    while frontier_len > 0 {
        // Cooperative cancellation point (once per level): a tripped run
        // budget abandons the traversal with `reached < n`; callers consult
        // `supervisor::ambient_trip()` before treating that as disconnected.
        if parhde_util::supervisor::should_stop() {
            break;
        }
        level += 1;
        if !bottom_up_mode
            && alpha > 0
            && scout_count > edges_to_check / alpha
            && frontier_len > 1
        {
            // Convert queue → bitmap and switch down.
            current_bm = Some(AtomicBitmap::from_ids(n, &frontier));
            bottom_up_mode = true;
            parhde_trace::counter!("bfs.switch_to_bottom_up", 1);
        }

        if bottom_up_mode {
            let cur = current_bm.take().expect("bitmap present in bottom-up mode");
            let next = AtomicBitmap::new(n);
            let (awakened, scanned) = bottom_up_step(g, &cur, &next, &dist, level);
            stats.bottom_up_steps += 1;
            stats.bottom_up_edges += scanned;
            reached += awakened;
            frontier_len = awakened;
            if parhde_trace::enabled() {
                parhde_trace::counter!("bfs.bottom_up_edges", scanned as u64);
                parhde_trace::gauge!("bfs.frontier", frontier_len as f64);
            }
            if frontier_len == 0 {
                break;
            }
            levels += 1;
            if frontier_len < n / beta.max(1) {
                // Convert bitmap → queue and switch back up.
                frontier = next.to_vec();
                scout_count = frontier.iter().map(|&v| g.degree(v)).sum();
                edges_to_check = edges_to_check.saturating_sub(scout_count);
                bottom_up_mode = false;
                parhde_trace::counter!("bfs.switch_to_top_down", 1);
            } else {
                current_bm = Some(next);
            }
        } else {
            let (next, scanned) = top_down_step(g, &frontier, &dist, level);
            stats.top_down_steps += 1;
            stats.top_down_edges += scanned;
            reached += next.len();
            frontier_len = next.len();
            if parhde_trace::enabled() {
                parhde_trace::counter!("bfs.top_down_edges", scanned as u64);
                parhde_trace::gauge!("bfs.frontier", frontier_len as f64);
            }
            if frontier_len == 0 {
                break;
            }
            levels += 1;
            scout_count = next.iter().map(|&v| g.degree(v)).sum();
            edges_to_check = edges_to_check.saturating_sub(scout_count);
            frontier = next;
        }
    }

    let dist = dist.into_iter().map(AtomicU32::into_inner).collect();
    (BfsResult { dist, reached, levels }, stats)
}

/// Direction-optimizing BFS writing distances straight into an `f64` column
/// of the embedding matrix `B` (unreached → `f64::INFINITY`); returns the
/// number of reached vertices and the traversal stats.
pub fn bfs_direction_opt_into_f64<G: GraphStore>(
    g: &G,
    source: u32,
    out: &mut [f64],
) -> (usize, TraversalStats) {
    let (r, stats) = bfs_direction_opt(g, source);
    assert_eq!(out.len(), r.dist.len(), "output column length mismatch");
    for (o, &d) in out.iter_mut().zip(&r.dist) {
        *o = if d == UNREACHED { f64::INFINITY } else { d as f64 };
    }
    (r.reached, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::bfs_serial;
    use parhde_graph::builder::build_from_edges;
    use parhde_graph::gen::{chain, complete, grid2d, kron, pref_attach, star};
    use parhde_util::Xoshiro256StarStar;

    #[test]
    fn matches_serial_on_basics() {
        for g in [chain(50), star(40), complete(12), grid2d(9, 13)] {
            let (r, _) = bfs_direction_opt(&g, 0);
            assert_eq!(r, bfs_serial(&g, 0));
        }
    }

    #[test]
    fn matches_serial_on_skewed_graphs() {
        let g = pref_attach(3000, 4, 5);
        for s in [0u32, 17, 2999] {
            let (r, _) = bfs_direction_opt(&g, s);
            assert_eq!(r, bfs_serial(&g, s), "source {s}");
        }
    }

    #[test]
    fn matches_serial_on_kron() {
        let g = kron(10, 8, 2);
        let (r, _) = bfs_direction_opt(&g, 3);
        assert_eq!(r, bfs_serial(&g, 3));
    }

    #[test]
    fn matches_serial_on_random_graphs() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(21);
        for trial in 0..12 {
            let n = 100 + trial * 53;
            let edges: Vec<(u32, u32)> = (0..n * 2)
                .map(|_| (rng.next_index(n) as u32, rng.next_index(n) as u32))
                .collect();
            let g = build_from_edges(n, edges);
            let s = rng.next_index(n) as u32;
            let (r, _) = bfs_direction_opt(&g, s);
            assert_eq!(r, bfs_serial(&g, s), "trial {trial}");
        }
    }

    #[test]
    fn dense_graph_uses_bottom_up_and_saves_work() {
        // kron-like low-diameter graph: direction optimization must engage
        // and γ must be < 1 (Table 1: n/m ≤ γ ≤ 1).
        let g = pref_attach(20_000, 16, 1);
        let (_, stats) = bfs_direction_opt(&g, 0);
        assert!(stats.bottom_up_steps > 0, "expected a bottom-up switch");
        let gamma = stats.gamma(g.num_arcs());
        assert!(
            gamma < 0.6,
            "γ = {gamma:.3}; direction optimization saved no work"
        );
    }

    #[test]
    fn chain_never_switches_to_bottom_up() {
        // High-diameter, tiny frontier: the α test never trips (the
        // road_usa case of Table 3).
        let g = chain(5000);
        let (_, stats) = bfs_direction_opt(&g, 0);
        assert_eq!(stats.bottom_up_steps, 0);
        // 4999 productive expansions plus the final empty one.
        assert_eq!(stats.top_down_steps, 5000);
    }

    #[test]
    fn alpha_zero_is_pure_top_down() {
        let g = pref_attach(2000, 8, 3);
        let (r, stats) = bfs_direction_opt_params(&g, 0, 0, BETA);
        assert_eq!(stats.bottom_up_steps, 0);
        assert_eq!(r, bfs_serial(&g, 0));
        // Pure top-down scans every arc of the connected graph exactly once.
        assert_eq!(stats.top_down_edges, g.num_arcs());
    }

    #[test]
    fn disconnected_reaches_component_only() {
        let g = build_from_edges(10, vec![(0, 1), (1, 2), (5, 6)]);
        let (r, _) = bfs_direction_opt(&g, 5);
        assert_eq!(r.reached, 2);
        assert_eq!(r.dist[6], 1);
        assert_eq!(r.dist[0], UNREACHED);
    }

    #[test]
    fn f64_output_matches() {
        let g = grid2d(6, 6);
        let mut col = vec![0.0; 36];
        let (reached, _) = bfs_direction_opt_into_f64(&g, 0, &mut col);
        assert_eq!(reached, 36);
        let serial = bfs_serial(&g, 0);
        for (c, d) in col.iter().zip(&serial.dist) {
            assert_eq!(*c, *d as f64);
        }
    }
}
