//! Frontier containers shared by the parallel BFS variants.
//!
//! Two representations, as in the GAP implementation: a *queue* (dense list
//! of frontier vertices, natural for top-down) and a *bitmap* (one bit per
//! vertex, natural for bottom-up, where membership tests dominate). The
//! direction-optimizing driver converts between them when it switches
//! direction.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of `u64` lane words needed to hold `lanes` one-bit BFS lanes
/// (`⌈lanes/64⌉`). The batched multi-source kernel allocates
/// `n × lane_words(s)` words per bit-vector.
#[inline]
pub fn lane_words(lanes: usize) -> usize {
    lanes.div_ceil(64)
}

/// Splits a lane index into its `(word, bit mask)` coordinates within a
/// per-vertex row of lane words.
#[inline]
pub fn lane_coords(lane: usize) -> (usize, u64) {
    (lane / 64, 1u64 << (lane % 64))
}

/// Calls `f(lane)` for every set bit of `word`, where `word` is the
/// `word_index`-th lane word of a row (so bit `b` is lane
/// `word_index * 64 + b`). Iterates set bits only, ascending.
#[inline]
pub fn for_each_lane(word: u64, word_index: usize, mut f: impl FnMut(usize)) {
    let mut bits = word;
    while bits != 0 {
        let b = bits.trailing_zeros() as usize;
        f(word_index * 64 + b);
        bits &= bits - 1;
    }
}

/// A fixed-capacity concurrent bitmap over vertex ids.
///
/// `set` uses a relaxed `fetch_or`; readers use relaxed loads. BFS level
/// synchronization provides the necessary happens-before edges (each level
/// ends with a rayon join, which synchronizes all workers), so relaxed
/// per-bit operations are sufficient — the same reasoning GAP's C++ code
/// uses with its unsynchronized bitmap plus barrier.
#[derive(Debug)]
pub struct AtomicBitmap {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitmap {
    /// Creates an all-zero bitmap over `len` ids.
    pub fn new(len: usize) -> Self {
        let words = (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        Self { words, len }
    }

    /// Number of ids covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap covers zero ids.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i` (idempotent, thread-safe).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn set(&self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64].fetch_or(1 << (i % 64), Ordering::Relaxed);
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64].load(Ordering::Relaxed) & (1 << (i % 64)) != 0
    }

    /// Clears all bits (single-threaded use between levels).
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w.get_mut() = 0;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Collects set bit indices ascending (bitmap → queue conversion).
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (wi, w) in self.words.iter().enumerate() {
            let mut bits = w.load(Ordering::Relaxed);
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push((wi * 64 + b) as u32);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Builds a bitmap with the given bits set (queue → bitmap conversion).
    pub fn from_ids(len: usize, ids: &[u32]) -> Self {
        let bm = Self::new(len);
        for &i in ids {
            bm.set(i as usize);
        }
        bm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn set_get_roundtrip() {
        let bm = AtomicBitmap::new(130);
        bm.set(0);
        bm.set(63);
        bm.set(64);
        bm.set(129);
        assert!(bm.get(0) && bm.get(63) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1) && !bm.get(65) && !bm.get(128));
        assert_eq!(bm.count_ones(), 4);
    }

    #[test]
    fn to_vec_is_sorted_and_complete() {
        let bm = AtomicBitmap::from_ids(200, &[150, 3, 64, 3, 199]);
        assert_eq!(bm.to_vec(), vec![3, 64, 150, 199]);
    }

    #[test]
    fn clear_resets() {
        let mut bm = AtomicBitmap::from_ids(100, &[1, 2, 3]);
        bm.clear();
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn concurrent_sets_are_all_visible() {
        let bm = AtomicBitmap::new(10_000);
        (0..10_000usize).into_par_iter().for_each(|i| {
            if i % 3 == 0 {
                bm.set(i);
            }
        });
        assert_eq!(bm.count_ones(), 10_000 / 3 + 1);
        assert!(bm.get(9999));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        AtomicBitmap::new(10).set(10);
    }

    #[test]
    fn empty_bitmap() {
        let bm = AtomicBitmap::new(0);
        assert!(bm.is_empty());
        assert_eq!(bm.to_vec(), Vec::<u32>::new());
    }

    #[test]
    fn lane_words_rounds_up() {
        assert_eq!(lane_words(0), 0);
        assert_eq!(lane_words(1), 1);
        assert_eq!(lane_words(63), 1);
        assert_eq!(lane_words(64), 1);
        assert_eq!(lane_words(65), 2);
        assert_eq!(lane_words(128), 2);
        assert_eq!(lane_words(129), 3);
    }

    #[test]
    fn lane_coords_roundtrip() {
        for lane in [0usize, 1, 63, 64, 65, 127, 128, 200] {
            let (w, mask) = lane_coords(lane);
            assert_eq!(w * 64 + mask.trailing_zeros() as usize, lane);
            assert_eq!(mask.count_ones(), 1);
        }
    }

    #[test]
    fn for_each_lane_visits_set_bits_ascending() {
        let word = (1u64 << 3) | (1 << 40) | (1 << 63);
        let mut seen = Vec::new();
        for_each_lane(word, 2, |lane| seen.push(lane));
        assert_eq!(seen, vec![128 + 3, 128 + 40, 128 + 63]);
        for_each_lane(0, 5, |_| panic!("no bits set"));
    }
}
