//! Parallel breadth-first search for the ParHDE reproduction.
//!
//! The BFS phase dominates ParHDE's running time on most inputs (Figure 3),
//! and the paper's speedup over prior work comes largely from swapping a
//! sequential BFS for the **direction-optimizing** BFS of Beamer et al. as
//! implemented in the GAP Benchmark Suite (§3.1). This crate reproduces that
//! design in safe Rust:
//!
//! * [`serial`] — the textbook sequential queue BFS (the prior-work
//!   baseline and the per-source kernel of the random-pivot strategy);
//! * [`top_down`] — level-synchronous parallel expansion of the frontier,
//!   claiming vertices with compare-and-swap;
//! * [`bottom_up`] — unvisited vertices scan their own adjacency for a
//!   frontier parent, writing distances without atomics (each distance cell
//!   is written only by its owning vertex's iteration — the "atomic-free"
//!   distance update of §3.1);
//! * [`direction_opt`] — the α/β heuristic driver that switches between the
//!   two, plus traversal statistics (edge-scan counts) that expose the
//!   work-reduction factor γ of Table 1;
//! * [`multi`] — concurrently running independent BFSes (one sequential BFS
//!   per thread), the original random-pivot execution mode of Table 6;
//! * [`batch`] — bit-parallel batched multi-source BFS: up to 64 sources
//!   per `u64` lane word advance through one shared graph sweep (MS-BFS),
//!   so edge data is streamed once per level instead of once per source;
//! * [`frontier`] — the shared frontier containers (chunked queue, atomic
//!   bitmap, lane-word helpers).
//!
//! Callers producing a distance matrix should not pick among [`serial`],
//! [`multi`] and [`batch`] by hand: the `parhde` crate's BFS-phase planner
//! (`parhde::bfs_phase::plan_bfs_phase`) selects the mode from `n`, `m`,
//! `s` and the thread count, and is the advertised entry point.
//!
//! Distances are `u32`; unreached vertices get [`UNREACHED`].
//!
//! # Example
//!
//! ```
//! use parhde_bfs::direction_opt::bfs_direction_opt;
//! use parhde_graph::gen::grid2d;
//!
//! let g = grid2d(10, 10);
//! let (result, stats) = bfs_direction_opt(&g, 0);
//! assert_eq!(result.dist[99], 18);       // corner-to-corner Manhattan hops
//! assert_eq!(result.reached, 100);
//! assert!(stats.total_edges() > 0);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod bottom_up;
pub mod direction_opt;
pub mod frontier;
pub mod multi;
pub mod parents;
pub mod serial;
pub mod top_down;

/// Distance value for vertices not reached by the traversal.
pub const UNREACHED: u32 = u32::MAX;

/// The result of a (single-source) BFS.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsResult {
    /// `dist[v]` is the hop distance from the source, or [`UNREACHED`].
    pub dist: Vec<u32>,
    /// Number of vertices reached (including the source).
    pub reached: usize,
    /// Number of levels processed (eccentricity of the source + 1).
    pub levels: usize,
}

impl BfsResult {
    /// The farthest distance reached (0 for a lone source).
    pub fn eccentricity(&self) -> u32 {
        self.levels.saturating_sub(1) as u32
    }
}

/// Statistics from a direction-optimizing run, used to validate the
/// γ work-reduction claim of Table 1 and the Figure 5 BFS-phase split.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Level-steps executed in the top-down direction.
    pub top_down_steps: usize,
    /// Level-steps executed in the bottom-up direction.
    pub bottom_up_steps: usize,
    /// Directed edges examined by top-down steps.
    pub top_down_edges: usize,
    /// Directed edges examined by bottom-up steps (including early exits).
    pub bottom_up_edges: usize,
}

impl TraversalStats {
    /// Total directed edges examined.
    pub fn total_edges(&self) -> usize {
        self.top_down_edges + self.bottom_up_edges
    }

    /// The effective work fraction γ relative to a plain top-down traversal
    /// that examines every directed edge once (`2m` scans). Table 1 bounds
    /// this as `n/m ≤ γ ≤ 1` for direction-optimizing BFS.
    pub fn gamma(&self, num_arcs: usize) -> f64 {
        if num_arcs == 0 {
            return 0.0;
        }
        self.total_edges() as f64 / num_arcs as f64
    }
}
