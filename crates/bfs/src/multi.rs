//! Concurrent multi-source BFS — the random-pivot execution mode.
//!
//! Table 6 of the paper compares two ways to produce the `s` distance
//! vectors: the default strategy (k-centers pivots, each BFS internally
//! parallel, BFSes strictly sequential because the next pivot depends on
//! previous distances) and the *random pivots* strategy, where pivots are
//! chosen up front "uniformly at random without repetition, and threads
//! concurrently perform multiple BFSes". This module implements the latter:
//! each source is traversed by an independent **sequential** BFS and rayon
//! schedules the sources across threads. It wins for small graphs and when
//! `s` exceeds the thread count, because it has no per-level synchronization
//! overhead.
//!
//! # When this mode loses
//!
//! Parallelism here is *only* across sources, so whenever
//! `sources.len() < threads` the surplus cores sit idle for the whole
//! phase — each BFS is sequential and cannot be subdivided. And even at
//! full occupancy every traversal streams the entire CSR independently, so
//! the edge array is pulled through the cache hierarchy `s` times where the
//! batched kernel ([`crate::batch`]) streams it once per level. Callers
//! should not select this function directly: the `parhde` crate's BFS-phase
//! planner (`parhde::bfs_phase::plan_bfs_phase`) is the advertised entry
//! point and picks per-source execution only in the regimes where it
//! actually wins (tiny graphs; high-diameter graphs with `s ≥ threads`).

use crate::serial::bfs_serial;
use crate::{BfsResult, UNREACHED};
use parhde_graph::store::GraphStore;
use rayon::prelude::*;

/// Runs one independent sequential BFS per source, concurrently.
///
/// Results are in source order.
///
/// # Panics
/// Panics if any source is out of range.
pub fn bfs_multi_source<G: GraphStore>(g: &G, sources: &[u32]) -> Vec<BfsResult> {
    sources.par_iter().map(|&s| bfs_serial(g, s)).collect()
}

/// Concurrent multi-source BFS writing each distance vector into the
/// corresponding column slice of a column-major matrix buffer.
///
/// `columns` must contain exactly `sources.len()` disjoint column slices of
/// length `n` (as produced by `chunks_mut` on a column-major allocation).
/// Unreached vertices get `f64::INFINITY`. Returns reached counts.
///
/// # Panics
/// Panics on length mismatches or out-of-range sources.
pub fn bfs_multi_source_into_f64<G: GraphStore>(
    g: &G,
    sources: &[u32],
    columns: &mut [&mut [f64]],
) -> Vec<usize> {
    assert_eq!(
        sources.len(),
        columns.len(),
        "one output column required per source"
    );
    let n = g.num_vertices();
    let _span = parhde_trace::span!("bfs.multi_source");
    sources
        .par_iter()
        .zip(columns.par_iter_mut())
        .map(|(&s, col)| {
            let _src = parhde_trace::span!("bfs.source");
            assert_eq!(col.len(), n, "column length mismatch");
            // Cooperative cancellation point (once per source, on top of
            // the per-level check inside `bfs_serial`): sources not yet
            // started are skipped wholesale, their columns set INFINITY.
            if parhde_util::supervisor::should_stop() {
                col.fill(f64::INFINITY);
                return 0;
            }
            let r = bfs_serial(g, s);
            if parhde_trace::enabled() {
                // Undirected CSR: every arc of the reached component is
                // examined exactly once by a sequential BFS.
                parhde_trace::counter!("bfs.top_down_edges", {
                    let mut arcs = 0u64;
                    for (v, &d) in r.dist.iter().enumerate() {
                        if d != UNREACHED {
                            arcs += g.degree(v as u32) as u64;
                        }
                    }
                    arcs
                });
            }
            for (o, &d) in col.iter_mut().zip(&r.dist) {
                *o = if d == UNREACHED { f64::INFINITY } else { d as f64 };
            }
            r.reached
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parhde_graph::gen::{chain, grid2d};

    #[test]
    fn multi_matches_individual_runs() {
        let g = grid2d(10, 10);
        let sources = [0u32, 37, 99];
        let rs = bfs_multi_source(&g, &sources);
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(rs[i], bfs_serial(&g, s));
        }
    }

    #[test]
    fn multi_into_columns() {
        let g = chain(8);
        let n = g.num_vertices();
        let mut buf = vec![0.0f64; n * 2];
        let mut cols: Vec<&mut [f64]> = buf.chunks_mut(n).collect();
        let reached = bfs_multi_source_into_f64(&g, &[0, 7], &mut cols);
        assert_eq!(reached, vec![8, 8]);
        assert_eq!(&buf[..n], &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(&buf[n..], &[7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn empty_sources_is_empty() {
        let g = chain(4);
        assert!(bfs_multi_source(&g, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "one output column required")]
    fn column_count_mismatch_panics() {
        let g = chain(4);
        let mut buf = [0.0f64; 4];
        let mut cols: Vec<&mut [f64]> = buf.chunks_mut(4).collect();
        bfs_multi_source_into_f64(&g, &[0, 1], &mut cols);
    }
}
