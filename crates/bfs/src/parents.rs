//! BFS with parent tracking (the GAP output shape).
//!
//! "While the GAP BFS maintains a BFS tree by storing parents of reachable
//! vertices, we further need distances from the source vertex" (§3.1).
//! ParHDE itself only needs distances, but the BFS-tree form is what
//! downstream graph applications (connectivity certificates, path
//! reconstruction, the partition example's region growth) consume, so the
//! substrate provides it too: a direction-optimizing traversal that records
//! both parent and distance per vertex.

use crate::bottom_up::bottom_up_step;
use crate::direction_opt::{ALPHA, BETA};
use crate::frontier::AtomicBitmap;
use crate::{BfsResult, UNREACHED};
use parhde_graph::CsrGraph;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// A BFS tree: distances plus parent pointers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsTree {
    /// Hop distances ([`UNREACHED`] when unreachable).
    pub dist: Vec<u32>,
    /// `parent[v]` for reached `v` (the source is its own parent);
    /// [`UNREACHED`] otherwise.
    pub parent: Vec<u32>,
    /// Number of reached vertices.
    pub reached: usize,
}

impl BfsTree {
    /// Reconstructs the root-to-`v` path (inclusive), or `None` if `v` is
    /// unreached.
    pub fn path_to(&self, v: u32) -> Option<Vec<u32>> {
        if self.dist[v as usize] == UNREACHED {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while self.parent[cur as usize] != cur {
            cur = self.parent[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// The distance-only view.
    pub fn to_result(&self) -> BfsResult {
        let levels = self
            .dist
            .iter()
            .copied()
            .filter(|&d| d != UNREACHED)
            .max()
            .map(|d| d as usize + 1)
            .unwrap_or(0);
        BfsResult { dist: self.dist.clone(), reached: self.reached, levels }
    }
}

/// Direction-optimizing BFS that also records parent pointers.
///
/// Top-down steps claim the *parent* cell by CAS (exactly GAP's scheme) and
/// then write the distance without contention; bottom-up steps write both
/// from the owning task.
///
/// # Panics
/// Panics if `source` is out of range.
pub fn bfs_tree(g: &CsrGraph, source: u32) -> BfsTree {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source {source} out of range");
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    parent[source as usize].store(source, Ordering::Relaxed);
    dist[source as usize].store(0, Ordering::Relaxed);

    let mut frontier = vec![source];
    let mut frontier_len = 1usize;
    let mut reached = 1usize;
    let mut level = 0u32;
    let mut bottom_up = false;
    let mut current_bm: Option<AtomicBitmap> = None;
    let mut edges_to_check = g.num_arcs().saturating_sub(g.degree(source));
    let mut scout = g.degree(source);

    while frontier_len > 0 {
        level += 1;
        if !bottom_up && scout > edges_to_check / ALPHA && frontier_len > 1 {
            current_bm = Some(AtomicBitmap::from_ids(n, &frontier));
            bottom_up = true;
        }
        if bottom_up {
            let cur = current_bm.take().expect("bitmap in bottom-up mode");
            let next = AtomicBitmap::new(n);
            // Reuse the distance-only step, then fill parents for the newly
            // awakened level (each new vertex scans for any neighbor one
            // level up — deterministic: the smallest-id parent is chosen).
            let (awakened, _) = bottom_up_step(g, &cur, &next, &dist, level);
            let ids = next.to_vec();
            ids.par_iter().for_each(|&v| {
                for &u in g.neighbors(v) {
                    if dist[u as usize].load(Ordering::Relaxed) == level - 1 {
                        parent[v as usize].store(u, Ordering::Relaxed);
                        break;
                    }
                }
            });
            reached += awakened;
            frontier_len = awakened;
            if frontier_len == 0 {
                break;
            }
            if frontier_len < n / BETA {
                frontier = ids;
                scout = frontier.iter().map(|&v| g.degree(v)).sum();
                edges_to_check = edges_to_check.saturating_sub(scout);
                bottom_up = false;
            } else {
                current_bm = Some(next);
            }
        } else {
            let next: Vec<Vec<u32>> = frontier
                .par_chunks(256)
                .map(|chunk| {
                    let mut local = Vec::new();
                    for &v in chunk {
                        for &u in g.neighbors(v) {
                            if parent[u as usize].load(Ordering::Relaxed) == UNREACHED
                                && parent[u as usize]
                                    .compare_exchange(
                                        UNREACHED,
                                        v,
                                        Ordering::Relaxed,
                                        Ordering::Relaxed,
                                    )
                                    .is_ok()
                            {
                                // Winner of the parent CAS owns the distance
                                // cell: plain (relaxed) store, as in §3.1.
                                dist[u as usize].store(level, Ordering::Relaxed);
                                local.push(u);
                            }
                        }
                    }
                    local
                })
                .collect();
            let mut flat = Vec::new();
            for l in next {
                flat.extend_from_slice(&l);
            }
            reached += flat.len();
            frontier_len = flat.len();
            if frontier_len == 0 {
                break;
            }
            scout = flat.iter().map(|&v| g.degree(v)).sum();
            edges_to_check = edges_to_check.saturating_sub(scout);
            frontier = flat;
        }
    }

    BfsTree {
        dist: dist.into_iter().map(AtomicU32::into_inner).collect(),
        parent: parent.into_iter().map(AtomicU32::into_inner).collect(),
        reached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::bfs_serial;
    use parhde_graph::builder::build_from_edges;
    use parhde_graph::gen::{chain, grid2d, pref_attach};

    fn check_tree(g: &CsrGraph, source: u32, t: &BfsTree) {
        let reference = bfs_serial(g, source);
        assert_eq!(t.dist, reference.dist, "distances disagree with serial");
        assert_eq!(t.reached, reference.reached);
        // Parent invariants: the source is its own parent; every other
        // reached vertex has a parent one level closer and adjacent.
        assert_eq!(t.parent[source as usize], source);
        for v in 0..g.num_vertices() as u32 {
            let d = t.dist[v as usize];
            if d == UNREACHED {
                assert_eq!(t.parent[v as usize], UNREACHED);
            } else if v != source {
                let p = t.parent[v as usize];
                assert!(g.has_edge(p, v), "parent {p} of {v} not adjacent");
                assert_eq!(t.dist[p as usize], d - 1, "parent level of {v}");
            }
        }
    }

    #[test]
    fn tree_on_chain() {
        let g = chain(40);
        let t = bfs_tree(&g, 5);
        check_tree(&g, 5, &t);
        assert_eq!(t.path_to(0).unwrap(), vec![5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn tree_on_grid() {
        let g = grid2d(12, 17);
        let t = bfs_tree(&g, 100);
        check_tree(&g, 100, &t);
        // Path lengths equal distances.
        for v in [0u32, 50, 203] {
            let p = t.path_to(v).unwrap();
            assert_eq!(p.len() as u32 - 1, t.dist[v as usize]);
        }
    }

    #[test]
    fn tree_on_skewed_graph_with_bottom_up() {
        let g = pref_attach(20_000, 16, 3);
        let t = bfs_tree(&g, 0);
        check_tree(&g, 0, &t);
    }

    #[test]
    fn unreached_vertices_have_no_path() {
        let g = build_from_edges(4, vec![(0, 1)]);
        let t = bfs_tree(&g, 0);
        assert!(t.path_to(3).is_none());
        assert_eq!(t.to_result().reached, 2);
    }

    #[test]
    fn to_result_matches_direct_bfs() {
        let g = grid2d(9, 9);
        let t = bfs_tree(&g, 0);
        assert_eq!(t.to_result(), bfs_serial(&g, 0));
    }
}
