//! Sequential queue-based BFS.
//!
//! This is both the correctness oracle for the parallel variants and the
//! building block of two measured configurations: the prior-work baseline
//! of Table 3 ("does not use parallel BFS") and the random-pivot strategy of
//! Table 6 (many *sequential* BFSes run concurrently).

use crate::{BfsResult, UNREACHED};
use parhde_graph::store::{GraphStore, NeighborScratch};

/// Runs a sequential BFS from `source`, returning hop distances.
///
/// Generic over [`GraphStore`]: the traversal streams adjacency through a
/// single reused decode scratch, so compressed (and mmap-backed) graphs
/// run without materializing their adjacency.
///
/// # Panics
/// Panics if `source` is out of range.
pub fn bfs_serial<G: GraphStore>(g: &G, source: u32) -> BfsResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source {source} out of range");
    let mut dist = vec![UNREACHED; n];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut next = Vec::new();
    let mut scratch = NeighborScratch::new();
    let mut reached = 1usize;
    let mut levels = 1usize;
    let mut level = 0u32;
    while !frontier.is_empty() {
        // Cooperative cancellation point (once per level): many sequential
        // BFSes run concurrently under the multi-source scheduler, so
        // per-level polling keeps even single long traversals responsive
        // to a tripped run budget.
        if parhde_util::supervisor::should_stop() {
            break;
        }
        level += 1;
        for &v in &frontier {
            for &u in g.neighbors_in(v, &mut scratch) {
                if dist[u as usize] == UNREACHED {
                    dist[u as usize] = level;
                    next.push(u);
                }
            }
        }
        reached += next.len();
        if next.is_empty() {
            break;
        }
        levels += 1;
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    BfsResult { dist, reached, levels }
}

/// Sequential BFS that writes distances into a caller-provided `f64` column
/// (the layout matrix `B` stores distance vectors as `f64` columns; writing
/// directly avoids an extra `u32` buffer per source in the prior-work
/// baseline). Unreached vertices get `f64::INFINITY`. Returns the number of
/// vertices reached.
pub fn bfs_serial_into_f64<G: GraphStore>(g: &G, source: u32, out: &mut [f64]) -> usize {
    let r = bfs_serial(g, source);
    assert_eq!(out.len(), r.dist.len(), "output column length mismatch");
    for (o, &d) in out.iter_mut().zip(&r.dist) {
        *o = if d == UNREACHED { f64::INFINITY } else { d as f64 };
    }
    r.reached
}

#[cfg(test)]
mod tests {
    use super::*;
    use parhde_graph::builder::build_from_edges;
    use parhde_graph::gen::{binary_tree, chain, complete, star};

    #[test]
    fn chain_distances() {
        let g = chain(5);
        let r = bfs_serial(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.reached, 5);
        assert_eq!(r.levels, 5);
        assert_eq!(r.eccentricity(), 4);
    }

    #[test]
    fn chain_from_middle() {
        let g = chain(5);
        let r = bfs_serial(&g, 2);
        assert_eq!(r.dist, vec![2, 1, 0, 1, 2]);
        assert_eq!(r.eccentricity(), 2);
    }

    #[test]
    fn star_is_one_hop() {
        let r = bfs_serial(&star(10), 0);
        assert_eq!(r.dist[0], 0);
        assert!((1..10).all(|v| r.dist[v] == 1));
        assert_eq!(r.levels, 2);
    }

    #[test]
    fn complete_is_one_hop_from_anywhere() {
        let r = bfs_serial(&complete(8), 5);
        assert_eq!(r.reached, 8);
        assert_eq!(r.eccentricity(), 1);
    }

    #[test]
    fn binary_tree_depths() {
        let r = bfs_serial(&binary_tree(15), 0);
        assert_eq!(r.dist[0], 0);
        assert_eq!(r.dist[1], 1);
        assert_eq!(r.dist[6], 2);
        assert_eq!(r.dist[14], 3);
    }

    #[test]
    fn disconnected_marks_unreached() {
        let g = build_from_edges(4, vec![(0, 1)]);
        let r = bfs_serial(&g, 0);
        assert_eq!(r.dist[2], UNREACHED);
        assert_eq!(r.dist[3], UNREACHED);
        assert_eq!(r.reached, 2);
    }

    #[test]
    fn isolated_source() {
        let g = build_from_edges(3, vec![(1, 2)]);
        let r = bfs_serial(&g, 0);
        assert_eq!(r.reached, 1);
        assert_eq!(r.levels, 1);
        assert_eq!(r.eccentricity(), 0);
    }

    #[test]
    fn f64_column_conversion() {
        let g = build_from_edges(4, vec![(0, 1), (1, 2)]);
        let mut col = vec![0.0; 4];
        let reached = bfs_serial_into_f64(&g, 0, &mut col);
        assert_eq!(reached, 3);
        assert_eq!(col, vec![0.0, 1.0, 2.0, f64::INFINITY]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        bfs_serial(&chain(3), 3);
    }
}
