//! Parallel top-down BFS expansion.
//!
//! Each level, workers partition the frontier and attempt to claim every
//! unvisited neighbor with a compare-and-swap on its distance cell — the
//! same single-CAS-per-vertex scheme GAP uses for parent claiming (§3.1:
//! "GAP already uses the compare-and-swap atomic primitive ... we do not
//! introduce additional overhead"); the reproduction claims the *distance*
//! cell directly, which subsumes the parent CAS. Winners enqueue the vertex
//! into a thread-local buffer; buffers concatenate into the next frontier.

use crate::{BfsResult, UNREACHED};
use parhde_graph::store::{GraphStore, NeighborScratch};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Grain size for frontier chunking: large enough to amortize rayon task
/// overhead, small enough to balance skewed-degree frontiers.
const FRONTIER_CHUNK: usize = 256;

/// Runs one top-down level step.
///
/// Claims each newly discovered vertex by CAS-ing its `dist` cell from
/// [`UNREACHED`] to `level`. Returns `(next_frontier, edges_scanned)`.
pub fn top_down_step<G: GraphStore>(
    g: &G,
    frontier: &[u32],
    dist: &[AtomicU32],
    level: u32,
) -> (Vec<u32>, usize) {
    let chunks: Vec<(Vec<u32>, usize)> = frontier
        .par_chunks(FRONTIER_CHUNK)
        .map(|chunk| {
            let mut local = Vec::new();
            let mut scanned = 0usize;
            // One decode scratch per chunk: compressed stores reuse its
            // allocation across the whole chunk (plain CSR ignores it).
            let mut scratch = NeighborScratch::new();
            for &v in chunk {
                let nb = g.neighbors_in(v, &mut scratch);
                scanned += nb.len();
                for &u in nb {
                    if dist[u as usize].load(Ordering::Relaxed) == UNREACHED
                        && dist[u as usize]
                            .compare_exchange(
                                UNREACHED,
                                level,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                    {
                        local.push(u);
                    }
                }
            }
            (local, scanned)
        })
        .collect();
    let mut next = Vec::with_capacity(chunks.iter().map(|(c, _)| c.len()).sum());
    let mut edges = 0usize;
    for (c, s) in chunks {
        next.extend_from_slice(&c);
        edges += s;
    }
    (next, edges)
}

/// Full top-down-only parallel BFS (the non-direction-optimized ablation).
///
/// # Panics
/// Panics if `source` is out of range.
pub fn bfs_top_down<G: GraphStore>(g: &G, source: u32) -> BfsResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source {source} out of range");
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    dist[source as usize].store(0, Ordering::Relaxed);
    let mut frontier = vec![source];
    let mut reached = 1usize;
    let mut levels = 1usize;
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        let (next, _) = top_down_step(g, &frontier, &dist, level);
        reached += next.len();
        if next.is_empty() {
            break;
        }
        levels += 1;
        frontier = next;
    }
    let dist = dist.into_iter().map(AtomicU32::into_inner).collect();
    BfsResult { dist, reached, levels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::bfs_serial;
    use parhde_graph::gen::{binary_tree, chain, grid2d};
    use parhde_graph::builder::build_from_edges;
    use parhde_util::Xoshiro256StarStar;

    #[test]
    fn matches_serial_on_chain() {
        let g = chain(64);
        assert_eq!(bfs_top_down(&g, 0), bfs_serial(&g, 0));
    }

    #[test]
    fn matches_serial_on_grid() {
        let g = grid2d(20, 30);
        for s in [0u32, 300, 599] {
            assert_eq!(bfs_top_down(&g, s), bfs_serial(&g, s));
        }
    }

    #[test]
    fn matches_serial_on_tree() {
        let g = binary_tree(127);
        assert_eq!(bfs_top_down(&g, 0), bfs_serial(&g, 0));
    }

    #[test]
    fn matches_serial_on_random_graphs() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        for trial in 0..10 {
            let n = 200 + trial * 37;
            let edges: Vec<(u32, u32)> = (0..n * 3)
                .map(|_| (rng.next_index(n) as u32, rng.next_index(n) as u32))
                .collect();
            let g = build_from_edges(n, edges);
            let s = rng.next_index(n) as u32;
            assert_eq!(bfs_top_down(&g, s), bfs_serial(&g, s), "trial {trial}");
        }
    }

    #[test]
    fn step_counts_scanned_edges() {
        let g = chain(5);
        let dist: Vec<AtomicU32> = (0..5).map(|_| AtomicU32::new(UNREACHED)).collect();
        dist[0].store(0, Ordering::Relaxed);
        let (next, scanned) = top_down_step(&g, &[0], &dist, 1);
        assert_eq!(next, vec![1]);
        assert_eq!(scanned, 1); // degree of vertex 0
    }
}
