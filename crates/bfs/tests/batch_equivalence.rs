//! Equivalence suite for the batched multi-source BFS kernel: on **every**
//! generator in `parhde_graph::gen` — connected families and disconnected
//! poison inputs alike — the distance columns written by
//! `bfs_batched_into_f64` must be bit-identical to a per-source
//! `bfs_serial` reference (with `f64::INFINITY` for unreached vertices).
//!
//! Distances are small integers, exactly representable in `f64`, so
//! "bit-identical" is the right bar — any deviation is a traversal bug,
//! not roundoff. A deterministic randomized sweep drives batch widths 1,
//! 63, 64 and 65 (the lane-word boundaries) over random source multisets;
//! the proptest twin over arbitrary messy graphs lives in the workspace
//! property suite (`tests/tests/props.rs`).

use parhde_bfs::batch::bfs_batched_into_f64;
use parhde_bfs::serial::bfs_serial;
use parhde_bfs::UNREACHED;
use parhde_graph::gen::{
    barth5_like, binary_tree, chain, complete, cycle, geometric, grid2d, kron,
    mesh_with_holes, poison, pref_attach, star, urand, web_locality,
};
use parhde_graph::CsrGraph;
use parhde_util::Xoshiro256StarStar;

/// Serial-reference distance column for one source, in the f64-with-∞
/// convention of the `*_into_f64` kernels.
fn reference_column(g: &CsrGraph, source: u32) -> Vec<f64> {
    bfs_serial(g, source)
        .dist
        .iter()
        .map(|&d| if d == UNREACHED { f64::INFINITY } else { d as f64 })
        .collect()
}

/// Asserts the batched kernel matches the serial reference bit-for-bit for
/// the given sources. Columns are primed with a poison pattern so stale
/// values cannot masquerade as correct output.
fn assert_batch_matches_serial(g: &CsrGraph, sources: &[u32], label: &str) {
    let n = g.num_vertices();
    let mut buf = vec![-7.25f64; n.max(1) * sources.len()];
    let mut cols: Vec<&mut [f64]> = buf.chunks_mut(n.max(1)).collect();
    if n == 0 {
        assert!(sources.is_empty(), "no valid sources exist for an empty graph");
        return;
    }
    let stats = bfs_batched_into_f64(g, sources, &mut cols);
    assert_eq!(stats.lanes, sources.len(), "{label}: lane count");
    assert_eq!(stats.words, sources.len().div_ceil(64), "{label}: word count");
    for (i, &src) in sources.iter().enumerate() {
        let got = &buf[i * n..i * n + n];
        let want = reference_column(g, src);
        // Bitwise comparison: f64::to_bits equality, not approximate.
        for v in 0..n {
            assert_eq!(
                got[v].to_bits(),
                want[v].to_bits(),
                "{label}: source {src} (lane {i}), vertex {v}: \
                 batched {} vs serial {}",
                got[v],
                want[v]
            );
        }
        let reached_ref = want.iter().filter(|d| d.is_finite()).count();
        assert_eq!(stats.reached[i], reached_ref, "{label}: reached count");
    }
}

/// A deterministic source multiset of the given width (duplicates allowed —
/// every lane must still be independent).
fn random_sources(n: usize, width: usize, rng: &mut Xoshiro256StarStar) -> Vec<u32> {
    (0..width).map(|_| rng.next_index(n) as u32).collect()
}

/// Every generator family at small-but-nontrivial sizes, including the
/// disconnected poison inputs.
fn generator_zoo() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("chain", chain(257)),
        ("cycle", cycle(100)),
        ("star", star(65)),
        ("complete", complete(40)),
        ("binary_tree", binary_tree(127)),
        ("grid2d", grid2d(17, 23)),
        ("geometric", geometric(400, 6.0, 42)),
        ("kron", kron(8, 8, 1)),
        ("mesh_with_holes", mesh_with_holes(20, 20, &[])),
        ("barth5_like", barth5_like()),
        ("pref_attach", pref_attach(300, 3, 5)),
        ("urand", urand(350, 8, 9)),
        ("web_locality", web_locality(300, 6, 13)),
        ("poison.singleton", poison::singleton()),
        ("poison.isolated", poison::isolated(90)),
        ("poison.two_paths", poison::two_paths(40, 25)),
        ("poison.grid_with_stragglers", poison::grid_with_stragglers(9, 7)),
        ("poison.many_cycles", poison::many_cycles(6, 11)),
    ]
}

#[test]
fn batched_matches_serial_on_every_generator() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xba7c4);
    for (label, g) in generator_zoo() {
        let n = g.num_vertices();
        let width = 12.min(n);
        let sources = random_sources(n, width, &mut rng);
        assert_batch_matches_serial(&g, &sources, label);
    }
}

#[test]
fn batched_matches_serial_at_word_boundary_widths() {
    // Widths 1, 63, 64 straddle the single-word fast path; 65 forces the
    // multi-word path with a nearly empty second word.
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x5eed);
    let graphs = [
        ("kron", kron(8, 10, 3)),
        ("grid2d", grid2d(16, 16)),
        ("poison.two_paths", poison::two_paths(70, 70)),
    ];
    for (label, g) in &graphs {
        let n = g.num_vertices();
        for width in [1usize, 63, 64, 65] {
            let sources = random_sources(n, width, &mut rng);
            let label = format!("{label}/width={width}");
            assert_batch_matches_serial(g, &sources, &label);
        }
    }
}

#[test]
fn disconnected_lanes_are_infinity_not_garbage() {
    // Two components: sources in component A must see ∞ for all of B, and
    // vice versa, in the same batch.
    let g = poison::two_paths(30, 20);
    let sources = [0u32, 29, 30, 49];
    let n = g.num_vertices();
    let mut buf = vec![0.0f64; n * sources.len()];
    let mut cols: Vec<&mut [f64]> = buf.chunks_mut(n).collect();
    let stats = bfs_batched_into_f64(&g, &sources, &mut cols);
    assert_eq!(stats.reached, vec![30, 30, 20, 20]);
    for (i, &src) in sources.iter().enumerate() {
        let col = &buf[i * n..(i + 1) * n];
        let in_a = (src as usize) < 30;
        for (v, d) in col.iter().enumerate() {
            let same_side = (v < 30) == in_a;
            assert_eq!(d.is_finite(), same_side, "source {src}, vertex {v}");
        }
    }
}

#[test]
fn isolated_vertices_batch_is_all_infinity_off_diagonal() {
    let g = poison::isolated(70);
    let sources: Vec<u32> = (0..65).collect();
    let n = g.num_vertices();
    let mut buf = vec![1.5f64; n * sources.len()];
    let mut cols: Vec<&mut [f64]> = buf.chunks_mut(n).collect();
    let stats = bfs_batched_into_f64(&g, &sources, &mut cols);
    assert_eq!(stats.words, 2);
    assert_eq!(stats.levels, 1);
    assert_eq!(stats.reached, vec![1usize; 65]);
    for (i, &src) in sources.iter().enumerate() {
        let col = &buf[i * n..(i + 1) * n];
        for (v, &d) in col.iter().enumerate() {
            if v == src as usize {
                assert_eq!(d, 0.0);
            } else {
                assert!(d.is_infinite() && d > 0.0, "lane {i} vertex {v}: {d}");
            }
        }
    }
}
