//! Storage-equivalence tests: every BFS kernel must produce bit-identical
//! results whether the graph is plain CSR or gap-coded [`CompressedCsr`].
//! This is the property the whole out-of-core path leans on — layouts from
//! a `.phdegrf` snapshot must match layouts from RAM exactly.

use parhde_bfs::batch::bfs_batched;
use parhde_bfs::direction_opt::bfs_direction_opt;
use parhde_bfs::multi::bfs_multi_source;
use parhde_bfs::serial::bfs_serial;
use parhde_bfs::top_down::bfs_top_down;
use parhde_graph::gen::{chain, grid2d, kron, pref_attach, star};
use parhde_graph::{CompressedCsr, CsrGraph};

fn graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("chain", chain(257)),
        ("star", star(100)),
        ("grid", grid2d(17, 23)),
        ("kron", kron(10, 8, 7)),
        ("pref", pref_attach(2000, 6, 11)),
    ]
}

#[test]
fn serial_identical_across_storages() {
    for (name, g) in graphs() {
        let c = CompressedCsr::from_csr(&g);
        for s in [0u32, (g.num_vertices() as u32 - 1) / 2] {
            assert_eq!(bfs_serial(&g, s), bfs_serial(&c, s), "{name} source {s}");
        }
    }
}

#[test]
fn top_down_identical_across_storages() {
    for (name, g) in graphs() {
        let c = CompressedCsr::from_csr(&g);
        assert_eq!(bfs_top_down(&g, 0), bfs_top_down(&c, 0), "{name}");
    }
}

#[test]
fn direction_opt_identical_across_storages() {
    for (name, g) in graphs() {
        let c = CompressedCsr::from_csr(&g);
        let (rp, sp) = bfs_direction_opt(&g, 1);
        let (rc, sc) = bfs_direction_opt(&c, 1);
        assert_eq!(rp, rc, "{name} result");
        // Identical adjacency order ⇒ identical heuristic decisions and
        // identical scan counts, not just identical distances.
        assert_eq!(sp, sc, "{name} traversal stats");
    }
}

#[test]
fn multi_source_identical_across_storages() {
    for (name, g) in graphs() {
        let c = CompressedCsr::from_csr(&g);
        let n = g.num_vertices() as u32;
        let sources = [0, n / 3, n / 2, n - 1];
        assert_eq!(
            bfs_multi_source(&g, &sources),
            bfs_multi_source(&c, &sources),
            "{name}"
        );
    }
}

#[test]
fn batched_identical_across_storages() {
    for (name, g) in graphs() {
        let c = CompressedCsr::from_csr(&g);
        let n = g.num_vertices() as u32;
        let sources: Vec<u32> = (0..8).map(|i| i * (n / 8)).collect();
        assert_eq!(bfs_batched(&g, &sources), bfs_batched(&c, &sources), "{name}");
    }
}

#[test]
fn snapshot_roundtrip_preserves_traversal() {
    let g = kron(9, 10, 3);
    let c = CompressedCsr::from_csr(&g);
    let dir = std::env::temp_dir().join("parhde-bfs-store-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.phdegrf");
    c.write_snapshot(&path).unwrap();
    let mapped = CompressedCsr::open_mmap(&path).unwrap();
    assert_eq!(bfs_serial(&g, 5), bfs_serial(&mapped, 5));
    let (rp, _) = bfs_direction_opt(&g, 5);
    let (rm, _) = bfs_direction_opt(&mapped, 5);
    assert_eq!(rp, rm);
    drop(mapped);
    std::fs::remove_file(&path).ok();
}
