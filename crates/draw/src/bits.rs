//! LSB-first bit I/O for DEFLATE streams.
//!
//! DEFLATE packs data elements starting at the least-significant bit of
//! each byte. Plain values (extra bits, stored-block lengths) are written
//! LSB-first; Huffman codes are written starting from their most
//! significant bit (RFC 1951 §3.1.1).

/// Accumulates bits LSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    bit_pos: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the low `count` bits of `value`, LSB first.
    ///
    /// # Panics
    /// Panics if `count > 32`.
    pub fn write_bits(&mut self, value: u32, count: u8) {
        assert!(count <= 32, "at most 32 bits per call");
        for i in 0..count {
            let bit = (value >> i) & 1;
            if self.bit_pos == 0 {
                self.out.push(0);
            }
            if bit != 0 {
                *self.out.last_mut().unwrap() |= 1 << self.bit_pos;
            }
            self.bit_pos = (self.bit_pos + 1) % 8;
        }
    }

    /// Writes a Huffman code of `len` bits, most-significant bit first.
    pub fn write_huffman(&mut self, code: u32, len: u8) {
        for i in (0..len).rev() {
            self.write_bits((code >> i) & 1, 1);
        }
    }

    /// Pads to a byte boundary with zero bits.
    pub fn align_byte(&mut self) {
        self.bit_pos = 0;
    }

    /// Appends raw bytes (must be byte-aligned).
    ///
    /// # Panics
    /// Panics if the writer is mid-byte.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        assert_eq!(self.bit_pos, 0, "write_bytes requires byte alignment");
        self.out.extend_from_slice(bytes);
    }

    /// Consumes the writer, returning the buffer (final partial byte is
    /// zero-padded).
    pub fn finish(self) -> Vec<u8> {
        self.out
    }

    /// Bytes written so far (including any partial byte).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

/// Reads bits LSB-first from a byte slice (used by the test-only inflater).
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    byte: usize,
    bit: u8,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, byte: 0, bit: 0 }
    }

    /// Reads one bit.
    ///
    /// # Panics
    /// Panics at end of input.
    pub fn read_bit(&mut self) -> u32 {
        assert!(self.byte < self.data.len(), "bit reader exhausted");
        let b = (self.data[self.byte] >> self.bit) & 1;
        self.bit += 1;
        if self.bit == 8 {
            self.bit = 0;
            self.byte += 1;
        }
        b as u32
    }

    /// Reads `count` bits LSB-first.
    pub fn read_bits(&mut self, count: u8) -> u32 {
        let mut v = 0;
        for i in 0..count {
            v |= self.read_bit() << i;
        }
        v
    }

    /// Skips to the next byte boundary.
    pub fn align_byte(&mut self) {
        if self.bit != 0 {
            self.bit = 0;
            self.byte += 1;
        }
    }

    /// Reads `n` aligned bytes.
    ///
    /// # Panics
    /// Panics if not aligned or out of data.
    pub fn read_bytes(&mut self, n: usize) -> &'a [u8] {
        assert_eq!(self.bit, 0, "read_bytes requires byte alignment");
        let out = &self.data[self.byte..self.byte + n];
        self.byte += n;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b11110000, 8);
        w.write_bits(1, 1);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bits(3), 0b101);
        assert_eq!(r.read_bits(8), 0b11110000);
        assert_eq!(r.read_bit(), 1);
    }

    #[test]
    fn huffman_codes_are_msb_first() {
        let mut w = BitWriter::new();
        // Code 0b011 of length 3, MSB first → bits 0, 1, 1.
        w.write_huffman(0b011, 3);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bit(), 0);
        assert_eq!(r.read_bit(), 1);
        assert_eq!(r.read_bit(), 1);
    }

    #[test]
    fn alignment_and_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.align_byte();
        w.write_bytes(&[0xAB, 0xCD]);
        let buf = w.finish();
        assert_eq!(buf, vec![0x01, 0xAB, 0xCD]);
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read_bit(), 1);
        r.align_byte();
        assert_eq!(r.read_bytes(2), &[0xAB, 0xCD]);
    }

    #[test]
    fn empty_writer() {
        assert!(BitWriter::new().is_empty());
        assert_eq!(BitWriter::new().finish(), Vec::<u8>::new());
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn over_read_panics() {
        BitReader::new(&[]).read_bit();
    }
}
