//! CRC-32 (ISO-HDLC, as used by PNG chunks) and Adler-32 (zlib trailer).

/// CRC-32 lookup table for polynomial 0xEDB88320, built at first use.
fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (n, slot) in table.iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

/// Computes the CRC-32 of `data` (PNG convention: init all-ones, final
/// complement).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming CRC-32: feed chunks with a running register (start from
/// `0xFFFF_FFFF`, finish by XOR-ing `0xFFFF_FFFF`).
pub fn crc32_update(mut c: u32, data: &[u8]) -> u32 {
    let table = crc_table();
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

const ADLER_MOD: u32 = 65_521;

/// Computes the Adler-32 checksum of `data` (zlib trailer).
pub fn adler32(data: &[u8]) -> u32 {
    let (mut a, mut b) = (1u32, 0u32);
    // Process in chunks small enough that the u32 accumulators cannot
    // overflow before the modulo (5552 is the standard bound).
    for chunk in data.chunks(5552) {
        for &byte in chunk {
            a += byte as u32;
            b += a;
        }
        a %= ADLER_MOD;
        b %= ADLER_MOD;
    }
    (b << 16) | a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_empty() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_iend_chunk() {
        // The CRC of the literal bytes "IEND" — a constant every PNG ends
        // with, handy as an independent check: AE 42 60 82.
        assert_eq!(crc32(b"IEND"), 0xAE42_6082);
    }

    #[test]
    fn crc32_streaming_matches_oneshot() {
        let data = b"The quick brown fox jumps over the lazy dog";
        let mut c = 0xFFFF_FFFFu32;
        c = crc32_update(c, &data[..10]);
        c = crc32_update(c, &data[10..]);
        assert_eq!(c ^ 0xFFFF_FFFF, crc32(data));
    }

    #[test]
    fn adler32_check_value() {
        // Known vector: "Wikipedia" → 0x11E60398.
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn adler32_empty_is_one() {
        assert_eq!(adler32(b""), 1);
    }

    #[test]
    fn adler32_large_input_no_overflow() {
        let data = vec![0xFFu8; 1 << 20];
        // Compare against a naive u64 implementation.
        let (mut a, mut b) = (1u64, 0u64);
        for &byte in &data {
            a = (a + byte as u64) % ADLER_MOD as u64;
            b = (b + a) % ADLER_MOD as u64;
        }
        assert_eq!(adler32(&data), ((b as u32) << 16) | a as u32);
    }
}
