//! Colors and palettes.

/// An 8-bit RGB color.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rgb(
    /// Red channel.
    pub u8,
    /// Green channel.
    pub u8,
    /// Blue channel.
    pub u8,
);

impl Rgb {
    /// White.
    pub const WHITE: Rgb = Rgb(255, 255, 255);
    /// Black.
    pub const BLACK: Rgb = Rgb(0, 0, 0);
    /// Medium gray (used for inter-partition edges in §4.5.4 drawings).
    pub const GRAY: Rgb = Rgb(170, 170, 170);
    /// Pure red.
    pub const RED: Rgb = Rgb(220, 30, 30);
    /// Pure blue.
    pub const BLUE: Rgb = Rgb(30, 60, 220);

    /// Linear interpolation between two colors (`t` clamped to `[0, 1]`).
    pub fn lerp(a: Rgb, b: Rgb, t: f64) -> Rgb {
        let t = t.clamp(0.0, 1.0);
        let mix = |x: u8, y: u8| (x as f64 + (y as f64 - x as f64) * t).round() as u8;
        Rgb(mix(a.0, b.0), mix(a.1, b.1), mix(a.2, b.2))
    }
}

/// A qualitative palette for partition/cluster coloring (§4.5.4: "different
/// colors for intra- and inter-partition edges"). Colors repeat past 10
/// partitions.
pub fn partition_color(partition: u32) -> Rgb {
    const PALETTE: [Rgb; 10] = [
        Rgb(31, 119, 180),
        Rgb(255, 127, 14),
        Rgb(44, 160, 44),
        Rgb(214, 39, 40),
        Rgb(148, 103, 189),
        Rgb(140, 86, 75),
        Rgb(227, 119, 194),
        Rgb(127, 127, 127),
        Rgb(188, 189, 34),
        Rgb(23, 190, 207),
    ];
    PALETTE[(partition as usize) % PALETTE.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints() {
        assert_eq!(Rgb::lerp(Rgb::BLACK, Rgb::WHITE, 0.0), Rgb::BLACK);
        assert_eq!(Rgb::lerp(Rgb::BLACK, Rgb::WHITE, 1.0), Rgb::WHITE);
        assert_eq!(Rgb::lerp(Rgb::BLACK, Rgb::WHITE, 0.5), Rgb(128, 128, 128));
    }

    #[test]
    fn lerp_clamps() {
        assert_eq!(Rgb::lerp(Rgb::BLACK, Rgb::WHITE, -3.0), Rgb::BLACK);
        assert_eq!(Rgb::lerp(Rgb::BLACK, Rgb::WHITE, 7.0), Rgb::WHITE);
    }

    #[test]
    fn partition_colors_distinct_and_cyclic() {
        let c0 = partition_color(0);
        let c1 = partition_color(1);
        assert_ne!(c0, c1);
        assert_eq!(partition_color(10), c0);
    }
}
