//! DEFLATE (RFC 1951) compression with fixed Huffman codes, plus the
//! matching decompressor used to round-trip-test the encoder.
//!
//! The compressor targets the workload at hand — PNG scanlines of drawings
//! that are mostly flat background — with a greedy matcher over a small set
//! of short distances: distance 1 and 2 (byte runs) and 3/4 (RGB/RGBA pixel
//! runs). That compresses a blank canvas by ~99% while staying a few dozen
//! lines of clear code. Incompressible data degrades gracefully to literal
//! bytes (fixed-Huffman literals are at most 9 bits, a ≤ 12.5% expansion).

use crate::bits::{BitReader, BitWriter};

/// Distances the matcher considers (byte runs and pixel runs).
const MATCH_DISTANCES: [usize; 4] = [1, 2, 3, 4];
/// Minimum profitable match length.
const MIN_MATCH: usize = 5;
/// DEFLATE's maximum match length.
const MAX_MATCH: usize = 258;

/// Compresses `data` into a raw DEFLATE stream (single final block, fixed
/// Huffman codes).
pub fn deflate_fixed(data: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    w.write_bits(1, 1); // BFINAL
    w.write_bits(0b01, 2); // BTYPE = fixed Huffman

    let mut i = 0usize;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        for &dist in &MATCH_DISTANCES {
            if dist > i {
                continue;
            }
            let mut len = 0usize;
            let max = (data.len() - i).min(MAX_MATCH);
            while len < max && data[i + len - dist] == data[i + len] {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_dist = dist;
            }
        }
        if best_len >= MIN_MATCH {
            write_length(&mut w, best_len);
            write_distance(&mut w, best_dist);
            i += best_len;
        } else {
            write_literal(&mut w, data[i]);
            i += 1;
        }
    }
    write_literal_code(&mut w, 256); // end of block
    w.finish()
}

/// Writes a literal byte with the fixed literal/length code.
fn write_literal(w: &mut BitWriter, byte: u8) {
    write_literal_code(w, byte as u32);
}

/// Fixed Huffman literal/length code table (RFC 1951 §3.2.6).
fn write_literal_code(w: &mut BitWriter, sym: u32) {
    match sym {
        0..=143 => w.write_huffman(0x30 + sym, 8),
        144..=255 => w.write_huffman(0x190 + (sym - 144), 9),
        256..=279 => w.write_huffman(sym - 256, 7),
        280..=287 => w.write_huffman(0xC0 + (sym - 280), 8),
        _ => unreachable!("invalid literal/length symbol {sym}"),
    }
}

/// Length code table: (symbol, extra bits, base length).
const LENGTH_CODES: [(u32, u8, usize); 29] = [
    (257, 0, 3), (258, 0, 4), (259, 0, 5), (260, 0, 6), (261, 0, 7),
    (262, 0, 8), (263, 0, 9), (264, 0, 10), (265, 1, 11), (266, 1, 13),
    (267, 1, 15), (268, 1, 17), (269, 2, 19), (270, 2, 23), (271, 2, 27),
    (272, 2, 31), (273, 3, 35), (274, 3, 43), (275, 3, 51), (276, 3, 59),
    (277, 4, 67), (278, 4, 83), (279, 4, 99), (280, 4, 115), (281, 5, 131),
    (282, 5, 163), (283, 5, 195), (284, 5, 227), (285, 0, 258),
];

/// Distance code table: (symbol, extra bits, base distance).
const DIST_CODES: [(u32, u8, usize); 30] = [
    (0, 0, 1), (1, 0, 2), (2, 0, 3), (3, 0, 4), (4, 1, 5), (5, 1, 7),
    (6, 2, 9), (7, 2, 13), (8, 3, 17), (9, 3, 25), (10, 4, 33), (11, 4, 49),
    (12, 5, 65), (13, 5, 97), (14, 6, 129), (15, 6, 193), (16, 7, 257),
    (17, 7, 385), (18, 8, 513), (19, 8, 769), (20, 9, 1025), (21, 9, 1537),
    (22, 10, 2049), (23, 10, 3073), (24, 11, 4097), (25, 11, 6145),
    (26, 12, 8193), (27, 12, 12289), (28, 13, 16385), (29, 13, 24577),
];

fn write_length(w: &mut BitWriter, len: usize) {
    debug_assert!((3..=MAX_MATCH).contains(&len));
    // Find the last code whose base is ≤ len.
    let idx = LENGTH_CODES
        .iter()
        .rposition(|&(_, _, base)| base <= len)
        .expect("length in range");
    let (sym, extra, base) = LENGTH_CODES[idx];
    write_literal_code(w, sym);
    if extra > 0 {
        w.write_bits((len - base) as u32, extra);
    }
}

fn write_distance(w: &mut BitWriter, dist: usize) {
    let idx = DIST_CODES
        .iter()
        .rposition(|&(_, _, base)| base <= dist)
        .expect("distance in range");
    let (sym, extra, base) = DIST_CODES[idx];
    // Fixed distance codes are plain 5-bit numbers, MSB first.
    w.write_huffman(sym, 5);
    if extra > 0 {
        w.write_bits((dist - base) as u32, extra);
    }
}

/// Wraps a DEFLATE stream in the zlib container (RFC 1950): CMF/FLG header
/// plus the Adler-32 of the uncompressed data — the format PNG `IDAT`
/// chunks require.
pub fn zlib_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    // CMF: deflate, 32K window (0x78). FLG: check bits so (CMF·256+FLG) %
    // 31 == 0 with no preset dictionary, fastest-compression hint → 0x01.
    out.push(0x78);
    out.push(0x01);
    out.extend_from_slice(&deflate_fixed(data));
    out.extend_from_slice(&crate::checksums::adler32(data).to_be_bytes());
    out
}

// --------------------------------------------------------------------------
// Inflate (supports exactly what the compressor emits plus stored blocks) —
// used by round-trip tests and kept small deliberately.
// --------------------------------------------------------------------------

/// Decompresses a raw DEFLATE stream consisting of stored and/or
/// fixed-Huffman blocks.
///
/// # Panics
/// Panics on malformed input or dynamic-Huffman blocks (which this
/// workspace never produces).
pub fn inflate(data: &[u8]) -> Vec<u8> {
    let mut r = BitReader::new(data);
    let mut out = Vec::new();
    loop {
        let final_block = r.read_bit() == 1;
        let btype = r.read_bits(2);
        match btype {
            0b00 => {
                r.align_byte();
                let len = u16::from_le_bytes(r.read_bytes(2).try_into().unwrap());
                let nlen = u16::from_le_bytes(r.read_bytes(2).try_into().unwrap());
                assert_eq!(len, !nlen, "stored block LEN/NLEN mismatch");
                out.extend_from_slice(r.read_bytes(len as usize));
            }
            0b01 => loop {
                let sym = read_fixed_literal(&mut r);
                match sym {
                    0..=255 => out.push(sym as u8),
                    256 => break,
                    257..=285 => {
                        let (_, extra, base) = LENGTH_CODES
                            .iter()
                            .copied()
                            .find(|&(s, _, _)| s == sym)
                            .expect("valid length symbol");
                        let len = base + r.read_bits(extra) as usize;
                        let dsym = {
                            // 5-bit fixed distance code, MSB first.
                            let mut v = 0u32;
                            for _ in 0..5 {
                                v = (v << 1) | r.read_bit();
                            }
                            v
                        };
                        let (_, dextra, dbase) = DIST_CODES
                            .iter()
                            .copied()
                            .find(|&(s, _, _)| s == dsym)
                            .expect("valid distance symbol");
                        let dist = dbase + r.read_bits(dextra) as usize;
                        assert!(dist <= out.len(), "distance beyond output");
                        for _ in 0..len {
                            out.push(out[out.len() - dist]);
                        }
                    }
                    _ => panic!("invalid symbol {sym}"),
                }
            },
            other => panic!("unsupported block type {other}"),
        }
        if final_block {
            break;
        }
    }
    out
}

/// Decodes one fixed-Huffman literal/length symbol.
fn read_fixed_literal(r: &mut BitReader) -> u32 {
    // Read 7 bits MSB-first, then extend as needed per the fixed table.
    let mut code = 0u32;
    for _ in 0..7 {
        code = (code << 1) | r.read_bit();
    }
    if code <= 0b0010111 {
        return 256 + code; // 7-bit codes 0000000-0010111 → 256..279
    }
    code = (code << 1) | r.read_bit(); // extend to 8
    if (0x30..=0xBF).contains(&code) {
        return code - 0x30; // 8-bit codes → 0..143
    }
    if (0xC0..=0xC7).contains(&code) {
        return 280 + (code - 0xC0); // 8-bit codes → 280..287
    }
    code = (code << 1) | r.read_bit(); // extend to 9
    assert!((0x190..=0x1FF).contains(&code), "bad fixed code {code:#x}");
    144 + (code - 0x190) // 9-bit codes → 144..255
}

/// Unwraps and decompresses a zlib stream, verifying the Adler-32 trailer.
///
/// # Panics
/// Panics on malformed streams or checksum mismatch.
pub fn zlib_decompress(data: &[u8]) -> Vec<u8> {
    assert!(data.len() >= 6, "zlib stream too short");
    assert_eq!(data[0] & 0x0F, 8, "not a deflate zlib stream");
    assert_eq!(
        (u16::from_be_bytes([data[0], data[1]])) % 31,
        0,
        "bad zlib header check"
    );
    let body = &data[2..data.len() - 4];
    let out = inflate(body);
    let expect = u32::from_be_bytes(data[data.len() - 4..].try_into().unwrap());
    assert_eq!(
        crate::checksums::adler32(&out),
        expect,
        "Adler-32 mismatch"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parhde_util::Xoshiro256StarStar;

    #[test]
    fn roundtrip_empty() {
        assert_eq!(zlib_decompress(&zlib_compress(b"")), b"");
    }

    #[test]
    fn roundtrip_text() {
        let data = b"hello hello hello hello world!";
        assert_eq!(zlib_decompress(&zlib_compress(data)), data);
    }

    #[test]
    fn roundtrip_all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(2048).collect();
        assert_eq!(zlib_decompress(&zlib_compress(&data)), data);
    }

    #[test]
    fn roundtrip_random() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let data: Vec<u8> = (0..50_000).map(|_| rng.next_u64() as u8).collect();
        assert_eq!(zlib_decompress(&zlib_compress(&data)), data);
    }

    #[test]
    fn roundtrip_flat_with_long_runs() {
        let mut data = vec![0xFFu8; 100_000];
        data[50_000] = 0; // interrupt the run
        assert_eq!(zlib_decompress(&zlib_compress(&data)), data);
    }

    #[test]
    fn flat_data_compresses_well() {
        let data = vec![0u8; 65_536];
        let z = zlib_compress(&data);
        assert!(
            z.len() < data.len() / 50,
            "blank canvas should compress ≥ 50×: {} → {}",
            data.len(),
            z.len()
        );
    }

    #[test]
    fn rgb_pixel_runs_compress() {
        // Repeating 3-byte pixels exercise the distance-3 matcher.
        let data: Vec<u8> = [0xDE, 0xAD, 0xBE]
            .iter()
            .copied()
            .cycle()
            .take(30_000)
            .collect();
        let z = zlib_compress(&data);
        assert!(z.len() < 1000, "pixel runs should compress: {}", z.len());
        assert_eq!(zlib_decompress(&z), data);
    }

    #[test]
    fn incompressible_data_expands_boundedly() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let data: Vec<u8> = (0..10_000).map(|_| rng.next_u64() as u8).collect();
        let z = zlib_compress(&data);
        // ≤ 9 bits per literal + headers.
        assert!(z.len() < data.len() * 9 / 8 + 64);
    }

    #[test]
    fn inflate_handles_stored_blocks() {
        // Hand-build a stored block: BFINAL=1, BTYPE=00, aligned LEN/NLEN.
        let payload = b"stored!";
        let mut w = crate::bits::BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0, 2);
        w.align_byte();
        w.write_bytes(&(payload.len() as u16).to_le_bytes());
        w.write_bytes(&(!(payload.len() as u16)).to_le_bytes());
        w.write_bytes(payload);
        assert_eq!(inflate(&w.finish()), payload);
    }

    #[test]
    #[should_panic(expected = "Adler-32 mismatch")]
    fn corrupt_trailer_detected() {
        let mut z = zlib_compress(b"data data data data data");
        let n = z.len();
        z[n - 1] ^= 0xFF;
        zlib_decompress(&z);
    }
}
