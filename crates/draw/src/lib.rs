//! Drawing backend for ParHDE layouts.
//!
//! The paper renders layouts with "an open-source Portable Network Graphics
//! (PNG) format file writer ... edges are drawn as straight lines of fixed
//! thickness" (§4.1; the writing step is untimed). This crate is that
//! substrate, built from scratch:
//!
//! * [`checksums`] — CRC-32 (PNG chunks) and Adler-32 (zlib);
//! * [`bits`] — LSB-first bit I/O for DEFLATE;
//! * [`deflate`] — a DEFLATE compressor emitting fixed-Huffman blocks with
//!   short-distance run matching (ideal for mostly-flat drawings), plus a
//!   matching inflater used by the round-trip tests;
//! * [`png`] — the PNG container encoder (IHDR/IDAT/IEND);
//! * [`raster`] — an RGB canvas with Bresenham line drawing;
//! * [`render`] — layout → image, including the partition-coloring mode of
//!   §4.5.4 (different colors for intra- vs. inter-partition edges).

#![warn(missing_docs)]

pub mod bits;
pub mod checksums;
pub mod color;
pub mod deflate;
pub mod png;
pub mod raster;
pub mod render;

pub use raster::Canvas;
pub use render::{render_graph, try_render_graph, RenderError, RenderOptions};
