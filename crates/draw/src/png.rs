//! PNG container encoding (RFC 2083): 8-bit RGB, non-interlaced.

use crate::checksums::crc32;
use crate::deflate::zlib_compress;

/// The 8-byte PNG file signature.
pub const SIGNATURE: [u8; 8] = [0x89, b'P', b'N', b'G', b'\r', b'\n', 0x1A, b'\n'];

/// Encodes an RGB image (`pixels` = `width·height·3` bytes, row-major) as a
/// complete PNG file.
///
/// Scanlines use filter type 0 (None); compression is the fixed-Huffman
/// zlib stream from [`crate::deflate`].
///
/// # Panics
/// Panics if the pixel buffer size does not match the dimensions or a
/// dimension is zero.
pub fn encode_rgb(width: u32, height: u32, pixels: &[u8]) -> Vec<u8> {
    assert!(width > 0 && height > 0, "image dimensions must be positive");
    assert_eq!(
        pixels.len(),
        width as usize * height as usize * 3,
        "pixel buffer size mismatch"
    );

    let mut out = Vec::with_capacity(pixels.len() / 4 + 128);
    out.extend_from_slice(&SIGNATURE);

    // IHDR.
    let mut ihdr = Vec::with_capacity(13);
    ihdr.extend_from_slice(&width.to_be_bytes());
    ihdr.extend_from_slice(&height.to_be_bytes());
    ihdr.push(8); // bit depth
    ihdr.push(2); // color type: truecolor RGB
    ihdr.push(0); // compression method
    ihdr.push(0); // filter method
    ihdr.push(0); // no interlace
    write_chunk(&mut out, b"IHDR", &ihdr);

    // IDAT: filter byte 0 before each scanline, then zlib.
    let row_bytes = width as usize * 3;
    let mut raw = Vec::with_capacity(pixels.len() + height as usize);
    for row in pixels.chunks(row_bytes) {
        raw.push(0); // filter: None
        raw.extend_from_slice(row);
    }
    write_chunk(&mut out, b"IDAT", &zlib_compress(&raw));

    // IEND.
    write_chunk(&mut out, b"IEND", &[]);
    out
}

/// Appends one chunk: length, type, data, CRC (over type + data).
fn write_chunk(out: &mut Vec<u8>, kind: &[u8; 4], data: &[u8]) {
    out.extend_from_slice(&(data.len() as u32).to_be_bytes());
    out.extend_from_slice(kind);
    out.extend_from_slice(data);
    let mut crc_input = Vec::with_capacity(4 + data.len());
    crc_input.extend_from_slice(kind);
    crc_input.extend_from_slice(data);
    out.extend_from_slice(&crc32(&crc_input).to_be_bytes());
}

/// Decodes a PNG produced by [`encode_rgb`] back into
/// `(width, height, pixels)` — used by round-trip tests; supports exactly
/// the feature set the encoder emits (8-bit RGB, filter 0, one IDAT).
///
/// # Panics
/// Panics on anything the encoder would not have produced or on checksum
/// mismatches.
pub fn decode_rgb(data: &[u8]) -> (u32, u32, Vec<u8>) {
    assert!(data.len() > 8 && data[..8] == SIGNATURE, "bad PNG signature");
    let mut pos = 8usize;
    let mut width = 0u32;
    let mut height = 0u32;
    let mut idat: Vec<u8> = Vec::new();
    loop {
        let len = u32::from_be_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
        let kind = &data[pos + 4..pos + 8];
        let body = &data[pos + 8..pos + 8 + len];
        let crc = u32::from_be_bytes(
            data[pos + 8 + len..pos + 12 + len].try_into().unwrap(),
        );
        let mut crc_input = Vec::with_capacity(4 + len);
        crc_input.extend_from_slice(kind);
        crc_input.extend_from_slice(body);
        assert_eq!(crc, crc32(&crc_input), "chunk CRC mismatch");
        match kind {
            b"IHDR" => {
                width = u32::from_be_bytes(body[0..4].try_into().unwrap());
                height = u32::from_be_bytes(body[4..8].try_into().unwrap());
                assert_eq!(body[8], 8, "bit depth");
                assert_eq!(body[9], 2, "color type");
            }
            b"IDAT" => idat.extend_from_slice(body),
            b"IEND" => break,
            other => panic!("unexpected chunk {:?}", std::str::from_utf8(other)),
        }
        pos += 12 + len;
    }
    let raw = crate::deflate::zlib_decompress(&idat);
    let row_bytes = width as usize * 3;
    let mut pixels = Vec::with_capacity(row_bytes * height as usize);
    for row in raw.chunks(row_bytes + 1) {
        assert_eq!(row[0], 0, "only filter 0 supported");
        pixels.extend_from_slice(&row[1..]);
    }
    (width, height, pixels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_tiny_image() {
        let pixels = vec![
            255, 0, 0, /**/ 0, 255, 0, //
            0, 0, 255, /**/ 255, 255, 255,
        ];
        let png = encode_rgb(2, 2, &pixels);
        let (w, h, back) = decode_rgb(&png);
        assert_eq!((w, h), (2, 2));
        assert_eq!(back, pixels);
    }

    #[test]
    fn roundtrip_larger_image() {
        let (w, h) = (101u32, 57u32);
        let pixels: Vec<u8> = (0..w * h * 3).map(|i| (i % 251) as u8).collect();
        let png = encode_rgb(w, h, &pixels);
        let (dw, dh, back) = decode_rgb(&png);
        assert_eq!((dw, dh), (w, h));
        assert_eq!(back, pixels);
    }

    #[test]
    fn signature_and_structure() {
        let png = encode_rgb(1, 1, &[0, 0, 0]);
        assert_eq!(&png[..8], &SIGNATURE);
        // First chunk must be a 13-byte IHDR.
        assert_eq!(&png[8..12], &13u32.to_be_bytes());
        assert_eq!(&png[12..16], b"IHDR");
        // File ends with the constant IEND chunk.
        assert_eq!(
            &png[png.len() - 12..],
            &[0, 0, 0, 0, b'I', b'E', b'N', b'D', 0xAE, 0x42, 0x60, 0x82]
        );
    }

    #[test]
    fn white_canvas_compresses() {
        let pixels = vec![255u8; 200 * 200 * 3];
        let png = encode_rgb(200, 200, &pixels);
        assert!(
            png.len() < pixels.len() / 20,
            "white canvas PNG too large: {}",
            png.len()
        );
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_buffer_size_rejected() {
        encode_rgb(2, 2, &[0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "CRC mismatch")]
    fn corruption_detected() {
        let mut png = encode_rgb(4, 4, &[128; 48]);
        let n = png.len();
        png[n - 20] ^= 0xFF; // corrupt inside IDAT
        decode_rgb(&png);
    }
}
