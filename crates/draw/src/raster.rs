//! An RGB canvas with Bresenham line drawing.

use crate::color::Rgb;

/// A row-major RGB pixel canvas.
#[derive(Clone, Debug)]
pub struct Canvas {
    width: u32,
    height: u32,
    pixels: Vec<u8>,
}

impl Canvas {
    /// Creates a canvas filled with `background`.
    ///
    /// # Panics
    /// Panics if a dimension is zero.
    pub fn new(width: u32, height: u32, background: Rgb) -> Self {
        assert!(width > 0 && height > 0, "canvas dimensions must be positive");
        let mut pixels = vec![0u8; width as usize * height as usize * 3];
        for px in pixels.chunks_exact_mut(3) {
            px[0] = background.0;
            px[1] = background.1;
            px[2] = background.2;
        }
        Self { width, height, pixels }
    }

    /// Canvas width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Canvas height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Sets one pixel; out-of-bounds coordinates are silently clipped.
    #[inline]
    pub fn set_pixel(&mut self, x: i64, y: i64, color: Rgb) {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            return;
        }
        let idx = (y as usize * self.width as usize + x as usize) * 3;
        self.pixels[idx] = color.0;
        self.pixels[idx + 1] = color.1;
        self.pixels[idx + 2] = color.2;
    }

    /// Reads one pixel.
    ///
    /// # Panics
    /// Panics out of bounds.
    pub fn get_pixel(&self, x: u32, y: u32) -> Rgb {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        let idx = (y as usize * self.width as usize + x as usize) * 3;
        Rgb(self.pixels[idx], self.pixels[idx + 1], self.pixels[idx + 2])
    }

    /// Draws a 1-pixel Bresenham line between two points (clipped).
    pub fn draw_line(&mut self, x0: f64, y0: f64, x1: f64, y1: f64, color: Rgb) {
        let (mut x0, mut y0) = (x0.round() as i64, y0.round() as i64);
        let (x1, y1) = (x1.round() as i64, y1.round() as i64);
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            self.set_pixel(x0, y0, color);
            if x0 == x1 && y0 == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x0 += sx;
            }
            if e2 <= dx {
                err += dx;
                y0 += sy;
            }
        }
    }

    /// Blends `color` onto pixel `(x, y)` with coverage `alpha ∈ [0, 1]`
    /// (alpha-over against the existing pixel; out-of-bounds clipped).
    pub fn blend_pixel(&mut self, x: i64, y: i64, color: Rgb, alpha: f64) {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            return;
        }
        let a = alpha.clamp(0.0, 1.0);
        let old = self.get_pixel(x as u32, y as u32);
        let mix = |c: u8, o: u8| (c as f64 * a + o as f64 * (1.0 - a)).round() as u8;
        self.set_pixel(x, y, Rgb(mix(color.0, old.0), mix(color.1, old.1), mix(color.2, old.2)));
    }

    /// Draws an anti-aliased line with Xiaolin Wu's algorithm: each step
    /// splits its unit of ink across the two pixels straddling the ideal
    /// line in proportion to coverage, eliminating the staircase artifacts
    /// of [`Canvas::draw_line`] at a ~2× pixel-write cost.
    pub fn draw_line_aa(&mut self, x0: f64, y0: f64, x1: f64, y1: f64, color: Rgb) {
        let steep = (y1 - y0).abs() > (x1 - x0).abs();
        let (mut x0, mut y0, mut x1, mut y1) = if steep {
            (y0, x0, y1, x1)
        } else {
            (x0, y0, x1, y1)
        };
        if x0 > x1 {
            std::mem::swap(&mut x0, &mut x1);
            std::mem::swap(&mut y0, &mut y1);
        }
        let dx = x1 - x0;
        let gradient = if dx.abs() < 1e-12 { 1.0 } else { (y1 - y0) / dx };
        let mut plot = |x: i64, y: i64, a: f64| {
            if steep {
                self.blend_pixel(y, x, color, a);
            } else {
                self.blend_pixel(x, y, color, a);
            }
        };
        // Endpoints.
        let xend0 = x0.round();
        let yend0 = y0 + gradient * (xend0 - x0);
        let xgap0 = 1.0 - (x0 + 0.5).fract();
        let xpx0 = xend0 as i64;
        plot(xpx0, yend0.floor() as i64, (1.0 - yend0.fract()) * xgap0);
        plot(xpx0, yend0.floor() as i64 + 1, yend0.fract() * xgap0);
        let mut intery = yend0 + gradient;

        let xend1 = x1.round();
        let yend1 = y1 + gradient * (xend1 - x1);
        let xgap1 = (x1 + 0.5).fract();
        let xpx1 = xend1 as i64;
        plot(xpx1, yend1.floor() as i64, (1.0 - yend1.fract()) * xgap1);
        plot(xpx1, yend1.floor() as i64 + 1, yend1.fract() * xgap1);

        // Interior.
        for x in (xpx0 + 1)..xpx1 {
            let fy = intery.floor() as i64;
            plot(x, fy, 1.0 - intery.fract());
            plot(x, fy + 1, intery.fract());
            intery += gradient;
        }
    }

    /// Draws a filled disc of radius `r` (clipped).
    pub fn draw_disc(&mut self, cx: f64, cy: f64, r: f64, color: Rgb) {
        let (cx, cy) = (cx.round() as i64, cy.round() as i64);
        let ri = r.ceil() as i64;
        let r2 = r * r;
        for dy in -ri..=ri {
            for dx in -ri..=ri {
                if (dx * dx + dy * dy) as f64 <= r2 {
                    self.set_pixel(cx + dx, cy + dy, color);
                }
            }
        }
    }

    /// Encodes the canvas as a PNG file.
    pub fn to_png(&self) -> Vec<u8> {
        crate::png::encode_rgb(self.width, self.height, &self.pixels)
    }

    /// Writes the canvas to a PNG file on disk.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save_png(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_png())
    }

    /// Number of pixels that differ from `color` (test helper / ink meter).
    pub fn count_not(&self, color: Rgb) -> usize {
        self.pixels
            .chunks_exact(3)
            .filter(|p| p[0] != color.0 || p[1] != color.1 || p[2] != color.2)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_canvas_is_background() {
        let c = Canvas::new(10, 5, Rgb::WHITE);
        assert_eq!(c.get_pixel(9, 4), Rgb::WHITE);
        assert_eq!(c.count_not(Rgb::WHITE), 0);
    }

    #[test]
    fn set_get_pixel() {
        let mut c = Canvas::new(4, 4, Rgb::WHITE);
        c.set_pixel(2, 3, Rgb::RED);
        assert_eq!(c.get_pixel(2, 3), Rgb::RED);
        assert_eq!(c.count_not(Rgb::WHITE), 1);
    }

    #[test]
    fn out_of_bounds_writes_are_clipped() {
        let mut c = Canvas::new(4, 4, Rgb::WHITE);
        c.set_pixel(-1, 0, Rgb::RED);
        c.set_pixel(0, 100, Rgb::RED);
        assert_eq!(c.count_not(Rgb::WHITE), 0);
    }

    #[test]
    fn horizontal_line_is_contiguous() {
        let mut c = Canvas::new(10, 3, Rgb::WHITE);
        c.draw_line(0.0, 1.0, 9.0, 1.0, Rgb::BLACK);
        for x in 0..10 {
            assert_eq!(c.get_pixel(x, 1), Rgb::BLACK);
        }
        assert_eq!(c.count_not(Rgb::WHITE), 10);
    }

    #[test]
    fn diagonal_line_touches_endpoints() {
        let mut c = Canvas::new(8, 8, Rgb::WHITE);
        c.draw_line(0.0, 0.0, 7.0, 7.0, Rgb::BLACK);
        assert_eq!(c.get_pixel(0, 0), Rgb::BLACK);
        assert_eq!(c.get_pixel(7, 7), Rgb::BLACK);
        assert_eq!(c.count_not(Rgb::WHITE), 8);
    }

    #[test]
    fn steep_line_is_connected() {
        let mut c = Canvas::new(5, 20, Rgb::WHITE);
        c.draw_line(1.0, 0.0, 3.0, 19.0, Rgb::BLACK);
        // Every row between the endpoints gets at least one pixel.
        for y in 0..20 {
            let hit = (0..5).any(|x| c.get_pixel(x, y) == Rgb::BLACK);
            assert!(hit, "row {y} empty");
        }
    }

    #[test]
    fn line_clips_offscreen_endpoints() {
        let mut c = Canvas::new(6, 6, Rgb::WHITE);
        c.draw_line(-5.0, 3.0, 10.0, 3.0, Rgb::BLACK);
        for x in 0..6 {
            assert_eq!(c.get_pixel(x, 3), Rgb::BLACK);
        }
    }

    #[test]
    fn blend_interpolates_and_clips() {
        let mut c = Canvas::new(3, 3, Rgb::WHITE);
        c.blend_pixel(1, 1, Rgb::BLACK, 0.5);
        assert_eq!(c.get_pixel(1, 1), Rgb(128, 128, 128));
        c.blend_pixel(1, 1, Rgb::BLACK, 1.0);
        assert_eq!(c.get_pixel(1, 1), Rgb::BLACK);
        c.blend_pixel(-1, 99, Rgb::BLACK, 1.0); // clipped, no panic
        c.blend_pixel(0, 0, Rgb::BLACK, 0.0);
        assert_eq!(c.get_pixel(0, 0), Rgb::WHITE);
    }

    #[test]
    fn aa_line_covers_the_ideal_path_smoothly() {
        let mut c = Canvas::new(30, 30, Rgb::WHITE);
        c.draw_line_aa(2.0, 2.0, 27.0, 14.0, Rgb::BLACK);
        // Every column between the endpoints must receive some ink.
        for x in 3..27u32 {
            let ink = (0..30).any(|y| c.get_pixel(x, y) != Rgb::WHITE);
            assert!(ink, "column {x} empty");
        }
        // Anti-aliasing: there must be intermediate (gray) pixels.
        let mut grays = 0;
        for x in 0..30 {
            for y in 0..30 {
                let p = c.get_pixel(x, y);
                if p != Rgb::WHITE && p != Rgb::BLACK {
                    grays += 1;
                }
            }
        }
        assert!(grays > 10, "expected partial-coverage pixels, saw {grays}");
    }

    #[test]
    fn aa_line_total_ink_is_proportional_to_length() {
        // Ink conservation: Wu splits one unit of coverage per major-axis
        // step, so total darkness ≈ line length along the major axis.
        let mut c = Canvas::new(60, 60, Rgb::WHITE);
        c.draw_line_aa(5.0, 5.0, 45.0, 25.0, Rgb::BLACK);
        let ink: f64 = (0..60u32)
            .flat_map(|x| (0..60u32).map(move |y| (x, y)))
            .map(|(x, y)| 1.0 - c.get_pixel(x, y).0 as f64 / 255.0)
            .sum();
        let expected = 45.0 - 5.0 + 1.0; // major-axis steps
        assert!(
            (ink - expected).abs() < expected * 0.2,
            "ink {ink:.1} vs expected ≈ {expected}"
        );
    }

    #[test]
    fn aa_steep_and_degenerate_lines_are_safe() {
        let mut c = Canvas::new(10, 40, Rgb::WHITE);
        c.draw_line_aa(5.0, 2.0, 6.0, 38.0, Rgb::BLUE); // steep
        c.draw_line_aa(3.0, 3.0, 3.0, 3.0, Rgb::BLUE); // zero-length
        assert!(c.count_not(Rgb::WHITE) > 30);
    }

    #[test]
    fn disc_covers_center_and_radius() {
        let mut c = Canvas::new(11, 11, Rgb::WHITE);
        c.draw_disc(5.0, 5.0, 2.0, Rgb::BLUE);
        assert_eq!(c.get_pixel(5, 5), Rgb::BLUE);
        assert_eq!(c.get_pixel(7, 5), Rgb::BLUE);
        assert_eq!(c.get_pixel(8, 5), Rgb::WHITE);
        // π r² ≈ 12.6; the lattice disc of radius 2 has 13 pixels.
        assert_eq!(c.count_not(Rgb::WHITE), 13);
    }

    #[test]
    fn png_roundtrip_of_canvas() {
        let mut c = Canvas::new(16, 16, Rgb::WHITE);
        c.draw_line(0.0, 0.0, 15.0, 15.0, Rgb::RED);
        let png = c.to_png();
        let (w, h, pixels) = crate::png::decode_rgb(&png);
        assert_eq!((w, h), (16, 16));
        assert_eq!(pixels.len(), 16 * 16 * 3);
        assert_eq!(&pixels[0..3], &[220, 30, 30]);
    }
}
