//! Rendering graph layouts to images.
//!
//! Deliberately decoupled from the layout crate: a renderer needs only the
//! coordinate arrays and an edge iterator, so this module takes exactly
//! those. "Edges are drawn as straight lines of fixed thickness" (§4.1).

use crate::color::{partition_color, Rgb};
use crate::raster::Canvas;

/// A defect in untrusted rendering input, reported by [`try_render_graph`]
/// instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RenderError {
    /// `x` and `y` have different lengths.
    CoordinateMismatch {
        /// Length of the `x` array.
        x_len: usize,
        /// Length of the `y` array.
        y_len: usize,
    },
    /// A coordinate is NaN or ±∞; names the offending vertex and axis.
    NonFiniteCoordinate {
        /// Vertex index with the bad coordinate.
        vertex: usize,
        /// `'x'` or `'y'`.
        axis: char,
    },
    /// An edge endpoint exceeds the vertex count.
    EdgeOutOfRange {
        /// The offending edge.
        edge: (u32, u32),
        /// Number of vertices implied by the coordinate arrays.
        n: usize,
    },
    /// The margin leaves no drawable area for the given canvas size.
    NoDrawableArea,
}

impl std::fmt::Display for RenderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::CoordinateMismatch { x_len, y_len } => {
                write!(f, "coordinate arrays must match: {x_len} x vs {y_len} y")
            }
            Self::NonFiniteCoordinate { vertex, axis } => {
                write!(f, "non-finite {axis} coordinate at vertex {vertex}")
            }
            Self::EdgeOutOfRange { edge: (u, v), n } => {
                write!(f, "edge ({u}, {v}) exceeds vertex count {n}")
            }
            Self::NoDrawableArea => write!(f, "margin leaves no drawable area"),
        }
    }
}

impl std::error::Error for RenderError {}

/// Rendering options.
#[derive(Clone, Copy, Debug)]
pub struct RenderOptions {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Blank border around the drawing, pixels.
    pub margin: u32,
    /// Background color.
    pub background: Rgb,
    /// Edge color (single-color mode).
    pub edge_color: Rgb,
    /// Radius for vertex discs; 0 disables vertex drawing.
    pub vertex_radius: f64,
    /// Anti-aliased (Xiaolin Wu) edges instead of hard Bresenham lines.
    pub antialias: bool,
    /// Vertex color.
    pub vertex_color: Rgb,
}

impl Default for RenderOptions {
    fn default() -> Self {
        Self {
            width: 800,
            height: 800,
            margin: 20,
            background: Rgb::WHITE,
            edge_color: Rgb(40, 40, 40),
            vertex_radius: 0.0,
            antialias: false,
            vertex_color: Rgb::RED,
        }
    }
}

/// Scales layout coordinates into the drawable area, preserving aspect.
fn scaled(x: &[f64], y: &[f64], opt: &RenderOptions) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(x.len(), y.len(), "coordinate arrays must match");
    assert!(
        2 * opt.margin < opt.width && 2 * opt.margin < opt.height,
        "margin leaves no drawable area"
    );
    let w = (opt.width - 2 * opt.margin) as f64;
    let h = (opt.height - 2 * opt.margin) as f64;
    let min_x = x.iter().copied().fold(f64::INFINITY, f64::min);
    let max_x = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min_y = y.iter().copied().fold(f64::INFINITY, f64::min);
    let max_y = y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max_x - min_x).max(max_y - min_y);
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // also catches NaN spans
    if !(span > 0.0) {
        let cx = opt.width as f64 / 2.0;
        let cy = opt.height as f64 / 2.0;
        return (vec![cx; x.len()], vec![cy; y.len()]);
    }
    let scale = w.min(h) / span;
    let off_x = opt.margin as f64 + (w - (max_x - min_x) * scale) / 2.0;
    let off_y = opt.margin as f64 + (h - (max_y - min_y) * scale) / 2.0;
    let sx = x.iter().map(|v| (v - min_x) * scale + off_x).collect();
    let sy = y.iter().map(|v| (v - min_y) * scale + off_y).collect();
    (sx, sy)
}

/// Renders a node-link drawing of a graph layout.
///
/// `edges` yields each undirected edge once; `x`/`y` are per-vertex
/// coordinates (any scale — they are fitted to the canvas).
///
/// # Panics
/// Panics if coordinate arrays mismatch or an edge endpoint is out of
/// range.
pub fn render_graph(
    edges: impl Iterator<Item = (u32, u32)>,
    x: &[f64],
    y: &[f64],
    opt: &RenderOptions,
) -> Canvas {
    // NaN coordinates are tolerated here for backward compatibility (the
    // scaler collapses a NaN span to the canvas center); use
    // [`try_render_graph`] to reject them with a diagnostic instead.
    let (sx, sy) = scaled(x, y, opt);
    let mut canvas = Canvas::new(opt.width, opt.height, opt.background);
    for (u, v) in edges {
        let (u, v) = (u as usize, v as usize);
        if opt.antialias {
            canvas.draw_line_aa(sx[u], sy[u], sx[v], sy[v], opt.edge_color);
        } else {
            canvas.draw_line(sx[u], sy[u], sx[v], sy[v], opt.edge_color);
        }
    }
    if opt.vertex_radius > 0.0 {
        for i in 0..sx.len() {
            canvas.draw_disc(sx[i], sy[i], opt.vertex_radius, opt.vertex_color);
        }
    }
    canvas
}

/// Guarded [`render_graph`] for untrusted input: validates the coordinate
/// arrays (matching lengths, all values finite — naming the first bad
/// vertex), every edge endpoint, and the margin/canvas geometry before
/// rendering, returning a typed [`RenderError`] instead of panicking or
/// silently collapsing a NaN layout to a blank image.
///
/// # Errors
/// See [`RenderError`].
pub fn try_render_graph(
    edges: impl Iterator<Item = (u32, u32)>,
    x: &[f64],
    y: &[f64],
    opt: &RenderOptions,
) -> Result<Canvas, RenderError> {
    if x.len() != y.len() {
        return Err(RenderError::CoordinateMismatch { x_len: x.len(), y_len: y.len() });
    }
    if !(2 * opt.margin < opt.width && 2 * opt.margin < opt.height) {
        return Err(RenderError::NoDrawableArea);
    }
    for (axis, coords) in [('x', x), ('y', y)] {
        if let Some(vertex) = coords.iter().position(|v| !v.is_finite()) {
            return Err(RenderError::NonFiniteCoordinate { vertex, axis });
        }
    }
    let n = x.len();
    let edges: Vec<(u32, u32)> = edges.collect();
    if let Some(&edge) = edges
        .iter()
        .find(|(u, v)| *u as usize >= n || *v as usize >= n)
    {
        return Err(RenderError::EdgeOutOfRange { edge, n });
    }
    Ok(render_graph(edges.into_iter(), x, y, opt))
}

/// Renders a partition-colored drawing (§4.5.4): intra-partition edges get
/// their partition's palette color, inter-partition edges are gray —
/// "these visualizations shed insights into the inner workings of
/// partitioning/clustering algorithms".
///
/// # Panics
/// Panics if `partition` is shorter than the vertex count.
pub fn render_partitioned(
    edges: impl Iterator<Item = (u32, u32)>,
    x: &[f64],
    y: &[f64],
    partition: &[u32],
    opt: &RenderOptions,
) -> Canvas {
    assert_eq!(partition.len(), x.len(), "partition labels per vertex");
    let (sx, sy) = scaled(x, y, opt);
    let mut canvas = Canvas::new(opt.width, opt.height, opt.background);
    // Draw inter-partition edges first so intra-partition structure stays
    // visible on top.
    let all: Vec<(u32, u32)> = edges.collect();
    for &(u, v) in &all {
        if partition[u as usize] != partition[v as usize] {
            let (u, v) = (u as usize, v as usize);
            canvas.draw_line(sx[u], sy[u], sx[v], sy[v], Rgb::GRAY);
        }
    }
    for &(u, v) in &all {
        if partition[u as usize] == partition[v as usize] {
            let color = partition_color(partition[u as usize]);
            let (u, v) = (u as usize, v as usize);
            canvas.draw_line(sx[u], sy[u], sx[v], sy[v], color);
        }
    }
    canvas
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_a_triangle() {
        let x = [0.0, 1.0, 0.5];
        let y = [0.0, 0.0, 1.0];
        let edges = [(0u32, 1u32), (1, 2), (2, 0)];
        let c = render_graph(edges.iter().copied(), &x, &y, &RenderOptions::default());
        assert!(c.count_not(Rgb::WHITE) > 100, "triangle should leave ink");
    }

    #[test]
    fn degenerate_layout_renders_blank_center_dot_only() {
        let x = [5.0, 5.0];
        let y = [5.0, 5.0];
        let opt = RenderOptions { vertex_radius: 1.0, ..Default::default() };
        let c = render_graph([(0u32, 1u32)].into_iter(), &x, &y, &opt);
        // Everything collapses to the center pixel neighborhood.
        assert!(c.count_not(Rgb::WHITE) < 30);
        assert_ne!(c.get_pixel(400, 400), Rgb::WHITE);
    }

    #[test]
    fn vertices_drawn_when_radius_positive() {
        let x = [0.0, 1.0];
        let y = [0.0, 1.0];
        let opt = RenderOptions { vertex_radius: 3.0, ..Default::default() };
        let c = render_graph(std::iter::empty(), &x, &y, &opt);
        assert!(c.count_not(Rgb::WHITE) >= 2, "vertex discs missing");
    }

    #[test]
    fn partition_rendering_uses_distinct_colors() {
        let x = [0.0, 1.0, 0.0, 1.0];
        let y = [0.0, 0.0, 1.0, 1.0];
        let edges = [(0u32, 1u32), (2, 3), (0, 2)];
        let parts = [0u32, 0, 1, 1];
        let c = render_partitioned(
            edges.iter().copied(),
            &x,
            &y,
            &parts,
            &RenderOptions::default(),
        );
        // Expect at least three distinct non-background colors: two
        // partition colors plus gray.
        let mut seen = std::collections::HashSet::new();
        for px in 0..c.width() {
            for py in 0..c.height() {
                let p = c.get_pixel(px, py);
                if p != Rgb::WHITE {
                    seen.insert((p.0, p.1, p.2));
                }
            }
        }
        assert!(seen.len() >= 3, "saw colors: {seen:?}");
    }

    #[test]
    fn margin_is_respected() {
        let x = [0.0, 1.0];
        let y = [0.0, 1.0];
        let opt = RenderOptions { margin: 50, ..Default::default() };
        let c = render_graph([(0u32, 1u32)].into_iter(), &x, &y, &opt);
        for i in 0..c.width() {
            for m in 0..40u32 {
                assert_eq!(c.get_pixel(i, m), Rgb::WHITE, "ink in top margin");
            }
        }
    }

    #[test]
    #[should_panic(expected = "no drawable area")]
    fn absurd_margin_rejected() {
        let opt = RenderOptions { margin: 500, width: 100, height: 100, ..Default::default() };
        render_graph(std::iter::empty(), &[0.0], &[0.0], &opt);
    }

    #[test]
    fn try_render_rejects_poison_typed() {
        let opt = RenderOptions::default();
        assert_eq!(
            try_render_graph(std::iter::empty(), &[0.0], &[0.0, 1.0], &opt).unwrap_err(),
            RenderError::CoordinateMismatch { x_len: 1, y_len: 2 }
        );
        assert_eq!(
            try_render_graph(std::iter::empty(), &[0.0, f64::NAN], &[0.0, 1.0], &opt)
                .unwrap_err(),
            RenderError::NonFiniteCoordinate { vertex: 1, axis: 'x' }
        );
        assert_eq!(
            try_render_graph([(0u32, 9u32)].into_iter(), &[0.0, 1.0], &[0.0, 1.0], &opt)
                .unwrap_err(),
            RenderError::EdgeOutOfRange { edge: (0, 9), n: 2 }
        );
        let bad = RenderOptions { margin: 500, width: 100, height: 100, ..Default::default() };
        assert_eq!(
            try_render_graph(std::iter::empty(), &[0.0], &[0.0], &bad).unwrap_err(),
            RenderError::NoDrawableArea
        );
    }

    #[test]
    fn try_render_matches_panicking_render_on_good_input() {
        let x = [0.0, 1.0, 0.5];
        let y = [0.0, 0.0, 1.0];
        let edges = [(0u32, 1u32), (1, 2), (2, 0)];
        let opt = RenderOptions::default();
        let a = try_render_graph(edges.iter().copied(), &x, &y, &opt).unwrap();
        let b = render_graph(edges.iter().copied(), &x, &y, &opt);
        assert_eq!(a.count_not(Rgb::WHITE), b.count_not(Rgb::WHITE));
    }
}

#[cfg(test)]
mod aa_tests {
    use super::*;
    use crate::color::Rgb;

    #[test]
    fn antialiased_rendering_produces_gray_coverage() {
        let x = [0.0, 1.0];
        let y = [0.0, 0.43];
        let opt = RenderOptions {
            width: 120,
            height: 120,
            antialias: true,
            edge_color: Rgb::BLACK,
            ..RenderOptions::default()
        };
        let c = render_graph([(0u32, 1u32)].into_iter(), &x, &y, &opt);
        let mut grays = 0;
        for px in 0..c.width() {
            for py in 0..c.height() {
                let p = c.get_pixel(px, py);
                if p != Rgb::WHITE && p != Rgb::BLACK {
                    grays += 1;
                }
            }
        }
        assert!(grays > 5, "AA mode should blend edge pixels, saw {grays}");
    }
}
