//! Edge-list ingestion and CSR construction.
//!
//! Implements the paper's preprocessing contract (§4.1): "we preprocess the
//! matrices and graphs to remove self loops and parallel edges. We also
//! ignore edge direction for directed graphs". Construction is sort-based
//! and parallel: arcs for both directions are materialized, sorted with
//! rayon's parallel sort, deduplicated, and sliced into CSR.

use crate::csr::{CsrGraph, WeightedCsr};
use rayon::prelude::*;

/// Accumulates (possibly messy) edges and builds a clean [`CsrGraph`].
///
/// Accepts self-loops, duplicates, and both orientations of the same edge;
/// all are normalized away at [`GraphBuilder::build`] time.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        assert!(
            num_vertices <= u32::MAX as usize,
            "vertex identifiers are u32"
        );
        Self { num_vertices, edges: Vec::new() }
    }

    /// Creates a builder with pre-reserved capacity for `num_edges` edges.
    pub fn with_capacity(num_vertices: usize, num_edges: usize) -> Self {
        let mut b = Self::new(num_vertices);
        b.edges.reserve(num_edges);
        b
    }

    /// Adds an undirected edge; direction and duplicates are irrelevant.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    #[inline]
    pub fn add_edge(&mut self, u: u32, v: u32) {
        debug_assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge ({u},{v}) out of range for n={}",
            self.num_vertices
        );
        self.edges.push((u, v));
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges(&mut self, it: impl IntoIterator<Item = (u32, u32)>) {
        self.edges.extend(it);
    }

    /// Number of raw (pre-normalization) edges added so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Builds the CSR graph: symmetrizes, removes self-loops and parallel
    /// edges, and produces sorted adjacency lists.
    pub fn build(self) -> CsrGraph {
        build_from_edges(self.num_vertices, self.edges)
    }
}

/// Builds a clean undirected CSR graph from an arbitrary edge list
/// (self-loops and duplicates permitted; they are removed).
pub fn build_from_edges(num_vertices: usize, edges: Vec<(u32, u32)>) -> CsrGraph {
    assert!(
        num_vertices <= u32::MAX as usize + 1,
        "vertex count {num_vertices} exceeds the u32 vertex-id space"
    );
    // Materialize both arc directions, dropping self-loops.
    let mut arcs: Vec<(u32, u32)> = Vec::with_capacity(edges.len() * 2);
    for &(u, v) in &edges {
        assert!(
            (u as usize) < num_vertices && (v as usize) < num_vertices,
            "edge ({u},{v}) out of range for n={num_vertices}"
        );
        if u != v {
            arcs.push((u, v));
            arcs.push((v, u));
        }
    }
    drop(edges);
    arcs.par_sort_unstable();
    arcs.dedup();

    let mut offsets = vec![0usize; num_vertices + 1];
    for &(u, _) in &arcs {
        offsets[u as usize + 1] += 1;
    }
    for i in 0..num_vertices {
        offsets[i + 1] += offsets[i];
    }
    let adj: Vec<u32> = arcs.iter().map(|&(_, v)| v).collect();
    CsrGraph::from_parts_unchecked(offsets, adj)
}

/// Builds a weighted undirected CSR graph from `(u, v, w)` triples.
///
/// Self-loops are dropped. When parallel edges appear (in either direction),
/// the **minimum** weight wins — matching shortest-path semantics, where a
/// heavier parallel edge can never matter.
///
/// # Panics
/// Panics if an endpoint is out of range or a weight is negative/non-finite.
pub fn build_weighted_from_edges(
    num_vertices: usize,
    edges: Vec<(u32, u32, f64)>,
) -> WeightedCsr {
    let mut arcs: Vec<(u32, u32, f64)> = Vec::with_capacity(edges.len() * 2);
    for &(u, v, w) in &edges {
        assert!(
            (u as usize) < num_vertices && (v as usize) < num_vertices,
            "edge ({u},{v}) out of range for n={num_vertices}"
        );
        assert!(w.is_finite() && w >= 0.0, "weight {w} must be finite, ≥ 0");
        if u != v {
            arcs.push((u, v, w));
            arcs.push((v, u, w));
        }
    }
    drop(edges);
    // Sort by (u, v, w): after dedup-by-endpoint the first (minimal-weight)
    // copy of each arc survives.
    arcs.par_sort_unstable_by(|a, b| {
        (a.0, a.1)
            .cmp(&(b.0, b.1))
            .then(a.2.partial_cmp(&b.2).expect("weights are finite"))
    });
    arcs.dedup_by_key(|&mut (u, v, _)| (u, v));

    let mut offsets = vec![0usize; num_vertices + 1];
    for &(u, _, _) in &arcs {
        offsets[u as usize + 1] += 1;
    }
    for i in 0..num_vertices {
        offsets[i + 1] += offsets[i];
    }
    let adj: Vec<u32> = arcs.iter().map(|&(_, v, _)| v).collect();
    let weights: Vec<f64> = arcs.iter().map(|&(_, _, w)| w).collect();
    let graph = CsrGraph::from_parts_unchecked(offsets, adj);
    WeightedCsr::from_parts_unchecked(graph, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_deduplicates_and_symmetrizes() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // reverse duplicate
        b.add_edge(0, 1); // exact duplicate
        b.add_edge(2, 2); // self loop
        b.add_edge(3, 1);
        assert_eq!(b.raw_edge_count(), 5);
        let g = b.build();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 3]);
        assert!(g.has_edge(1, 3) && g.has_edge(3, 1));
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn builder_validates_against_csr_invariants() {
        // Round-trip through the validating constructor.
        let mut b = GraphBuilder::new(5);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let check = CsrGraph::new(g.offsets().to_vec(), g.adjacency().to_vec());
        assert_eq!(check.num_edges(), 10);
    }

    #[test]
    fn adjacency_lists_are_sorted() {
        let g = build_from_edges(5, vec![(4, 0), (2, 0), (0, 3), (1, 0)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn empty_builder_builds_edgeless_graph() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn extend_edges_accepts_iterator() {
        let mut b = GraphBuilder::with_capacity(3, 2);
        b.extend_edges([(0, 1), (1, 2)]);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        build_from_edges(2, vec![(0, 5)]);
    }

    #[test]
    fn weighted_build_min_weight_wins() {
        let w = build_weighted_from_edges(
            3,
            vec![(0, 1, 5.0), (1, 0, 2.0), (1, 2, 1.0), (1, 1, 9.0)],
        );
        assert_eq!(w.num_edges(), 2);
        assert_eq!(w.weight(0, 1), Some(2.0));
        assert_eq!(w.weight(1, 0), Some(2.0));
        assert_eq!(w.weight(1, 2), Some(1.0));
        // Validate symmetry through the checking constructor.
        let revalidated = WeightedCsr::new(w.graph().clone(), w.weights().to_vec());
        assert_eq!(revalidated.weighted_degree(1), 3.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn weighted_build_rejects_nan() {
        build_weighted_from_edges(2, vec![(0, 1, f64::NAN)]);
    }

    #[test]
    fn large_random_build_roundtrip() {
        use parhde_util::Xoshiro256StarStar;
        let mut rng = Xoshiro256StarStar::seed_from_u64(99);
        let n = 500usize;
        let edges: Vec<(u32, u32)> = (0..4000)
            .map(|_| (rng.next_index(n) as u32, rng.next_index(n) as u32))
            .collect();
        let g = build_from_edges(n, edges);
        // Full invariant validation.
        let _ = CsrGraph::new(g.offsets().to_vec(), g.adjacency().to_vec());
    }
}
