//! Graph coarsening by edge matching — the multilevel substrate.
//!
//! The paper's prior work ran HDE "in a multilevel setup" [27, 33] and its
//! future work plans "to adapt ParHDE to be compatible with the multilevel
//! approach". The standard machinery is implemented here: a maximal
//! matching contracts matched pairs into coarse vertices, repeatedly, until
//! the graph is small; layouts computed on the coarse graph are prolonged
//! back through the mapping.

use crate::csr::CsrGraph;
use parhde_util::Xoshiro256StarStar;

/// One coarsening step: the coarse graph and the fine→coarse vertex map.
#[derive(Clone, Debug)]
pub struct Coarsening {
    /// The contracted graph (self-loops and parallel edges removed).
    pub coarse: CsrGraph,
    /// `map[fine] = coarse` vertex id.
    pub map: Vec<u32>,
}

/// Contracts a maximal matching chosen by randomized heavy-neighbor
/// preference: vertices are visited in random order; an unmatched vertex
/// matches its lowest-degree unmatched neighbor (low degree first keeps the
/// coarse degree distribution tame). Unmatched vertices survive alone.
///
/// # Panics
/// Panics on an empty graph.
pub fn coarsen_matching(g: &CsrGraph, seed: u64) -> Coarsening {
    let n = g.num_vertices();
    assert!(n > 0, "cannot coarsen an empty graph");
    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    Xoshiro256StarStar::seed_from_u64(seed ^ 0xC0A4).shuffle(&mut order);
    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        let mut best: Option<u32> = None;
        for &u in g.neighbors(v) {
            if mate[u as usize] == UNMATCHED {
                best = match best {
                    Some(b) if g.degree(b) <= g.degree(u) => Some(b),
                    _ => Some(u),
                };
            }
        }
        if let Some(u) = best {
            mate[v as usize] = u;
            mate[u as usize] = v;
        } else {
            mate[v as usize] = v; // matched with itself
        }
    }

    // Assign coarse ids: the lower endpoint of each matched pair owns the
    // coarse vertex; ids ascend with fine ids, preserving ordering locality.
    let mut map = vec![0u32; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        let m = mate[v as usize];
        if m >= v {
            map[v as usize] = next;
            next += 1;
        } else {
            map[v as usize] = map[m as usize];
        }
    }
    let coarse_n = next as usize;
    let edges: Vec<(u32, u32)> = g
        .edges()
        .map(|(u, v)| (map[u as usize], map[v as usize]))
        .filter(|&(a, b)| a != b)
        .collect();
    Coarsening {
        coarse: crate::builder::build_from_edges(coarse_n, edges),
        map,
    }
}

/// A full coarsening hierarchy, finest first.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// Graphs from finest (the input) to coarsest.
    pub graphs: Vec<CsrGraph>,
    /// `maps[l][v_fine] = v_coarse` between `graphs[l]` and `graphs[l+1]`.
    pub maps: Vec<Vec<u32>>,
}

/// Builds a hierarchy by repeated matching contraction until the graph has
/// at most `min_vertices` vertices, contraction stalls (a contraction that
/// removes under 10% of vertices stops the process), or `max_levels` is
/// reached.
///
/// # Panics
/// Panics if `min_vertices` is zero.
pub fn build_hierarchy(
    g: &CsrGraph,
    min_vertices: usize,
    max_levels: usize,
    seed: u64,
) -> Hierarchy {
    assert!(min_vertices > 0, "min_vertices must be positive");
    let mut graphs = vec![g.clone()];
    let mut maps = Vec::new();
    for level in 0..max_levels {
        let current = graphs.last().unwrap();
        if current.num_vertices() <= min_vertices {
            break;
        }
        let step = coarsen_matching(current, seed.wrapping_add(level as u64));
        let shrink = step.coarse.num_vertices() as f64 / current.num_vertices() as f64;
        if shrink > 0.9 {
            break; // stalled (e.g. a star graph matches almost nothing)
        }
        maps.push(step.map);
        graphs.push(step.coarse);
    }
    Hierarchy { graphs, maps }
}

impl Hierarchy {
    /// Number of levels (≥ 1; level 0 is the input graph).
    pub fn levels(&self) -> usize {
        self.graphs.len()
    }

    /// The coarsest graph.
    pub fn coarsest(&self) -> &CsrGraph {
        self.graphs.last().expect("hierarchy is never empty")
    }

    /// Prolongs per-vertex values from level `l+1` to level `l` (each fine
    /// vertex takes its coarse vertex's value).
    ///
    /// # Panics
    /// Panics if `l+1` is out of range or sizes mismatch.
    pub fn prolong(&self, l: usize, coarse_values: &[f64]) -> Vec<f64> {
        let map = &self.maps[l];
        assert_eq!(
            coarse_values.len(),
            self.graphs[l + 1].num_vertices(),
            "coarse value length mismatch"
        );
        map.iter().map(|&c| coarse_values[c as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{chain, complete, grid2d, star};
    use crate::prep::is_connected;

    #[test]
    fn matching_halves_a_chain() {
        let g = chain(100);
        let c = coarsen_matching(&g, 1);
        // A path has a near-perfect matching: the coarse graph is between
        // n/2 and ~0.7n vertices.
        assert!(c.coarse.num_vertices() >= 50);
        assert!(c.coarse.num_vertices() <= 70);
        assert!(is_connected(&c.coarse));
    }

    #[test]
    fn map_is_surjective_onto_coarse_ids() {
        let g = grid2d(12, 12);
        let c = coarsen_matching(&g, 3);
        let mut seen = vec![false; c.coarse.num_vertices()];
        for &m in &c.map {
            seen[m as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "coarse ids must all be used");
    }

    #[test]
    fn contraction_preserves_connectivity() {
        for g in [grid2d(20, 20), complete(30), chain(64)] {
            let c = coarsen_matching(&g, 7);
            assert!(is_connected(&c.coarse));
        }
    }

    #[test]
    fn coarse_edges_come_from_fine_edges() {
        let g = grid2d(8, 8);
        let c = coarsen_matching(&g, 5);
        for (a, b) in c.coarse.edges() {
            // There must exist a fine edge mapping onto (a, b).
            let witness = g.edges().any(|(u, v)| {
                let (mu, mv) = (c.map[u as usize], c.map[v as usize]);
                (mu, mv) == (a, b) || (mv, mu) == (a, b)
            });
            assert!(witness, "coarse edge ({a},{b}) has no fine witness");
        }
    }

    #[test]
    fn hierarchy_reaches_target_size() {
        let g = grid2d(40, 40);
        let h = build_hierarchy(&g, 100, 20, 1);
        assert!(h.coarsest().num_vertices() <= 100);
        assert!(h.levels() >= 3);
        // Sizes strictly decrease.
        for w in h.graphs.windows(2) {
            assert!(w[1].num_vertices() < w[0].num_vertices());
        }
    }

    #[test]
    fn hierarchy_stalls_gracefully_on_star() {
        // A star matches only one pair per level from the hub; contraction
        // stalls and the builder must stop rather than loop.
        let g = star(1000);
        let h = build_hierarchy(&g, 10, 50, 2);
        assert!(h.levels() <= 3);
    }

    #[test]
    fn prolong_broadcasts_coarse_values() {
        let g = chain(10);
        let h = build_hierarchy(&g, 4, 10, 3);
        let coarse_vals: Vec<f64> = (0..h.graphs[1].num_vertices())
            .map(|i| i as f64)
            .collect();
        let fine = h.prolong(0, &coarse_vals);
        assert_eq!(fine.len(), 10);
        for (v, &val) in fine.iter().enumerate() {
            assert_eq!(val, coarse_vals[h.maps[0][v] as usize]);
        }
    }
}
