//! Byte-coded gap-compressed CSR and the `PHDEGRF` v1 snapshot format.
//!
//! The Figure 2 analysis ([`crate::gaps`]) shows adjacency gaps of real and
//! synthetic graphs concentrate at small values — exactly the regime where
//! GBBS-style byte codes shine. [`CompressedCsr`] stores each vertex's
//! sorted neighbor list as a *gap-coded varint block*:
//!
//! * the first neighbor is stored as the zigzag varint of `v₁ − v` (signed:
//!   a vertex's first neighbor may precede it);
//! * every subsequent neighbor is stored as the varint of `vᵢ − vᵢ₋₁ − 1`
//!   (gaps are ≥ 1 because lists are strictly ascending, so the code spends
//!   its cheapest symbol, `0x00`, on the most common gap).
//!
//! Varints are LEB128: 7 value bits per byte, high bit set on continuation.
//! A gap < 128 — the overwhelming majority after Figure 2 — costs one byte
//! instead of the four a `u32` costs in plain CSR.
//!
//! Blocks are addressed by a `(n+1)`-entry byte-offset array plus an
//! `n`-entry degree array, both kept uncompressed in RAM (O(1) degree is
//! load-bearing for the BFS planner, direction-optimizing scout counts and
//! `degree_vector`). The blocks themselves live either on the heap or
//! behind a read-only file mapping of a `PHDEGRF` v1 snapshot, so graphs
//! whose *adjacency* exceeds RAM stream through BFS/SpMM page by page.
//!
//! # `PHDEGRF` v1 snapshot layout (little-endian)
//!
//! ```text
//! magic       8 bytes   b"PHDEGRF1"
//! checksum    u64       FNV-1a over every byte after this field
//! n           u64       number of vertices
//! m           u64       number of undirected edges
//! blocks_len  u64       total bytes of the varint block region
//! max_degree  u64       maximum degree (validated against the blocks)
//! offsets     (n+1)·u64 byte offset of each vertex's block
//! degrees     n·u32     degree of each vertex
//! blocks      blocks_len bytes of gap-coded varint data
//! ```
//!
//! Snapshots are written with the same tmp + fsync + rename + dirsync
//! ladder the serve cache uses (DESIGN.md §16.4), so a crash never
//! publishes a torn file, and readers may treat a present snapshot as
//! immutable — the safety contract the mmap path relies on.
//!
//! Reading is fully defensive (mirrors [`crate::io::binary`] and the
//! checkpoint reader): declared sizes are checked against the real payload
//! length with overflow-safe arithmetic *before any allocation*, the
//! checksum is verified, and every block is decoded once to validate
//! sortedness, range and degree agreement. Per-list invariants are fully
//! checked; cross-list symmetry is the writer's contract (checking it
//! would cost O(m·deg) decodes — the checksum plus the durable writer
//! stand in for it, and kernels remain memory-safe regardless).

use crate::csr::CsrGraph;
use crate::io::GraphIoError;
use crate::store::{GraphStore, NeighborScratch, StorageKind};
use rayon::prelude::*;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// The 8-byte `PHDEGRF` v1 snapshot magic. Callers sniff this on raw file
/// bytes to route packed inputs before attempting any text decode.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"PHDEGRF1";
/// Bytes before the offsets array: magic + checksum + n + m + blocks_len +
/// max_degree.
const HEADER_LEN: usize = 48;

// ---------------------------------------------------------------------------
// Varint codec
// ---------------------------------------------------------------------------

/// Encoded length of `x` as a LEB128 varint (1–10 bytes).
#[inline]
pub fn varint_len(x: u64) -> usize {
    // ⌈bits/7⌉ with a 1-byte floor for x == 0.
    (64 - (x | 1).leading_zeros() as usize).div_ceil(7)
}

/// Appends the LEB128 encoding of `x` to `out`.
#[inline]
fn push_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let b = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Reads one LEB128 varint at `*pos`, advancing it. `None` on truncation
/// or a continuation chain longer than a u64 can hold.
#[inline]
fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        x |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(x);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Zigzag-maps a signed delta to an unsigned varint payload.
#[inline]
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

/// Appends the gap-coded block for vertex `v` with sorted neighbors `nbrs`.
fn encode_block(v: u32, nbrs: &[u32], out: &mut Vec<u8>) {
    let Some((&first, rest)) = nbrs.split_first() else {
        return;
    };
    push_varint(out, zigzag(first as i64 - v as i64));
    let mut prev = first;
    for &u in rest {
        push_varint(out, (u - prev - 1) as u64);
        prev = u;
    }
}

/// Exact encoded byte length of the block [`encode_block`] would emit.
pub(crate) fn encoded_block_len(v: u32, nbrs: &[u32]) -> usize {
    let Some((&first, rest)) = nbrs.split_first() else {
        return 0;
    };
    let mut len = varint_len(zigzag(first as i64 - v as i64));
    let mut prev = first;
    for &u in rest {
        len += varint_len((u - prev - 1) as u64);
        prev = u;
    }
    len
}

/// Decodes the block of vertex `v` into `out` (cleared first), validating
/// every structural invariant: exactly `deg` neighbors consuming exactly
/// the whole block, strictly ascending, in `[0, n)`, never `v` itself.
fn decode_block_into(
    v: u32,
    deg: usize,
    n: usize,
    block: &[u8],
    out: &mut Vec<u32>,
) -> Result<(), &'static str> {
    out.clear();
    if deg == 0 {
        return if block.is_empty() { Ok(()) } else { Err("bytes in a degree-0 block") };
    }
    out.reserve(deg);
    let mut pos = 0usize;
    let first = unzigzag(read_varint(block, &mut pos).ok_or("truncated varint")?)
        .checked_add(v as i64)
        .ok_or("first-neighbor delta overflows")?;
    if first < 0 || first as u64 >= n as u64 {
        return Err("neighbor out of range");
    }
    if first == v as i64 {
        return Err("self-loop");
    }
    let mut prev = first as u32;
    out.push(prev);
    for _ in 1..deg {
        let gap = read_varint(block, &mut pos).ok_or("truncated varint")?;
        let next = (prev as u64)
            .checked_add(gap)
            .and_then(|x| x.checked_add(1))
            .ok_or("gap overflows")?;
        if next >= n as u64 {
            return Err("neighbor out of range");
        }
        prev = next as u32;
        out.push(prev);
    }
    if pos != block.len() {
        return Err("trailing bytes after last neighbor");
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Read-only file mappings (dependency-free mmap)
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod mapping {
    //! A minimal read-only `mmap(2)` wrapper declared directly against the
    //! C library (the workspace adds no dependencies). The mapping is
    //! `PROT_READ`/`MAP_PRIVATE`; since snapshots are published by atomic
    //! rename and never mutated in place, the bytes behind the mapping are
    //! stable for its lifetime.

    use std::fs::File;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 0x1;
    const MAP_PRIVATE: c_int = 0x2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// An owned read-only mapping of a whole file.
    #[derive(Debug)]
    pub struct MmapRegion {
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is read-only and owned; sharing &self across threads only
    // ever reads immutable bytes.
    unsafe impl Send for MmapRegion {}
    unsafe impl Sync for MmapRegion {}

    impl MmapRegion {
        /// Maps `file` (of known size `len`) read-only.
        pub fn map(file: &File, len: usize) -> std::io::Result<MmapRegion> {
            if len == 0 {
                // mmap(2) rejects zero-length maps; model it as a dangling
                // empty region.
                return Ok(MmapRegion { ptr: std::ptr::null_mut(), len: 0 });
            }
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as usize == usize::MAX {
                return Err(std::io::Error::last_os_error());
            }
            Ok(MmapRegion { ptr, len })
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }

        /// Mapping size in bytes.
        pub fn len(&self) -> usize {
            self.len
        }
    }

    impl Drop for MmapRegion {
        fn drop(&mut self) {
            if self.len != 0 {
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// CompressedCsr
// ---------------------------------------------------------------------------

/// Where the varint block region physically lives.
enum Blocks {
    /// Blocks held in RAM.
    Heap(Vec<u8>),
    /// Blocks behind a read-only file mapping (`blocks` region starts at
    /// `start` within the mapping).
    #[cfg(unix)]
    Mapped { map: mapping::MmapRegion, start: usize },
}

impl Blocks {
    fn bytes(&self) -> &[u8] {
        match self {
            Blocks::Heap(v) => v,
            #[cfg(unix)]
            Blocks::Mapped { map, start } => &map.as_slice()[*start..],
        }
    }
}

impl std::fmt::Debug for Blocks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Blocks::Heap(v) => write!(f, "Blocks::Heap({} bytes)", v.len()),
            #[cfg(unix)]
            Blocks::Mapped { map, start } => {
                write!(f, "Blocks::Mapped({} bytes)", map.len() - start)
            }
        }
    }
}

/// An undirected simple graph with byte-coded gap-compressed adjacency.
///
/// Structurally equivalent to a [`CsrGraph`] — same invariants, same
/// neighbor order — but the adjacency array is stored as per-vertex varint
/// gap blocks (see the module docs), decoded on demand into a
/// [`NeighborScratch`]. Construct with [`CompressedCsr::from_csr`], or
/// reopen a packed snapshot with [`CompressedCsr::open_heap`] /
/// [`CompressedCsr::open_mmap`].
#[derive(Debug)]
pub struct CompressedCsr {
    n: usize,
    m: usize,
    max_degree: usize,
    /// Byte offset of each vertex's block; `n + 1` entries.
    offsets: Vec<u64>,
    /// Degree of each vertex; `n` entries.
    degrees: Vec<u32>,
    blocks: Blocks,
    /// Telemetry: number of `neighbors_in`/`neighbors_while` decode calls.
    decode_calls: AtomicU64,
    /// Telemetry: total neighbor entries decoded (early exits count only
    /// what was actually produced).
    decoded_arcs: AtomicU64,
}

impl CompressedCsr {
    /// Compresses an in-RAM CSR graph. O(m); the input is not consumed.
    pub fn from_csr(g: &CsrGraph) -> CompressedCsr {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut degrees = Vec::with_capacity(n);
        // Typical Figure 2 graphs land between 1 and 2 bytes per arc.
        let mut blocks = Vec::with_capacity(g.num_arcs() + g.num_arcs() / 2);
        offsets.push(0u64);
        for v in 0..n as u32 {
            let nbrs = g.neighbors(v);
            encode_block(v, nbrs, &mut blocks);
            offsets.push(blocks.len() as u64);
            degrees.push(nbrs.len() as u32);
        }
        blocks.shrink_to_fit();
        CompressedCsr {
            n,
            m: g.num_edges(),
            max_degree: g.max_degree(),
            offsets,
            degrees,
            blocks: Blocks::Heap(blocks),
            decode_calls: AtomicU64::new(0),
            decoded_arcs: AtomicU64::new(0),
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Number of stored directed arcs (`2m`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        2 * self.m
    }

    /// Degree of vertex `v` — O(1), from the uncompressed degree array.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.degrees[v as usize] as usize
    }

    /// Maximum degree (recorded at pack time, validated on open).
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Total bytes of the varint block region.
    pub fn encoded_bytes(&self) -> usize {
        self.blocks.bytes().len()
    }

    /// Average encoded bytes per stored arc.
    pub fn bytes_per_arc(&self) -> f64 {
        if self.num_arcs() == 0 {
            0.0
        } else {
            self.encoded_bytes() as f64 / self.num_arcs() as f64
        }
    }

    /// Adjacency compression ratio: plain `u32` adjacency bytes over
    /// encoded block bytes (> 1 means the code is winning).
    pub fn compression_ratio(&self) -> f64 {
        if self.encoded_bytes() == 0 {
            1.0
        } else {
            (self.num_arcs() * 4) as f64 / self.encoded_bytes() as f64
        }
    }

    /// Decompresses back to a plain [`CsrGraph`] (tests and tooling; the
    /// kernels never need this).
    pub fn to_csr(&self) -> CsrGraph {
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut adj = Vec::with_capacity(self.num_arcs());
        offsets.push(0usize);
        let mut scratch = NeighborScratch::new();
        for v in 0..self.n as u32 {
            adj.extend_from_slice(self.neighbors_in(v, &mut scratch));
            offsets.push(adj.len());
        }
        CsrGraph::from_parts_unchecked(offsets, adj)
    }

    /// Decode telemetry: `(calls, arcs)` — how many neighbor-list decodes
    /// have run and how many neighbor entries they produced.
    pub fn decode_stats(&self) -> (u64, u64) {
        (
            self.decode_calls.load(Ordering::Relaxed),
            self.decoded_arcs.load(Ordering::Relaxed),
        )
    }

    // -- Snapshot I/O -------------------------------------------------------

    /// Serializes to the `PHDEGRF` v1 byte image.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let blocks = self.blocks.bytes();
        let total = HEADER_LEN + (self.n + 1) * 8 + self.n * 4 + blocks.len();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&[0u8; 8]); // checksum patched below
        out.extend_from_slice(&(self.n as u64).to_le_bytes());
        out.extend_from_slice(&(self.m as u64).to_le_bytes());
        out.extend_from_slice(&(blocks.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.max_degree as u64).to_le_bytes());
        for &o in &self.offsets {
            out.extend_from_slice(&o.to_le_bytes());
        }
        for &d in &self.degrees {
            out.extend_from_slice(&d.to_le_bytes());
        }
        out.extend_from_slice(blocks);
        let sum = fnv64(&out[16..]);
        out[8..16].copy_from_slice(&sum.to_le_bytes());
        out
    }

    /// Writes a `PHDEGRF` v1 snapshot durably: stage to `<path>.tmp`,
    /// fsync the staging file, rename into place, fsync the parent
    /// directory — the ladder of DESIGN.md §16.4, so a crash never leaves
    /// a torn snapshot under the final name.
    ///
    /// # Errors
    /// Propagates I/O errors from any rung.
    pub fn write_snapshot(&self, path: &Path) -> std::io::Result<()> {
        use std::io::Write;
        let bytes = self.snapshot_bytes();
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        let tmp = path.with_extension("phdegrf.tmp");
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = dir {
            #[cfg(unix)]
            std::fs::File::open(dir)?.sync_all()?;
            #[cfg(not(unix))]
            let _ = dir;
        }
        Ok(())
    }

    /// Parses a snapshot from an in-RAM byte image, holding the block
    /// region on the heap.
    ///
    /// # Errors
    /// Any structural, size or checksum defect as a typed [`GraphIoError`];
    /// never panics and never allocates more than the payload justifies.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<CompressedCsr, GraphIoError> {
        let parsed = parse_snapshot(bytes)?;
        let blocks = bytes[parsed.blocks_start..].to_vec();
        Ok(parsed.into_compressed(Blocks::Heap(blocks)))
    }

    /// Opens a snapshot file fully into RAM (block region on the heap).
    ///
    /// # Errors
    /// I/O errors as [`GraphIoError::Invalid`]; format defects typed.
    pub fn open_heap(path: &Path) -> Result<CompressedCsr, GraphIoError> {
        let bytes = std::fs::read(path)
            .map_err(|e| GraphIoError::Invalid(format!("reading {}: {e}", path.display())))?;
        Self::from_snapshot_bytes(&bytes)
    }

    /// Opens a snapshot file with the block region mmap-backed: only the
    /// offset and degree arrays are copied into RAM; adjacency bytes
    /// stream from the page cache on demand, so the graph may exceed RAM.
    ///
    /// Validation is identical to [`open_heap`](Self::open_heap) — one
    /// sequential pass over the mapping (checksum + per-block decode
    /// check), after which pages may be evicted and re-faulted freely.
    ///
    /// On non-unix platforms this falls back to [`open_heap`](Self::open_heap).
    ///
    /// # Errors
    /// I/O errors as [`GraphIoError::Invalid`]; format defects typed.
    #[cfg(unix)]
    pub fn open_mmap(path: &Path) -> Result<CompressedCsr, GraphIoError> {
        let file = std::fs::File::open(path)
            .map_err(|e| GraphIoError::Invalid(format!("opening {}: {e}", path.display())))?;
        let len = file
            .metadata()
            .map_err(|e| GraphIoError::Invalid(format!("stat {}: {e}", path.display())))?
            .len();
        let len = usize::try_from(len)
            .map_err(|_| GraphIoError::Invalid("snapshot larger than address space".into()))?;
        let map = mapping::MmapRegion::map(&file, len)
            .map_err(|e| GraphIoError::Invalid(format!("mmap {}: {e}", path.display())))?;
        let parsed = parse_snapshot(map.as_slice())?;
        let start = parsed.blocks_start;
        Ok(parsed.into_compressed(Blocks::Mapped { map, start }))
    }

    /// Opens a snapshot file (non-unix fallback: fully in RAM).
    #[cfg(not(unix))]
    pub fn open_mmap(path: &Path) -> Result<CompressedCsr, GraphIoError> {
        Self::open_heap(path)
    }
}

/// FNV-1a over a byte slice (the checkpoint/cache digest function).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything [`parse_snapshot`] extracts before the block storage choice.
struct ParsedSnapshot {
    n: usize,
    m: usize,
    max_degree: usize,
    offsets: Vec<u64>,
    degrees: Vec<u32>,
    blocks_start: usize,
}

impl ParsedSnapshot {
    fn into_compressed(self, blocks: Blocks) -> CompressedCsr {
        CompressedCsr {
            n: self.n,
            m: self.m,
            max_degree: self.max_degree,
            offsets: self.offsets,
            degrees: self.degrees,
            blocks,
            decode_calls: AtomicU64::new(0),
            decoded_arcs: AtomicU64::new(0),
        }
    }
}

/// Defensive `PHDEGRF` v1 parse + full validation over a byte image
/// (heap-resident or mmapped). See the module docs for the threat model.
fn parse_snapshot(bytes: &[u8]) -> Result<ParsedSnapshot, GraphIoError> {
    if bytes.len() < HEADER_LEN || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(GraphIoError::Header(
            "bad magic: not a PHDEGRF graph snapshot".into(),
        ));
    }
    let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap_or([0; 8]));
    let checksum = u64_at(8);
    let n64 = u64_at(16);
    let m64 = u64_at(24);
    let blocks_len64 = u64_at(32);
    let max_degree64 = u64_at(40);

    // Vertex ids are u32; anything larger cannot address its own edges.
    if n64 > u32::MAX as u64 + 1 {
        return Err(GraphIoError::TooLarge {
            what: "vertex count",
            value: n64,
            max: u32::MAX as u64 + 1,
        });
    }
    let n = n64 as usize;
    // Declared sizes are untrusted: establish the exact required payload
    // length with overflow-safe arithmetic before allocating anything.
    let blocks_len = usize::try_from(blocks_len64).map_err(|_| GraphIoError::TooLarge {
        what: "block-region length",
        value: blocks_len64,
        max: usize::MAX as u64,
    })?;
    let need = n
        .checked_add(1)
        .and_then(|o| o.checked_mul(8))
        .and_then(|o| n.checked_mul(4).map(|d| (o, d)))
        .and_then(|(o, d)| o.checked_add(d))
        .and_then(|a| a.checked_add(HEADER_LEN))
        .and_then(|a| a.checked_add(blocks_len))
        .ok_or(GraphIoError::Truncated { needed: usize::MAX, available: bytes.len() })?;
    if bytes.len() != need {
        return Err(GraphIoError::Truncated { needed: need, available: bytes.len() });
    }
    if fnv64(&bytes[16..]) != checksum {
        return Err(GraphIoError::Invalid("checksum mismatch: snapshot corrupt".into()));
    }
    let m = usize::try_from(m64).map_err(|_| GraphIoError::TooLarge {
        what: "edge count",
        value: m64,
        max: usize::MAX as u64,
    })?;
    let max_degree = usize::try_from(max_degree64).map_err(|_| GraphIoError::TooLarge {
        what: "max degree",
        value: max_degree64,
        max: usize::MAX as u64,
    })?;

    // Copy out the index arrays (bounded by the already-verified payload).
    let off_base = HEADER_LEN;
    let deg_base = off_base + (n + 1) * 8;
    let blocks_start = deg_base + n * 4;
    let mut offsets = Vec::with_capacity(n + 1);
    for i in 0..=n {
        offsets.push(u64_at(off_base + i * 8));
    }
    let mut degrees = Vec::with_capacity(n);
    for i in 0..n {
        let at = deg_base + i * 4;
        degrees.push(u32::from_le_bytes(
            bytes[at..at + 4].try_into().unwrap_or([0; 4]),
        ));
    }

    // Index-array invariants.
    if offsets[0] != 0 {
        return Err(GraphIoError::Invalid("offsets[0] != 0".into()));
    }
    if offsets[n] != blocks_len64 {
        return Err(GraphIoError::Invalid("offsets[n] != blocks_len".into()));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(GraphIoError::Invalid("offsets not monotone".into()));
    }
    let degree_sum: u64 = degrees.iter().map(|&d| d as u64).sum();
    if degree_sum != 2 * m64 {
        return Err(GraphIoError::Invalid(format!(
            "degree sum {degree_sum} != 2m = {}",
            2 * m64
        )));
    }
    let seen_max = degrees.iter().copied().max().unwrap_or(0) as u64;
    if seen_max != max_degree64 {
        return Err(GraphIoError::Invalid(format!(
            "recorded max_degree {max_degree64} != actual {seen_max}"
        )));
    }

    // Per-block decode validation: sorted, in range, no self-loop, exact
    // degree, exact byte consumption. One parallel pass; nothing retained.
    let blocks = &bytes[blocks_start..];
    const CHUNK: usize = 1 << 14;
    (0..n.div_ceil(CHUNK)).into_par_iter().try_for_each(|c| {
        let lo = c * CHUNK;
        let hi = (lo + CHUNK).min(n);
        let mut buf: Vec<u32> = Vec::new();
        for v in lo..hi {
            let (b0, b1) = (offsets[v] as usize, offsets[v + 1] as usize);
            let block = &blocks[b0..b1];
            decode_block_into(v as u32, degrees[v] as usize, n, block, &mut buf)
                .map_err(|msg| GraphIoError::Invalid(format!("block of vertex {v}: {msg}")))?;
        }
        Ok::<(), GraphIoError>(())
    })?;

    Ok(ParsedSnapshot { n, m, max_degree, offsets, degrees, blocks_start })
}

impl GraphStore for CompressedCsr {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.n
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.m
    }

    #[inline]
    fn degree(&self, v: u32) -> usize {
        self.degrees[v as usize] as usize
    }

    fn neighbors_in<'a>(&'a self, v: u32, scratch: &'a mut NeighborScratch) -> &'a [u32] {
        let deg = self.degrees[v as usize] as usize;
        let (b0, b1) = (self.offsets[v as usize] as usize, self.offsets[v as usize + 1] as usize);
        let block = &self.blocks.bytes()[b0..b1];
        // Validated at construction/open; a failure here means the backing
        // bytes changed underneath us.
        if let Err(msg) = decode_block_into(v, deg, self.n, block, &mut scratch.buf) {
            panic!("corrupt compressed block for vertex {v}: {msg}");
        }
        self.decode_calls.fetch_add(1, Ordering::Relaxed);
        self.decoded_arcs.fetch_add(deg as u64, Ordering::Relaxed);
        &scratch.buf
    }

    fn neighbors_while<F: FnMut(u32) -> bool>(
        &self,
        v: u32,
        _scratch: &mut NeighborScratch,
        mut f: F,
    ) {
        // Streaming decode: stop pulling varints as soon as `f` says stop —
        // the bottom-up BFS step usually exits within a few neighbors.
        let deg = self.degrees[v as usize] as usize;
        if deg == 0 {
            return;
        }
        let (b0, b1) = (self.offsets[v as usize] as usize, self.offsets[v as usize + 1] as usize);
        let block = &self.blocks.bytes()[b0..b1];
        let mut pos = 0usize;
        let mut produced = 0u64;
        self.decode_calls.fetch_add(1, Ordering::Relaxed);
        let mut prev = match read_varint(block, &mut pos) {
            Some(x) => (v as i64 + unzigzag(x)) as u32,
            None => panic!("corrupt compressed block for vertex {v}: truncated varint"),
        };
        produced += 1;
        if f(prev) {
            for _ in 1..deg {
                let gap = match read_varint(block, &mut pos) {
                    Some(g) => g,
                    None => panic!("corrupt compressed block for vertex {v}: truncated varint"),
                };
                prev = (prev as u64 + gap + 1) as u32;
                produced += 1;
                if !f(prev) {
                    break;
                }
            }
        }
        self.decoded_arcs.fetch_add(produced, Ordering::Relaxed);
    }

    fn max_degree(&self) -> usize {
        self.max_degree
    }

    fn resident_bytes(&self) -> usize {
        let idx = self.offsets.len() * 8 + self.degrees.len() * 4;
        match &self.blocks {
            Blocks::Heap(v) => idx + v.len(),
            #[cfg(unix)]
            Blocks::Mapped { .. } => idx,
        }
    }

    fn mapped_bytes(&self) -> usize {
        match &self.blocks {
            Blocks::Heap(_) => 0,
            #[cfg(unix)]
            Blocks::Mapped { map, .. } => map.len(),
        }
    }

    fn storage(&self) -> StorageKind {
        match &self.blocks {
            Blocks::Heap(_) => StorageKind::CompressedHeap,
            #[cfg(unix)]
            Blocks::Mapped { .. } => StorageKind::CompressedMmap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{chain, complete, grid2d, kron, pref_attach};

    fn assert_equivalent(g: &CsrGraph, c: &CompressedCsr) {
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        assert_eq!(c.num_arcs(), g.num_arcs());
        assert_eq!(CompressedCsr::max_degree(c), g.max_degree());
        let mut scratch = NeighborScratch::new();
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(c.neighbors_in(v, &mut scratch), g.neighbors(v), "vertex {v}");
            assert_eq!(CompressedCsr::degree(c, v), g.degree(v));
        }
        assert_eq!(GraphStore::degree_vector(c), g.degree_vector());
    }

    #[test]
    fn roundtrip_families() {
        for g in [chain(50), grid2d(9, 11), complete(17), kron(7, 6, 1), pref_attach(300, 3, 9)] {
            let c = CompressedCsr::from_csr(&g);
            assert_equivalent(&g, &c);
            assert_eq!(c.to_csr(), g);
        }
    }

    #[test]
    fn empty_and_singleton() {
        for g in [CsrGraph::new(vec![0], vec![]), CsrGraph::new(vec![0, 0], vec![])] {
            let c = CompressedCsr::from_csr(&g);
            assert_equivalent(&g, &c);
            let b = c.snapshot_bytes();
            let r = CompressedCsr::from_snapshot_bytes(&b).unwrap();
            assert_equivalent(&g, &r);
        }
    }

    #[test]
    fn chain_compresses_four_to_one() {
        // Chain gaps are all 2 → every arc costs exactly one byte.
        let g = chain(1000);
        let c = CompressedCsr::from_csr(&g);
        assert_eq!(c.encoded_bytes(), g.num_arcs());
        assert!((c.compression_ratio() - 4.0).abs() < 1e-12);
        assert!((c.bytes_per_arc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_roundtrip_heap_and_mmap() {
        let g = kron(8, 7, 5);
        let c = CompressedCsr::from_csr(&g);
        let dir = std::env::temp_dir().join(format!("parhde-grf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.phdegrf");
        c.write_snapshot(&path).unwrap();

        let heap = CompressedCsr::open_heap(&path).unwrap();
        assert_equivalent(&g, &heap);
        assert_eq!(heap.storage(), StorageKind::CompressedHeap);

        let mapped = CompressedCsr::open_mmap(&path).unwrap();
        assert_equivalent(&g, &mapped);
        #[cfg(unix)]
        {
            assert_eq!(mapped.storage(), StorageKind::CompressedMmap);
            assert!(mapped.mapped_bytes() > 0);
            assert!(mapped.resident_bytes() < heap.resident_bytes());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn neighbors_while_streams_and_stops() {
        let g = complete(40);
        let c = CompressedCsr::from_csr(&g);
        let mut scratch = NeighborScratch::new();
        let mut seen = Vec::new();
        c.neighbors_while(20, &mut scratch, |u| {
            seen.push(u);
            seen.len() < 5
        });
        assert_eq!(&seen[..], &g.neighbors(20)[..5]);
        let (calls, arcs) = c.decode_stats();
        assert_eq!(calls, 1);
        assert_eq!(arcs, 5); // early exit decoded only what it consumed

        // Full stream matches the whole list.
        seen.clear();
        c.neighbors_while(7, &mut scratch, |u| {
            seen.push(u);
            true
        });
        assert_eq!(&seen[..], g.neighbors(7));
    }

    #[test]
    fn truncation_rejected() {
        let c = CompressedCsr::from_csr(&grid2d(6, 6));
        let b = c.snapshot_bytes();
        for cut in [0, 7, HEADER_LEN - 1, b.len() - 1] {
            assert!(CompressedCsr::from_snapshot_bytes(&b[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bitflip_rejected_by_checksum() {
        let c = CompressedCsr::from_csr(&grid2d(6, 6));
        let base = c.snapshot_bytes();
        // Flip one bit in every region past the magic: checksum, header
        // fields, offsets, degrees, blocks.
        for at in [9, 17, 33, HEADER_LEN + 3, base.len() - 2] {
            let mut b = base.clone();
            b[at] ^= 0x40;
            assert!(CompressedCsr::from_snapshot_bytes(&b).is_err(), "flip at {at}");
        }
    }

    #[test]
    fn oversized_declared_sizes_never_allocate() {
        let c = CompressedCsr::from_csr(&grid2d(4, 4));
        let base = c.snapshot_bytes();
        // Claim astronomically large n / blocks_len; the parser must
        // reject on size arithmetic before any allocation.
        for (at, val) in [(16usize, u64::MAX / 2), (32, u64::MAX - 7), (16, u32::MAX as u64)] {
            let mut b = base.clone();
            b[at..at + 8].copy_from_slice(&val.to_le_bytes());
            assert!(CompressedCsr::from_snapshot_bytes(&b).is_err(), "field at {at}");
        }
    }

    #[test]
    fn varint_len_matches_encoding() {
        let mut buf = Vec::new();
        for x in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            buf.clear();
            push_varint(&mut buf, x);
            assert_eq!(buf.len(), varint_len(x), "x = {x}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(x));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_roundtrips() {
        for d in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN + 1] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
    }
}
