//! Compressed sparse row (CSR) graph representation.
//!
//! An undirected simple graph is stored as a flat offset array plus a flat
//! adjacency array, the layout the paper uses (§3.1). Both directions of
//! every undirected edge are stored, so the adjacency array has length `2m`.
//! Vertex identifiers are `u32` (the paper's largest preprocessed graph has
//! `n = 134,217,728 < 2³²`), offsets are `usize`.
//!
//! Adjacency lists are kept **sorted ascending**. Sortedness is what makes
//! the adjacency-gap analysis of Figure 2 well-defined, enables binary-search
//! `has_edge`, and gives the SpMM kernels predictable access patterns.

/// An immutable undirected simple graph in CSR form.
///
/// Invariants (enforced by [`CsrGraph::new`] and preserved by construction
/// everywhere else in the workspace):
/// * `offsets.len() == n + 1`, `offsets[0] == 0`, monotonically non-decreasing,
///   `offsets[n] == adj.len()`;
/// * every entry of `adj` is `< n`;
/// * each adjacency list is sorted strictly ascending (no parallel edges)
///   and never contains the owning vertex (no self-loops);
/// * symmetry: `v ∈ Adj(u)  ⟺  u ∈ Adj(v)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    adj: Vec<u32>,
}

impl CsrGraph {
    /// Wraps raw CSR arrays, validating every structural invariant.
    ///
    /// # Panics
    /// Panics if any invariant listed in the type-level docs is violated.
    pub fn new(offsets: Vec<usize>, adj: Vec<u32>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have length n+1 ≥ 1");
        let n = offsets.len() - 1;
        assert_eq!(offsets[0], 0, "offsets[0] must be 0");
        assert_eq!(offsets[n], adj.len(), "offsets[n] must equal adj.len()");
        for v in 0..n {
            assert!(offsets[v] <= offsets[v + 1], "offsets must be monotone");
            let list = &adj[offsets[v]..offsets[v + 1]];
            for w in list.windows(2) {
                assert!(w[0] < w[1], "adjacency of {v} not strictly ascending");
            }
            for &u in list {
                assert!((u as usize) < n, "neighbor {u} out of range");
                assert!(u as usize != v, "self-loop at {v}");
            }
        }
        let g = Self { offsets, adj };
        for v in 0..n as u32 {
            for &u in g.neighbors(v) {
                assert!(
                    g.has_edge(u, v),
                    "asymmetric edge ({v},{u}): reverse direction missing"
                );
            }
        }
        g
    }

    /// Wraps raw CSR arrays without validating (for internal builders that
    /// construct the invariants directly and for large generated graphs
    /// where O(m log n) validation would dominate).
    ///
    /// # Safety-adjacent contract
    /// Not `unsafe` (no memory unsafety is possible — all accesses remain
    /// bounds-checked) but callers must uphold the structural invariants or
    /// algorithm results are meaningless. Violations are caught by
    /// `debug_assert`s in debug builds.
    pub fn from_parts_unchecked(offsets: Vec<usize>, adj: Vec<u32>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets[0], 0);
        debug_assert_eq!(*offsets.last().unwrap(), adj.len());
        Self { offsets, adj }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Number of stored directed arcs (`2m`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.adj.len()
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Sorted adjacency list of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// True if the undirected edge `(u, v)` is present.
    #[inline]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The raw offsets array (`n + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw adjacency array (`2m` entries).
    #[inline]
    pub fn adjacency(&self) -> &[u32] {
        &self.adj
    }

    /// Average degree `2m / n` (0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.num_vertices() as f64
        }
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterates over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_vertices() as u32).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The weighted degree array as `f64` (for unweighted graphs the
    /// weighted degree is the plain degree). This is the diagonal of `D`,
    /// which stands in for the never-materialized Laplacian (§3.1: "we use
    /// a dense degrees array to calculate the diagonal entry").
    pub fn degree_vector(&self) -> Vec<f64> {
        (0..self.num_vertices() as u32)
            .map(|v| self.degree(v) as f64)
            .collect()
    }
}

/// An undirected graph with non-negative `f64` edge weights, CSR layout.
///
/// The weight array is parallel to the adjacency array of the embedded
/// [`CsrGraph`]: `weights[k]` is the weight of the arc `adj[k]`. Symmetry of
/// weights (`w(u,v) == w(v,u)`) is an invariant.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedCsr {
    graph: CsrGraph,
    weights: Vec<f64>,
}

impl WeightedCsr {
    /// Wraps a CSR graph plus a parallel weight array.
    ///
    /// # Panics
    /// Panics if lengths mismatch, any weight is negative or non-finite, or
    /// weights are asymmetric.
    pub fn new(graph: CsrGraph, weights: Vec<f64>) -> Self {
        assert_eq!(
            weights.len(),
            graph.num_arcs(),
            "weights must parallel the adjacency array"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let w = Self { graph, weights };
        for u in 0..w.graph.num_vertices() as u32 {
            for (v, wt) in w.neighbors(u) {
                let back = w
                    .weight(v, u)
                    .expect("asymmetric adjacency in WeightedCsr");
                assert_eq!(wt, back, "asymmetric weight on edge ({u},{v})");
            }
        }
        w
    }

    /// Wraps parts without the O(m log n) symmetry validation.
    pub fn from_parts_unchecked(graph: CsrGraph, weights: Vec<f64>) -> Self {
        debug_assert_eq!(weights.len(), graph.num_arcs());
        Self { graph, weights }
    }

    /// Builds a unit-weight version of an unweighted graph (paper §4.4:
    /// "when using unit weights for road_usa ...").
    pub fn unit_weights(graph: CsrGraph) -> Self {
        let weights = vec![1.0; graph.num_arcs()];
        Self { graph, weights }
    }

    /// The underlying unweighted structure.
    #[inline]
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Iterates `(neighbor, weight)` pairs of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.graph.offsets()[v as usize];
        let hi = self.graph.offsets()[v as usize + 1];
        self.graph.adjacency()[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Weight of edge `(u, v)` if present.
    pub fn weight(&self, u: u32, v: u32) -> Option<f64> {
        let lo = self.graph.offsets()[u as usize];
        let list = self.graph.neighbors(u);
        list.binary_search(&v).ok().map(|i| self.weights[lo + i])
    }

    /// The raw weight array (parallel to [`CsrGraph::adjacency`]).
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Weighted degree of `v` (sum of incident edge weights) — the diagonal
    /// `D(v, v)` of the weighted degrees matrix (§2.1).
    pub fn weighted_degree(&self, v: u32) -> f64 {
        let lo = self.graph.offsets()[v as usize];
        let hi = self.graph.offsets()[v as usize + 1];
        self.weights[lo..hi].iter().sum()
    }

    /// Weighted degree vector — the diagonal of `D`.
    pub fn weighted_degree_vector(&self) -> Vec<f64> {
        (0..self.num_vertices() as u32)
            .map(|v| self.weighted_degree(v))
            .collect()
    }

    /// Maximum edge weight (0 for an edgeless graph).
    pub fn max_weight(&self) -> f64 {
        self.weights.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0 –– 1 –– 2.
    fn path3() -> CsrGraph {
        CsrGraph::new(vec![0, 1, 3, 4], vec![1, 0, 2, 1])
    }

    #[test]
    fn path_counts() {
        let g = path3();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_and_has_edge() {
        let g = path3();
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn edges_iterator_yields_each_once() {
        let g = path3();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn degree_vector_matches_degrees() {
        let g = path3();
        assert_eq!(g.degree_vector(), vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = CsrGraph::new(vec![0], vec![]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn singleton_graph_is_valid() {
        let g = CsrGraph::new(vec![0, 0], vec![]);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        CsrGraph::new(vec![0, 1], vec![0]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn duplicate_edge_rejected() {
        CsrGraph::new(vec![0, 2, 4], vec![1, 1, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "asymmetric")]
    fn asymmetric_rejected() {
        // 0 → 1 present, 1 → 0 missing.
        CsrGraph::new(vec![0, 1, 1], vec![1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_neighbor_rejected() {
        CsrGraph::new(vec![0, 1], vec![5]);
    }

    #[test]
    fn weighted_unit_graph() {
        let w = WeightedCsr::unit_weights(path3());
        assert_eq!(w.weighted_degree(1), 2.0);
        assert_eq!(w.weight(0, 1), Some(1.0));
        assert_eq!(w.weight(0, 2), None);
        assert_eq!(w.max_weight(), 1.0);
        assert_eq!(w.weighted_degree_vector(), vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn weighted_neighbors_iterate_pairs() {
        let g = path3();
        let w = WeightedCsr::new(g, vec![2.0, 2.0, 3.0, 3.0]);
        let nb: Vec<_> = w.neighbors(1).collect();
        assert_eq!(nb, vec![(0, 2.0), (2, 3.0)]);
        assert_eq!(w.weighted_degree(1), 5.0);
    }

    #[test]
    #[should_panic(expected = "asymmetric weight")]
    fn asymmetric_weights_rejected() {
        let g = path3();
        WeightedCsr::new(g, vec![2.0, 1.0, 3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weight_rejected() {
        let g = path3();
        WeightedCsr::new(g, vec![-1.0, -1.0, 3.0, 3.0]);
    }
}
