//! Low-diameter decomposition (LDD) — the paper's named future-work BFS
//! improvement.
//!
//! §3: "the level-synchronous algorithm has a worst-case O(n) depth ... In
//! future work, we will augment this step with a low diameter decomposition
//! [11, 12, 37] to improve the depth bounds." This module implements the
//! Miller–Peng–Xu style β-decomposition those citations build on: every
//! vertex draws an exponential start-time `δ_v ~ Exp(β)`; a multi-source
//! BFS in which vertex `v`'s ball starts growing at time `max_δ − δ_v`
//! partitions the graph into clusters of diameter `O(log n / β)` with each
//! edge cut with probability `O(β)`.
//!
//! The implementation is a deterministic (seeded) sequential simulation of
//! the race — priority-queue over fractional start times — which is exactly
//! the standard specification; the parallel-depth benefit concerns the
//! *clusters'* later use (per-cluster BFS depth), which
//! [`Decomposition::max_cluster_diameter`] exposes for verification.

use crate::csr::CsrGraph;
use parhde_util::Xoshiro256StarStar;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A low-diameter decomposition: cluster labels plus summary accessors.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// `cluster[v]` is the cluster id of vertex `v` (contiguous from 0).
    pub cluster: Vec<u32>,
    /// Number of clusters.
    pub num_clusters: usize,
}

struct Event {
    time: f64,
    vertex: u32,
    cluster: u32,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.vertex == other.vertex
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (time, vertex) — vertex tiebreak keeps it
        // deterministic.
        other
            .time
            .partial_cmp(&self.time)
            .expect("finite times")
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

/// Computes a β-decomposition with parameter `beta ∈ (0, 1]` and PRNG
/// `seed`. Larger β ⇒ smaller clusters (diameter `O(log n / β)`) but more
/// cut edges (each edge cut w.p. `O(β)`).
///
/// # Panics
/// Panics if the graph is empty or `beta` is outside `(0, 1]`.
pub fn low_diameter_decomposition(g: &CsrGraph, beta: f64, seed: u64) -> Decomposition {
    let n = g.num_vertices();
    assert!(n > 0, "decomposition of an empty graph");
    assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed ^ 0x1DD);

    // Exponential start-time shifts δ_v ~ Exp(β), capped so the race is
    // finite even for tiny β draws.
    let cap = 4.0 * (n.max(2) as f64).ln() / beta;
    let delta: Vec<f64> = (0..n)
        .map(|_| {
            let u = rng.next_f64().max(f64::MIN_POSITIVE);
            (-u.ln() / beta).min(cap)
        })
        .collect();
    let max_delta = delta.iter().copied().fold(0.0, f64::max);

    const UNCLAIMED: u32 = u32::MAX;
    let mut cluster = vec![UNCLAIMED; n];
    let mut heap = BinaryHeap::with_capacity(n);
    for v in 0..n as u32 {
        heap.push(Event {
            time: max_delta - delta[v as usize],
            vertex: v,
            cluster: v,
        });
    }
    let mut owner_of = vec![UNCLAIMED; n]; // cluster-center → compact id
    let mut num_clusters = 0usize;
    while let Some(Event { time, vertex, cluster: c }) = heap.pop() {
        if cluster[vertex as usize] != UNCLAIMED {
            continue;
        }
        // First arrival claims the vertex — but only from a cluster whose
        // center actually formed. A center that was itself claimed by an
        // earlier-starting ball never grows; events it seeded are stale.
        let compact = if owner_of[c as usize] != UNCLAIMED {
            owner_of[c as usize]
        } else if c == vertex {
            // The vertex's own start time fires while unclaimed: it becomes
            // a new cluster center.
            owner_of[c as usize] = num_clusters as u32;
            num_clusters += 1;
            owner_of[c as usize]
        } else {
            continue; // stale propagation from a never-formed cluster
        };
        cluster[vertex as usize] = compact;
        for &u in g.neighbors(vertex) {
            if cluster[u as usize] == UNCLAIMED {
                heap.push(Event { time: time + 1.0, vertex: u, cluster: c });
            }
        }
    }

    Decomposition { cluster, num_clusters }
}

impl Decomposition {
    /// Number of edges whose endpoints lie in different clusters.
    pub fn cut_edges(&self, g: &CsrGraph) -> usize {
        g.edges()
            .filter(|&(u, v)| self.cluster[u as usize] != self.cluster[v as usize])
            .count()
    }

    /// The largest cluster's internal (BFS) diameter — the quantity the
    /// decomposition bounds by `O(log n / β)`.
    pub fn max_cluster_diameter(&self, g: &CsrGraph) -> u32 {
        use crate::prep::induced_subgraph;
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); self.num_clusters];
        for (v, &c) in self.cluster.iter().enumerate() {
            members[c as usize].push(v as u32);
        }
        let mut worst = 0u32;
        for m in members {
            if m.len() <= 1 {
                continue;
            }
            let sub = induced_subgraph(g, &m).graph;
            // Clusters are connected by construction (grown by BFS races).
            worst = worst.max(crate::prep::pseudo_diameter(&sub, 0));
        }
        worst
    }

    /// Sizes of all clusters.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_clusters];
        for &c in &self.cluster {
            sizes[c as usize] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{chain, grid2d, pref_attach};
    use crate::prep::{induced_subgraph, is_connected};

    #[test]
    fn every_vertex_is_clustered() {
        let g = grid2d(20, 20);
        let d = low_diameter_decomposition(&g, 0.2, 1);
        assert!(d.cluster.iter().all(|&c| (c as usize) < d.num_clusters));
        assert_eq!(d.sizes().iter().sum::<usize>(), 400);
    }

    #[test]
    fn clusters_are_connected() {
        let g = pref_attach(2000, 3, 2);
        let d = low_diameter_decomposition(&g, 0.3, 3);
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); d.num_clusters];
        for (v, &c) in d.cluster.iter().enumerate() {
            members[c as usize].push(v as u32);
        }
        for m in members.iter().filter(|m| m.len() > 1) {
            let sub = induced_subgraph(&g, m).graph;
            assert!(is_connected(&sub), "cluster of size {} disconnected", m.len());
        }
    }

    #[test]
    fn beta_bounds_cluster_diameter_on_a_chain() {
        // A chain has diameter n−1; the decomposition must break it into
        // clusters of diameter O(log n / β).
        let n = 4000;
        let g = chain(n);
        let beta = 0.2;
        let d = low_diameter_decomposition(&g, beta, 5);
        let bound = (12.0 * (n as f64).ln() / beta) as u32;
        let diam = d.max_cluster_diameter(&g);
        assert!(
            diam < bound,
            "cluster diameter {diam} exceeds O(log n/β) bound {bound}"
        );
        assert!(d.num_clusters > 10, "a chain must shatter");
    }

    #[test]
    fn cut_fraction_scales_with_beta() {
        let g = grid2d(50, 50);
        let low = low_diameter_decomposition(&g, 0.05, 7);
        let high = low_diameter_decomposition(&g, 0.8, 7);
        let m = g.num_edges() as f64;
        let frac_low = low.cut_edges(&g) as f64 / m;
        let frac_high = high.cut_edges(&g) as f64 / m;
        assert!(
            frac_low < frac_high,
            "smaller β must cut fewer edges: {frac_low:.3} vs {frac_high:.3}"
        );
        // β = 0.05 should keep the cut modest on a grid.
        assert!(frac_low < 0.4, "cut fraction {frac_low:.3} too high");
    }

    #[test]
    fn decomposition_is_deterministic() {
        let g = grid2d(15, 15);
        let a = low_diameter_decomposition(&g, 0.3, 9);
        let b = low_diameter_decomposition(&g, 0.3, 9);
        assert_eq!(a.cluster, b.cluster);
        assert_ne!(
            a.cluster,
            low_diameter_decomposition(&g, 0.3, 10).cluster,
            "different seeds should differ"
        );
    }

    #[test]
    #[should_panic(expected = "beta must be")]
    fn bad_beta_rejected() {
        low_diameter_decomposition(&chain(4), 0.0, 0);
    }
}
