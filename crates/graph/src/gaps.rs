//! Adjacency-list gap distributions with Fibonacci binning (Figure 2).
//!
//! For a vertex `u` with sorted adjacencies `v1 < v2 < … < vk`, the *gaps*
//! are `v2−v1, …, vk−v(k−1)`. Gaps measure the memory locality of accesses
//! of the form `S[v], v ∈ Adj(u)`: small gaps mean nearby cache lines. The
//! paper plots a histogram of all gaps with bin widths from the Fibonacci
//! sequence (Vigna's "Fibonacci binning"), and notes the identity
//! `Σ counts = 2m − n` (which holds when every vertex has degree ≥ 1).

use crate::csr::CsrGraph;
use rayon::prelude::*;

/// One Fibonacci histogram bin: counts gaps `g` with `lower ≤ g < upper`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GapBin {
    /// Inclusive lower edge.
    pub lower: u64,
    /// Exclusive upper edge (a Fibonacci number).
    pub upper: u64,
    /// Number of gaps falling in `[lower, upper)`.
    pub count: u64,
}

/// The gap histogram of a graph, Fibonacci-binned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GapDistribution {
    /// Bins in ascending order. Trailing empty bins are trimmed.
    pub bins: Vec<GapBin>,
    /// Total number of gaps (`Σ counts`).
    pub total: u64,
}

/// Fibonacci bin edges `x0=0, x1=1, x2=2, x3=3, x4=5, …` covering `max`.
///
/// Per the paper: `x0 = 0, x1 = 1, xi = x(i−1) + x(i−2)` — i.e. edges are
/// 0, 1, 2 (= 1+1 via the degenerate start… the sequence used is 0, 1, 2,
/// 3, 5, 8, 13, …). A plotted point `[xi, c]` counts gaps in `[x(i−1), xi)`.
pub fn fibonacci_edges(max: u64) -> Vec<u64> {
    let mut edges = vec![0u64, 1];
    let (mut a, mut b) = (1u64, 2u64);
    while edges.last().copied().unwrap() <= max {
        edges.push(b);
        let next = a + b;
        a = b;
        b = next;
    }
    edges
}

/// Computes the Fibonacci-binned adjacency-gap distribution of `g`
/// (Figure 2). Parallel over vertices.
pub fn gap_distribution(g: &CsrGraph) -> GapDistribution {
    let n = g.num_vertices();
    // Largest possible gap is n − 1.
    let edges = fibonacci_edges(n.max(2) as u64);
    let nbins = edges.len() - 1;

    let counts = (0..n as u32)
        .into_par_iter()
        .fold(
            || vec![0u64; nbins],
            |mut acc, v| {
                for w in g.neighbors(v).windows(2) {
                    let gap = (w[1] - w[0]) as u64;
                    // bin i covers [edges[i], edges[i+1]): find it by binary
                    // search (partition_point gives first edge > gap).
                    let i = edges.partition_point(|&e| e <= gap) - 1;
                    acc[i.min(nbins - 1)] += 1;
                }
                acc
            },
        )
        .reduce(
            || vec![0u64; nbins],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );

    let mut bins: Vec<GapBin> = counts
        .iter()
        .enumerate()
        .map(|(i, &count)| GapBin { lower: edges[i], upper: edges[i + 1], count })
        .collect();
    while bins.last().is_some_and(|b| b.count == 0) {
        bins.pop();
    }
    let total = counts.iter().sum();
    GapDistribution { bins, total }
}

/// Predicted on-disk cost of byte-coded gap compression (Figure 2's
/// actionable output): what [`crate::compressed::CompressedCsr`] will
/// actually spend, computed from the adjacency without encoding anything.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VarintEstimate {
    /// Exact bytes the varint block region of a `PHDEGRF` snapshot takes.
    pub encoded_bytes: u64,
    /// Encoded bytes per stored arc (plain CSR spends 4.0).
    pub bytes_per_arc: f64,
    /// Encoded bytes per undirected edge (both arcs).
    pub bytes_per_edge: f64,
    /// Adjacency compression ratio vs `4 · arcs` plain bytes (> 1 wins).
    pub ratio: f64,
}

/// Computes the exact achievable varint bytes/edge for `g` under the
/// [`crate::compressed`] gap code — first neighbor zigzag-delta from the
/// vertex id, then `gap − 1` varints. Parallel over vertices; O(m), no
/// allocation proportional to the graph.
pub fn varint_size_estimate(g: &CsrGraph) -> VarintEstimate {
    let n = g.num_vertices();
    let encoded_bytes: u64 = (0..n as u32)
        .into_par_iter()
        .map(|v| crate::compressed::encoded_block_len(v, g.neighbors(v)) as u64)
        .sum();
    let arcs = g.num_arcs().max(1) as f64;
    let edges = g.num_edges().max(1) as f64;
    VarintEstimate {
        encoded_bytes,
        bytes_per_arc: encoded_bytes as f64 / arcs,
        bytes_per_edge: encoded_bytes as f64 / edges,
        ratio: if encoded_bytes == 0 { 1.0 } else { 4.0 * arcs / encoded_bytes as f64 },
    }
}

impl GapDistribution {
    /// The paper's sanity identity: for a graph with minimum degree ≥ 1,
    /// the number of gaps is `Σ_v (deg(v) − 1) = 2m − n`.
    pub fn expected_total(g: &CsrGraph) -> u64 {
        (0..g.num_vertices() as u32)
            .map(|v| g.degree(v).saturating_sub(1) as u64)
            .sum()
    }

    /// Fraction of gaps strictly below `threshold` — a scalar locality
    /// score used by tests and the ordering experiments.
    pub fn fraction_below(&self, threshold: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut below = 0u64;
        for b in &self.bins {
            if b.upper <= threshold {
                below += b.count;
            } else if b.lower < threshold {
                // Partial bin: apportion uniformly (only used for scoring).
                let span = (b.upper - b.lower) as f64;
                let part = (threshold - b.lower) as f64;
                below += (b.count as f64 * part / span) as u64;
            }
        }
        below as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{chain, complete, grid2d};
    use crate::order::shuffle_vertices;

    #[test]
    fn fib_edges_start_correctly() {
        let e = fibonacci_edges(20);
        assert_eq!(&e[..8], &[0, 1, 2, 3, 5, 8, 13, 21]);
    }

    #[test]
    fn chain_gaps_are_all_two() {
        // Interior vertices of a chain have neighbors v−1, v+1: gap 2.
        let g = chain(100);
        let d = gap_distribution(&g);
        assert_eq!(d.total, 98); // n − 2 interior vertices
        // All gaps are 2, which lives in bin [2, 3).
        let bin2 = d.bins.iter().find(|b| b.lower == 2).unwrap();
        assert_eq!(bin2.count, 98);
        assert_eq!(d.total, GapDistribution::expected_total(&g));
    }

    #[test]
    fn complete_graph_total_matches_identity() {
        let g = complete(20);
        let d = gap_distribution(&g);
        // 2m − n = 2·190 − 20 = 360.
        assert_eq!(d.total, 360);
        assert_eq!(d.total, GapDistribution::expected_total(&g));
        // All gaps in K_n are 1 except the skip over self (gap 2).
        let ones = d.bins.iter().find(|b| b.lower == 1).unwrap().count;
        let twos = d.bins.iter().find(|b| b.lower == 2).unwrap().count;
        assert_eq!(ones + twos, 360);
        assert_eq!(twos, 18); // each interior-diagonal vertex contributes one
    }

    #[test]
    fn shuffling_destroys_grid_locality() {
        let g = grid2d(60, 60);
        let before = gap_distribution(&g).fraction_below(64);
        let after = gap_distribution(&shuffle_vertices(&g, 1)).fraction_below(64);
        assert!(
            before > 0.4 && after < 0.2,
            "locality before {before:.3}, after {after:.3}"
        );
    }

    #[test]
    fn empty_adjacent_graph_has_zero_total() {
        let g = crate::builder::build_from_edges(5, vec![]);
        let d = gap_distribution(&g);
        assert_eq!(d.total, 0);
        assert!(d.bins.is_empty());
        assert_eq!(d.fraction_below(10), 0.0);
    }

    #[test]
    fn varint_estimate_matches_actual_encoding() {
        for g in [chain(200), grid2d(20, 20), complete(15)] {
            let est = varint_size_estimate(&g);
            let c = crate::compressed::CompressedCsr::from_csr(&g);
            assert_eq!(est.encoded_bytes, c.encoded_bytes() as u64);
            assert!((est.ratio - c.compression_ratio()).abs() < 1e-12);
            assert!((est.bytes_per_edge - 2.0 * est.bytes_per_arc).abs() < 1e-12);
        }
        // Chain: every arc costs one byte → ratio exactly 4.
        let est = varint_size_estimate(&chain(500));
        assert!((est.bytes_per_arc - 1.0).abs() < 1e-12);
        assert!((est.ratio - 4.0).abs() < 1e-12);
    }

    #[test]
    fn varint_estimate_degenerate_graphs() {
        let empty = crate::builder::build_from_edges(5, vec![]);
        let est = varint_size_estimate(&empty);
        assert_eq!(est.encoded_bytes, 0);
        assert_eq!(est.ratio, 1.0);
    }

    #[test]
    fn bins_partition_all_gaps() {
        let g = grid2d(30, 30);
        let d = gap_distribution(&g);
        let sum: u64 = d.bins.iter().map(|b| b.count).sum();
        assert_eq!(sum, d.total);
        assert_eq!(d.total, GapDistribution::expected_total(&g));
        // Bin edges are contiguous.
        for w in d.bins.windows(2) {
            assert_eq!(w[0].upper, w[1].lower);
        }
    }
}
