//! Random geometric graph generator — the road-network analogue.
//!
//! road_usa in the paper has average degree ≈ 2.4 and a very large diameter,
//! which makes it "not a good instance for the direction-optimizing BFS"
//! (§4.2) and shifts the phase breakdown towards DOrtho. A random geometric
//! graph — `n` points in the unit square, edges between pairs within radius
//! `r` — reproduces both properties when `r` is set for a small target
//! degree, and sorting vertices in spatial (cell-major) order reproduces the
//! decent ordering locality real road networks have.

use crate::builder::build_from_edges;
use crate::csr::CsrGraph;
use parhde_util::{SplitMix64, Xoshiro256StarStar};

/// Generates a connected random geometric graph: `n` uniform points in the
/// unit square, edges between pairs closer than a radius chosen so the
/// *expected* average degree is `target_degree`, plus short spatial
/// connector edges that stitch fragments into one component. Vertices are
/// numbered in spatial (grid-cell row-major) order, giving
/// road-network-like ordering locality.
///
/// The construction buckets points into cells of side `r` so candidate pairs
/// are found in O(n · degree) expected time.
///
/// # Panics
/// Panics if `n == 0` or `target_degree <= 0`.
pub fn geometric(n: usize, target_degree: f64, seed: u64) -> CsrGraph {
    assert!(n > 0, "geometric requires n > 0");
    assert!(target_degree > 0.0, "target_degree must be positive");
    // E[deg] = n · π r²  ⇒  r = sqrt(target / (π n)).
    let r = (target_degree / (std::f64::consts::PI * n as f64)).sqrt();
    let mut rng = Xoshiro256StarStar::seed_from_u64(SplitMix64::new(seed ^ 0x67656f).next_u64());
    let mut pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.next_f64(), rng.next_f64()))
        .collect();

    // Spatial ordering: sort points by (cell_row, cell_col, y, x).
    let cells = (1.0 / r).floor().max(1.0) as usize;
    let cell_of = |p: (f64, f64)| -> (usize, usize) {
        let cx = ((p.0 * cells as f64) as usize).min(cells - 1);
        let cy = ((p.1 * cells as f64) as usize).min(cells - 1);
        (cy, cx)
    };
    pts.sort_by(|a, b| {
        let (ka, kb) = (cell_of(*a), cell_of(*b));
        ka.cmp(&kb)
            .then(a.1.partial_cmp(&b.1).unwrap())
            .then(a.0.partial_cmp(&b.0).unwrap())
    });

    // Bucket by cell.
    let mut cell_start = vec![0usize; cells * cells + 1];
    for p in &pts {
        let (cy, cx) = cell_of(*p);
        cell_start[cy * cells + cx + 1] += 1;
    }
    for i in 0..cells * cells {
        cell_start[i + 1] += cell_start[i];
    }
    // pts is sorted by cell already, so cell c owns pts[cell_start[c]..cell_start[c+1]].

    let r2 = r * r;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // Union-find over radius edges so a connectivity pass below can stitch
    // fragments together with short local links (real road networks sit far
    // below the RGG connectivity threshold of ~ln n average degree yet are
    // connected by construction).
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize];
            v = parent[v as usize];
        }
        v
    }
    for i in 0..n {
        let (x, y) = pts[i];
        let (cy, cx) = cell_of(pts[i]);
        // Scan this cell and the 8 surrounding ones.
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let ny = cy as i64 + dy;
                let nx = cx as i64 + dx;
                if ny < 0 || nx < 0 || ny >= cells as i64 || nx >= cells as i64 {
                    continue;
                }
                let c = ny as usize * cells + nx as usize;
                #[allow(clippy::needless_range_loop)] // j is also the vertex id being linked
                for j in cell_start[c]..cell_start[c + 1] {
                    if j <= i {
                        continue; // each pair once
                    }
                    let (px, py) = pts[j];
                    let d2 = (px - x) * (px - x) + (py - y) * (py - y);
                    if d2 <= r2 {
                        edges.push((i as u32, j as u32));
                        let (ri, rj) = (find(&mut parent, i as u32), find(&mut parent, j as u32));
                        if ri != rj {
                            parent[ri as usize] = rj;
                        }
                    }
                }
            }
        }
    }
    // Connectivity pass: points are in spatial (cell-major) order, so
    // consecutive indices are near each other; adding (i−1, i) wherever the
    // two sides are still in different fragments yields short "connector
    // roads" and a connected graph, without materially changing the degree
    // distribution.
    for i in 1..n as u32 {
        let (a, b) = (find(&mut parent, i - 1), find(&mut parent, i));
        if a != b {
            edges.push((i - 1, i));
            parent[a as usize] = b;
        }
    }
    build_from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_is_deterministic() {
        assert_eq!(geometric(2000, 3.0, 9), geometric(2000, 3.0, 9));
    }

    #[test]
    fn geometric_is_connected_even_at_low_degree() {
        // Road networks sit far below the RGG connectivity threshold; the
        // connector pass must still deliver one component.
        for (n, deg) in [(5_000, 2.5), (20_000, 3.0), (1_000, 1.0)] {
            let g = geometric(n, deg, 7);
            assert!(
                crate::prep::is_connected(&g),
                "geometric({n}, {deg}) disconnected"
            );
        }
    }

    #[test]
    fn geometric_degree_near_target() {
        let g = geometric(20_000, 3.0, 4);
        let avg = g.average_degree();
        assert!(
            (2.0..4.5).contains(&avg),
            "average degree {avg} far from target 3.0"
        );
    }

    #[test]
    fn geometric_has_large_diameter_proxy() {
        // Road-like graphs have Θ(√n) diameter; check eccentricity of vertex
        // 0 in its component is at least √n / 4 levels.
        use crate::prep::largest_component;
        let g = geometric(10_000, 3.5, 2);
        let lcc = largest_component(&g).graph;
        let n = lcc.num_vertices();
        // Simple BFS for eccentricity.
        let mut dist = vec![u32::MAX; n];
        dist[0] = 0;
        let mut frontier = vec![0u32];
        let mut ecc = 0;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for &u in lcc.neighbors(v) {
                    if dist[u as usize] == u32::MAX {
                        dist[u as usize] = dist[v as usize] + 1;
                        ecc = ecc.max(dist[u as usize]);
                        next.push(u);
                    }
                }
            }
            frontier = next;
        }
        assert!(
            ecc as f64 > (n as f64).sqrt() / 4.0,
            "eccentricity {ecc} too small for a road-like graph on {n} vertices"
        );
    }

    #[test]
    fn geometric_ordering_has_locality() {
        // Spatially ordered ids ⇒ median adjacency gap should be much
        // smaller than n (unlike a random graph, where it is ~n/3).
        let g = geometric(10_000, 3.0, 5);
        let mut gaps: Vec<u32> = Vec::new();
        for v in 0..g.num_vertices() as u32 {
            let nb = g.neighbors(v);
            for w in nb.windows(2) {
                gaps.push(w[1] - w[0]);
            }
        }
        gaps.sort_unstable();
        if !gaps.is_empty() {
            let median = gaps[gaps.len() / 2] as f64;
            assert!(
                median < g.num_vertices() as f64 / 10.0,
                "median gap {median} shows no locality"
            );
        }
    }

    #[test]
    fn geometric_validates_csr_invariants() {
        let g = geometric(500, 4.0, 3);
        let _ = CsrGraph::new(g.offsets().to_vec(), g.adjacency().to_vec());
    }
}
