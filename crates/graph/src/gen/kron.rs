//! Kronecker (R-MAT) graph generator — Graph500 / GAP `kron` analogue.
//!
//! Samples each edge by recursively descending `scale` levels of the 2×2
//! initiator matrix with the Graph500 parameters A = 0.57, B = 0.19,
//! C = 0.19, D = 0.05, then applies a random permutation to vertex ids — the
//! paper relies on this shuffle when reading Figure 2: "the vertex
//! identifiers are random shuffled in the graph generator", which destroys
//! ordering locality just like `urand`.

use crate::builder::build_from_edges;
use crate::csr::CsrGraph;
use parhde_util::{SplitMix64, Xoshiro256StarStar};
use rayon::prelude::*;

const A: f64 = 0.57;
const B: f64 = 0.19;
const C: f64 = 0.19;

/// Generates a Kronecker graph with `2^scale` vertices and a nominal
/// `edgefactor · 2^scale` edges (Graph500 uses edgefactor 16), seeded by
/// `seed`. Vertex identifiers are randomly permuted.
///
/// # Panics
/// Panics if `scale == 0`, `scale > 31`, or `edgefactor == 0`.
pub fn kron(scale: u32, edgefactor: usize, seed: u64) -> CsrGraph {
    assert!(scale > 0 && scale <= 31, "scale must be in 1..=31");
    assert!(edgefactor > 0, "edgefactor must be positive");
    let n = 1usize << scale;
    let target_edges = edgefactor * n;
    const CHUNK: usize = 1 << 14;
    let num_chunks = target_edges.div_ceil(CHUNK);
    let base = SplitMix64::new(seed ^ 0x6b72_6f6e).next_u64();

    // Random permutation of vertex ids (Fisher-Yates with the same seed).
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut prng = Xoshiro256StarStar::seed_from_u64(base ^ 0x5045_524d);
    prng.shuffle(&mut perm);

    let edges: Vec<(u32, u32)> = (0..num_chunks)
        .into_par_iter()
        .flat_map_iter(|c| {
            let lo = c * CHUNK;
            let hi = (lo + CHUNK).min(target_edges);
            let mut rng = Xoshiro256StarStar::seed_from_u64(
                base ^ (c as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
            );
            let perm = &perm;
            (lo..hi).map(move |_| {
                let (mut u, mut v) = (0usize, 0usize);
                for _ in 0..scale {
                    u <<= 1;
                    v <<= 1;
                    let r = rng.next_f64();
                    if r < A {
                        // top-left quadrant: no bits set
                    } else if r < A + B {
                        v |= 1;
                    } else if r < A + B + C {
                        u |= 1;
                    } else {
                        u |= 1;
                        v |= 1;
                    }
                }
                (perm[u], perm[v])
            })
        })
        .collect();
    build_from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kron_is_deterministic() {
        assert_eq!(kron(10, 8, 5), kron(10, 8, 5));
    }

    #[test]
    fn kron_has_skewed_degrees() {
        let g = kron(12, 16, 1);
        let avg = g.average_degree();
        let max = g.max_degree() as f64;
        // Power-law-ish: the hub degree should dwarf the average.
        assert!(
            max > 8.0 * avg,
            "expected skew: max {max} vs avg {avg}"
        );
    }

    #[test]
    fn kron_loses_many_duplicate_edges() {
        // R-MAT resamples hot quadrants, so dedup removes a noticeable
        // fraction — realized m is clearly below nominal (as with GAP).
        let g = kron(10, 16, 2);
        let nominal = 16 << 10;
        assert!(g.num_edges() < nominal);
        assert!(g.num_edges() > nominal / 4);
    }

    #[test]
    fn kron_validates_csr_invariants() {
        let g = kron(8, 8, 3);
        let _ = CsrGraph::new(g.offsets().to_vec(), g.adjacency().to_vec());
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn kron_rejects_zero_scale() {
        kron(0, 16, 1);
    }
}
