//! Triangulated FEM-style mesh generator with holes — the barth5 analogue.
//!
//! barth5 (Figures 1, 7, 8) is a NASA finite-element mesh whose drawings
//! show a characteristic global structure with four "holes". This generator
//! builds a triangulated rectangular mesh (grid plus one diagonal per cell —
//! the standard structured triangulation) with rectangular regions removed,
//! so layouts of the analogue exhibit the same global hole structure the
//! paper's drawings are judged by.

use crate::builder::build_from_edges;
use crate::csr::CsrGraph;
use crate::prep::largest_component;

/// A rectangular hole: rows `r0..r1` × columns `c0..c1` are removed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hole {
    /// First removed row.
    pub r0: usize,
    /// One past the last removed row.
    pub r1: usize,
    /// First removed column.
    pub c0: usize,
    /// One past the last removed column.
    pub c1: usize,
}

impl Hole {
    /// True if mesh point `(r, c)` lies inside the hole.
    fn contains(&self, r: usize, c: usize) -> bool {
        r >= self.r0 && r < self.r1 && c >= self.c0 && c < self.c1
    }
}

/// Builds a triangulated `rows × cols` mesh with the given rectangular
/// holes removed, then keeps the largest connected component (holes can
/// disconnect corners). Vertices are numbered row-major over surviving mesh
/// points, preserving mesh locality.
///
/// # Panics
/// Panics if the mesh has no surviving vertices.
pub fn mesh_with_holes(rows: usize, cols: usize, holes: &[Hole]) -> CsrGraph {
    assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
    let inside = |r: usize, c: usize| holes.iter().any(|h| h.contains(r, c));
    // Assign compact ids to surviving points.
    const GONE: u32 = u32::MAX;
    let mut id = vec![GONE; rows * cols];
    let mut next = 0u32;
    for r in 0..rows {
        for c in 0..cols {
            if !inside(r, c) {
                id[r * cols + c] = next;
                next += 1;
            }
        }
    }
    assert!(next > 0, "holes removed every mesh point");
    let n = next as usize;
    let mut edges = Vec::with_capacity(3 * n);
    for r in 0..rows {
        for c in 0..cols {
            let a = id[r * cols + c];
            if a == GONE {
                continue;
            }
            // Right, down, and down-right diagonal (structured triangulation).
            if c + 1 < cols && id[r * cols + c + 1] != GONE {
                edges.push((a, id[r * cols + c + 1]));
            }
            if r + 1 < rows && id[(r + 1) * cols + c] != GONE {
                edges.push((a, id[(r + 1) * cols + c]));
            }
            if r + 1 < rows && c + 1 < cols && id[(r + 1) * cols + c + 1] != GONE {
                edges.push((a, id[(r + 1) * cols + c + 1]));
            }
        }
    }
    let g = build_from_edges(n, edges);
    largest_component(&g).graph
}

/// The barth5 stand-in used by the figure-reproduction harness: a 125×125
/// triangulated mesh with four symmetric holes, ≈ 14.3k vertices and ≈ 42k
/// edges (barth5: 15,606 vertices, 45,878 edges).
pub fn barth5_like() -> CsrGraph {
    let holes = [
        Hole { r0: 25, r1: 50, c0: 25, c1: 50 },
        Hole { r0: 25, r1: 50, c0: 75, c1: 100 },
        Hole { r0: 75, r1: 100, c0: 25, c1: 50 },
        Hole { r0: 75, r1: 100, c0: 75, c1: 100 },
    ];
    mesh_with_holes(125, 125, &holes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::is_connected;

    #[test]
    fn solid_mesh_counts() {
        let g = mesh_with_holes(4, 4, &[]);
        assert_eq!(g.num_vertices(), 16);
        // 4 rows × 3 horizontal + 3 × 4 vertical + 3 × 3 diagonals = 12+12+9.
        assert_eq!(g.num_edges(), 33);
        assert!(is_connected(&g));
    }

    #[test]
    fn hole_removes_vertices() {
        let hole = Hole { r0: 1, r1: 3, c0: 1, c1: 3 };
        let g = mesh_with_holes(4, 4, &[hole]);
        assert_eq!(g.num_vertices(), 12);
        assert!(is_connected(&g));
    }

    #[test]
    fn barth5_like_matches_target_scale() {
        let g = barth5_like();
        assert!(is_connected(&g));
        // Within ~10% of barth5's 15,606 / 45,878.
        assert!(
            (13_000..16_500).contains(&g.num_vertices()),
            "n = {}",
            g.num_vertices()
        );
        assert!(
            (38_000..50_000).contains(&g.num_edges()),
            "m = {}",
            g.num_edges()
        );
    }

    #[test]
    fn mesh_is_deterministic() {
        assert_eq!(barth5_like(), barth5_like());
    }

    #[test]
    #[should_panic(expected = "removed every mesh point")]
    fn total_hole_panics() {
        mesh_with_holes(2, 2, &[Hole { r0: 0, r1: 2, c0: 0, c1: 2 }]);
    }
}
