//! Seeded synthetic graph generators.
//!
//! The paper's Table 2 collection mixes two GAP-generated synthetic graphs
//! (urand27, kron27) with eight SuiteSparse matrices. The originals range up
//! to 2.1 billion edges; this reproduction generates seeded analogues whose
//! *structural* properties match what each graph is used to probe:
//!
//! | Paper graph | Analogue | Property probed |
//! |---|---|---|
//! | urand27 | [`urand`] | uniform degrees, zero locality, low diameter |
//! | kron27 | [`kron`] | skewed degrees, shuffled ids, low diameter |
//! | sk-2005 | [`web_locality`] | power-law + locality-friendly ordering |
//! | twitter7 | [`pref_attach`] | heavy-tailed degrees, shuffled ids |
//! | road_usa | [`geometric`] | tiny degrees, huge diameter |
//! | ecology1 | [`grid2d`] | regular 2D stencil |
//! | barth5 | [`mesh::mesh_with_holes`] | planar FEM mesh with holes (Figures 1/7/8) |
//!
//! Every generator takes an explicit seed and is deterministic; the
//! benchmark harness pins seeds so tables are reproducible run-to-run.

mod geometric;
mod kron;
mod mesh;
pub mod poison;
mod pref_attach;
mod simple;
mod urand;
mod web;

pub use geometric::geometric;
pub use kron::kron;
pub use mesh::{barth5_like, mesh_with_holes};
pub use pref_attach::pref_attach;
pub use simple::{binary_tree, chain, complete, cycle, grid2d, star};
pub use urand::urand;
pub use web::web_locality;
