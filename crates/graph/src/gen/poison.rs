//! Poison-input builders for the fault-injection harness.
//!
//! Each builder produces a pathological input of the kind a layout service
//! receives from the wild: empty graphs, singletons, forests of components,
//! duplicate-heavy edge lists, NaN weights, and truncated files. They are
//! deterministic (seeded where randomized) so fault tests are reproducible,
//! and they live in the library — not a test module — so every downstream
//! crate's fault suite can share them.

use crate::builder::build_from_edges;
use crate::csr::{CsrGraph, WeightedCsr};
use crate::gen::grid2d;

/// The empty graph: zero vertices, zero edges.
pub fn empty() -> CsrGraph {
    CsrGraph::new(vec![0], vec![])
}

/// A single isolated vertex.
pub fn singleton() -> CsrGraph {
    isolated(1)
}

/// `n` vertices with no edges at all — every vertex its own component.
pub fn isolated(n: usize) -> CsrGraph {
    CsrGraph::new(vec![0; n + 1], vec![])
}

/// Two path components of `a` and `b` vertices (`a + b` total).
pub fn two_paths(a: usize, b: usize) -> CsrGraph {
    let mut edges = Vec::new();
    for u in 1..a {
        edges.push(((u - 1) as u32, u as u32));
    }
    for u in 1..b {
        edges.push(((a + u - 1) as u32, (a + u) as u32));
    }
    build_from_edges(a + b, edges)
}

/// A grid of `side × side` plus `stragglers` isolated vertices — the shape
/// real datasets take after row/column deletions: one big component and
/// dust. The grid is always the largest component.
pub fn grid_with_stragglers(side: usize, stragglers: usize) -> CsrGraph {
    let grid = grid2d(side, side);
    let n = grid.num_vertices() + stragglers;
    let edges: Vec<(u32, u32)> = grid.edges().collect();
    build_from_edges(n, edges)
}

/// `k` disjoint cycles of `len` vertices each (`k · len` total); with equal
/// sizes the tie-break for "largest component" is exercised too.
pub fn many_cycles(k: usize, len: usize) -> CsrGraph {
    let mut edges = Vec::new();
    for c in 0..k {
        let base = (c * len) as u32;
        for u in 0..len {
            edges.push((base + u as u32, base + ((u + 1) % len) as u32));
        }
    }
    build_from_edges(k * len, edges)
}

/// An edge list drowning in duplicates: every edge of a path on `n`
/// vertices repeated `copies` times in both orientations.
pub fn duplicate_heavy_edges(n: usize, copies: usize) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for u in 1..n {
        for _ in 0..copies {
            edges.push(((u - 1) as u32, u as u32));
            edges.push((u as u32, (u - 1) as u32));
        }
    }
    edges
}

/// A weighted graph whose weight array has been corrupted with NaN — built
/// through [`WeightedCsr::from_parts_unchecked`], exactly how a buggy or
/// hostile caller would smuggle one past the builder's checks.
pub fn nan_weighted(n: usize) -> WeightedCsr {
    let g = build_from_edges(n, (1..n).map(|u| ((u - 1) as u32, u as u32)).collect());
    let mut weights: Vec<f64> = vec![1.0; g.num_arcs()];
    if let Some(w) = weights.first_mut() {
        *w = f64::NAN;
    }
    if let Some(w) = weights.last_mut() {
        *w = f64::NAN;
    }
    WeightedCsr::from_parts_unchecked(g, weights)
}

/// A weighted graph with a zero-weight edge — legal for the builder but
/// poison for length semantics (1/w → ∞).
pub fn zero_weighted(n: usize) -> WeightedCsr {
    let g = build_from_edges(n, (1..n).map(|u| ((u - 1) as u32, u as u32)).collect());
    let mut weights: Vec<f64> = vec![1.0; g.num_arcs()];
    if let Some(w) = weights.first_mut() {
        *w = 0.0;
    }
    WeightedCsr::from_parts_unchecked(g, weights)
}

/// Matrix Market text cut off mid-stream after `keep_lines` lines — models
/// a download that died partway. `keep_lines = 1` leaves only the header;
/// `2` cuts inside the size/entry region.
pub fn truncated_matrix_market(keep_lines: usize) -> String {
    let full = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                4 4 4\n\
                2 1\n\
                3 2\n\
                4 3\n\
                4 1\n";
    full.lines()
        .take(keep_lines)
        .map(|l| format!("{l}\n"))
        .collect()
}

/// A Matrix Market file whose size line was chopped mid-token — the input
/// that crashed the historical `size.unwrap()`.
pub fn chopped_size_line() -> String {
    "%%MatrixMarket matrix coordinate pattern symmetric\n4\n".into()
}

/// A weighted Matrix Market file carrying a NaN value.
pub fn nan_matrix_market() -> String {
    "%%MatrixMarket matrix coordinate real general\n\
     3 3 2\n\
     1 2 1.0\n\
     2 3 NaN\n"
        .into()
}

/// An edge list whose final line is garbage bytes, as if the file were
/// corrupted in place.
pub fn garbage_tail_edge_list(n: usize) -> String {
    let mut text: String = (1..n)
        .map(|u| format!("{} {}\n", u - 1, u))
        .collect();
    text.push_str("\u{fffd}\u{fffd} \u{fffd}\n");
    text
}

/// A binary CSR snapshot truncated `cut` bytes short of its declared size.
pub fn truncated_snapshot(cut: usize) -> Vec<u8> {
    let bytes = crate::io::write_csr_binary(&grid2d(4, 4));
    bytes[..bytes.len().saturating_sub(cut)].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::connected_components;

    #[test]
    fn shapes_are_as_declared() {
        assert_eq!(empty().num_vertices(), 0);
        assert_eq!(singleton().num_vertices(), 1);
        assert_eq!(singleton().num_edges(), 0);
        assert_eq!(isolated(7).num_vertices(), 7);
        let g = two_paths(5, 3);
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(connected_components(&g).count(), 2);
        let g = many_cycles(4, 5);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(connected_components(&g).count(), 4);
        let g = grid_with_stragglers(3, 6);
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(connected_components(&g).count(), 7);
    }

    #[test]
    fn duplicates_collapse_in_builder() {
        let g = build_from_edges(4, duplicate_heavy_edges(4, 10));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn nan_weighted_really_carries_nan() {
        let w = nan_weighted(5);
        assert!(w.weights().iter().any(|x| x.is_nan()));
    }

    #[test]
    fn truncated_inputs_fail_to_parse() {
        assert!(crate::io::parse_matrix_market(&truncated_matrix_market(1)).is_err());
        assert!(crate::io::parse_matrix_market(&chopped_size_line()).is_err());
        assert!(crate::io::parse_matrix_market_weighted(&nan_matrix_market()).is_err());
        assert!(crate::io::parse_edge_list(&garbage_tail_edge_list(4), 0).is_err());
        assert!(crate::io::read_csr_binary(&truncated_snapshot(3)).is_err());
    }
}
