//! Preferential-attachment generator — the twitter7 analogue.
//!
//! Barabási–Albert attachment yields the heavy-tailed degree distribution of
//! social graphs; a final random permutation of vertex ids removes the
//! temporal ordering locality, mirroring twitter7's unfavourable gap
//! distribution in Figure 2.

use crate::builder::build_from_edges;
use crate::csr::CsrGraph;
use parhde_util::{SplitMix64, Xoshiro256StarStar};

/// Generates a preferential-attachment graph: vertices arrive one at a time
/// and each connects to `attach` earlier vertices sampled with probability
/// proportional to current degree (via the standard repeated-endpoint
/// trick). Vertex ids are then randomly permuted.
///
/// # Panics
/// Panics if `n == 0` or `attach == 0`.
pub fn pref_attach(n: usize, attach: usize, seed: u64) -> CsrGraph {
    assert!(n > 0, "pref_attach requires n > 0");
    assert!(attach > 0, "pref_attach requires attach > 0");
    let mut rng =
        Xoshiro256StarStar::seed_from_u64(SplitMix64::new(seed ^ 0x7477_6974).next_u64());

    // `endpoints` holds every edge endpoint ever created; sampling an index
    // uniformly from it samples a vertex ∝ degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * attach);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * attach);

    // Seed clique among the first `attach + 1` vertices (or all of them for
    // tiny n) so early sampling is well-defined.
    let seed_k = (attach + 1).min(n);
    for u in 0..seed_k as u32 {
        for v in (u + 1)..seed_k as u32 {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in seed_k..n {
        for _ in 0..attach {
            let t = endpoints[rng.next_index(endpoints.len())];
            edges.push((v as u32, t));
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }

    // Shuffle ids (destroys arrival-order locality, like twitter7).
    let mut perm: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut perm);
    for e in &mut edges {
        *e = (perm[e.0 as usize], perm[e.1 as usize]);
    }
    build_from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::is_connected;

    #[test]
    fn pref_attach_is_deterministic() {
        assert_eq!(pref_attach(500, 4, 1), pref_attach(500, 4, 1));
    }

    #[test]
    fn pref_attach_is_connected() {
        // Every new vertex attaches to an existing one, so the graph is
        // connected by construction.
        assert!(is_connected(&pref_attach(2000, 3, 7)));
    }

    #[test]
    fn pref_attach_has_heavy_tail() {
        let g = pref_attach(20_000, 8, 3);
        let avg = g.average_degree();
        let max = g.max_degree() as f64;
        assert!(
            max > 10.0 * avg,
            "expected hub: max {max}, avg {avg}"
        );
    }

    #[test]
    fn pref_attach_edge_count() {
        let n = 3000;
        let attach = 5;
        let g = pref_attach(n, attach, 2);
        // seed clique 15 + (n - 6)·5 minus a few duplicate collisions
        let nominal = 15 + (n - 6) * attach;
        assert!(g.num_edges() <= nominal);
        assert!(g.num_edges() as f64 > 0.9 * nominal as f64);
    }

    #[test]
    fn pref_attach_tiny_n_is_clique() {
        let g = pref_attach(3, 5, 1);
        assert_eq!(g.num_edges(), 3); // K_3
    }
}
