//! Elementary deterministic graph families.
//!
//! Used throughout the test suites as worst/best cases the paper discusses:
//! a linear [`chain`] is the paper's example of both the ideal gap
//! distribution (Figure 2: "a gap of just 2 occurring n−2 times") and the
//! worst case for level-synchronous BFS depth (§3: "consider a linear chain
//! of vertices"); [`grid2d`] is the ecology1 analogue.

use crate::builder::build_from_edges;
use crate::csr::CsrGraph;

/// Path graph `0 – 1 – … – n−1`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn chain(n: usize) -> CsrGraph {
    assert!(n > 0, "chain requires n > 0");
    let edges = (0..n.saturating_sub(1))
        .map(|i| (i as u32, (i + 1) as u32))
        .collect();
    build_from_edges(n, edges)
}

/// Cycle graph on `n ≥ 3` vertices.
///
/// # Panics
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "cycle requires n ≥ 3");
    let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i as u32, (i + 1) as u32)).collect();
    edges.push(((n - 1) as u32, 0));
    build_from_edges(n, edges)
}

/// Star graph: vertex 0 adjacent to all others.
///
/// # Panics
/// Panics if `n == 0`.
pub fn star(n: usize) -> CsrGraph {
    assert!(n > 0, "star requires n > 0");
    let edges = (1..n).map(|i| (0, i as u32)).collect();
    build_from_edges(n, edges)
}

/// Complete graph `K_n`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn complete(n: usize) -> CsrGraph {
    assert!(n > 0, "complete requires n > 0");
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    build_from_edges(n, edges)
}

/// Complete binary tree on `n` vertices (vertex `i` has children `2i+1`,
/// `2i+2` where they exist).
///
/// # Panics
/// Panics if `n == 0`.
pub fn binary_tree(n: usize) -> CsrGraph {
    assert!(n > 0, "binary_tree requires n > 0");
    let edges = (1..n).map(|i| (((i - 1) / 2) as u32, i as u32)).collect();
    build_from_edges(n, edges)
}

/// `rows × cols` 2D grid with 4-neighbor (von Neumann) connectivity and
/// row-major vertex ids — the ecology1 analogue (ecology1 is a 1000×1000
/// 5-point-stencil matrix).
///
/// # Panics
/// Panics if either dimension is 0.
pub fn grid2d(rows: usize, cols: usize) -> CsrGraph {
    assert!(rows > 0 && cols > 0, "grid2d requires positive dimensions");
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::with_capacity(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    build_from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::is_connected;

    #[test]
    fn chain_structure() {
        let g = chain(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(is_connected(&g));
    }

    #[test]
    fn chain_of_one_is_a_single_vertex() {
        let g = chain(1);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn cycle_structure() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        assert!((0..6u32).all(|v| g.degree(v) == 2));
        assert!(g.has_edge(5, 0));
    }

    #[test]
    fn star_structure() {
        let g = star(10);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.degree(0), 9);
        assert!((1..10u32).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn complete_structure() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert!((0..6u32).all(|v| g.degree(v) == 5));
    }

    #[test]
    fn binary_tree_structure() {
        let g = binary_tree(7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3); // parent 0, children 3 and 4
        assert_eq!(g.degree(6), 1);
        assert!(is_connected(&g));
    }

    #[test]
    fn grid_structure() {
        let g = grid2d(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // Edges: 3 rows × 3 horizontal + 2 × 4 vertical = 9 + 8 = 17.
        assert_eq!(g.num_edges(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior (row 1, col 1)
        assert!(is_connected(&g));
    }

    #[test]
    fn grid_degenerate_line() {
        let g = grid2d(1, 5);
        assert_eq!(g.num_edges(), 4); // equals chain(5)
    }
}
