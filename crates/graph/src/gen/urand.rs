//! Uniform random graph generator (GAP `-u` analogue).
//!
//! Produces the Erdős–Rényi-style G(n, m) graphs the GAP Benchmark Suite
//! generates for `urand`: `degree·n/2` edges with endpoints drawn uniformly
//! at random. Self-loops and duplicates are dropped during CSR construction,
//! so the realized edge count is slightly below the nominal one, exactly as
//! with GAP's generator after the paper's preprocessing.

use crate::builder::build_from_edges;
use crate::csr::CsrGraph;
use parhde_util::{SplitMix64, Xoshiro256StarStar};
use rayon::prelude::*;

/// Generates a uniform random graph with `n` vertices and a nominal average
/// degree of `degree` (so `n·degree/2` sampled edges), seeded by `seed`.
///
/// Edge sampling is parallel: the edge range is split into chunks and each
/// chunk derives an independent PRNG stream from `(seed, chunk_index)`, so
/// output is deterministic regardless of thread count.
///
/// # Panics
/// Panics if `n == 0` or `degree == 0`.
pub fn urand(n: usize, degree: usize, seed: u64) -> CsrGraph {
    assert!(n > 0, "urand requires n > 0");
    assert!(degree > 0, "urand requires degree > 0");
    let target_edges = n * degree / 2;
    const CHUNK: usize = 1 << 14;
    let num_chunks = target_edges.div_ceil(CHUNK);
    let edges: Vec<(u32, u32)> = (0..num_chunks)
        .into_par_iter()
        .flat_map_iter(|c| {
            let lo = c * CHUNK;
            let hi = (lo + CHUNK).min(target_edges);
            let mut rng = Xoshiro256StarStar::seed_from_u64(
                SplitMix64::new(seed ^ 0x7572_616e_6400).next_u64() ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            (lo..hi).map(move |_| {
                (
                    rng.next_index(n) as u32,
                    rng.next_index(n) as u32,
                )
            })
        })
        .collect();
    build_from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn urand_is_deterministic() {
        let a = urand(1000, 8, 42);
        let b = urand(1000, 8, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn urand_seed_changes_output() {
        let a = urand(1000, 8, 1);
        let b = urand(1000, 8, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn urand_edge_count_near_nominal() {
        let n = 10_000;
        let g = urand(n, 16, 7);
        let nominal = n * 16 / 2;
        // A few collisions/self-loops are removed; expect within 1%.
        assert!(g.num_edges() <= nominal);
        assert!(
            g.num_edges() as f64 > nominal as f64 * 0.99,
            "too many lost edges: {} of {}",
            g.num_edges(),
            nominal
        );
    }

    #[test]
    fn urand_degrees_are_roughly_uniform() {
        let g = urand(5000, 16, 3);
        // Binomial(≈16): max degree should stay well below a power-law tail.
        assert!(g.max_degree() < 64, "max degree {}", g.max_degree());
    }

    #[test]
    fn urand_validates_csr_invariants() {
        let g = urand(300, 6, 11);
        let _ = CsrGraph::new(g.offsets().to_vec(), g.adjacency().to_vec());
    }
}
