//! Web-crawl-like generator with ordering locality — the sk-2005 analogue.
//!
//! sk-2005 is the paper's showcase for vertex-ordering locality: its crawl
//! order gives adjacency-list gaps concentrated at small values (Figure 2),
//! which makes the `LS` SpMM step "much faster than expected" (§4.4) — and
//! randomly permuting its ids slows LS by 6.8×. This generator reproduces
//! that property: most links are *local* (geometrically distributed gaps,
//! like links within a site) and a minority are *global* copies of earlier
//! vertices' links (producing a skewed in-degree tail, like popular pages).

use crate::builder::build_from_edges;
use crate::csr::CsrGraph;
use parhde_util::{SplitMix64, Xoshiro256StarStar};

/// Fraction of links that are near-neighbor ("same host") links.
const LOCAL_FRACTION: f64 = 0.85;
/// Mean gap of a local link (geometric distribution).
const LOCAL_MEAN_GAP: f64 = 12.0;

/// Generates a web-like graph on `n` vertices with ≈`degree·n/2` edges in
/// which vertex ids carry strong locality, plus a power-law-ish tail from
/// copied links.
///
/// # Panics
/// Panics if `n < 2` or `degree == 0`.
pub fn web_locality(n: usize, degree: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2, "web_locality requires n ≥ 2");
    assert!(degree > 0, "web_locality requires degree > 0");
    let mut rng =
        Xoshiro256StarStar::seed_from_u64(SplitMix64::new(seed ^ 0x0077_6562).next_u64());
    let links_per_vertex = degree.div_ceil(2).max(1);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * links_per_vertex);
    // `targets` accumulates link targets for degree-proportional copying.
    let mut targets: Vec<u32> = Vec::with_capacity(n * links_per_vertex);
    let p = 1.0 / LOCAL_MEAN_GAP;

    for v in 1..n as u32 {
        for _ in 0..links_per_vertex {
            let local = rng.next_f64() < LOCAL_FRACTION || targets.is_empty();
            let t = if local {
                // Geometric gap ≥ 1, clamped to valid ids below v.
                let g = (rng.next_f64().ln() / (1.0 - p).ln()).ceil().max(1.0);
                let gap = (g as u64).min(v as u64) as u32;
                v - gap
            } else {
                // Copy: re-link to a target sampled ∝ its in-link count.
                targets[rng.next_index(targets.len())]
            };
            if t != v {
                edges.push((v, t));
                targets.push(t);
            }
        }
    }
    build_from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn web_is_deterministic() {
        assert_eq!(web_locality(3000, 8, 4), web_locality(3000, 8, 4));
    }

    #[test]
    fn web_ordering_has_strong_locality() {
        let g = web_locality(20_000, 10, 1);
        let mut small = 0usize;
        let mut total = 0usize;
        for v in 0..g.num_vertices() as u32 {
            for w in g.neighbors(v).windows(2) {
                total += 1;
                if w[1] - w[0] <= 64 {
                    small += 1;
                }
            }
        }
        assert!(total > 0);
        let frac = small as f64 / total as f64;
        assert!(
            frac > 0.5,
            "only {frac:.2} of gaps are ≤ 64; locality missing"
        );
    }

    #[test]
    fn web_has_degree_skew() {
        let g = web_locality(20_000, 10, 2);
        assert!(
            g.max_degree() as f64 > 5.0 * g.average_degree(),
            "max {} vs avg {}",
            g.max_degree(),
            g.average_degree()
        );
    }

    #[test]
    fn web_edge_count_near_nominal() {
        let n = 10_000;
        let g = web_locality(n, 10, 3);
        // links_per_vertex = 5 per vertex; duplicates reduce this somewhat
        // (local gaps collide), but should stay within 2×.
        assert!(g.num_edges() > n * 5 / 2);
        assert!(g.num_edges() <= n * 5);
    }

    #[test]
    fn web_validates_csr_invariants() {
        let g = web_locality(400, 6, 9);
        let _ = CsrGraph::new(g.offsets().to_vec(), g.adjacency().to_vec());
    }
}
