//! Binary CSR snapshots.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   8 bytes   b"PARHDEG1"
//! n       u64       number of vertices
//! arcs    u64       adjacency length (2m)
//! offsets (n+1)·u64
//! adj     arcs·u32
//! ```
//!
//! Generated benchmark graphs are cached in this format so repeated harness
//! runs skip regeneration. Uses [`bytes`] for cursor-free encoding.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use super::error::GraphIoError;
use crate::csr::CsrGraph;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 8] = b"PARHDEG1";

/// Serializes a graph to the binary snapshot format.
pub fn write_csr_binary(g: &CsrGraph) -> Bytes {
    let n = g.num_vertices();
    let arcs = g.num_arcs();
    let mut buf = BytesMut::with_capacity(8 + 16 + (n + 1) * 8 + arcs * 4);
    buf.put_slice(MAGIC);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(arcs as u64);
    for &o in g.offsets() {
        buf.put_u64_le(o as u64);
    }
    for &a in g.adjacency() {
        buf.put_u32_le(a);
    }
    buf.freeze()
}

/// Deserializes a graph from the binary snapshot format.
///
/// # Errors
/// Returns a [`GraphIoError`] if the magic, sizes, or CSR invariants are
/// violated (structural invariants are fully re-validated — snapshots may
/// come from disk).
pub fn read_csr_binary(mut data: &[u8]) -> Result<CsrGraph, GraphIoError> {
    if data.len() < 24 || &data[..8] != MAGIC {
        return Err(GraphIoError::Header(
            "bad magic: not a ParHDE graph snapshot".into(),
        ));
    }
    data.advance(8);
    let n64 = data.get_u64_le();
    let arcs64 = data.get_u64_le();
    // Declared counts are untrusted: checked conversions (no silent `as`
    // wrap on 32-bit targets, no n past the u32 vertex-id space) before
    // size arithmetic, and size arithmetic before any allocation.
    if n64 > u32::MAX as u64 + 1 {
        return Err(GraphIoError::TooLarge {
            what: "vertex count",
            value: n64,
            max: u32::MAX as u64 + 1,
        });
    }
    let n = usize::try_from(n64).map_err(|_| GraphIoError::TooLarge {
        what: "vertex count",
        value: n64,
        max: usize::MAX as u64,
    })?;
    let arcs = usize::try_from(arcs64).map_err(|_| GraphIoError::TooLarge {
        what: "arc count",
        value: arcs64,
        max: usize::MAX as u64,
    })?;
    let need = n
        .checked_add(1)
        .and_then(|o| o.checked_mul(8))
        .and_then(|o| arcs.checked_mul(4).and_then(|a| o.checked_add(a)))
        .ok_or(GraphIoError::Truncated { needed: usize::MAX, available: data.remaining() })?;
    if data.remaining() != need {
        return Err(GraphIoError::Truncated {
            needed: need,
            available: data.remaining(),
        });
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(data.get_u64_le() as usize);
    }
    let mut adj = Vec::with_capacity(arcs);
    for _ in 0..arcs {
        adj.push(data.get_u32_le());
    }
    if offsets.last().copied() != Some(arcs) {
        return Err(GraphIoError::Invalid("offsets[n] != arcs".into()));
    }
    // Full validation on the untrusted path.
    std::panic::catch_unwind(|| CsrGraph::new(offsets, adj))
        .map_err(|_| GraphIoError::Invalid("CSR invariants violated".into()))
}

/// Writes a snapshot to a file.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_csr(g: &CsrGraph, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, write_csr_binary(g))
}

/// Reads a snapshot from a file.
///
/// # Errors
/// Propagates I/O errors; format errors become `InvalidData`.
pub fn load_csr(path: &std::path::Path) -> std::io::Result<CsrGraph> {
    let data = std::fs::read(path)?;
    read_csr_binary(&data)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::gen::{grid2d, kron};

    #[test]
    fn roundtrip_grid() {
        let g = grid2d(13, 9);
        let bytes = write_csr_binary(&g);
        let h = read_csr_binary(&bytes).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn roundtrip_kron() {
        let g = kron(9, 8, 3);
        assert_eq!(read_csr_binary(&write_csr_binary(&g)).unwrap(), g);
    }

    #[test]
    fn roundtrip_empty() {
        let g = CsrGraph::new(vec![0], vec![]);
        assert_eq!(read_csr_binary(&write_csr_binary(&g)).unwrap(), g);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(read_csr_binary(b"NOTAGRAPH0000000000000000").is_err());
        assert!(read_csr_binary(b"").is_err());
    }

    #[test]
    fn rejects_oversized_vertex_count_typed() {
        // Declared n past the u32 id space must come back as TooLarge
        // before any allocation, not wrap or OOM.
        let mut bytes = write_csr_binary(&grid2d(3, 3)).to_vec();
        bytes[8..16].copy_from_slice(&(u32::MAX as u64 + 2).to_le_bytes());
        match read_csr_binary(&bytes) {
            Err(GraphIoError::TooLarge { what, .. }) => assert_eq!(what, "vertex count"),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_truncation() {
        let g = grid2d(4, 4);
        let bytes = write_csr_binary(&g);
        let cut = &bytes[..bytes.len() - 3];
        assert!(read_csr_binary(cut).is_err());
    }

    #[test]
    fn rejects_corruption() {
        let g = grid2d(4, 4);
        let mut bytes = write_csr_binary(&g).to_vec();
        // Smash an adjacency entry to an out-of-range id.
        let last = bytes.len() - 4;
        bytes[last..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_csr_binary(&bytes).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("parhde-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = grid2d(6, 7);
        save_csr(&g, &path).unwrap();
        assert_eq!(load_csr(&path).unwrap(), g);
        std::fs::remove_file(&path).ok();
    }
}
