//! Plain-text edge-list parsing.
//!
//! One edge per line, whitespace-separated 0-indexed endpoints with an
//! optional weight: `u v` or `u v w`. Lines starting with `#` or `%` are
//! comments. The number of vertices is one more than the largest endpoint
//! unless `min_vertices` raises it.
//!
//! Both readers are panic-free on arbitrary input and report the first
//! defect as a [`GraphIoError::Parse`] naming the 1-indexed line and
//! column of the offending token.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use super::error::{tokens_with_columns, GraphIoError};
use crate::builder::{build_from_edges, build_weighted_from_edges};
use crate::csr::{CsrGraph, WeightedCsr};

/// Pulls and parses the next token, or reports its line/column.
fn want<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = (usize, &'a str)>,
    line_no: usize,
    line: &str,
    what: &str,
) -> Result<(usize, T), GraphIoError> {
    match it.next() {
        Some((col, tok)) => match tok.parse() {
            Ok(v) => Ok((col, v)),
            Err(_) => Err(GraphIoError::Parse {
                line: line_no,
                column: col,
                message: format!("bad {what}: {tok:?}"),
            }),
        },
        None => Err(GraphIoError::Parse {
            line: line_no,
            column: line.len() + 1,
            message: format!("missing {what}"),
        }),
    }
}

/// Parses an unweighted edge list (extra columns ignored).
///
/// # Errors
/// Returns [`GraphIoError::Parse`] naming the line and column of the first
/// malformed token.
pub fn parse_edge_list(text: &str, min_vertices: usize) -> Result<CsrGraph, GraphIoError> {
    let mut edges = Vec::new();
    let mut n = min_vertices;
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = tokens_with_columns(line);
        let (_, u): (_, u32) = want(&mut it, i + 1, line, "source vertex")?;
        let (_, v): (_, u32) = want(&mut it, i + 1, line, "target vertex")?;
        n = n.max(u as usize + 1).max(v as usize + 1);
        edges.push((u, v));
    }
    Ok(build_from_edges(n, edges))
}

/// Parses a weighted edge list; missing weight columns default to 1.
///
/// # Errors
/// Returns [`GraphIoError::Parse`] naming the line and column of the first
/// malformed token; non-finite and negative weights are rejected the same
/// way (they would poison every downstream distance).
pub fn parse_weighted_edge_list(
    text: &str,
    min_vertices: usize,
) -> Result<WeightedCsr, GraphIoError> {
    let mut edges = Vec::new();
    let mut n = min_vertices;
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = tokens_with_columns(line);
        let (_, u): (_, u32) = want(&mut it, i + 1, line, "source vertex")?;
        let (_, v): (_, u32) = want(&mut it, i + 1, line, "target vertex")?;
        let w: f64 = match it.next() {
            None => 1.0,
            Some((col, tok)) => {
                let w: f64 = tok.parse().map_err(|_| GraphIoError::Parse {
                    line: i + 1,
                    column: col,
                    message: format!("bad weight: {tok:?}"),
                })?;
                if !(w.is_finite() && w >= 0.0) {
                    return Err(GraphIoError::Parse {
                        line: i + 1,
                        column: col,
                        message: format!("weight must be finite and ≥ 0, got {tok:?}"),
                    });
                }
                w
            }
        };
        n = n.max(u as usize + 1).max(v as usize + 1);
        edges.push((u, v, w));
    }
    Ok(build_weighted_from_edges(n, edges))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_list() {
        let g = parse_edge_list("0 1\n1 2\n# comment\n\n2 0\n", 0).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn min_vertices_pads_isolated() {
        let g = parse_edge_list("0 1\n", 5).unwrap();
        assert_eq!(g.num_vertices(), 5);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_edge_list("0 x\n", 0).is_err());
        assert!(parse_edge_list("0\n", 0).is_err());
    }

    #[test]
    fn error_names_line_and_column() {
        let err = parse_edge_list("0 1\n2 zz\n", 0).unwrap_err();
        assert_eq!(
            err,
            GraphIoError::Parse {
                line: 2,
                column: 3,
                message: "bad target vertex: \"zz\"".into()
            }
        );
        let err = parse_edge_list("0\n", 0).unwrap_err();
        assert_eq!(err.location(), Some((1, 2)));
    }

    #[test]
    fn weighted_defaults_to_unit() {
        let w = parse_weighted_edge_list("0 1 2.5\n1 2\n", 0).unwrap();
        assert_eq!(w.weight(0, 1), Some(2.5));
        assert_eq!(w.weight(1, 2), Some(1.0));
    }

    #[test]
    fn weighted_rejects_negative() {
        assert!(parse_weighted_edge_list("0 1 -3\n", 0).is_err());
    }

    #[test]
    fn weighted_rejects_nan_and_inf_with_position() {
        for bad in ["NaN", "inf", "-inf"] {
            let err = parse_weighted_edge_list(&format!("0 1 1.0\n1 2 {bad}\n"), 0)
                .unwrap_err();
            assert_eq!(err.location(), Some((2, 5)), "{bad}: {err:?}");
        }
    }
}
