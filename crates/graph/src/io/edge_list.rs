//! Plain-text edge-list parsing.
//!
//! One edge per line, whitespace-separated 0-indexed endpoints with an
//! optional weight: `u v` or `u v w`. Lines starting with `#` or `%` are
//! comments. The number of vertices is one more than the largest endpoint
//! unless `min_vertices` raises it.

use crate::builder::{build_from_edges, build_weighted_from_edges};
use crate::csr::{CsrGraph, WeightedCsr};

/// Parses an unweighted edge list (extra columns ignored).
///
/// # Errors
/// Returns a message naming the first malformed line.
pub fn parse_edge_list(text: &str, min_vertices: usize) -> Result<CsrGraph, String> {
    let mut edges = Vec::new();
    let mut n = min_vertices;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u: u32 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("line {}: bad source in {line:?}", i + 1))?;
        let v: u32 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("line {}: bad target in {line:?}", i + 1))?;
        n = n.max(u as usize + 1).max(v as usize + 1);
        edges.push((u, v));
    }
    Ok(build_from_edges(n, edges))
}

/// Parses a weighted edge list; missing weight columns default to 1.
///
/// # Errors
/// Returns a message naming the first malformed line.
pub fn parse_weighted_edge_list(
    text: &str,
    min_vertices: usize,
) -> Result<WeightedCsr, String> {
    let mut edges = Vec::new();
    let mut n = min_vertices;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u: u32 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("line {}: bad source in {line:?}", i + 1))?;
        let v: u32 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("line {}: bad target in {line:?}", i + 1))?;
        let w: f64 = match it.next() {
            None => 1.0,
            Some(t) => t
                .parse()
                .map_err(|_| format!("line {}: bad weight in {line:?}", i + 1))?,
        };
        if !(w.is_finite() && w >= 0.0) {
            return Err(format!("line {}: weight must be finite ≥ 0", i + 1));
        }
        n = n.max(u as usize + 1).max(v as usize + 1);
        edges.push((u, v, w));
    }
    Ok(build_weighted_from_edges(n, edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_list() {
        let g = parse_edge_list("0 1\n1 2\n# comment\n\n2 0\n", 0).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn min_vertices_pads_isolated() {
        let g = parse_edge_list("0 1\n", 5).unwrap();
        assert_eq!(g.num_vertices(), 5);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_edge_list("0 x\n", 0).is_err());
        assert!(parse_edge_list("0\n", 0).is_err());
    }

    #[test]
    fn weighted_defaults_to_unit() {
        let w = parse_weighted_edge_list("0 1 2.5\n1 2\n", 0).unwrap();
        assert_eq!(w.weight(0, 1), Some(2.5));
        assert_eq!(w.weight(1, 2), Some(1.0));
    }

    #[test]
    fn weighted_rejects_negative() {
        assert!(parse_weighted_edge_list("0 1 -3\n", 0).is_err());
    }
}
