//! Unified typed errors for every graph reader.
//!
//! All text and binary readers in [`crate::io`] report failures through
//! [`GraphIoError`] so callers (notably the fail-soft `try_*` pipeline in
//! the `hde` crate) can map any malformed input to one typed variant with
//! enough position information — 1-indexed line and column for text
//! formats, byte counts for binary snapshots — to point a user at the
//! offending spot in their file instead of aborting the process.

/// A failure while reading a graph from untrusted bytes or text.
///
/// No reader in this module panics on malformed input; every defect is
/// reported through one of these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphIoError {
    /// The file's header line (or binary magic) is missing or malformed.
    Header(String),
    /// The header parsed but names a format qualifier we do not support.
    Unsupported(String),
    /// Malformed text content at a 1-indexed line and column.
    Parse {
        /// 1-indexed line number of the offending line.
        line: usize,
        /// 1-indexed column of the offending token (byte-based).
        column: usize,
        /// What was wrong with the token or line.
        message: String,
    },
    /// A binary payload shorter than its declared sizes.
    Truncated {
        /// Bytes the declared sizes require.
        needed: usize,
        /// Bytes actually present.
        available: usize,
    },
    /// Structurally invalid data: out-of-range indices, broken CSR
    /// invariants, or values (NaN/∞) the graph model cannot represent.
    Invalid(String),
    /// A declared count exceeds what the graph model can address — vertex
    /// counts past the `u32` id space, or sizes past `usize` — detected by
    /// checked conversion instead of silently wrapping.
    TooLarge {
        /// Which quantity overflowed (e.g. `"vertex count"`).
        what: &'static str,
        /// The declared value.
        value: u64,
        /// The largest representable value for this quantity.
        max: u64,
    },
}

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Header(h) => write!(f, "bad header: {h}"),
            Self::Unsupported(q) => write!(f, "unsupported format qualifier: {q}"),
            Self::Parse { line, column, message } => {
                write!(f, "parse error at line {line}, column {column}: {message}")
            }
            Self::Truncated { needed, available } => write!(
                f,
                "truncated input: need {needed} bytes, have {available}"
            ),
            Self::Invalid(m) => write!(f, "invalid graph data: {m}"),
            Self::TooLarge { what, value, max } => {
                write!(f, "{what} {value} exceeds the representable maximum {max}")
            }
        }
    }
}

impl std::error::Error for GraphIoError {}

impl GraphIoError {
    /// The (line, column) location for text-format errors, if known.
    pub fn location(&self) -> Option<(usize, usize)> {
        match self {
            Self::Parse { line, column, .. } => Some((*line, *column)),
            _ => None,
        }
    }
}

impl From<super::matrix_market::MatrixMarketError> for GraphIoError {
    fn from(e: super::matrix_market::MatrixMarketError) -> Self {
        use super::matrix_market::MatrixMarketError as M;
        match e {
            M::BadHeader(h) => Self::Header(h),
            M::Unsupported(q) => Self::Unsupported(q),
            M::BadLine(line, column, content) => Self::Parse {
                line,
                column,
                message: format!("malformed entry: {content:?}"),
            },
            M::OutOfRange(line) => Self::Parse {
                line,
                column: 1,
                message: "vertex index out of declared range".into(),
            },
            M::TooLarge(_, value) => Self::TooLarge {
                what: "declared matrix dimension",
                value,
                max: u32::MAX as u64 + 1,
            },
        }
    }
}

/// Splits a text line into whitespace-separated tokens, each paired with
/// its 1-indexed byte column — shared by the text readers so parse errors
/// can name the exact token that failed.
pub(crate) fn tokens_with_columns(line: &str) -> impl Iterator<Item = (usize, &str)> {
    let mut rest = line;
    let mut offset = 0usize;
    std::iter::from_fn(move || {
        let skip = rest.len() - rest.trim_start().len();
        offset += skip;
        rest = &rest[skip..];
        if rest.is_empty() {
            return None;
        }
        let end = rest
            .find(|c: char| c.is_whitespace())
            .unwrap_or(rest.len());
        let tok = &rest[..end];
        let col = offset + 1;
        offset += end;
        rest = &rest[end..];
        Some((col, tok))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_reports_columns() {
        let toks: Vec<_> = tokens_with_columns("  ab 12\tx").collect();
        assert_eq!(toks, vec![(3, "ab"), (6, "12"), (9, "x")]);
        assert_eq!(tokens_with_columns("").count(), 0);
        assert_eq!(tokens_with_columns("   ").count(), 0);
    }

    #[test]
    fn display_names_location() {
        let e = GraphIoError::Parse { line: 7, column: 3, message: "bad weight".into() };
        let s = e.to_string();
        assert!(s.contains("line 7"));
        assert!(s.contains("column 3"));
        assert_eq!(e.location(), Some((7, 3)));
    }
}
