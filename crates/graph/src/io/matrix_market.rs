//! Matrix Market (`.mtx`) coordinate-format parsing and writing.
//!
//! Supports the subset the SuiteSparse graph corpus uses: `matrix
//! coordinate` with `pattern`, `real`, or `integer` fields and `general` or
//! `symmetric` symmetry. Entries are 1-indexed. Parsed entries become an
//! undirected edge list: direction is ignored (paper §4.1), diagonal entries
//! (self-loops) are dropped by the downstream builder, and for weighted
//! reads the absolute value is used (SuiteSparse matrices can carry signed
//! values; similarity weights must be non-negative, §2.1).
//!
//! The parser is panic-free on arbitrary input: truncated files, missing
//! size lines, short entry lines, and non-finite values all come back as
//! [`MatrixMarketError`] with a 1-indexed line and column.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use super::error::tokens_with_columns;
use crate::builder::{build_from_edges, build_weighted_from_edges};
use crate::csr::{CsrGraph, WeightedCsr};

/// Errors from Matrix Market parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixMarketError {
    /// The header line is missing or not `%%MatrixMarket matrix coordinate …`.
    BadHeader(String),
    /// An unsupported field or symmetry qualifier.
    Unsupported(String),
    /// A malformed size or entry line (1-indexed line, column, content).
    BadLine(usize, usize, String),
    /// Entry indices out of the declared dimensions.
    OutOfRange(usize),
    /// A declared dimension exceeds the `u32` vertex-id space (1-indexed
    /// line, declared value) — caught by checked conversion instead of
    /// letting `as u32` silently wrap entry indices.
    TooLarge(usize, u64),
}

impl std::fmt::Display for MatrixMarketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadHeader(h) => write!(f, "bad MatrixMarket header: {h}"),
            Self::Unsupported(q) => write!(f, "unsupported MatrixMarket qualifier: {q}"),
            Self::BadLine(ln, col, s) => {
                write!(f, "malformed line {ln}, column {col}: {s}")
            }
            Self::OutOfRange(ln) => write!(f, "index out of range on line {ln}"),
            Self::TooLarge(ln, v) => {
                write!(f, "dimension {v} on line {ln} exceeds the u32 vertex-id space")
            }
        }
    }
}

impl std::error::Error for MatrixMarketError {}

struct Parsed {
    n: usize,
    entries: Vec<(u32, u32, f64)>,
}

/// Pulls the next token off `it`, parsing it as `T`; reports the column of
/// the bad token, or the end-of-line column when the line is short.
fn want<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = (usize, &'a str)>,
    line_no: usize,
    line: &str,
    what: &str,
) -> Result<T, MatrixMarketError> {
    match it.next() {
        Some((col, tok)) => tok.parse().map_err(|_| {
            MatrixMarketError::BadLine(line_no, col, format!("bad {what}: {tok:?}"))
        }),
        None => Err(MatrixMarketError::BadLine(
            line_no,
            line.len() + 1,
            format!("missing {what}"),
        )),
    }
}

fn parse(text: &str) -> Result<Parsed, MatrixMarketError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| MatrixMarketError::BadHeader("<empty input>".into()))?;
    let toks: Vec<String> = header.split_whitespace().map(|t| t.to_lowercase()).collect();
    if toks.len() < 5 || toks[0] != "%%matrixmarket" || toks[1] != "matrix" {
        return Err(MatrixMarketError::BadHeader(header.into()));
    }
    if toks[2] != "coordinate" {
        return Err(MatrixMarketError::Unsupported(toks[2].clone()));
    }
    let field = toks[3].as_str();
    if !matches!(field, "pattern" | "real" | "integer") {
        return Err(MatrixMarketError::Unsupported(field.into()));
    }
    let symmetry = toks[4].as_str();
    if !matches!(symmetry, "general" | "symmetric") {
        return Err(MatrixMarketError::Unsupported(symmetry.into()));
    }

    // Size line: first non-comment line.
    let mut size: Option<(usize, usize)> = None;
    let mut entries: Vec<(u32, u32, f64)> = Vec::new();
    for (i, raw) in lines {
        let line = raw.trim_end();
        let trimmed = line.trim_start();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let ln = i + 1;
        let mut it = tokens_with_columns(line);
        let Some((rows, cols)) = size else {
            let r: usize = want(&mut it, ln, line, "row count")?;
            let c: usize = want(&mut it, ln, line, "column count")?;
            let nnz: usize = want(&mut it, ln, line, "entry count")?;
            // Vertex ids are u32: a dimension past that space would make
            // the `(index − 1) as u32` conversion below wrap silently.
            let max_dim = u32::MAX as usize + 1;
            if let Some(&too_big) = [r, c].iter().find(|&&d| d > max_dim) {
                return Err(MatrixMarketError::TooLarge(ln, too_big as u64));
            }
            size = Some((r, c));
            // A hostile size line can declare an absurd nnz; cap the
            // up-front reservation so it cannot OOM before entries exist.
            entries.reserve(nnz.min(1 << 24));
            continue;
        };
        let r: usize = want(&mut it, ln, line, "row index")?;
        let c: usize = want(&mut it, ln, line, "column index")?;
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(MatrixMarketError::OutOfRange(ln));
        }
        let w: f64 = if field == "pattern" {
            1.0
        } else {
            let (col, tok) = match it.next() {
                Some(t) => t,
                None => {
                    return Err(MatrixMarketError::BadLine(
                        ln,
                        line.len() + 1,
                        "missing value".into(),
                    ))
                }
            };
            let v: f64 = tok.parse().map_err(|_| {
                MatrixMarketError::BadLine(ln, col, format!("bad value: {tok:?}"))
            })?;
            if !v.is_finite() {
                return Err(MatrixMarketError::BadLine(
                    ln,
                    col,
                    format!("non-finite value: {tok:?}"),
                ));
            }
            v.abs()
        };
        entries.push(((r - 1) as u32, (c - 1) as u32, w));
    }
    let (rows, cols) = size.ok_or_else(|| {
        MatrixMarketError::BadLine(0, 1, "missing size line".into())
    })?;
    // Treat the matrix as the adjacency of a graph on max(rows, cols)
    // vertices (square matrices in practice).
    Ok(Parsed { n: rows.max(cols), entries })
}

/// Parses a Matrix Market text into an unweighted, undirected, simple
/// [`CsrGraph`] (weights ignored; direction ignored; loops dropped).
pub fn parse_matrix_market(text: &str) -> Result<CsrGraph, MatrixMarketError> {
    let p = parse(text)?;
    let edges: Vec<(u32, u32)> = p.entries.iter().map(|&(u, v, _)| (u, v)).collect();
    Ok(build_from_edges(p.n, edges))
}

/// Parses a Matrix Market text into a weighted undirected graph
/// (`pattern` files get unit weights; values are taken by absolute value;
/// when duplicates disagree, the smaller weight wins). Non-finite values
/// are rejected with the offending line and column — they would otherwise
/// poison every downstream distance.
pub fn parse_matrix_market_weighted(text: &str) -> Result<WeightedCsr, MatrixMarketError> {
    let p = parse(text)?;
    Ok(build_weighted_from_edges(p.n, p.entries))
}

/// Writes an unweighted graph as a symmetric pattern Matrix Market text
/// (lower-triangular entries, 1-indexed).
pub fn write_matrix_market(g: &CsrGraph) -> String {
    let mut out = String::new();
    out.push_str("%%MatrixMarket matrix coordinate pattern symmetric\n");
    out.push_str(&format!(
        "{} {} {}\n",
        g.num_vertices(),
        g.num_vertices(),
        g.num_edges()
    ));
    for (u, v) in g.edges() {
        // symmetric format stores the lower triangle: row ≥ col.
        out.push_str(&format!("{} {}\n", v + 1, u + 1));
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::gen::grid2d;

    #[test]
    fn oversized_dimension_rejected_typed() {
        let text = format!(
            "%%MatrixMarket matrix coordinate pattern general\n{} 3 1\n1 2\n",
            u32::MAX as u64 + 2
        );
        match parse_matrix_market(&text) {
            Err(MatrixMarketError::TooLarge(line, v)) => {
                assert_eq!(line, 2);
                assert_eq!(v, u32::MAX as u64 + 2);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    const TRIANGLE: &str = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                            % a comment\n\
                            3 3 3\n\
                            2 1\n\
                            3 1\n\
                            3 2\n";

    #[test]
    fn parses_symmetric_pattern() {
        let g = parse_matrix_market(TRIANGLE).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn parses_general_real_with_duplicates_and_loops() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    3 3 5\n\
                    1 2 1.5\n\
                    2 1 1.5\n\
                    1 1 9.0\n\
                    2 3 -2.0\n\
                    3 2 2.0\n";
        let g = parse_matrix_market(text).unwrap();
        assert_eq!(g.num_edges(), 2); // loop dropped, duplicates merged
        let w = parse_matrix_market_weighted(text).unwrap();
        assert_eq!(w.weight(1, 2), Some(2.0)); // |-2.0|
        assert_eq!(w.weight(0, 1), Some(1.5));
    }

    #[test]
    fn roundtrip_write_then_parse() {
        let g = grid2d(7, 5);
        let text = write_matrix_market(&g);
        let h = parse_matrix_market(&text).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            parse_matrix_market("%%NotMM\n1 1 0\n"),
            Err(MatrixMarketError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_unsupported_complex() {
        let text = "%%MatrixMarket matrix coordinate complex general\n1 1 0\n";
        assert!(matches!(
            parse_matrix_market(text),
            Err(MatrixMarketError::Unsupported(_))
        ));
    }

    #[test]
    fn rejects_out_of_range_entry() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(matches!(
            parse_matrix_market(text),
            Err(MatrixMarketError::OutOfRange(_))
        ));
    }

    #[test]
    fn rejects_malformed_entry() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2\n";
        assert!(matches!(
            parse_matrix_market(text),
            Err(MatrixMarketError::BadLine(..))
        ));
    }

    #[test]
    fn truncated_size_line_names_position() {
        // Size line cut off after one token — the historical `size.unwrap()`
        // crash site; must now be a typed error naming line 2.
        let text = "%%MatrixMarket matrix coordinate pattern general\n2\n";
        assert_eq!(
            parse_matrix_market(text),
            Err(MatrixMarketError::BadLine(2, 2, "missing column count".into()))
        );
    }

    #[test]
    fn missing_size_line_is_an_error() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n% only comments\n";
        assert!(matches!(
            parse_matrix_market(text),
            Err(MatrixMarketError::BadLine(..))
        ));
    }

    #[test]
    fn rejects_nan_and_inf_values() {
        for bad in ["NaN", "nan", "inf", "-inf"] {
            let text = format!(
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 {bad}\n"
            );
            let err = parse_matrix_market_weighted(&text).unwrap_err();
            assert!(
                matches!(err, MatrixMarketError::BadLine(3, 5, _)),
                "{bad}: {err:?}"
            );
        }
    }

    #[test]
    fn error_column_points_at_bad_token() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 x\n";
        assert!(matches!(
            parse_matrix_market(text),
            Err(MatrixMarketError::BadLine(3, 3, _))
        ));
    }

    #[test]
    fn pattern_weighted_gets_unit_weights() {
        let w = parse_matrix_market_weighted(TRIANGLE).unwrap();
        assert_eq!(w.weight(0, 1), Some(1.0));
    }
}
