//! Graph input/output.
//!
//! * [`matrix_market`] — the SuiteSparse collection's exchange format; the
//!   paper's non-synthetic inputs are all MatrixMarket files. Symmetric and
//!   general, `pattern`/`real`/`integer` fields are supported; the parsed
//!   edge list then goes through the standard preprocessing pipeline.
//! * [`edge_list`] — whitespace-separated `u v [w]` text lines.
//! * [`binary`] — a fast seekless binary CSR snapshot (magic + counts +
//!   raw arrays, little-endian) so large generated graphs can be cached
//!   between benchmark runs.

pub mod binary;
pub mod edge_list;
pub mod matrix_market;

pub use binary::{read_csr_binary, write_csr_binary};
pub use edge_list::{parse_edge_list, parse_weighted_edge_list};
pub use matrix_market::{parse_matrix_market, write_matrix_market, MatrixMarketError};
