//! Graph input/output.
//!
//! * [`matrix_market`] — the SuiteSparse collection's exchange format; the
//!   paper's non-synthetic inputs are all MatrixMarket files. Symmetric and
//!   general, `pattern`/`real`/`integer` fields are supported; the parsed
//!   edge list then goes through the standard preprocessing pipeline.
//! * [`edge_list`] — whitespace-separated `u v [w]` text lines.
//! * [`binary`] — a fast seekless binary CSR snapshot (magic + counts +
//!   raw arrays, little-endian) so large generated graphs can be cached
//!   between benchmark runs.
//!
//! Every reader is panic-free on untrusted input and reports defects
//! through the unified [`GraphIoError`] (text formats carry a 1-indexed
//! line and column). `clippy::unwrap_used` is denied throughout this
//! module tree.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub mod binary;
pub mod edge_list;
pub mod error;
pub mod matrix_market;

pub use binary::{read_csr_binary, write_csr_binary};
pub use edge_list::{parse_edge_list, parse_weighted_edge_list};
pub use error::GraphIoError;
pub use matrix_market::{parse_matrix_market, parse_matrix_market_weighted, write_matrix_market, MatrixMarketError};
