//! Graph substrate for the ParHDE reproduction.
//!
//! The paper (§3.1) stores graphs "in a compressed sparse row (CSR)-like
//! format" and, for unweighted graphs, never materializes weights or the
//! Laplacian. This crate provides that representation plus everything needed
//! to produce the paper's inputs:
//!
//! * [`csr`] — the immutable [`CsrGraph`] adjacency structure and the
//!   weighted companion [`csr::WeightedCsr`] used by Δ-stepping SSSP.
//! * [`builder`] — edge-list ingestion with the preprocessing the paper
//!   applies (§4.1): drop self-loops and parallel edges, ignore direction.
//! * [`prep`] — largest-connected-component extraction with
//!   order-preserving relabeling, plus induced-subgraph and k-hop
//!   neighborhood extraction (used by the "zoom" feature, §4.5.2).
//! * [`gen`] — seeded synthetic generators standing in for the paper's
//!   Table 2 collection (GAP urand/kron plus SuiteSparse-like analogues).
//! * [`order`] — vertex reorderings (random shuffle, BFS, degree) for the
//!   §4.4 locality experiments.
//! * [`gaps`] — adjacency-gap distributions with Fibonacci binning
//!   (Figure 2), plus the varint bytes/edge estimate that predicts
//!   on-disk size before packing.
//! * [`store`] — the [`store::GraphStore`] neighbor-access trait the BFS
//!   and SpMM kernels are generic over.
//! * [`compressed`] — byte-coded gap-compressed CSR
//!   ([`compressed::CompressedCsr`]) and the mmap-backed `PHDEGRF` v1
//!   snapshot format for out-of-core graphs.
//! * [`io`] — Matrix Market and edge-list text formats and a fast binary
//!   snapshot format.
//! * [`coarsen`] — matching-based coarsening hierarchies (the multilevel
//!   substrate).
//! * [`report`] — one-pass structural profiles (size, skew, diameter,
//!   ordering locality).
//!
//! # Example
//!
//! ```
//! use parhde_graph::builder::build_from_edges;
//! use parhde_graph::prep::largest_component;
//!
//! // Messy input: duplicates, a self-loop, two components.
//! let g = build_from_edges(6, vec![(0, 1), (1, 0), (1, 1), (1, 2), (4, 5)]);
//! assert_eq!(g.num_edges(), 3);                       // cleaned
//! let lcc = largest_component(&g);
//! assert_eq!(lcc.graph.num_vertices(), 3);            // {0, 1, 2}
//! assert_eq!(lcc.old_ids, vec![0, 1, 2]);             // order preserved
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod coarsen;
pub mod compressed;
pub mod csr;
pub mod decompose;
pub mod gaps;
pub mod gen;
pub mod io;
pub mod order;
pub mod prep;
pub mod report;
pub mod store;

pub use builder::GraphBuilder;
pub use compressed::{CompressedCsr, SNAPSHOT_MAGIC};
pub use csr::{CsrGraph, WeightedCsr};
pub use store::{GraphStore, NeighborScratch, StorageKind};
