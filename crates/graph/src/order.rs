//! Vertex reorderings.
//!
//! §4.4 of the paper shows ordering is a first-order performance effect: a
//! random permutation of sk-2005's ids slows the `LS` SpMM by 6.8× and the
//! whole pipeline by 3.5×. This module applies permutations to CSR graphs
//! and provides the orderings the reproduction sweeps: random shuffle (the
//! adversarial case), BFS order (a classic locality-enhancing ordering), and
//! degree-descending order.

use crate::csr::CsrGraph;
use parhde_util::Xoshiro256StarStar;

/// Relabels the graph so that old vertex `v` becomes `perm[v]`.
///
/// `perm` must be a permutation of `0..n`.
///
/// # Panics
/// Panics if `perm` has the wrong length or is not a bijection.
pub fn apply_permutation(g: &CsrGraph, perm: &[u32]) -> CsrGraph {
    let n = g.num_vertices();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!((p as usize) < n, "permutation target out of range");
        assert!(!seen[p as usize], "permutation is not a bijection");
        seen[p as usize] = true;
    }
    // inverse[new] = old
    let mut inverse = vec![0u32; n];
    for (old, &new) in perm.iter().enumerate() {
        inverse[new as usize] = old as u32;
    }
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let mut adj = Vec::with_capacity(g.num_arcs());
    let mut scratch: Vec<u32> = Vec::new();
    for new_v in 0..n as u32 {
        let old_v = inverse[new_v as usize];
        scratch.clear();
        scratch.extend(g.neighbors(old_v).iter().map(|&u| perm[u as usize]));
        scratch.sort_unstable();
        adj.extend_from_slice(&scratch);
        offsets.push(adj.len());
    }
    CsrGraph::from_parts_unchecked(offsets, adj)
}

/// Returns a uniformly random permutation of `0..n` (for the §4.4
/// shuffled-ordering ablation).
pub fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    Xoshiro256StarStar::seed_from_u64(seed).shuffle(&mut perm);
    perm
}

/// Relabels with a random permutation.
pub fn shuffle_vertices(g: &CsrGraph, seed: u64) -> CsrGraph {
    apply_permutation(g, &random_permutation(g.num_vertices(), seed))
}

/// BFS ordering from `start`: vertices are renumbered in BFS visitation
/// order (unreached vertices keep their relative order at the end). A
/// classic cheap locality-enhancing ordering.
pub fn bfs_permutation(g: &CsrGraph, start: u32) -> Vec<u32> {
    let n = g.num_vertices();
    assert!((start as usize) < n, "start out of range");
    let mut perm = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut frontier = vec![start];
    perm[start as usize] = next;
    next += 1;
    while !frontier.is_empty() {
        let mut nf = Vec::new();
        for &v in &frontier {
            for &u in g.neighbors(v) {
                if perm[u as usize] == u32::MAX {
                    perm[u as usize] = next;
                    next += 1;
                    nf.push(u);
                }
            }
        }
        frontier = nf;
    }
    for p in perm.iter_mut() {
        if *p == u32::MAX {
            *p = next;
            next += 1;
        }
    }
    perm
}

/// Reverse Cuthill-McKee permutation: BFS from `start` with each level's
/// vertices visited in ascending-degree order, then the whole order
/// reversed — the classic bandwidth-reducing ordering, a stronger
/// locality-enhancing alternative to plain BFS ordering for the §4.4
/// ordering experiments. Unreached vertices are appended in id order.
pub fn rcm_permutation(g: &CsrGraph, start: u32) -> Vec<u32> {
    let n = g.num_vertices();
    assert!((start as usize) < n, "start out of range");
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    visited[start as usize] = true;
    order.push(start);
    let mut head = 0usize;
    let mut scratch: Vec<u32> = Vec::new();
    while head < order.len() {
        let v = order[head];
        head += 1;
        scratch.clear();
        scratch.extend(
            g.neighbors(v)
                .iter()
                .copied()
                .filter(|&u| !visited[u as usize]),
        );
        scratch.sort_by_key(|&u| (g.degree(u), u));
        for &u in &scratch {
            visited[u as usize] = true;
            order.push(u);
        }
    }
    for v in 0..n as u32 {
        if !visited[v as usize] {
            order.push(v);
        }
    }
    order.reverse();
    // order[rank] = old id  →  perm[old] = rank.
    let mut perm = vec![0u32; n];
    for (rank, &old) in order.iter().enumerate() {
        perm[old as usize] = rank as u32;
    }
    perm
}

/// Degree-descending ordering: hubs first (ties keep original order).
pub fn degree_permutation(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let mut perm = vec![0u32; n];
    for (rank, &old) in by_degree.iter().enumerate() {
        perm[old as usize] = rank as u32;
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_from_edges;
    use crate::gen::{chain, star};

    #[test]
    fn identity_permutation_is_noop() {
        let g = chain(6);
        let id: Vec<u32> = (0..6).collect();
        assert_eq!(apply_permutation(&g, &id), g);
    }

    #[test]
    fn permutation_preserves_structure() {
        let g = build_from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        // Reverse the ids.
        let perm = vec![3u32, 2, 1, 0];
        let h = apply_permutation(&g, &perm);
        assert_eq!(h.num_edges(), 3);
        assert!(h.has_edge(3, 2)); // old (0,1)
        assert!(h.has_edge(1, 0)); // old (2,3)
        assert_eq!(h.degree(2), 2); // old vertex 1
        // Invariants hold.
        let _ = CsrGraph::new(h.offsets().to_vec(), h.adjacency().to_vec());
    }

    #[test]
    fn shuffle_preserves_counts() {
        let g = star(50);
        let h = shuffle_vertices(&g, 77);
        assert_eq!(h.num_edges(), g.num_edges());
        assert_eq!(h.max_degree(), 49);
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let g = chain(100);
        assert_eq!(shuffle_vertices(&g, 5), shuffle_vertices(&g, 5));
        assert_ne!(shuffle_vertices(&g, 5), shuffle_vertices(&g, 6));
    }

    #[test]
    #[should_panic(expected = "not a bijection")]
    fn bad_permutation_rejected() {
        apply_permutation(&chain(3), &[0, 0, 1]);
    }

    #[test]
    fn bfs_permutation_orders_chain_linearly() {
        // A chain BFS-ordered from one end is the identity from that end.
        let g = chain(5);
        let perm = bfs_permutation(&g, 0);
        assert_eq!(perm, vec![0, 1, 2, 3, 4]);
        let from_end = bfs_permutation(&g, 4);
        assert_eq!(from_end, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn bfs_permutation_handles_disconnected() {
        let g = build_from_edges(4, vec![(0, 1)]);
        let perm = bfs_permutation(&g, 0);
        // 2 and 3 unreached, appended in order.
        assert_eq!(perm, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_permutation_restores_shuffled_chain_locality() {
        // Shuffling a chain destroys locality; BFS ordering restores gap=2.
        let g = shuffle_vertices(&chain(200), 3);
        let perm = bfs_permutation(&g, 0);
        let h = apply_permutation(&g, &perm);
        // BFS from a mid-chain vertex alternates left/right, so interior
        // gaps become 3 or 4 (vs ~uniform-random in the shuffled graph).
        let mut small = 0;
        let mut total = 0;
        for v in 0..h.num_vertices() as u32 {
            for w in h.neighbors(v).windows(2) {
                total += 1;
                if w[1] - w[0] <= 4 {
                    small += 1;
                }
            }
        }
        assert!(
            small >= total - 2,
            "expected nearly all gaps ≤ 4, saw {small}/{total}"
        );
    }

    /// Matrix bandwidth: max |perm-adjacent| gap, the quantity RCM targets.
    fn bandwidth(g: &CsrGraph) -> u32 {
        let mut bw = 0;
        for v in 0..g.num_vertices() as u32 {
            for &u in g.neighbors(v) {
                bw = bw.max(u.abs_diff(v));
            }
        }
        bw
    }

    #[test]
    fn rcm_restores_chain_bandwidth() {
        let g = shuffle_vertices(&chain(300), 11);
        assert!(bandwidth(&g) > 10);
        let h = apply_permutation(&g, &rcm_permutation(&g, 0));
        assert!(
            bandwidth(&h) <= 2,
            "RCM bandwidth {} on a path should be ≤ 2",
            bandwidth(&h)
        );
    }

    #[test]
    fn rcm_reduces_grid_bandwidth() {
        use crate::gen::grid2d;
        let g = shuffle_vertices(&grid2d(20, 20), 4);
        let before = bandwidth(&g);
        let h = apply_permutation(&g, &rcm_permutation(&g, 0));
        let after = bandwidth(&h);
        assert!(
            after * 4 < before,
            "RCM should cut the shuffled grid bandwidth: {before} → {after}"
        );
    }

    #[test]
    fn rcm_is_a_valid_permutation_with_disconnection() {
        let g = build_from_edges(6, vec![(0, 1), (3, 4)]);
        let perm = rcm_permutation(&g, 0);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn degree_permutation_puts_hub_first() {
        let g = star(10);
        let perm = degree_permutation(&g);
        assert_eq!(perm[0], 0, "hub keeps rank 0");
        let h = apply_permutation(&g, &perm);
        assert_eq!(h.degree(0), 9);
    }
}
