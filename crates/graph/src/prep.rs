//! Graph preprocessing: connected components, largest-component extraction,
//! induced subgraphs, and k-hop neighborhoods.
//!
//! Matches the paper's §4.1 pipeline: "we ... extract the largest connected
//! component. ... When extracting the largest connected component, we remove
//! vertices not in the component and renumber the vertices to be contiguous,
//! but preserving the original implied ordering." Order preservation matters
//! because Figure 2 / §4.4 show vertex ordering dominates SpMM locality.

use crate::csr::{CsrGraph, WeightedCsr};

/// Labels each vertex with a component id in `[0, num_components)`;
/// components are numbered in order of first appearance by vertex id.
#[derive(Clone, Debug)]
pub struct Components {
    /// `labels[v]` is the component id of vertex `v`.
    pub labels: Vec<u32>,
    /// Number of vertices in each component, indexed by component id.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Id of the largest component (lowest id wins ties).
    pub fn largest(&self) -> u32 {
        self.sizes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))
            .map(|(i, _)| i as u32)
            .expect("graph has at least one vertex")
    }
}

/// Computes connected components with an iterative BFS sweep.
///
/// Sequential by design: component labeling is a one-off preprocessing step
/// and the iterative frontier loop keeps memory traffic minimal.
///
/// # Panics
/// Panics if the graph has no vertices.
pub fn connected_components(g: &CsrGraph) -> Components {
    let n = g.num_vertices();
    assert!(n > 0, "connected_components requires at least one vertex");
    const UNSET: u32 = u32::MAX;
    let mut labels = vec![UNSET; n];
    let mut sizes = Vec::new();
    let mut queue = Vec::new();
    for start in 0..n as u32 {
        if labels[start as usize] != UNSET {
            continue;
        }
        let id = sizes.len() as u32;
        let mut size = 0usize;
        labels[start as usize] = id;
        queue.clear();
        queue.push(start);
        while let Some(v) = queue.pop() {
            size += 1;
            for &u in g.neighbors(v) {
                if labels[u as usize] == UNSET {
                    labels[u as usize] = id;
                    queue.push(u);
                }
            }
        }
        sizes.push(size);
    }
    Components { labels, sizes }
}

/// Result of extracting a vertex-induced subgraph: the subgraph plus the
/// mapping from new contiguous ids back to the ids in the original graph.
#[derive(Clone, Debug)]
pub struct Extracted {
    /// The induced subgraph with contiguous vertex ids `0..k`.
    pub graph: CsrGraph,
    /// `old_ids[new]` is the original id of subgraph vertex `new`.
    /// Ascending, so original relative order is preserved.
    pub old_ids: Vec<u32>,
}

impl Extracted {
    /// Maps an original vertex id to its new id, if it survived extraction.
    pub fn new_id(&self, old: u32) -> Option<u32> {
        self.old_ids.binary_search(&old).ok().map(|i| i as u32)
    }
}

/// Extracts the subgraph induced by `keep` (original ids; need not be
/// sorted; duplicates ignored), renumbering vertices contiguously while
/// preserving the original relative order.
pub fn induced_subgraph(g: &CsrGraph, keep: &[u32]) -> Extracted {
    let n = g.num_vertices();
    let mut old_ids: Vec<u32> = keep.to_vec();
    old_ids.sort_unstable();
    old_ids.dedup();
    assert!(
        old_ids.last().is_none_or(|&v| (v as usize) < n),
        "kept vertex out of range"
    );
    const ABSENT: u32 = u32::MAX;
    let mut remap = vec![ABSENT; n];
    for (new, &old) in old_ids.iter().enumerate() {
        remap[old as usize] = new as u32;
    }
    let mut offsets = Vec::with_capacity(old_ids.len() + 1);
    offsets.push(0usize);
    let mut adj = Vec::new();
    for &old in &old_ids {
        for &nb in g.neighbors(old) {
            let mapped = remap[nb as usize];
            if mapped != ABSENT {
                adj.push(mapped);
            }
        }
        offsets.push(adj.len());
    }
    Extracted {
        graph: CsrGraph::from_parts_unchecked(offsets, adj),
        old_ids,
    }
}

/// Extracts the largest connected component, renumbering contiguously and
/// preserving the original vertex order (§4.1).
pub fn largest_component(g: &CsrGraph) -> Extracted {
    let comps = connected_components(g);
    let big = comps.largest();
    let keep: Vec<u32> = (0..g.num_vertices() as u32)
        .filter(|&v| comps.labels[v as usize] == big)
        .collect();
    induced_subgraph(g, &keep)
}

/// Extracts the largest connected component of a weighted graph, carrying
/// edge weights over.
pub fn largest_component_weighted(w: &WeightedCsr) -> (WeightedCsr, Vec<u32>) {
    let ex = largest_component(w.graph());
    let mut weights = Vec::with_capacity(ex.graph.num_arcs());
    for new_u in 0..ex.graph.num_vertices() as u32 {
        let old_u = ex.old_ids[new_u as usize];
        for &new_v in ex.graph.neighbors(new_u) {
            let old_v = ex.old_ids[new_v as usize];
            weights.push(
                w.weight(old_u, old_v)
                    .expect("edge present in induced subgraph"),
            );
        }
    }
    (
        WeightedCsr::from_parts_unchecked(ex.graph, weights),
        ex.old_ids,
    )
}

/// Returns all vertices within `hops` BFS levels of `center` (inclusive of
/// `center`), ascending. This is the vertex set behind the paper's "zoom"
/// feature (§4.5.2, Figure 8: "the 10-hop neighborhood of a random vertex").
pub fn k_hop_neighborhood(g: &CsrGraph, center: u32, hops: usize) -> Vec<u32> {
    assert!((center as usize) < g.num_vertices(), "center out of range");
    let mut dist = vec![u32::MAX; g.num_vertices()];
    dist[center as usize] = 0;
    let mut frontier = vec![center];
    let mut out = vec![center];
    for level in 1..=hops as u32 {
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in g.neighbors(v) {
                if dist[u as usize] == u32::MAX {
                    dist[u as usize] = level;
                    next.push(u);
                    out.push(u);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    out.sort_unstable();
    out
}

/// Parallel connected components via label propagation (Shiloach–Vishkin
/// flavored): every vertex starts with its own id; rounds of parallel
/// min-label exchange over edges plus pointer-jumping shortcuts converge in
/// O(log n) rounds on most graphs. Labels are then compacted to component
/// ids numbered by first appearance, matching [`connected_components`]
/// exactly.
///
/// The sequential BFS labeling remains the default for one-off
/// preprocessing; this variant exists for multicore hosts where the label
/// sweep's parallelism pays off on billion-edge inputs.
///
/// # Panics
/// Panics if the graph has no vertices.
pub fn connected_components_parallel(g: &CsrGraph) -> Components {
    use rayon::prelude::*;
    let n = g.num_vertices();
    assert!(n > 0, "connected_components requires at least one vertex");
    let mut label: Vec<u32> = (0..n as u32).collect();
    loop {
        // Hook: every vertex adopts the minimum label in its closed
        // neighborhood (computed from the previous round — Jacobi style,
        // deterministic and race-free).
        let next: Vec<u32> = (0..n as u32)
            .into_par_iter()
            .map(|v| {
                let mut best = label[v as usize];
                for &u in g.neighbors(v) {
                    best = best.min(label[u as usize]);
                }
                best
            })
            .collect();
        // Shortcut: pointer-jump labels to their representatives.
        let jumped: Vec<u32> = (0..n)
            .into_par_iter()
            .map(|v| {
                let mut l = next[v];
                // Follow the label chain a few hops; full convergence is
                // guaranteed by the outer loop.
                for _ in 0..4 {
                    let l2 = next[l as usize];
                    if l2 == l {
                        break;
                    }
                    l = l2;
                }
                l
            })
            .collect();
        let changed = label
            .par_iter()
            .zip(&jumped)
            .any(|(a, b)| a != b);
        label = jumped;
        if !changed {
            break;
        }
    }
    // Compact labels to first-appearance component ids.
    const UNSET: u32 = u32::MAX;
    let mut compact = vec![UNSET; n];
    let mut labels = vec![0u32; n];
    let mut sizes = Vec::new();
    for v in 0..n {
        let rep = label[v] as usize;
        if compact[rep] == UNSET {
            compact[rep] = sizes.len() as u32;
            sizes.push(0);
        }
        labels[v] = compact[rep];
        sizes[compact[rep] as usize] += 1;
    }
    Components { labels, sizes }
}

/// Estimates the graph diameter with the double-sweep heuristic: BFS from
/// `start`, then BFS again from the farthest vertex found; the second
/// eccentricity is a lower bound on the diameter (exact on trees) and the
/// standard cheap estimate used when reporting graph properties.
///
/// # Panics
/// Panics if `start` is out of range.
pub fn pseudo_diameter(g: &CsrGraph, start: u32) -> u32 {
    let n = g.num_vertices();
    assert!((start as usize) < n, "start out of range");
    let first = bfs_distances(g, start);
    let far = argmax_finite(&first);
    let second = bfs_distances(g, far);
    second
        .iter()
        .copied()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0)
}

fn bfs_distances(g: &CsrGraph, source: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_vertices()];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in g.neighbors(v) {
                if dist[u as usize] == u32::MAX {
                    dist[u as usize] = level;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    dist
}

fn argmax_finite(dist: &[u32]) -> u32 {
    let mut best = 0u32;
    let mut best_d = 0u32;
    for (v, &d) in dist.iter().enumerate() {
        if d != u32::MAX && d > best_d {
            best_d = d;
            best = v as u32;
        }
    }
    best
}

/// Whether the graph is connected (true for the empty single-vertex graph).
pub fn is_connected(g: &CsrGraph) -> bool {
    g.num_vertices() == 0 || connected_components(g).count() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_from_edges;

    /// Two components: a triangle {0,1,2} and an edge {3,4}; 5 is isolated.
    fn two_comp() -> CsrGraph {
        build_from_edges(6, vec![(0, 1), (1, 2), (2, 0), (3, 4)])
    }

    #[test]
    fn components_found() {
        let c = connected_components(&two_comp());
        assert_eq!(c.count(), 3);
        assert_eq!(c.sizes, vec![3, 2, 1]);
        assert_eq!(c.largest(), 0);
        assert_eq!(c.labels[0], c.labels[2]);
        assert_ne!(c.labels[0], c.labels[3]);
    }

    #[test]
    fn largest_component_extracts_triangle() {
        let ex = largest_component(&two_comp());
        assert_eq!(ex.graph.num_vertices(), 3);
        assert_eq!(ex.graph.num_edges(), 3);
        assert_eq!(ex.old_ids, vec![0, 1, 2]);
        assert_eq!(ex.new_id(2), Some(2));
        assert_eq!(ex.new_id(4), None);
    }

    #[test]
    fn largest_component_tie_prefers_lower_id() {
        // Two components of equal size 2.
        let g = build_from_edges(4, vec![(0, 1), (2, 3)]);
        let ex = largest_component(&g);
        assert_eq!(ex.old_ids, vec![0, 1]);
    }

    #[test]
    fn induced_subgraph_preserves_order_and_edges() {
        let g = build_from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let ex = induced_subgraph(&g, &[4, 0, 1]); // unsorted input
        assert_eq!(ex.old_ids, vec![0, 1, 4]);
        assert_eq!(ex.graph.num_edges(), 2); // (0,1) and (4,0)
        assert!(ex.graph.has_edge(0, 1));
        assert!(ex.graph.has_edge(0, 2)); // old (0,4) → new (0,2)
        // Validates CSR invariants.
        let _ = CsrGraph::new(
            ex.graph.offsets().to_vec(),
            ex.graph.adjacency().to_vec(),
        );
    }

    #[test]
    fn induced_subgraph_of_everything_is_identity() {
        let g = two_comp();
        let all: Vec<u32> = (0..6).collect();
        let ex = induced_subgraph(&g, &all);
        assert_eq!(&ex.graph, &g);
    }

    #[test]
    fn k_hop_neighborhood_of_path() {
        let g = build_from_edges(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        assert_eq!(k_hop_neighborhood(&g, 2, 0), vec![2]);
        assert_eq!(k_hop_neighborhood(&g, 2, 1), vec![1, 2, 3]);
        assert_eq!(k_hop_neighborhood(&g, 2, 2), vec![0, 1, 2, 3, 4]);
        assert_eq!(k_hop_neighborhood(&g, 2, 100), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn k_hop_stops_at_component_boundary() {
        let g = two_comp();
        assert_eq!(k_hop_neighborhood(&g, 3, 10), vec![3, 4]);
    }

    #[test]
    fn connectivity_predicate() {
        assert!(!is_connected(&two_comp()));
        let tri = build_from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        assert!(is_connected(&tri));
        let single = build_from_edges(1, vec![]);
        assert!(is_connected(&single));
    }

    #[test]
    fn parallel_components_match_sequential() {
        use crate::gen::{chain, grid2d, pref_attach};
        let graphs = [
            two_comp(),
            build_from_edges(1, vec![]),
            chain(500),
            grid2d(20, 20),
            pref_attach(1000, 2, 3),
            build_from_edges(10, vec![(0, 9), (1, 8), (2, 7)]),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let a = connected_components(g);
            let b = connected_components_parallel(g);
            assert_eq!(a.labels, b.labels, "graph {i}: labels differ");
            assert_eq!(a.sizes, b.sizes, "graph {i}: sizes differ");
        }
    }

    #[test]
    fn parallel_components_on_long_chain_converges() {
        // Worst case for label propagation: labels must travel the whole
        // chain; the pointer-jumping shortcut keeps rounds manageable.
        use crate::gen::chain;
        use crate::order::shuffle_vertices;
        let g = shuffle_vertices(&chain(3000), 5);
        let c = connected_components_parallel(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.sizes, vec![3000]);
    }

    #[test]
    fn pseudo_diameter_exact_on_paths_and_trees() {
        use crate::gen::{binary_tree, chain, complete, cycle};
        assert_eq!(pseudo_diameter(&chain(50), 25), 49);
        assert_eq!(pseudo_diameter(&complete(10), 0), 1);
        // Complete binary tree of depth 3: diameter 6.
        assert_eq!(pseudo_diameter(&binary_tree(15), 0), 6);
        // Cycles: double sweep gives the exact n/2 diameter.
        assert_eq!(pseudo_diameter(&cycle(20), 3), 10);
    }

    #[test]
    fn pseudo_diameter_is_a_lower_bound_on_grid() {
        use crate::gen::grid2d;
        // True diameter of a 7×9 grid is 6 + 8 = 14; double sweep finds it.
        assert_eq!(pseudo_diameter(&grid2d(7, 9), 30), 14);
    }

    #[test]
    fn weighted_extraction_carries_weights() {
        use crate::builder::build_weighted_from_edges;
        let w = build_weighted_from_edges(
            5,
            vec![(0, 1, 2.5), (1, 2, 1.5), (3, 4, 9.0)],
        );
        let (big, old_ids) = largest_component_weighted(&w);
        assert_eq!(big.num_vertices(), 3);
        assert_eq!(old_ids, vec![0, 1, 2]);
        assert_eq!(big.weight(0, 1), Some(2.5));
        assert_eq!(big.weight(1, 2), Some(1.5));
    }
}
