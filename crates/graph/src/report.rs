//! Graph property reports.
//!
//! The evaluation narrative of the paper constantly appeals to three graph
//! properties: size, degree distribution (skew), and diameter/ordering
//! locality. [`GraphReport`] gathers them in one pass so the harness and
//! examples can print a consistent profile for any input.

use crate::csr::CsrGraph;
use crate::gaps::gap_distribution;
use crate::prep::pseudo_diameter;

/// A one-stop structural profile of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphReport {
    /// Vertex count.
    pub vertices: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Average degree `2m/n`.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
    /// Double-sweep diameter lower bound.
    pub pseudo_diameter: u32,
    /// Fraction of adjacency gaps below 64 (ordering-locality score; high
    /// values predict fast SpMM per §4.4).
    pub gap_locality: f64,
    /// Degree skew: max degree / average degree (≫ 1 for power-law graphs).
    pub degree_skew: f64,
}

impl GraphReport {
    /// Computes the report. Costs two BFS sweeps plus one pass over edges.
    ///
    /// # Panics
    /// Panics on an empty graph.
    pub fn of(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        assert!(n > 0, "report of an empty graph");
        let avg = g.average_degree();
        let max = g.max_degree();
        let isolated = (0..n as u32).filter(|&v| g.degree(v) == 0).count();
        let start = (0..n as u32).find(|&v| g.degree(v) > 0).unwrap_or(0);
        Self {
            vertices: n,
            edges: g.num_edges(),
            avg_degree: avg,
            max_degree: max,
            isolated,
            pseudo_diameter: pseudo_diameter(g, start),
            gap_locality: gap_distribution(g).fraction_below(64),
            degree_skew: if avg > 0.0 { max as f64 / avg } else { 0.0 },
        }
    }

    /// A terse single-line rendering.
    pub fn summary(&self) -> String {
        format!(
            "n={} m={} deg(avg/max)={:.1}/{} diam≳{} locality={:.0}% skew={:.1}",
            self.vertices,
            self.edges,
            self.avg_degree,
            self.max_degree,
            self.pseudo_diameter,
            100.0 * self.gap_locality,
            self.degree_skew
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_from_edges;
    use crate::gen::{chain, pref_attach, star};

    #[test]
    fn chain_report() {
        let r = GraphReport::of(&chain(100));
        assert_eq!(r.vertices, 100);
        assert_eq!(r.edges, 99);
        assert_eq!(r.max_degree, 2);
        assert_eq!(r.pseudo_diameter, 99);
        assert_eq!(r.isolated, 0);
        assert!(r.gap_locality > 0.9, "chains are perfectly local");
    }

    #[test]
    fn star_report_shows_skew() {
        let r = GraphReport::of(&star(101));
        assert_eq!(r.max_degree, 100);
        assert!(r.degree_skew > 25.0);
        assert_eq!(r.pseudo_diameter, 2);
    }

    #[test]
    fn isolated_vertices_counted() {
        let g = build_from_edges(5, vec![(0, 1)]);
        let r = GraphReport::of(&g);
        assert_eq!(r.isolated, 3);
    }

    #[test]
    fn power_law_graph_is_skewed_and_shallow() {
        let r = GraphReport::of(&pref_attach(5000, 6, 1));
        assert!(r.degree_skew > 5.0);
        assert!(r.pseudo_diameter < 15);
    }

    #[test]
    fn summary_mentions_the_numbers() {
        let s = GraphReport::of(&chain(10)).summary();
        assert!(s.contains("n=10"));
        assert!(s.contains("m=9"));
    }
}
