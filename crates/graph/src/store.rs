//! Storage-agnostic neighbor access: the [`GraphStore`] trait.
//!
//! The BFS kernels and the Laplacian/SpMM row scans only ever need one
//! thing from a graph: the sorted adjacency list of a vertex, one vertex at
//! a time. [`GraphStore`] abstracts exactly that access pattern so the same
//! monomorphized kernels run over the plain in-RAM [`CsrGraph`] *and* over
//! the byte-coded gap-compressed [`crate::compressed::CompressedCsr`]
//! (possibly mmap-backed, larger than RAM) without materializing the full
//! `Vec<u32>` adjacency.
//!
//! The central method is [`GraphStore::neighbors_in`]: it hands back a
//! `&[u32]` slice of the vertex's sorted neighbors, borrowing either from
//! the graph itself (plain CSR — zero copy) or from a caller-provided
//! [`NeighborScratch`] decode buffer (compressed CSR — one small per-vertex
//! decode, reused across calls so steady-state allocates nothing). Every
//! kernel therefore keeps its exact arithmetic: the slice it iterates is
//! bit-for-bit the slice the plain path iterates, which is what makes
//! layouts from compressed and plain storage bit-identical.
//!
//! Parallel kernels own one scratch per worker task (rayon closure-local),
//! never shared — the trait requires `Sync` on the graph, not on scratches.

use crate::csr::CsrGraph;

/// A reusable per-worker decode buffer for [`GraphStore::neighbors_in`].
///
/// Plain CSR ignores it entirely. Compressed CSR decodes each requested
/// vertex's neighbor block into `buf` and returns a slice of it; the buffer
/// grows to the largest degree seen and is then reused allocation-free.
#[derive(Debug, Default)]
pub struct NeighborScratch {
    /// The decode target. Contents are only meaningful between a
    /// `neighbors_in` call and the next use of the scratch.
    pub buf: Vec<u32>,
}

impl NeighborScratch {
    /// An empty scratch; grows on first use.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// A scratch pre-sized for degrees up to `max_degree` (avoids the one
    /// regrow on first decode of a high-degree vertex).
    pub fn with_capacity(max_degree: usize) -> Self {
        Self { buf: Vec::with_capacity(max_degree) }
    }
}

/// How a [`GraphStore`]'s adjacency is physically held.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageKind {
    /// Uncompressed `Vec<u32>` adjacency in RAM ([`CsrGraph`]).
    Plain,
    /// Byte-coded gap-compressed blocks in RAM.
    CompressedHeap,
    /// Byte-coded gap-compressed blocks in a read-only file mapping; pages
    /// stream in on demand and can be evicted under memory pressure.
    CompressedMmap,
}

impl StorageKind {
    /// Stable lowercase label for reports and telemetry.
    pub fn label(self) -> &'static str {
        match self {
            StorageKind::Plain => "plain",
            StorageKind::CompressedHeap => "compressed",
            StorageKind::CompressedMmap => "compressed_mmap",
        }
    }

    /// True for both compressed variants.
    pub fn is_compressed(self) -> bool {
        !matches!(self, StorageKind::Plain)
    }
}

/// Read-only neighbor access over an undirected simple graph in some
/// storage format.
///
/// Implementations uphold the same structural invariants as [`CsrGraph`]:
/// adjacency lists sorted strictly ascending, no self-loops or parallel
/// edges, symmetric. The slice returned by [`neighbors_in`] for a given
/// vertex is identical across implementations of the same graph — kernels
/// generic over `GraphStore` are bit-reproducible across storage formats.
///
/// [`neighbors_in`]: GraphStore::neighbors_in
pub trait GraphStore: Sync {
    /// Number of vertices `n`.
    fn num_vertices(&self) -> usize;

    /// Number of undirected edges `m`.
    fn num_edges(&self) -> usize;

    /// Number of stored directed arcs (`2m`).
    fn num_arcs(&self) -> usize {
        2 * self.num_edges()
    }

    /// Degree of vertex `v`. O(1) for every implementation.
    fn degree(&self, v: u32) -> usize;

    /// Sorted adjacency list of `v`, possibly decoded into `scratch`.
    ///
    /// The returned slice borrows from `self` (plain CSR) or from
    /// `scratch.buf` (compressed CSR) — either way it is valid until the
    /// scratch is next used and contains exactly `self.degree(v)` entries.
    fn neighbors_in<'a>(&'a self, v: u32, scratch: &'a mut NeighborScratch) -> &'a [u32];

    /// Streams the neighbors of `v` in ascending order into `f`, stopping
    /// early when `f` returns `false`.
    ///
    /// Compressed implementations override this to stop *decoding* early —
    /// the bottom-up BFS step exits on the first frontier parent and on
    /// low-diameter graphs touches only a prefix of most lists.
    fn neighbors_while<F: FnMut(u32) -> bool>(
        &self,
        v: u32,
        scratch: &mut NeighborScratch,
        mut f: F,
    ) {
        for &u in self.neighbors_in(v, scratch) {
            if !f(u) {
                return;
            }
        }
    }

    /// Average degree `2m / n` (0 for the empty graph).
    fn average_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.num_vertices() as f64
        }
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    fn max_degree(&self) -> usize {
        (0..self.num_vertices() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// The degree array as `f64` — the diagonal of `D` (§3.1).
    fn degree_vector(&self) -> Vec<f64> {
        (0..self.num_vertices() as u32)
            .map(|v| self.degree(v) as f64)
            .collect()
    }

    /// Calls `f` once per undirected edge `(u, v)` with `u < v`, decoding
    /// each vertex's block through one shared scratch. The storage-agnostic
    /// way to enumerate edges (drawing, export); hot kernels iterate
    /// per-vertex instead.
    fn for_each_edge<F: FnMut(u32, u32)>(&self, mut f: F) {
        let mut scratch = NeighborScratch::new();
        for u in 0..self.num_vertices() as u32 {
            for &v in self.neighbors_in(u, &mut scratch) {
                if u < v {
                    f(u, v);
                }
            }
        }
    }

    /// Bytes of process RAM this graph holds resident (offset/degree
    /// arrays, heap-compressed blocks, plain adjacency). Excludes mmapped
    /// file bytes — those are [`mapped_bytes`](GraphStore::mapped_bytes).
    fn resident_bytes(&self) -> usize;

    /// Bytes of read-only file mapping backing this graph (0 unless
    /// [`StorageKind::CompressedMmap`]). The kernel pages these in and out
    /// on demand; they are not charged against the memory-admission budget
    /// the way resident bytes are.
    fn mapped_bytes(&self) -> usize {
        0
    }

    /// The physical storage format.
    fn storage(&self) -> StorageKind;

    /// The plain CSR view, if this store *is* one.
    ///
    /// Fail-soft paths that must rebuild a graph (largest-component
    /// extraction) only apply to plain storage; compressed inputs surface a
    /// typed error instead of silently materializing an uncompressed copy.
    fn as_csr(&self) -> Option<&CsrGraph> {
        None
    }
}

impl GraphStore for CsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        CsrGraph::num_arcs(self)
    }

    #[inline]
    fn degree(&self, v: u32) -> usize {
        CsrGraph::degree(self, v)
    }

    #[inline]
    fn neighbors_in<'a>(&'a self, v: u32, _scratch: &'a mut NeighborScratch) -> &'a [u32] {
        self.neighbors(v)
    }

    #[inline]
    fn neighbors_while<F: FnMut(u32) -> bool>(
        &self,
        v: u32,
        _scratch: &mut NeighborScratch,
        mut f: F,
    ) {
        for &u in self.neighbors(v) {
            if !f(u) {
                return;
            }
        }
    }

    fn average_degree(&self) -> f64 {
        CsrGraph::average_degree(self)
    }

    fn max_degree(&self) -> usize {
        CsrGraph::max_degree(self)
    }

    fn degree_vector(&self) -> Vec<f64> {
        CsrGraph::degree_vector(self)
    }

    fn resident_bytes(&self) -> usize {
        std::mem::size_of_val(self.offsets()) + std::mem::size_of_val(self.adjacency())
    }

    fn storage(&self) -> StorageKind {
        StorageKind::Plain
    }

    fn as_csr(&self) -> Option<&CsrGraph> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid2d;

    #[test]
    fn csr_store_matches_direct_access() {
        let g = grid2d(5, 7);
        let mut scratch = NeighborScratch::new();
        assert_eq!(GraphStore::num_vertices(&g), 35);
        assert_eq!(GraphStore::num_edges(&g), g.num_edges());
        assert_eq!(GraphStore::num_arcs(&g), g.num_arcs());
        for v in 0..35u32 {
            assert_eq!(g.neighbors_in(v, &mut scratch), g.neighbors(v));
            assert_eq!(GraphStore::degree(&g, v), g.degree(v));
        }
        assert_eq!(GraphStore::degree_vector(&g), g.degree_vector());
        assert_eq!(g.storage(), StorageKind::Plain);
        assert!(g.as_csr().is_some());
        assert!(g.resident_bytes() >= g.num_arcs() * 4);
        assert_eq!(g.mapped_bytes(), 0);
    }

    #[test]
    fn neighbors_while_stops_early() {
        let g = grid2d(4, 4);
        let mut scratch = NeighborScratch::new();
        let mut seen = Vec::new();
        g.neighbors_while(5, &mut scratch, |u| {
            seen.push(u);
            seen.len() < 2
        });
        assert_eq!(seen.len(), 2);
        assert_eq!(&seen[..], &g.neighbors(5)[..2]);
    }

    #[test]
    fn storage_kind_labels() {
        assert_eq!(StorageKind::Plain.label(), "plain");
        assert_eq!(StorageKind::CompressedHeap.label(), "compressed");
        assert_eq!(StorageKind::CompressedMmap.label(), "compressed_mmap");
        assert!(!StorageKind::Plain.is_compressed());
        assert!(StorageKind::CompressedMmap.is_compressed());
    }
}
