//! Decode-exactness suite for [`CompressedCsr`] (ISSUE 10 satellite): on
//! **every** generator family in `parhde_graph::gen` — connected analogues
//! and disconnected poison shapes alike — the gap-coded store must decode
//! each vertex's neighbor list *bit-identically* to the plain [`CsrGraph`]
//! it was built from, through every access path (heap-resident, snapshot
//! round-trip, and the mmap-backed open the out-of-core pipeline uses).
//!
//! Neighbor ids are exact integers, so "bit-identical" is the right bar:
//! any deviation is a codec bug, not roundoff — and because the layout
//! pipeline's bit-identical-coordinates guarantee rests on identical
//! neighbor slices, a single wrong gap here would silently skew layouts.
//! A deterministic randomized sweep drives arbitrary messy edge lists
//! (duplicates, self-loops, isolated vertices) through the same three
//! paths; the proptest twin lives in the workspace property suite
//! (`tests/tests/props.rs`).

use parhde_graph::builder::build_from_edges;
use parhde_graph::gen::{
    barth5_like, binary_tree, chain, complete, cycle, geometric, grid2d, kron,
    mesh_with_holes, poison, pref_attach, star, urand, web_locality,
};
use parhde_graph::store::{GraphStore, NeighborScratch, StorageKind};
use parhde_graph::{CompressedCsr, CsrGraph};
use parhde_util::Xoshiro256StarStar;
use std::path::PathBuf;

/// Unique temp path for one test case's snapshot file.
fn scratch_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "parhde-exact-{tag}-{}.phdegrf",
        std::process::id()
    ))
}

/// Asserts `c` decodes every vertex of `g` bit-identically, plus the
/// structural accessors the kernels rely on.
fn assert_decodes_exactly(g: &CsrGraph, c: &CompressedCsr, label: &str) {
    assert_eq!(c.num_vertices(), g.num_vertices(), "{label}: n");
    assert_eq!(c.num_edges(), g.num_edges(), "{label}: m");
    assert_eq!(c.num_arcs(), g.num_arcs(), "{label}: arcs");
    assert_eq!(c.max_degree(), g.max_degree(), "{label}: max degree");
    let mut scratch = NeighborScratch::new();
    for v in 0..g.num_vertices() as u32 {
        assert_eq!(c.degree(v), g.degree(v), "{label}: degree of {v}");
        assert_eq!(
            c.neighbors_in(v, &mut scratch),
            g.neighbors(v),
            "{label}: neighbor list of vertex {v}"
        );
    }
    // The lossless inverse: decompressing the whole store reproduces the
    // exact CSR arrays.
    let back = c.to_csr();
    assert_eq!(back.offsets(), g.offsets(), "{label}: to_csr offsets");
    assert_eq!(back.adjacency(), g.adjacency(), "{label}: to_csr adjacency");
}

/// Drives one graph through all three access paths: heap compression,
/// in-RAM snapshot round-trip, and file-backed mmap open.
fn exercise(g: &CsrGraph, tag: &str) {
    let c = CompressedCsr::from_csr(g);
    assert_eq!(c.storage(), StorageKind::CompressedHeap, "{tag}: heap kind");
    assert_decodes_exactly(g, &c, &format!("{tag}/heap"));

    let roundtrip = CompressedCsr::from_snapshot_bytes(&c.snapshot_bytes())
        .unwrap_or_else(|e| panic!("{tag}: snapshot bytes rejected: {e}"));
    assert_decodes_exactly(g, &roundtrip, &format!("{tag}/bytes"));

    let path = scratch_file(tag);
    c.write_snapshot(&path)
        .unwrap_or_else(|e| panic!("{tag}: snapshot write failed: {e}"));
    let mapped = CompressedCsr::open_mmap(&path)
        .unwrap_or_else(|e| panic!("{tag}: mmap open failed: {e}"));
    let _ = std::fs::remove_file(&path);
    #[cfg(unix)]
    assert_eq!(mapped.storage(), StorageKind::CompressedMmap, "{tag}: mmap kind");
    assert_decodes_exactly(g, &mapped, &format!("{tag}/mmap"));
    #[cfg(unix)]
    assert!(mapped.mapped_bytes() > 0, "{tag}: mmap reports no mapped bytes");
}

#[test]
fn every_generator_family_decodes_exactly() {
    let cases: Vec<(&str, CsrGraph)> = vec![
        ("chain", chain(37)),
        ("cycle", cycle(29)),
        ("star", star(41)),
        ("complete", complete(17)),
        ("tree", binary_tree(63)),
        ("grid", grid2d(13, 9)),
        ("mesh", mesh_with_holes(12, 10, &[])),
        ("barth5", barth5_like()),
        ("kron", kron(9, 7, 0xfeed)),
        ("urand", urand(700, 9, 0xfeed)),
        ("pref", pref_attach(600, 5, 0xfeed)),
        ("geom", geometric(500, 6.0, 0xfeed)),
        ("web", web_locality(800, 10, 0xfeed)),
    ];
    for (tag, g) in &cases {
        exercise(g, tag);
    }
}

#[test]
fn poison_shapes_decode_exactly() {
    let cases: Vec<(&str, CsrGraph)> = vec![
        ("empty", poison::empty()),
        ("singleton", poison::singleton()),
        ("isolated", poison::isolated(23)),
        ("two-paths", poison::two_paths(11, 7)),
        ("stragglers", poison::grid_with_stragglers(6, 9)),
        ("cycles", poison::many_cycles(5, 6)),
        (
            "dup-heavy",
            build_from_edges(40, poison::duplicate_heavy_edges(40, 6)),
        ),
    ];
    for (tag, g) in &cases {
        exercise(g, tag);
    }
}

/// An arbitrary messy edge list over `n` vertices — the same shape as the
/// workspace property suite's `arb_graph` strategy, driven here by a
/// seeded generator so the sweep is deterministic run-to-run.
fn messy_graph(rng: &mut Xoshiro256StarStar) -> CsrGraph {
    let n = 2 + (rng.next_u64() % 58) as usize;
    let m = (rng.next_u64() % 200) as usize;
    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| {
            (
                (rng.next_u64() % n as u64) as u32,
                (rng.next_u64() % n as u64) as u32,
            )
        })
        .collect();
    build_from_edges(n, edges)
}

/// Arbitrary messy graphs survive compression, snapshot round-trip, and
/// mmap open with bit-identical neighbor lists (192 seeded cases).
#[test]
fn arbitrary_graphs_decode_exactly() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x09a7_de10);
    for case in 0..192 {
        let g = messy_graph(&mut rng);
        let tag = format!("messy-{case}");
        exercise(&g, &tag);
    }
}

/// The decode counters advance monotonically with every scan: after `k`
/// full passes, exactly `k·n` calls and `k·2m` arcs.
#[test]
fn decode_stats_count_scans() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x09a7_de11);
    for case in 0..16 {
        let g = messy_graph(&mut rng);
        let passes = 1 + case % 3;
        let c = CompressedCsr::from_csr(&g);
        let mut scratch = NeighborScratch::new();
        for _ in 0..passes {
            for v in 0..g.num_vertices() as u32 {
                let _ = c.neighbors_in(v, &mut scratch);
            }
        }
        let (calls, arcs) = c.decode_stats();
        assert_eq!(calls, (passes * g.num_vertices()) as u64, "case {case}: calls");
        assert_eq!(arcs, (passes * g.num_arcs()) as u64, "case {case}: arcs");
    }
}
