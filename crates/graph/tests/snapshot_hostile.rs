//! Adversarial `PHDEGRF` snapshot sweep (ISSUE 10 satellite, mirroring the
//! checkpoint loader's hostile suite): the snapshot parser must survive
//! truncated, bit-flipped, and hostile-length inputs without panicking or
//! over-allocating — every failure is a typed [`GraphIoError`], never a
//! crash. `parhde-serve --graph-dir` hands this parser files a client can
//! *name* (`graph: packed:<name>`) from a directory a crash, a concurrent
//! packer, or an operator's stray `dd` may have mangled, so "garbage in →
//! typed error out" is a load-bearing contract, not defensive polish.

use parhde_graph::gen::grid2d;
use parhde_graph::io::GraphIoError;
use parhde_graph::store::{GraphStore, NeighborScratch};
use parhde_graph::{CompressedCsr, CsrGraph, SNAPSHOT_MAGIC};

/// A valid snapshot's bytes, produced through the real writer.
fn valid_bytes() -> (CsrGraph, Vec<u8>) {
    let g = grid2d(7, 5);
    let bytes = CompressedCsr::from_csr(&g).snapshot_bytes();
    // Sanity: the untampered bytes parse and decode exactly.
    let c = CompressedCsr::from_snapshot_bytes(&bytes).expect("valid snapshot parses");
    let mut scratch = NeighborScratch::new();
    for v in 0..g.num_vertices() as u32 {
        assert_eq!(c.neighbors_in(v, &mut scratch), g.neighbors(v));
    }
    (g, bytes)
}

/// FNV-1a over a byte slice — the snapshot's whole-image checksum.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Replaces the header checksum so only the *structural* validation under
/// test can reject the tampered bytes.
fn reseal(bytes: &mut [u8]) {
    let sum = fnv64(&bytes[16..]);
    bytes[8..16].copy_from_slice(&sum.to_le_bytes());
}

fn put_u64(bytes: &mut [u8], at: usize, v: u64) {
    bytes[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

/// Byte offsets of every section boundary in the version-1 layout for the
/// `grid2d(7, 5)` fixture (n = 35).
fn section_boundaries(total: usize) -> Vec<usize> {
    // magic 8 | checksum 8 | n 8 | m 8 | blocks_len 8 | max_degree 8
    // | (n+1)×u64 offsets | n×u32 degrees | varint blocks
    let n = 35;
    let mut cuts = vec![0, 4, 8, 16, 24, 32, 40, 48];
    cuts.push(48 + (n + 1) * 8); // after the offset array
    cuts.push(48 + (n + 1) * 8 + n * 4); // after the degree array
    cuts.push(total - 1); // one byte short
    cuts.retain(|&c| c < total);
    cuts
}

#[test]
fn truncation_at_every_section_boundary_is_a_typed_error() {
    let (_, bytes) = valid_bytes();
    for cut in section_boundaries(bytes.len()) {
        let err = CompressedCsr::from_snapshot_bytes(&bytes[..cut])
            .expect_err(&format!("truncation to {cut} bytes parsed"));
        assert!(
            matches!(err, GraphIoError::Header(_) | GraphIoError::Truncated { .. }),
            "truncation to {cut} bytes: unexpected error class: {err}"
        );
    }
}

#[test]
fn trailing_garbage_is_a_typed_error() {
    let (_, bytes) = valid_bytes();
    let mut long = bytes.clone();
    long.extend_from_slice(b"trailing junk");
    let err = long_err(&long);
    assert!(
        matches!(err, GraphIoError::Truncated { .. }),
        "oversized image: unexpected error class: {err}"
    );
}

fn long_err(bytes: &[u8]) -> GraphIoError {
    CompressedCsr::from_snapshot_bytes(bytes)
        .expect_err("tampered snapshot parsed")
}

#[test]
fn every_unresealed_bit_flip_is_caught() {
    let (_, bytes) = valid_bytes();
    // Stride through the image flipping one bit at a time; the magic check
    // catches the first 8 bytes and the whole-image checksum everything
    // after (including flips inside the checksum field itself).
    let stride = (bytes.len() / 97).max(1);
    for at in (0..bytes.len()).step_by(stride) {
        let mut evil = bytes.clone();
        evil[at] ^= 0x10;
        let err = long_err(&evil);
        let ok = matches!(
            err,
            GraphIoError::Header(_) | GraphIoError::Invalid(_) | GraphIoError::Truncated { .. }
        );
        assert!(ok, "bit flip at byte {at}: unexpected error class: {err}");
    }
}

#[test]
fn hostile_header_lengths_neither_panic_nor_overallocate() {
    let (_, bytes) = valid_bytes();
    // Each case tampers one header field to a hostile value and reseals,
    // so the checksum cannot mask the structural check under test.
    let cases: Vec<(&str, usize, u64)> = vec![
        ("vertex count beyond u32 space", 16, u32::MAX as u64 + 2),
        ("vertex count near usize::MAX", 16, u64::MAX - 7),
        ("edge count absurd", 24, u64::MAX / 2),
        ("block length huge", 32, u64::MAX / 2),
        ("block length off by one", 32, 1 << 20),
        ("max degree inflated", 40, 9_999),
    ];
    for (label, at, v) in cases {
        let mut evil = bytes.clone();
        put_u64(&mut evil, at, v);
        reseal(&mut evil);
        let err = long_err(&evil);
        assert!(
            matches!(
                err,
                GraphIoError::TooLarge { .. }
                    | GraphIoError::Truncated { .. }
                    | GraphIoError::Invalid(_)
            ),
            "{label}: unexpected error class: {err}"
        );
    }
}

#[test]
fn resealed_index_tampering_is_caught_structurally() {
    let (_, bytes) = valid_bytes();
    let n = 35usize;
    let off_base = 48;
    let deg_base = off_base + (n + 1) * 8;

    // offsets[0] pushed off zero.
    let mut evil = bytes.clone();
    put_u64(&mut evil, off_base, 3);
    reseal(&mut evil);
    assert!(matches!(long_err(&evil), GraphIoError::Invalid(_)), "offsets[0]");

    // A middle offset made non-monotone.
    let mut evil = bytes.clone();
    put_u64(&mut evil, off_base + 10 * 8, u64::MAX / 2);
    reseal(&mut evil);
    assert!(matches!(long_err(&evil), GraphIoError::Invalid(_)), "monotonicity");

    // A degree bumped: the Σdeg = 2m identity must fire.
    let mut evil = bytes.clone();
    let at = deg_base + 4 * 4;
    let d = u32::from_le_bytes(evil[at..at + 4].try_into().unwrap());
    evil[at..at + 4].copy_from_slice(&(d + 1).to_le_bytes());
    reseal(&mut evil);
    assert!(matches!(long_err(&evil), GraphIoError::Invalid(_)), "degree sum");

    // Block bytes zeroed under intact indexes: per-block decode validation
    // must reject (wrong consumption, wrong count, or unsorted output).
    let blocks_start = deg_base + n * 4;
    let mut evil = bytes.clone();
    for b in &mut evil[blocks_start..] {
        *b = 0;
    }
    reseal(&mut evil);
    assert!(matches!(long_err(&evil), GraphIoError::Invalid(_)), "zeroed blocks");
}

#[test]
fn foreign_and_empty_files_are_rejected_with_bad_magic() {
    for image in [
        &b""[..],
        &b"PHDE"[..],
        &b"PHDECKPTextra bytes beyond the checkpoint magic"[..],
        &[0u8; 48][..],
    ] {
        let err = CompressedCsr::from_snapshot_bytes(image)
            .expect_err("non-snapshot bytes parsed");
        assert!(
            matches!(err, GraphIoError::Header(_)),
            "unexpected error class for foreign bytes: {err}"
        );
    }
    // The real magic alone (no header behind it) is still short.
    let err = CompressedCsr::from_snapshot_bytes(SNAPSHOT_MAGIC)
        .expect_err("bare magic parsed");
    assert!(matches!(err, GraphIoError::Header(_)));
}

#[test]
fn hostile_files_error_identically_through_both_open_paths() {
    let (_, bytes) = valid_bytes();
    let dir = std::env::temp_dir().join(format!(
        "parhde-snap-hostile-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let mut evil = bytes.clone();
    evil[32] ^= 0x40; // blocks_len tampered, not resealed
    for (name, image) in [("trunc.phdegrf", &bytes[..40]), ("flip.phdegrf", &evil[..])] {
        let path = dir.join(name);
        std::fs::write(&path, image).expect("write hostile file");
        assert!(CompressedCsr::open_heap(&path).is_err(), "{name} via heap");
        assert!(CompressedCsr::open_mmap(&path).is_err(), "{name} via mmap");
    }
    // A missing file is an error, not a panic, through both paths.
    let gone = dir.join("nope.phdegrf");
    assert!(CompressedCsr::open_heap(&gone).is_err());
    assert!(CompressedCsr::open_mmap(&gone).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
