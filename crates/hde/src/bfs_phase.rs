//! The shared BFS phase: produce the distance matrix `B ∈ R^{n×s}`.
//!
//! ParHDE, PHDE and PivotMDS all begin identically (compare Algorithms 2
//! and 3): `s` BFS traversals from pivots chosen either by the
//! farthest-first k-centers heuristic or uniformly at random. This module
//! hosts that phase once; the pipelines differ only in what they do with
//! `B` afterwards.

use crate::config::PivotStrategy;
use crate::error::HdeError;
use crate::pivots::{farthest_vertex, fold_min_distance};
use crate::stats::{phase, HdeStats, PhaseSpan};
use parhde_bfs::direction_opt::bfs_direction_opt_into_f64;
use parhde_bfs::multi::bfs_multi_source_into_f64;
use parhde_bfs::serial::bfs_serial_into_f64;
use parhde_graph::CsrGraph;
use parhde_linalg::dense::ColMajorMatrix;
use parhde_util::Xoshiro256StarStar;

/// Runs the BFS phase: fills and returns `B` (one distance column per
/// pivot), recording pivots, phase times, and traversal statistics into
/// `stats`. `rng` supplies the random start vertex / random pivots.
///
/// When `parallel_bfs` is false every traversal is the sequential queue
/// BFS (the prior-work configuration of Table 3); the k-centers strategy is
/// otherwise identical.
///
/// # Errors
/// [`HdeError::Disconnected`] if a traversal fails to reach every vertex.
pub(crate) fn run_bfs_phase(
    g: &CsrGraph,
    s: usize,
    strategy: PivotStrategy,
    rng: &mut Xoshiro256StarStar,
    parallel_bfs: bool,
    stats: &mut HdeStats,
) -> Result<ColMajorMatrix, HdeError> {
    let n = g.num_vertices();
    let mut b = ColMajorMatrix::zeros(n, s);
    match strategy {
        PivotStrategy::KCenters => {
            let mut min_dist = vec![f64::INFINITY; n];
            let mut src = rng.next_index(n) as u32;
            for i in 0..s {
                stats.sources.push(src);
                let ph = PhaseSpan::begin(phase::BFS);
                let reached = if parallel_bfs {
                    let (reached, trav) =
                        bfs_direction_opt_into_f64(g, src, b.col_mut(i));
                    crate::parhde::accumulate(&mut stats.traversal, trav);
                    reached
                } else {
                    bfs_serial_into_f64(g, src, b.col_mut(i))
                };
                ph.end(&mut stats.phases);
                if reached != n {
                    return Err(HdeError::Disconnected { reached, n });
                }
                let ph = PhaseSpan::begin(phase::BFS_OTHER);
                fold_min_distance(&mut min_dist, b.col(i));
                src = farthest_vertex(&min_dist);
                ph.end(&mut stats.phases);
            }
        }
        PivotStrategy::Random => {
            let ph = PhaseSpan::begin(phase::BFS_OTHER);
            let sources: Vec<u32> = rng
                .sample_distinct(n, s)
                .into_iter()
                .map(|v| v as u32)
                .collect();
            stats.sources = sources.clone();
            ph.end(&mut stats.phases);
            let ph = PhaseSpan::begin(phase::BFS);
            let mut cols = b.columns_mut();
            let reached = bfs_multi_source_into_f64(g, &sources, &mut cols);
            ph.end(&mut stats.phases);
            if reached[0] != n {
                return Err(HdeError::Disconnected { reached: reached[0], n });
            }
        }
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parhde_graph::gen::grid2d;

    #[test]
    fn kcenters_phase_fills_all_columns() {
        let g = grid2d(10, 10);
        let mut stats = HdeStats::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let b = run_bfs_phase(&g, 5, PivotStrategy::KCenters, &mut rng, true, &mut stats).unwrap();
        assert_eq!(b.cols(), 5);
        assert_eq!(stats.sources.len(), 5);
        // Every column holds finite distances with a zero at its source.
        for (i, &src) in stats.sources.iter().enumerate() {
            assert_eq!(b.get(src as usize, i), 0.0);
            assert!(b.col(i).iter().all(|d| d.is_finite()));
        }
    }

    #[test]
    fn serial_and_parallel_phases_agree() {
        let g = grid2d(9, 9);
        let mut sa = HdeStats::default();
        let mut sb = HdeStats::default();
        let mut ra = Xoshiro256StarStar::seed_from_u64(2);
        let mut rb = Xoshiro256StarStar::seed_from_u64(2);
        let ba = run_bfs_phase(&g, 4, PivotStrategy::KCenters, &mut ra, true, &mut sa).unwrap();
        let bb = run_bfs_phase(&g, 4, PivotStrategy::KCenters, &mut rb, false, &mut sb).unwrap();
        assert_eq!(sa.sources, sb.sources);
        assert_eq!(ba.data(), bb.data());
    }

    #[test]
    fn random_phase_uses_distinct_sources() {
        let g = grid2d(8, 8);
        let mut stats = HdeStats::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let _ = run_bfs_phase(&g, 6, PivotStrategy::Random, &mut rng, true, &mut stats);
        let set: std::collections::HashSet<_> = stats.sources.iter().collect();
        assert_eq!(set.len(), 6);
    }
}
