//! The shared BFS phase: produce the distance matrix `B ∈ R^{n×s}`.
//!
//! ParHDE, PHDE and PivotMDS all begin identically (compare Algorithms 2
//! and 3): `s` BFS traversals from pivots chosen either by the
//! farthest-first k-centers heuristic or uniformly at random. This module
//! hosts that phase once; the pipelines differ only in what they do with
//! `B` afterwards.
//!
//! # The planner
//!
//! Three execution modes can fill the columns, with very different
//! constants (DESIGN.md §10):
//!
//! * **direction-opt** — each traversal is the internally parallel
//!   direction-optimizing BFS, traversals serialized. Mandatory for
//!   k-centers pivots (the next pivot depends on the previous distances);
//!   for random pivots it only wins when `s` is small relative to the
//!   thread count, since each BFS can use the whole machine.
//! * **per-source** — one sequential queue BFS per source, sources
//!   scheduled across threads ([`parhde_bfs::multi`]). No per-level
//!   synchronization, but the CSR is streamed `s` times and cores idle
//!   whenever `s` is below the thread count.
//! * **batched** — the bit-parallel MS-BFS kernel
//!   ([`parhde_bfs::batch`]): all sources advance through one shared sweep,
//!   64 lanes per word, so edge data is streamed once per *level* instead
//!   of once per *source*.
//!
//! [`plan_bfs_phase`] picks among them from `n`, `m`, `s` and the rayon
//! thread count; [`crate::config::BfsMode`] forces a specific mode. This
//! planner is the advertised entry point for multi-source distance-matrix
//! construction — pipelines should not call the `parhde_bfs` kernels
//! directly.

use crate::config::{BfsMode, PivotStrategy};
use crate::error::{HdeError, Warning};
use crate::pivots::{farthest_vertex, fold_min_distance};
use crate::stats::{phase, HdeStats, PhaseSpan};
use parhde_bfs::batch::bfs_batched_into_f64;
use parhde_bfs::direction_opt::bfs_direction_opt_into_f64;
use parhde_bfs::frontier::lane_words;
use parhde_bfs::multi::bfs_multi_source_into_f64;
use parhde_bfs::serial::bfs_serial_into_f64;
use parhde_graph::store::{GraphStore, StorageKind};
use parhde_linalg::dense::ColMajorMatrix;
use parhde_util::Xoshiro256StarStar;

/// A concrete BFS execution mode chosen by the planner (the resolution of
/// [`BfsMode`], which may be `Auto`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlannedBfsMode {
    /// Internally parallel direction-optimizing BFS, one source at a time.
    DirectionOpt,
    /// Independent sequential BFSes scheduled across threads.
    PerSource,
    /// Bit-parallel batched multi-source BFS (shared sweep).
    Batched,
}

impl PlannedBfsMode {
    /// Stable lowercase label used in stats, trace counters and reports.
    pub fn label(self) -> &'static str {
        match self {
            PlannedBfsMode::DirectionOpt => "direction_opt",
            PlannedBfsMode::PerSource => "per_source",
            PlannedBfsMode::Batched => "batched",
        }
    }
}

/// The planner's decision for one BFS phase: the mode plus the batch
/// geometry it implies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsPlan {
    /// Chosen execution mode.
    pub mode: PlannedBfsMode,
    /// Bit lanes a batched run would use (= `s`).
    pub lanes: usize,
    /// Lane words per vertex row (`⌈s/64⌉`).
    pub words: usize,
    /// One-line justification, surfaced through trace warnings/reports.
    pub reason: &'static str,
}

/// Graphs at or below this vertex count are traversed per-source: every
/// working set is cache-resident and the batch bit-plumbing costs more than
/// it saves.
const TINY_GRAPH_N: usize = 4096;

/// Average-degree threshold below which a graph is presumed high-diameter
/// (roads, grids, meshes): a shared sweep then pays ~diameter frontier
/// rounds, and independent per-source traversals win (paper Table 6).
///
/// 6.5 rather than 4.0: BENCH_pr3 measured the batched kernel 8.8× slower
/// than per-source on grid_160x125 (avg degree 3.97) and 3.8× slower on
/// road_geometric_20k — both mesh-like graphs sitting at or just below the
/// old cutoff. Triangulated meshes (avg degree ≈ 6) share the same
/// high-diameter geometry, so the margin covers them too; genuinely
/// low-diameter graphs (kron at avg 19, pref-attach at 16) stay far above.
const LOW_DEGREE_AVG: f64 = 6.5;

/// Minimum source count for the batched kernel to amortize its shared
/// sweeps (below this, too few lanes share each word operation).
const MIN_BATCH_LANES: usize = 8;

/// Compressed-storage overrides of the two crossover constants above.
///
/// On a gap-coded store every adjacency scan pays a varint decode on top of
/// the memory traffic, and that cost is *per scan*: the per-source ensemble
/// decodes the whole graph once per source, while the batched kernel decodes
/// each frontier vertex once per level regardless of lane count. Decode
/// cost therefore scales exactly like the memory-traffic term the planner
/// already reasons about, only larger — so the batched-vs-per-source
/// crossover shifts toward batched. Concretely: fewer lanes suffice to
/// amortize a shared sweep, and moderately sparse graphs (avg degree 4–6.5)
/// that were borderline on plain CSR now favor the shared sweep because the
/// s-fold re-decode dwarfs the per-level sync rounds.
const COMPRESSED_MIN_BATCH_LANES: usize = 4;

/// Compressed-storage high-diameter cutoff (see [`LOW_DEGREE_AVG`]): only
/// genuinely road-like graphs (avg degree < 4) keep per-source traversals,
/// since their diameter-many frontier rounds still dominate decode cost.
const COMPRESSED_LOW_DEGREE_AVG: f64 = 4.0;

/// Picks the BFS execution mode for a random-pivot phase with `s` sources
/// on a graph of `n` vertices and `m` undirected edges, given `threads`
/// rayon workers. A non-`Auto` `knob` forces that mode.
///
/// Decision table (in order, first match wins — see DESIGN.md §10):
///
/// | condition | mode |
/// |---|---|
/// | knob forced | that mode |
/// | `n ≤ 4096` | per-source |
/// | `2m/n < 6.5` (high-diameter proxy) | per-source if `s ≥ threads`, else direction-opt |
/// | `s ≥ 8` | batched |
/// | `s < threads` | direction-opt |
/// | otherwise | per-source |
pub fn plan_bfs_phase(
    n: usize,
    m: usize,
    s: usize,
    threads: usize,
    knob: BfsMode,
) -> BfsPlan {
    plan_bfs_phase_stored(n, m, s, threads, knob, StorageKind::Plain)
}

/// Storage-aware planner: like [`plan_bfs_phase`] but with the graph's
/// [`StorageKind`] in the decision. On compressed stores the per-scan varint
/// decode shifts the batched-vs-per-source crossover toward batched (see
/// [`COMPRESSED_MIN_BATCH_LANES`] / [`COMPRESSED_LOW_DEGREE_AVG`] for the
/// model); plain storage reproduces the original decision table exactly.
pub fn plan_bfs_phase_stored(
    n: usize,
    m: usize,
    s: usize,
    threads: usize,
    knob: BfsMode,
    storage: StorageKind,
) -> BfsPlan {
    let lanes = s;
    let words = lane_words(s);
    let plan = |mode, reason| BfsPlan { mode, lanes, words, reason };
    let (low_degree_avg, min_batch_lanes) = if storage.is_compressed() {
        (COMPRESSED_LOW_DEGREE_AVG, COMPRESSED_MIN_BATCH_LANES)
    } else {
        (LOW_DEGREE_AVG, MIN_BATCH_LANES)
    };
    match knob {
        BfsMode::DirectionOpt => {
            plan(PlannedBfsMode::DirectionOpt, "forced by BfsMode::DirectionOpt")
        }
        BfsMode::PerSource => {
            plan(PlannedBfsMode::PerSource, "forced by BfsMode::PerSource")
        }
        BfsMode::Batched => plan(PlannedBfsMode::Batched, "forced by BfsMode::Batched"),
        BfsMode::Auto => {
            let avg_deg = if n == 0 { 0.0 } else { 2.0 * m as f64 / n as f64 };
            if n <= TINY_GRAPH_N {
                plan(
                    PlannedBfsMode::PerSource,
                    "tiny graph: traversals are cache-resident, no sync overhead",
                )
            } else if avg_deg < low_degree_avg {
                if s >= threads {
                    plan(
                        PlannedBfsMode::PerSource,
                        "high-diameter graph with s >= threads: independent BFSes \
                         saturate the pool without per-level rounds",
                    )
                } else {
                    plan(
                        PlannedBfsMode::DirectionOpt,
                        "high-diameter graph with s < threads: only an internally \
                         parallel BFS keeps all cores busy",
                    )
                }
            } else if s >= min_batch_lanes {
                plan(
                    PlannedBfsMode::Batched,
                    if storage.is_compressed() {
                        "low-diameter compressed graph: a shared sweep decodes \
                         each frontier block once per level, not once per source"
                    } else {
                        "low-diameter graph, enough lanes to amortize shared sweeps"
                    },
                )
            } else if s < threads {
                plan(
                    PlannedBfsMode::DirectionOpt,
                    "few sources: per-source scheduling would idle cores",
                )
            } else {
                plan(
                    PlannedBfsMode::PerSource,
                    "few lanes, s >= threads: independent BFSes fill the pool",
                )
            }
        }
    }
}

/// Emits the chosen mode and batch geometry as trace counters so run
/// reports explain the planner's decision.
fn trace_plan(plan: &BfsPlan) {
    if !parhde_trace::enabled() {
        return;
    }
    let mode_counter = match plan.mode {
        PlannedBfsMode::DirectionOpt => "bfs.mode.direction_opt",
        PlannedBfsMode::PerSource => "bfs.mode.per_source",
        PlannedBfsMode::Batched => "bfs.mode.batched",
    };
    parhde_trace::counter!(mode_counter, 1);
    if plan.mode == PlannedBfsMode::Batched {
        parhde_trace::counter!("bfs.plan.lanes", plan.lanes as u64);
        parhde_trace::counter!("bfs.plan.words", plan.words as u64);
    }
}

/// Runs the BFS phase: fills and returns `B` (one distance column per
/// pivot), recording pivots, the executed BFS mode, phase times, and
/// traversal statistics into `stats`. `rng` supplies the random start
/// vertex / random pivots; `mode` is the user-facing planner knob.
///
/// When `parallel_bfs` is false every traversal is the sequential queue
/// BFS (the prior-work configuration of Table 3) regardless of `mode`; the
/// k-centers strategy is otherwise identical.
///
/// # Errors
/// [`HdeError::Disconnected`] if a traversal fails to reach every vertex.
pub(crate) fn run_bfs_phase<G: GraphStore>(
    g: &G,
    s: usize,
    strategy: PivotStrategy,
    mode: BfsMode,
    rng: &mut Xoshiro256StarStar,
    parallel_bfs: bool,
    stats: &mut HdeStats,
) -> Result<ColMajorMatrix, HdeError> {
    let n = g.num_vertices();
    let mut b = ColMajorMatrix::zeros(n, s);
    match strategy {
        PivotStrategy::KCenters => {
            // K-centers pivots are sequentially dependent, so the batched
            // kernel cannot apply; the per-pivot choice is serial vs
            // direction-optimizing.
            if mode == BfsMode::Batched {
                parhde_trace::warning(
                    "k-centers pivots are sequentially dependent; batched BFS \
                     unavailable, using direction-optimizing BFS",
                );
            }
            let serial_each = !parallel_bfs || mode == BfsMode::PerSource;
            stats.bfs_mode = Some(if serial_each {
                PlannedBfsMode::PerSource.label()
            } else {
                PlannedBfsMode::DirectionOpt.label()
            });
            let mut min_dist = vec![f64::INFINITY; n];
            let mut src = rng.next_index(n) as u32;
            let mut nan_dropped = 0usize;
            for i in 0..s {
                stats.sources.push(src);
                let ph = PhaseSpan::begin(phase::BFS);
                let reached = if serial_each {
                    bfs_serial_into_f64(g, src, b.col_mut(i))
                } else {
                    let (reached, trav) =
                        bfs_direction_opt_into_f64(g, src, b.col_mut(i));
                    crate::parhde::accumulate(&mut stats.traversal, trav);
                    reached
                };
                ph.end(&mut stats.phases);
                // Budget check BEFORE the connectivity check: an abandoned
                // traversal reaches fewer than n vertices, and the trip
                // must win over the spurious "disconnected" that creates.
                crate::supervise::budget_check(phase::BFS)?;
                if reached != n {
                    return Err(HdeError::Disconnected { reached, n });
                }
                let ph = PhaseSpan::begin(phase::BFS_OTHER);
                // BFS levels are finite by construction; the count is a
                // defensive tripwire for kernel regressions.
                nan_dropped += fold_min_distance(&mut min_dist, b.col(i));
                src = farthest_vertex(&min_dist);
                ph.end(&mut stats.phases);
            }
            if nan_dropped > 0 {
                stats.warn(Warning::NanDistances { count: nan_dropped });
            }
        }
        PivotStrategy::Random => {
            let ph = PhaseSpan::begin(phase::BFS_OTHER);
            let sources: Vec<u32> = rng
                .sample_distinct(n, s)
                .into_iter()
                .map(|v| v as u32)
                .collect();
            stats.sources = sources.clone();
            let knob = if parallel_bfs { mode } else { BfsMode::PerSource };
            let plan = plan_bfs_phase_stored(
                n,
                g.num_edges(),
                s,
                rayon::current_num_threads(),
                knob,
                g.storage(),
            );
            stats.bfs_mode = Some(plan.mode.label());
            trace_plan(&plan);
            ph.end(&mut stats.phases);
            let ph = PhaseSpan::begin(phase::BFS);
            let reached_first = match plan.mode {
                PlannedBfsMode::PerSource => {
                    let mut cols = b.columns_mut();
                    let reached = bfs_multi_source_into_f64(g, &sources, &mut cols);
                    reached.first().copied().unwrap_or(n)
                }
                PlannedBfsMode::Batched => {
                    let mut cols = b.columns_mut();
                    let bstats = bfs_batched_into_f64(g, &sources, &mut cols);
                    bstats.reached.first().copied().unwrap_or(n)
                }
                PlannedBfsMode::DirectionOpt => {
                    let mut first = n;
                    for (i, &src) in sources.iter().enumerate() {
                        let (reached, trav) =
                            bfs_direction_opt_into_f64(g, src, b.col_mut(i));
                        crate::parhde::accumulate(&mut stats.traversal, trav);
                        if i == 0 {
                            first = reached;
                        }
                    }
                    first
                }
            };
            ph.end(&mut stats.phases);
            // As above: the trip outranks the partial-reach it causes.
            crate::supervise::budget_check(phase::BFS)?;
            if reached_first != n {
                return Err(HdeError::Disconnected { reached: reached_first, n });
            }
        }
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parhde_graph::gen::{grid2d, pref_attach};

    #[test]
    fn kcenters_phase_fills_all_columns() {
        let g = grid2d(10, 10);
        let mut stats = HdeStats::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let b = run_bfs_phase(
            &g,
            5,
            PivotStrategy::KCenters,
            BfsMode::Auto,
            &mut rng,
            true,
            &mut stats,
        )
        .unwrap();
        assert_eq!(b.cols(), 5);
        assert_eq!(stats.sources.len(), 5);
        assert_eq!(stats.bfs_mode, Some("direction_opt"));
        // Every column holds finite distances with a zero at its source.
        for (i, &src) in stats.sources.iter().enumerate() {
            assert_eq!(b.get(src as usize, i), 0.0);
            assert!(b.col(i).iter().all(|d| d.is_finite()));
        }
    }

    #[test]
    fn serial_and_parallel_phases_agree() {
        let g = grid2d(9, 9);
        let mut sa = HdeStats::default();
        let mut sb = HdeStats::default();
        let mut ra = Xoshiro256StarStar::seed_from_u64(2);
        let mut rb = Xoshiro256StarStar::seed_from_u64(2);
        let ba = run_bfs_phase(
            &g,
            4,
            PivotStrategy::KCenters,
            BfsMode::Auto,
            &mut ra,
            true,
            &mut sa,
        )
        .unwrap();
        let bb = run_bfs_phase(
            &g,
            4,
            PivotStrategy::KCenters,
            BfsMode::Auto,
            &mut rb,
            false,
            &mut sb,
        )
        .unwrap();
        assert_eq!(sa.sources, sb.sources);
        assert_eq!(ba.data(), bb.data());
    }

    #[test]
    fn random_phase_uses_distinct_sources() {
        let g = grid2d(8, 8);
        let mut stats = HdeStats::default();
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let _ = run_bfs_phase(
            &g,
            6,
            PivotStrategy::Random,
            BfsMode::Auto,
            &mut rng,
            true,
            &mut stats,
        );
        let set: std::collections::HashSet<_> = stats.sources.iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn all_random_modes_produce_identical_matrices() {
        let g = pref_attach(2000, 3, 7);
        let mut reference: Option<Vec<f64>> = None;
        for mode in [BfsMode::PerSource, BfsMode::Batched, BfsMode::DirectionOpt] {
            let mut stats = HdeStats::default();
            let mut rng = Xoshiro256StarStar::seed_from_u64(11);
            let b = run_bfs_phase(
                &g,
                12,
                PivotStrategy::Random,
                mode,
                &mut rng,
                true,
                &mut stats,
            )
            .unwrap();
            match &reference {
                None => reference = Some(b.data().to_vec()),
                Some(r) => assert_eq!(
                    r.as_slice(),
                    b.data(),
                    "mode {:?} disagrees with per-source distances",
                    mode
                ),
            }
        }
    }

    #[test]
    fn planner_decision_table() {
        use PlannedBfsMode::*;
        // Forced knobs always win.
        for (knob, want) in [
            (BfsMode::DirectionOpt, DirectionOpt),
            (BfsMode::PerSource, PerSource),
            (BfsMode::Batched, Batched),
        ] {
            assert_eq!(plan_bfs_phase(1 << 20, 1 << 23, 50, 8, knob).mode, want);
        }
        // Tiny graphs are always per-source.
        assert_eq!(
            plan_bfs_phase(1000, 100_000, 50, 64, BfsMode::Auto).mode,
            PerSource
        );
        // High-diameter proxy (avg degree < 4): road-like graphs.
        assert_eq!(
            plan_bfs_phase(1 << 20, (1 << 20) * 3 / 2, 50, 8, BfsMode::Auto).mode,
            PerSource
        );
        assert_eq!(
            plan_bfs_phase(1 << 20, (1 << 20) * 3 / 2, 4, 8, BfsMode::Auto).mode,
            DirectionOpt
        );
        // Low-diameter with mid-size s: batched.
        let plan = plan_bfs_phase(1 << 20, 1 << 23, 50, 8, BfsMode::Auto);
        assert_eq!(plan.mode, Batched);
        assert_eq!(plan.lanes, 50);
        assert_eq!(plan.words, 1);
        // Low-diameter, few sources, many threads: direction-opt.
        assert_eq!(
            plan_bfs_phase(1 << 20, 1 << 23, 2, 16, BfsMode::Auto).mode,
            DirectionOpt
        );
        // Low-diameter, few sources, few threads: per-source.
        assert_eq!(
            plan_bfs_phase(1 << 20, 1 << 23, 4, 2, BfsMode::Auto).mode,
            PerSource
        );
    }

    #[test]
    fn planner_avoids_batched_on_mesh_like_graphs() {
        use PlannedBfsMode::*;
        // Regression for the BENCH_pr3 mispick risk: the bench trio's two
        // mesh-like graphs, at their exact (n, m), where batched measured
        // 8.8× (grid) and 3.8× (road) slower than per-source. Generated
        // graphs pin the shapes so a generator change re-checks the plan.
        let grid = grid2d(160, 125);
        assert_eq!(grid.num_vertices(), 20_000);
        let plan = plan_bfs_phase(
            grid.num_vertices(),
            grid.num_edges(),
            50,
            8,
            BfsMode::Auto,
        );
        assert_eq!(plan.mode, PerSource, "gen:grid:160x125 must not batch");
        let road = parhde_graph::gen::geometric(20_000, 3.0, 3);
        let plan = plan_bfs_phase(
            road.num_vertices(),
            road.num_edges(),
            50,
            8,
            BfsMode::Auto,
        );
        assert_eq!(plan.mode, PerSource, "gen:road (geometric) must not batch");
        // A triangulated-mesh proxy (avg degree ≈ 6) now also lands on the
        // high-diameter side of the 6.5 cutoff.
        assert_eq!(
            plan_bfs_phase(1 << 20, 3 << 20, 50, 8, BfsMode::Auto).mode,
            PerSource
        );
    }

    #[test]
    fn compressed_storage_shifts_batched_crossover() {
        use PlannedBfsMode::*;
        // Moderately sparse (avg degree 6 — mesh-like): per-source on plain
        // CSR, batched when every re-scan would pay a varint decode.
        let (n, m) = (1 << 20, 3 << 20);
        assert_eq!(plan_bfs_phase(n, m, 50, 8, BfsMode::Auto).mode, PerSource);
        for kind in [StorageKind::CompressedHeap, StorageKind::CompressedMmap] {
            assert_eq!(
                plan_bfs_phase_stored(n, m, 50, 8, BfsMode::Auto, kind).mode,
                Batched,
                "{kind:?}"
            );
        }
        // Few lanes (s = 5): below the plain MIN_BATCH_LANES but above the
        // compressed one.
        let (n, m) = (1 << 20, 1 << 23);
        assert_eq!(plan_bfs_phase(n, m, 5, 2, BfsMode::Auto).mode, PerSource);
        assert_eq!(
            plan_bfs_phase_stored(n, m, 5, 2, BfsMode::Auto, StorageKind::CompressedHeap)
                .mode,
            Batched
        );
        // Genuinely road-like (avg degree 3): per-source either way.
        let (n, m) = (1 << 20, (1 << 20) * 3 / 2);
        assert_eq!(
            plan_bfs_phase_stored(n, m, 50, 8, BfsMode::Auto, StorageKind::CompressedMmap)
                .mode,
            PerSource
        );
        // Plain storage reproduces the original table exactly.
        assert_eq!(
            plan_bfs_phase_stored(n, m, 50, 8, BfsMode::Auto, StorageKind::Plain),
            plan_bfs_phase(n, m, 50, 8, BfsMode::Auto)
        );
    }

    #[test]
    fn planner_geometry_covers_word_boundaries() {
        for (s, words) in [(1, 1), (63, 1), (64, 1), (65, 2), (129, 3)] {
            let plan = plan_bfs_phase(1 << 20, 1 << 23, s, 8, BfsMode::Batched);
            assert_eq!(plan.lanes, s);
            assert_eq!(plan.words, words);
        }
    }
}
