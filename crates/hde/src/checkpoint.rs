//! Versioned binary checkpoints of the post-BFS pipeline state.
//!
//! The BFS phase dominates ParHDE's runtime (Table 5); everything after it
//! — DOrtho, TripleProd, the eigensolve, the projection — is deterministic
//! given the distance matrix `B`. A checkpoint therefore captures exactly
//! the pipeline state at the BFS/DOrtho boundary: the `n×s` matrix `B`,
//! the pivot list, the seed of the attempt that produced them, and enough
//! fingerprints to refuse resumption against a different graph or
//! configuration. Resuming from a checkpoint replays the downstream phases
//! and reproduces the uninterrupted layout **bit-identically**.
//!
//! # On-disk format (version 1, all fields little-endian)
//!
//! | field | size |
//! |---|---|
//! | magic `"PHDECKPT"` | 8 |
//! | format version (`u32`) | 4 |
//! | reserved flags (`u32`) | 4 |
//! | graph digest (`u64`) | 8 |
//! | pipeline seed (`u64`) | 8 |
//! | embedding dimension `p` (`u32`) | 4 |
//! | reserved (`u32`) | 4 |
//! | config fingerprint (`u64`) | 8 |
//! | rows `n` (`u64`) | 8 |
//! | cols `s` (`u64`) | 8 |
//! | pivot count (`u64`) | 8 |
//! | pivots (`u32` × count) | 4·count |
//! | `B` column-major (`f64` × n·s) | 8·n·s |
//! | FNV-1a checksum of all preceding bytes (`u64`) | 8 |
//!
//! Writes are atomic: the file is staged as `<name>.tmp` in the target
//! directory and renamed into place, so a run killed mid-write leaves
//! either the previous checkpoint or a `.tmp` file that readers ignore —
//! never a torn checkpoint under the canonical name.

use crate::config::{BfsMode, OrthoMethod, ParHdeConfig, PivotStrategy};
use crate::error::HdeError;
use parhde_graph::store::{GraphStore, NeighborScratch};
use parhde_linalg::dense::ColMajorMatrix;
use std::path::{Path, PathBuf};

/// Magic bytes opening every checkpoint file.
pub const MAGIC: [u8; 8] = *b"PHDECKPT";
/// Current format version.
pub const FORMAT_VERSION: u32 = 1;
/// Canonical file name written inside a `--checkpoint` directory.
pub const CHECKPOINT_FILE: &str = "parhde-post-bfs.ckpt";

/// Where the pipeline should write its post-BFS checkpoint.
#[derive(Clone, Debug)]
pub struct CheckpointSpec {
    /// Directory receiving [`CHECKPOINT_FILE`] (created if absent).
    pub dir: PathBuf,
}

impl CheckpointSpec {
    /// The spec for a checkpoint directory.
    pub fn in_dir(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// Full path of the checkpoint file this spec writes.
    pub fn file_path(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_FILE)
    }
}

/// A parsed checkpoint: the post-BFS state of one pipeline attempt.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// [`graph_digest`] of the graph the BFS phase actually traversed
    /// (after any largest-component extraction).
    pub graph_digest: u64,
    /// Seed of the pipeline attempt (differs from `cfg.seed` on re-pivot
    /// retries).
    pub seed: u64,
    /// Embedding dimension `p` the run was started with.
    pub embed_dim: u32,
    /// [`config_fingerprint`] of the (post-clamp) configuration.
    pub config_fingerprint: u64,
    /// The BFS pivots, in traversal order.
    pub sources: Vec<u32>,
    /// The `n×s` distance matrix `B`.
    pub b: ColMajorMatrix,
}

/// 64-bit FNV-1a, the workspace's dependency-free stable hash. Public so
/// the serve layer can key its result cache on the same digests this
/// module uses for checkpoint validation.
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// The digest of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Digest of a graph's exact structure: `n`, `m`, the offset array and the
/// adjacency array. Two graphs collide only if they are structurally
/// identical (up to hash collision); vertex relabeling changes the digest,
/// which is intentional — `B`'s rows are indexed by vertex id.
///
/// Generic over [`GraphStore`]: offsets are recomputed cumulatively from
/// degrees and adjacency streamed through a decode scratch, producing the
/// **same byte stream** (hence the same digest) for plain and compressed
/// storage of the same graph — a checkpoint written against one storage
/// resumes against the other.
pub fn graph_digest<G: GraphStore>(g: &G) -> u64 {
    let n = g.num_vertices();
    let mut h = Fnv64::new();
    h.update(&(n as u64).to_le_bytes());
    h.update(&(g.num_edges() as u64).to_le_bytes());
    let mut off = 0u64;
    h.update(&off.to_le_bytes());
    for v in 0..n as u32 {
        off += g.degree(v) as u64;
        h.update(&off.to_le_bytes());
    }
    let mut scratch = NeighborScratch::new();
    for v in 0..n as u32 {
        for &u in g.neighbors_in(v, &mut scratch) {
            h.update(&u.to_le_bytes());
        }
    }
    h.finish()
}

/// Digest of every configuration field that influences the layout: the
/// BFS-producing fields pin what `B` means, the downstream fields pin what
/// resume will do with it. Resuming under a different fingerprint would
/// silently produce a layout no uninterrupted run could — refused instead.
pub fn config_fingerprint(cfg: &ParHdeConfig) -> u64 {
    let mut h = Fnv64::new();
    h.update(&(cfg.subspace as u64).to_le_bytes());
    h.update(&[match cfg.pivots {
        PivotStrategy::KCenters => 0u8,
        PivotStrategy::Random => 1,
    }]);
    h.update(&[match cfg.bfs_mode {
        BfsMode::Auto => 0u8,
        BfsMode::DirectionOpt => 1,
        BfsMode::PerSource => 2,
        BfsMode::Batched => 3,
    }]);
    h.update(&[match cfg.ortho {
        OrthoMethod::Mgs => 0u8,
        OrthoMethod::Cgs => 1,
        OrthoMethod::Bcgs2 => 2,
    }]);
    // `cfg.linalg_mode` is deliberately NOT hashed: fused and staged
    // TripleProd are bit-identical (tested), so resuming a staged
    // checkpoint under the fused kernels (or vice versa) yields exactly
    // the layout an uninterrupted run would.
    // `cfg.backend` is likewise NOT hashed: the scalar and SIMD kernels
    // are bit-identical where the accumulation order permits, and the
    // dot-family tolerance never changes a kept/dropped decision — a
    // checkpoint written under one backend resumes byte-identically under
    // the other (tested in tests/tests/backend_equiv.rs).
    h.update(&[u8::from(cfg.d_orthogonalize)]);
    h.update(&cfg.seed.to_le_bytes());
    h.update(&cfg.drop_tolerance.to_bits().to_le_bytes());
    h.update(&[u8::from(cfg.project_from_raw)]);
    h.finish()
}

/// Serializes a post-BFS checkpoint and writes it durably into `dir`:
/// staged `.tmp`, `fsync` of the staging file, `rename`, then `fsync` of
/// the directory — the same ladder as the serve cache (DESIGN.md §16.4),
/// so a power cut can neither tear the file nor un-publish the rename.
/// Returns the final path.
///
/// Failpoint sites `checkpoint.write` and `checkpoint.fsync` let the
/// chaos suite fail the stages; every failure path removes the staging
/// file.
///
/// # Errors
/// [`HdeError::Io`] if the directory cannot be created or any write
/// stage fails.
pub fn write_post_bfs<G: GraphStore>(
    spec: &CheckpointSpec,
    g: &G,
    cfg: &ParHdeConfig,
    p: usize,
    seed: u64,
    sources: &[u32],
    b: &ColMajorMatrix,
) -> Result<PathBuf, HdeError> {
    use parhde_util::failpoint;
    let bytes = serialize(g, cfg, p, seed, sources, b);
    std::fs::create_dir_all(&spec.dir).map_err(|e| {
        HdeError::Io(format!(
            "creating checkpoint directory {}: {e}",
            spec.dir.display()
        ))
    })?;
    let final_path = spec.file_path();
    let tmp_path = spec.dir.join(format!("{CHECKPOINT_FILE}.tmp"));
    let staged = (|| -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp_path)?;
        match failpoint::check("checkpoint.write") {
            Some(failpoint::Fired::Err) => {
                return Err(failpoint::injected_io_error("checkpoint.write"))
            }
            Some(failpoint::Fired::Partial) => {
                f.write_all(&bytes[..bytes.len() / 2])?;
                return Err(failpoint::injected_io_error("checkpoint.write"));
            }
            _ => {}
        }
        f.write_all(&bytes)?;
        failpoint::io_inject("checkpoint.fsync")?;
        f.sync_all()
    })();
    staged.map_err(|e| {
        let _ = std::fs::remove_file(&tmp_path);
        HdeError::Io(format!("writing checkpoint {}: {e}", tmp_path.display()))
    })?;
    std::fs::rename(&tmp_path, &final_path)
        .and_then(|()| fsync_dir(&spec.dir))
        .map_err(|e| {
            // Leave no stray staging file behind on a failed rename.
            let _ = std::fs::remove_file(&tmp_path);
            HdeError::Io(format!(
                "publishing checkpoint {}: {e}",
                final_path.display()
            ))
        })?;
    parhde_trace::counter!("supervisor.checkpoint.write", 1);
    parhde_trace::counter!("supervisor.checkpoint.bytes", bytes.len() as u64);
    Ok(final_path)
}

/// Fsyncs a directory so a completed `rename(2)` within it survives a
/// power cut. No-op on platforms where directory handles cannot be
/// fsynced (the rename is still atomic, just not power-cut durable).
fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    std::fs::File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

fn serialize<G: GraphStore>(
    g: &G,
    cfg: &ParHdeConfig,
    p: usize,
    seed: u64,
    sources: &[u32],
    b: &ColMajorMatrix,
) -> Vec<u8> {
    let n = b.rows();
    let s = b.cols();
    let mut out = Vec::with_capacity(64 + 4 * sources.len() + 8 * n * s + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // reserved flags
    out.extend_from_slice(&graph_digest(g).to_le_bytes());
    out.extend_from_slice(&seed.to_le_bytes());
    out.extend_from_slice(&(p as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // reserved
    out.extend_from_slice(&config_fingerprint(cfg).to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(s as u64).to_le_bytes());
    out.extend_from_slice(&(sources.len() as u64).to_le_bytes());
    for &src in sources {
        out.extend_from_slice(&src.to_le_bytes());
    }
    for &x in b.data() {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    let mut h = Fnv64::new();
    h.update(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

/// A bounds-checked little-endian cursor over the checkpoint bytes.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], HdeError> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(HdeError::CheckpointMismatch(
                "truncated checkpoint file".into(),
            )),
        }
    }

    fn u32(&mut self) -> Result<u32, HdeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, HdeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

impl Checkpoint {
    /// Reads and validates a checkpoint file: magic, version, structural
    /// bounds and the trailing whole-file checksum.
    ///
    /// # Errors
    /// [`HdeError::Io`] if the file cannot be read;
    /// [`HdeError::CheckpointMismatch`] if it is not a checkpoint, is a
    /// different format version, is truncated, or fails its checksum.
    pub fn read(path: &Path) -> Result<Checkpoint, HdeError> {
        let bytes = std::fs::read(path).map_err(|e| {
            HdeError::Io(format!("reading checkpoint {}: {e}", path.display()))
        })?;
        Self::from_bytes(&bytes)
    }

    /// Parses checkpoint bytes; see [`Checkpoint::read`].
    ///
    /// # Errors
    /// [`HdeError::CheckpointMismatch`] as for [`Checkpoint::read`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, HdeError> {
        if bytes.len() < MAGIC.len() + 8 || bytes[..MAGIC.len()] != MAGIC {
            return Err(HdeError::CheckpointMismatch(
                "not a ParHDE checkpoint (bad magic)".into(),
            ));
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let mut h = Fnv64::new();
        h.update(payload);
        let stored = u64::from_le_bytes([
            tail[0], tail[1], tail[2], tail[3], tail[4], tail[5], tail[6], tail[7],
        ]);
        if h.finish() != stored {
            return Err(HdeError::CheckpointMismatch(
                "checksum mismatch (file corrupt or torn)".into(),
            ));
        }
        let mut cur = Cursor { buf: payload, pos: MAGIC.len() };
        let version = cur.u32()?;
        if version != FORMAT_VERSION {
            return Err(HdeError::CheckpointMismatch(format!(
                "format version {version} (this build reads {FORMAT_VERSION})"
            )));
        }
        let _flags = cur.u32()?;
        let graph_digest = cur.u64()?;
        let seed = cur.u64()?;
        let embed_dim = cur.u32()?;
        let _reserved = cur.u32()?;
        let config_fingerprint = cur.u64()?;
        let n = usize::try_from(cur.u64()?).map_err(oversized)?;
        let s = usize::try_from(cur.u64()?).map_err(oversized)?;
        let n_sources = usize::try_from(cur.u64()?).map_err(oversized)?;
        // Reject absurd dimensions before allocating. Every product and sum
        // here is checked: the three u64 length fields are hostile input,
        // and a wrapped bounds test would let `with_capacity` over-allocate
        // (or the read loops walk past the payload) on a 50-byte file
        // declaring u64::MAX-sized sections.
        let cells = n
            .checked_mul(s)
            .and_then(|c| {
                let need = cur
                    .pos
                    .checked_add(n_sources.checked_mul(4)?)?
                    .checked_add(c.checked_mul(8)?)?;
                (payload.len() >= need).then_some(c)
            })
            .ok_or_else(|| {
                HdeError::CheckpointMismatch(format!(
                    "declared {n}×{s} matrix with {n_sources} pivots exceeds \
                     file size"
                ))
            })?;
        let mut sources = Vec::with_capacity(n_sources);
        for _ in 0..n_sources {
            sources.push(cur.u32()?);
        }
        let mut data = Vec::with_capacity(cells);
        for _ in 0..cells {
            data.push(f64::from_bits(cur.u64()?));
        }
        if cur.pos != payload.len() {
            return Err(HdeError::CheckpointMismatch(format!(
                "{} trailing bytes after matrix data",
                payload.len() - cur.pos
            )));
        }
        Ok(Checkpoint {
            graph_digest,
            seed,
            embed_dim,
            config_fingerprint,
            sources,
            b: ColMajorMatrix::from_data(n, s, data),
        })
    }

    /// Validates this checkpoint against the graph, configuration and
    /// embedding dimension of a resume attempt. `g` and `cfg` must be the
    /// *post-preprocessing* graph and the *post-clamp* configuration — the
    /// exact inputs the original pipeline attempt saw.
    ///
    /// # Errors
    /// [`HdeError::CheckpointMismatch`] naming the first mismatching field.
    pub fn validate_for<G: GraphStore>(
        &self,
        g: &G,
        cfg: &ParHdeConfig,
        p: usize,
    ) -> Result<(), HdeError> {
        if self.embed_dim as usize != p {
            return Err(HdeError::CheckpointMismatch(format!(
                "embedding dimension {} recorded, resume requested {p}",
                self.embed_dim
            )));
        }
        let digest = graph_digest(g);
        if self.graph_digest != digest {
            return Err(HdeError::CheckpointMismatch(format!(
                "graph digest {digest:#018x} does not match recorded \
                 {:#018x}; checkpoint belongs to a different graph",
                self.graph_digest
            )));
        }
        let fp = config_fingerprint(cfg);
        if self.config_fingerprint != fp {
            return Err(HdeError::CheckpointMismatch(format!(
                "config fingerprint {fp:#018x} does not match recorded \
                 {:#018x}; checkpoint was produced under different settings",
                self.config_fingerprint
            )));
        }
        if self.b.rows() != g.num_vertices() || self.b.cols() != cfg.subspace {
            return Err(HdeError::CheckpointMismatch(format!(
                "matrix is {}×{}, resume expects {}×{}",
                self.b.rows(),
                self.b.cols(),
                g.num_vertices(),
                cfg.subspace
            )));
        }
        Ok(())
    }
}

fn oversized(_: std::num::TryFromIntError) -> HdeError {
    HdeError::CheckpointMismatch("dimension overflows this platform".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use parhde_graph::gen::grid2d;
    use parhde_graph::CsrGraph;

    fn sample() -> (CsrGraph, ParHdeConfig, Vec<u32>, ColMajorMatrix) {
        let g = grid2d(4, 4);
        let cfg = ParHdeConfig::with_subspace(3);
        let sources = vec![0, 5, 15];
        let mut b = ColMajorMatrix::zeros(16, 3);
        for c in 0..3 {
            for r in 0..16 {
                b.set(r, c, (r * 3 + c) as f64 * 0.25);
            }
        }
        (g, cfg, sources, b)
    }

    #[test]
    fn roundtrips_through_bytes() {
        let (g, cfg, sources, b) = sample();
        let bytes = serialize(&g, &cfg, 2, 42, &sources, &b);
        let ck = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ck.graph_digest, graph_digest(&g));
        assert_eq!(ck.seed, 42);
        assert_eq!(ck.embed_dim, 2);
        assert_eq!(ck.config_fingerprint, config_fingerprint(&cfg));
        assert_eq!(ck.sources, sources);
        assert_eq!(ck.b.data(), b.data());
        ck.validate_for(&g, &cfg, 2).unwrap();
    }

    #[test]
    fn write_is_atomic_and_readable() {
        let (g, cfg, sources, b) = sample();
        let dir = std::env::temp_dir().join("parhde-ckpt-test-atomic");
        let _ = std::fs::remove_dir_all(&dir);
        let spec = CheckpointSpec::in_dir(&dir);
        let path = write_post_bfs(&spec, &g, &cfg, 2, 7, &sources, &b).unwrap();
        assert_eq!(path, spec.file_path());
        // No staging file survives a successful write.
        assert!(!dir.join(format!("{CHECKPOINT_FILE}.tmp")).exists());
        let ck = Checkpoint::read(&path).unwrap();
        assert_eq!(ck.b.data(), b.data());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected() {
        let (g, cfg, sources, b) = sample();
        let mut bytes = serialize(&g, &cfg, 2, 7, &sources, &b);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, HdeError::CheckpointMismatch(m) if m.contains("checksum")));
    }

    #[test]
    fn truncation_is_detected() {
        let (g, cfg, sources, b) = sample();
        let bytes = serialize(&g, &cfg, 2, 7, &sources, &b);
        for cut in [3, 12, 40, bytes.len() - 9] {
            assert!(
                Checkpoint::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let (g, cfg, sources, b) = sample();
        let bytes = serialize(&g, &cfg, 2, 7, &sources, &b);
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(matches!(
            Checkpoint::from_bytes(&wrong).unwrap_err(),
            HdeError::CheckpointMismatch(m) if m.contains("magic")
        ));
        // Bump the version and re-seal the checksum so only the version
        // check can fire.
        let mut vers = bytes;
        vers[8] = 99;
        let body = vers.len() - 8;
        let mut h = Fnv64::new();
        h.update(&vers[..body]);
        let sum = h.finish().to_le_bytes();
        vers[body..].copy_from_slice(&sum);
        assert!(matches!(
            Checkpoint::from_bytes(&vers).unwrap_err(),
            HdeError::CheckpointMismatch(m) if m.contains("version 99")
        ));
    }

    #[test]
    fn validate_rejects_other_graph_config_and_dim() {
        let (g, cfg, sources, b) = sample();
        let bytes = serialize(&g, &cfg, 2, 7, &sources, &b);
        let ck = Checkpoint::from_bytes(&bytes).unwrap();
        let other_g = grid2d(4, 5);
        assert!(matches!(
            ck.validate_for(&other_g, &cfg, 2).unwrap_err(),
            HdeError::CheckpointMismatch(m) if m.contains("different graph")
        ));
        let other_cfg = ParHdeConfig { seed: 1, ..cfg.clone() };
        assert!(matches!(
            ck.validate_for(&g, &other_cfg, 2).unwrap_err(),
            HdeError::CheckpointMismatch(m) if m.contains("different settings")
        ));
        assert!(matches!(
            ck.validate_for(&g, &cfg, 3).unwrap_err(),
            HdeError::CheckpointMismatch(m) if m.contains("dimension")
        ));
    }

    #[test]
    fn digest_identical_across_storages() {
        // The digest must not depend on how the adjacency is stored: a
        // checkpoint written against plain CSR resumes against the
        // compressed (or mmap-backed) store of the same graph.
        for g in [grid2d(7, 9), parhde_graph::gen::kron(8, 6, 2)] {
            let c = parhde_graph::CompressedCsr::from_csr(&g);
            assert_eq!(graph_digest(&g), graph_digest(&c));
        }
    }

    #[test]
    fn digests_are_sensitive_to_structure() {
        let a = grid2d(6, 6);
        let b = grid2d(6, 7);
        assert_ne!(graph_digest(&a), graph_digest(&b));
        let base = ParHdeConfig::default();
        let fp = config_fingerprint(&base);
        for variant in [
            ParHdeConfig { subspace: 11, ..base.clone() },
            ParHdeConfig { seed: base.seed + 1, ..base.clone() },
            ParHdeConfig { project_from_raw: true, ..base.clone() },
            ParHdeConfig { d_orthogonalize: false, ..base.clone() },
        ] {
            assert_ne!(config_fingerprint(&variant), fp);
        }
    }
}
