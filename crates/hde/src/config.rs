//! Configuration for the ParHDE pipeline and its variants.

use crate::error::HdeError;

/// How pivot (source) vertices are selected for the BFS phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PivotStrategy {
    /// Farthest-first 2-approximation to k-centers (Algorithm 3 line 8):
    /// each next source is the vertex maximizing the minimum distance to all
    /// previous sources. BFSes are serialized (each internally parallel)
    /// because of the dependency between iterations.
    KCenters,
    /// Uniformly random distinct pivots chosen up front; the BFSes are
    /// independent, so "threads concurrently perform multiple BFSes" (§4.4,
    /// Table 6). Wins for small graphs and when `s` exceeds thread count.
    Random,
}

/// How the BFS phase executes its traversals (the planner knob).
///
/// The default `Auto` lets the BFS-phase planner
/// ([`crate::bfs_phase::plan_bfs_phase`]) choose from `n`, `m`, `s` and the
/// rayon thread count; the other variants force one mode. All modes produce
/// bit-identical distance matrices — only the schedule differs. With
/// k-centers pivots the batched kernel is infeasible (pivots are
/// sequentially dependent); forcing `Batched` there falls back to
/// direction-optimizing BFS with a trace warning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BfsMode {
    /// Let the planner pick (default).
    #[default]
    Auto,
    /// Direction-optimizing parallel BFS per source, sources serialized.
    DirectionOpt,
    /// One sequential queue BFS per source, sources scheduled concurrently.
    PerSource,
    /// Bit-parallel batched multi-source BFS (64 sources per lane word).
    Batched,
}

impl std::str::FromStr for BfsMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(BfsMode::Auto),
            "direction-opt" | "diropt" => Ok(BfsMode::DirectionOpt),
            "per-source" => Ok(BfsMode::PerSource),
            "batched" => Ok(BfsMode::Batched),
            other => Err(format!(
                "unknown BFS mode {other:?} (expected auto, direction-opt, \
                 per-source or batched)"
            )),
        }
    }
}

/// Which Gram-Schmidt procedure the DOrtho phase uses (Table 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrthoMethod {
    /// Modified Gram-Schmidt, BLAS-1 only — the paper's default.
    Mgs,
    /// Classical Gram-Schmidt, BLAS-2 — consistently ~2–3× faster, but
    /// requires all distance vectors precomputed.
    Cgs,
    /// Block Classical Gram-Schmidt with one reorthogonalization pass,
    /// BLAS-3: panels of columns projected against the kept prefix with
    /// two GEMM-shaped passes. The fastest variant on wide subspaces;
    /// like CGS it needs all distance vectors precomputed.
    Bcgs2,
}

impl std::str::FromStr for OrthoMethod {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mgs" => Ok(OrthoMethod::Mgs),
            "cgs" => Ok(OrthoMethod::Cgs),
            "bcgs2" => Ok(OrthoMethod::Bcgs2),
            other => Err(format!(
                "unknown ortho method {other:?} (expected mgs, cgs or bcgs2)"
            )),
        }
    }
}

/// How the TripleProd linear algebra executes (`Z = Sᵀ·L·S` and the
/// symmetric covariance products).
///
/// Both modes produce **bit-identical** results at any thread count — the
/// fused kernels replay the staged kernels' exact floating-point operation
/// order (see `crates/linalg/src/fused.rs`) — so this is purely a
/// performance/memory knob, and it is deliberately excluded from the
/// checkpoint config fingerprint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LinalgMode {
    /// One-pass fused TripleProd + SYRK self-products (default): `L·S`
    /// streams through cache-resident row panels instead of being
    /// materialized at `n×s`.
    #[default]
    Fused,
    /// The staged PR≤4 schedule: `laplacian_spmm` materializes `P = L·S`,
    /// then `at_b` reduces it. Kept as the ablation baseline and for
    /// memory-traffic comparisons.
    Staged,
}

impl LinalgMode {
    /// Stable lowercase label for reports and trace counters.
    pub fn label(self) -> &'static str {
        match self {
            LinalgMode::Fused => "fused",
            LinalgMode::Staged => "staged",
        }
    }
}

impl std::str::FromStr for LinalgMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fused" => Ok(LinalgMode::Fused),
            "staged" => Ok(LinalgMode::Staged),
            other => Err(format!(
                "unknown linalg mode {other:?} (expected fused or staged)"
            )),
        }
    }
}

/// Which compute backend serves the linalg hot kernels (`auto` resolves by
/// CPU-feature detection at install time). Re-exported from
/// [`parhde_linalg::backend`]: the knob is process-wide — the pipelines
/// install it once per run, before the first kernel call. Like
/// [`LinalgMode`] it is a performance knob excluded from the checkpoint
/// config fingerprint: the exact-class kernels are bit-identical across
/// backends and the dot-family tolerance (≤1e-13·‖x‖‖y‖) never changes a
/// kept/dropped/reorth decision (tested), so resuming a checkpoint under a
/// different backend is legitimate.
pub use parhde_linalg::backend::Choice as LinalgBackend;

/// Installs the configured compute backend process-wide (every pipeline
/// entry point calls this before its first kernel call) and returns the
/// *executed* backend's label for [`crate::HdeStats::backend_executed`].
///
/// # Errors
/// [`HdeError::BackendUnavailable`] when `simd` is forced on a CPU without
/// the required features — a typed error, never a panic.
pub(crate) fn install_backend(choice: LinalgBackend) -> Result<&'static str, HdeError> {
    parhde_linalg::backend::install(choice).map_err(HdeError::from)
}

/// Configuration of a ParHDE run.
#[derive(Clone, Debug)]
pub struct ParHdeConfig {
    /// Subspace dimension `s` — the number of BFS pivots. The paper uses
    /// `s = 10` for timing tables and notes `s = 50` is a common layout
    /// choice.
    pub subspace: usize,
    /// Pivot selection strategy.
    pub pivots: PivotStrategy,
    /// BFS execution mode for the BFS phase (default: planner-chosen).
    pub bfs_mode: BfsMode,
    /// Gram-Schmidt variant for DOrtho.
    pub ortho: OrthoMethod,
    /// TripleProd execution mode (fused one-pass vs staged SpMM + GEMM);
    /// bit-identical results either way.
    pub linalg_mode: LinalgMode,
    /// Compute backend for the linalg hot kernels (scalar reference vs
    /// explicit SIMD; `auto` picks by CPU detection). Forcing `simd` on a
    /// CPU without AVX2+FMA is rejected with a typed error at validation.
    pub backend: LinalgBackend,
    /// `true` (default) for D-orthogonalization — approximating the
    /// generalized eigenproblem `Lx = μDx` (degree-normalized vectors).
    /// `false` for plain orthogonalization — approximating the Laplacian
    /// eigenvectors instead (§4.5.1; "for graphs with uniform degree
    /// distributions the results are more or less identical").
    pub d_orthogonalize: bool,
    /// PRNG seed for the start vertex / random pivots.
    pub seed: u64,
    /// Degenerate-vector drop threshold (Algorithm 3 line 12; paper: 1e-3).
    pub drop_tolerance: f64,
    /// `false` (default): project the layout from the orthonormal basis,
    /// `[x, y] = S·Y` — the formulation of Koren's subspace optimization.
    /// `true`: project from the raw distance matrix, `[x, y] = B·Y`, the
    /// literal final line of the paper's Algorithm 1/3 listings. The two
    /// differ by the (triangular) Gram-Schmidt change of basis; `S·Y` is
    /// used by default because it is the mathematically consistent
    /// projection for the subspace eigenproblem (see DESIGN.md).
    pub project_from_raw: bool,
}

impl Default for ParHdeConfig {
    fn default() -> Self {
        Self {
            subspace: 10,
            pivots: PivotStrategy::KCenters,
            bfs_mode: BfsMode::Auto,
            ortho: OrthoMethod::Mgs,
            linalg_mode: LinalgMode::Fused,
            backend: LinalgBackend::Auto,
            d_orthogonalize: true,
            seed: 0x9a_7de,
            drop_tolerance: 1e-3,
            project_from_raw: false,
        }
    }
}

impl ParHdeConfig {
    /// A config with the given subspace dimension, other fields default.
    pub fn with_subspace(s: usize) -> Self {
        Self { subspace: s, ..Self::default() }
    }

    /// A default config pre-clamped for a graph of `n` vertices: the
    /// subspace dimension is `min(10, n − 1)` (at least 1), so the result
    /// always passes [`ParHdeConfig::validate`] for any `n ≥ 2`.
    pub fn for_graph(n: usize) -> Self {
        let s = Self::default().subspace.min(n.saturating_sub(1)).max(1);
        Self::with_subspace(s)
    }

    /// Validates parameter sanity against a graph of `n` vertices.
    ///
    /// # Errors
    /// [`HdeError::InvalidConfig`] if `subspace` is 0 or ≥ `n`, or the
    /// drop tolerance is not a non-negative number.
    pub fn validate(&self, n: usize) -> Result<(), HdeError> {
        if self.subspace == 0 {
            return Err(HdeError::InvalidConfig(
                "subspace dimension must be positive".into(),
            ));
        }
        if self.subspace >= n {
            return Err(HdeError::InvalidConfig(format!(
                "subspace dimension {} must be below n = {n}",
                self.subspace
            )));
        }
        if self.drop_tolerance.is_nan() || self.drop_tolerance < 0.0 {
            return Err(HdeError::InvalidConfig(
                "drop tolerance must be ≥ 0".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = ParHdeConfig::default();
        assert_eq!(c.subspace, 10);
        assert_eq!(c.pivots, PivotStrategy::KCenters);
        assert_eq!(c.bfs_mode, BfsMode::Auto);
        assert_eq!(c.ortho, OrthoMethod::Mgs);
        assert_eq!(c.linalg_mode, LinalgMode::Fused);
        assert!(c.d_orthogonalize);
        assert_eq!(c.drop_tolerance, 1e-3);
    }

    #[test]
    fn with_subspace_overrides() {
        assert_eq!(ParHdeConfig::with_subspace(50).subspace, 50);
    }

    #[test]
    fn bfs_mode_parses_from_str() {
        assert_eq!("auto".parse(), Ok(BfsMode::Auto));
        assert_eq!("direction-opt".parse(), Ok(BfsMode::DirectionOpt));
        assert_eq!("diropt".parse(), Ok(BfsMode::DirectionOpt));
        assert_eq!("per-source".parse(), Ok(BfsMode::PerSource));
        assert_eq!("batched".parse(), Ok(BfsMode::Batched));
        assert!("bogus".parse::<BfsMode>().is_err());
    }

    #[test]
    fn ortho_method_parses_from_str() {
        assert_eq!("mgs".parse(), Ok(OrthoMethod::Mgs));
        assert_eq!("cgs".parse(), Ok(OrthoMethod::Cgs));
        assert_eq!("bcgs2".parse(), Ok(OrthoMethod::Bcgs2));
        assert!("gram".parse::<OrthoMethod>().is_err());
    }

    #[test]
    fn linalg_mode_parses_from_str() {
        assert_eq!("fused".parse(), Ok(LinalgMode::Fused));
        assert_eq!("staged".parse(), Ok(LinalgMode::Staged));
        assert_eq!(LinalgMode::default(), LinalgMode::Fused);
        assert_eq!(LinalgMode::Fused.label(), "fused");
        assert_eq!(LinalgMode::Staged.label(), "staged");
        assert!("blocked".parse::<LinalgMode>().is_err());
    }

    #[test]
    fn backend_parses_from_str() {
        assert_eq!("auto".parse(), Ok(LinalgBackend::Auto));
        assert_eq!("scalar".parse(), Ok(LinalgBackend::Scalar));
        assert_eq!("simd".parse(), Ok(LinalgBackend::Simd));
        assert_eq!(LinalgBackend::default(), LinalgBackend::Auto);
        assert_eq!(ParHdeConfig::default().backend, LinalgBackend::Auto);
        assert!("gpu".parse::<LinalgBackend>().is_err());
    }

    #[test]
    fn validate_accepts_sane() {
        assert_eq!(ParHdeConfig::default().validate(100), Ok(()));
    }

    #[test]
    fn validate_rejects_oversized_subspace() {
        let err = ParHdeConfig::with_subspace(10).validate(10).unwrap_err();
        assert!(matches!(err, HdeError::InvalidConfig(m) if m.contains("must be below")));
    }

    #[test]
    fn validate_rejects_zero_subspace() {
        let err = ParHdeConfig::with_subspace(0).validate(10).unwrap_err();
        assert!(matches!(err, HdeError::InvalidConfig(m) if m.contains("must be positive")));
    }

    #[test]
    fn validate_rejects_nan_tolerance() {
        let cfg = ParHdeConfig { drop_tolerance: f64::NAN, ..ParHdeConfig::default() };
        assert!(cfg.validate(100).is_err());
    }

    #[test]
    fn for_graph_clamps_subspace() {
        assert_eq!(ParHdeConfig::for_graph(100).subspace, 10);
        assert_eq!(ParHdeConfig::for_graph(5).subspace, 4);
        assert_eq!(ParHdeConfig::for_graph(1).subspace, 1);
        assert_eq!(ParHdeConfig::for_graph(0).subspace, 1);
        assert_eq!(ParHdeConfig::for_graph(6).validate(6), Ok(()));
    }
}
