//! Coupled BFS + D-orthogonalization (§4.4).
//!
//! Table 7's discussion notes that CGS "requires all distance vectors to be
//! precomputed ... whereas the default procedure can also be executed with
//! a coupled BFS and D-orthogonalization steps". The coupled schedule
//! orthogonalizes each distance vector the moment its BFS completes,
//! overlapping the O(s²n) DOrtho work across the BFS phase instead of
//! concentrating it afterwards — attractive for streaming/incremental use,
//! with byte-identical results to the decoupled MGS pipeline (same
//! operations in the same order). Pivot selection still folds the *raw*
//! distances, so the k-centers sequence is unchanged.

use crate::config::{LinalgMode, OrthoMethod, ParHdeConfig, PivotStrategy};
use crate::error::Warning;
use crate::layout::Layout;
use crate::parhde::{accumulate, assert_connected, subspace_axes};
use crate::pivots::{farthest_vertex, fold_min_distance};
use crate::stats::{phase, HdeStats, PhaseSpan};
use parhde_bfs::direction_opt::bfs_direction_opt_into_f64;
use parhde_graph::CsrGraph;
use parhde_linalg::dense::ColMajorMatrix;
use parhde_linalg::gemm::{a_small, at_b};
use parhde_linalg::ortho::mgs_step;
use parhde_linalg::spmm::laplacian_spmm;
use parhde_util::Xoshiro256StarStar;

/// Runs ParHDE with the coupled BFS/DOrtho schedule.
///
/// Only the k-centers pivot strategy and MGS are compatible with coupling
/// (random pivots batch all BFSes; CGS needs the full matrix).
///
/// # Panics
/// Panics like [`crate::par_hde`], or if the configuration requests random
/// pivots, CGS, or raw-basis projection.
pub fn par_hde_coupled(g: &CsrGraph, cfg: &ParHdeConfig) -> (Layout, HdeStats) {
    let n = g.num_vertices();
    if let Err(e) = cfg.validate(n) {
        panic!("{e}");
    }
    assert_eq!(
        cfg.pivots,
        PivotStrategy::KCenters,
        "coupled mode requires k-centers pivots"
    );
    assert_eq!(cfg.ortho, OrthoMethod::Mgs, "coupled mode requires MGS");
    assert!(
        !cfg.project_from_raw,
        "coupled mode discards raw distance columns; use the S-basis projection"
    );
    let s = cfg.subspace;
    let _root = parhde_trace::span!("parhde_coupled");
    let backend_executed = match crate::config::install_backend(cfg.backend) {
        Ok(label) => label,
        Err(e) => panic!("{e}"),
    };
    let mut stats = HdeStats {
        s_requested: s,
        backend: Some(cfg.backend.label()),
        backend_executed: Some(backend_executed),
        ..HdeStats::default()
    };
    let mut rng = Xoshiro256StarStar::seed_from_u64(cfg.seed);

    let ph = PhaseSpan::begin(phase::INIT);
    let mut smat = ColMajorMatrix::zeros(n, s + 1);
    smat.col_mut(0).fill(1.0 / (n as f64).sqrt());
    let degrees = g.degree_vector();
    let weights = cfg.d_orthogonalize.then_some(degrees.as_slice());
    // Process the constant column through the same MGS step the decoupled
    // pipeline uses, so the floating-point operation sequence (and thus the
    // result) is bit-identical.
    let mut kept: Vec<usize> = Vec::with_capacity(s + 1);
    let kept0 = mgs_step(&mut smat, &kept, 0, weights, cfg.drop_tolerance);
    debug_assert!(kept0, "the constant column has unit norm");
    kept.push(0);
    let mut dropped = 0usize;
    let mut raw = vec![0.0f64; n];
    let mut min_dist = vec![f64::INFINITY; n];
    let mut src = rng.next_index(n) as u32;
    let mut nan_dropped = 0usize;
    ph.end(&mut stats.phases);

    for i in 1..=s {
        stats.sources.push(src);
        // BFS straight into a raw buffer (pivot selection needs raw
        // distances; the S column gets the orthogonalized version).
        let ph = PhaseSpan::begin(phase::BFS);
        let (reached, trav) = bfs_direction_opt_into_f64(g, src, &mut raw);
        ph.end(&mut stats.phases);
        accumulate(&mut stats.traversal, trav);
        // Budget check before the connectivity assert: an abandoned
        // traversal reaches fewer than n vertices, and the trip must win
        // over the spurious "disconnected" panic that would cause.
        crate::supervise::budget_check_strict(phase::BFS);
        assert_connected(reached, n);

        let ph = PhaseSpan::begin(phase::BFS_OTHER);
        // BFS levels are finite; a nonzero count means a kernel regression
        // and is worth a warning even in this strict pipeline.
        nan_dropped += fold_min_distance(&mut min_dist, &raw);
        src = farthest_vertex(&min_dist);
        ph.end(&mut stats.phases);

        // Coupled DOrtho: orthogonalize this column immediately.
        let ph = PhaseSpan::begin(phase::DORTHO);
        smat.col_mut(i).copy_from_slice(&raw);
        if mgs_step(&mut smat, &kept, i, weights, cfg.drop_tolerance) {
            kept.push(i);
        } else {
            dropped += 1;
        }
        ph.end(&mut stats.phases);
    }

    // Compact to the kept non-constant columns.
    let ph = PhaseSpan::begin(phase::DORTHO);
    smat.retain_columns(&kept);
    let survivors: Vec<usize> = (1..smat.cols()).collect();
    smat.retain_columns(&survivors);
    stats.dropped_columns = dropped;
    stats.s_kept = smat.cols();
    if nan_dropped > 0 {
        stats.warn(Warning::NanDistances { count: nan_dropped });
    }
    ph.end(&mut stats.phases);
    crate::supervise::budget_check_strict(phase::DORTHO);
    assert!(smat.cols() >= 2, "fewer than two directions survived");

    // TripleProd + eigensolve + projection, identical to the decoupled path.
    stats.linalg_mode = Some(cfg.linalg_mode.label());
    let z = match cfg.linalg_mode {
        LinalgMode::Fused => {
            let ph = PhaseSpan::begin(phase::FUSED);
            let z = parhde_linalg::fused::triple_product(g, &degrees, &smat);
            crate::supervise::budget_check_strict(phase::FUSED);
            ph.end(&mut stats.phases);
            z
        }
        LinalgMode::Staged => {
            let ph = PhaseSpan::begin(phase::LS);
            let prod = laplacian_spmm(g, &degrees, &smat);
            ph.end(&mut stats.phases);
            let ph = PhaseSpan::begin(phase::GEMM);
            let z = at_b(&smat, &prod);
            ph.end(&mut stats.phases);
            z
        }
    };
    let ph = PhaseSpan::begin(phase::EIGEN);
    let (y, mus) = subspace_axes(&smat, &z, weights);
    stats.axis_eigenvalues = mus;
    ph.end(&mut stats.phases);
    let ph = PhaseSpan::begin(phase::PROJECT);
    let coords = a_small(&smat, &y);
    let layout = Layout::new(coords.col(0).to_vec(), coords.col(1).to_vec());
    ph.end(&mut stats.phases);
    (layout, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parhde::par_hde;
    use parhde_graph::gen::{barth5_like, grid2d};

    #[test]
    fn coupled_equals_decoupled_mgs() {
        // Same operations in the same order ⇒ identical layouts.
        for g in [grid2d(20, 20), barth5_like()] {
            let cfg = ParHdeConfig::default();
            let (a, sa) = par_hde(&g, &cfg);
            let (b, sb) = par_hde_coupled(&g, &cfg);
            assert_eq!(sa.sources, sb.sources, "pivot sequences differ");
            assert_eq!(sa.s_kept, sb.s_kept);
            assert_eq!(a, b, "coupled layout must be identical");
        }
    }

    #[test]
    fn coupled_interleaves_phase_time() {
        let g = grid2d(30, 30);
        let (_, stats) = par_hde_coupled(&g, &ParHdeConfig::default());
        // Both phases recorded, once per BFS iteration.
        assert!(stats.phases.seconds(phase::BFS) > 0.0);
        assert!(stats.phases.seconds(phase::DORTHO) > 0.0);
        assert_eq!(stats.sources.len(), 10);
    }

    #[test]
    #[should_panic(expected = "requires MGS")]
    fn coupled_rejects_cgs() {
        let g = grid2d(8, 8);
        let cfg = ParHdeConfig { ortho: OrthoMethod::Cgs, ..ParHdeConfig::default() };
        par_hde_coupled(&g, &cfg);
    }

    #[test]
    #[should_panic(expected = "k-centers")]
    fn coupled_rejects_random_pivots() {
        let g = grid2d(8, 8);
        let cfg = ParHdeConfig {
            pivots: PivotStrategy::Random,
            ..ParHdeConfig::default()
        };
        par_hde_coupled(&g, &cfg);
    }
}
