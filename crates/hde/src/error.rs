//! Typed errors, degradation warnings, and fail-soft helpers.
//!
//! The `try_*` pipeline entry points ([`crate::try_par_hde`],
//! [`crate::try_phde`], [`crate::try_pivot_mds`], …) never panic on
//! untrusted input: every defect either comes back as an [`HdeError`] or is
//! absorbed by a documented degradation recorded as a [`Warning`] in
//! [`crate::HdeStats::warnings`]. The legacy panicking APIs remain as thin
//! wrappers that `panic!` with the error's `Display` text, preserving the
//! historical messages.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use parhde_graph::io::GraphIoError;
use parhde_linalg::dense::ColMajorMatrix;
use parhde_linalg::LinalgError;

/// A failure anywhere in a layout pipeline, typed by cause.
#[derive(Debug, Clone, PartialEq)]
pub enum HdeError {
    /// The configuration is unusable for the given graph (zero subspace,
    /// `s ≥ n` in strict mode, negative tolerance, non-positive Δ, …).
    InvalidConfig(String),
    /// The graph is not connected and the caller asked for strict behavior.
    Disconnected {
        /// Vertices reached from the first pivot.
        reached: usize,
        /// Total vertices in the graph.
        n: usize,
    },
    /// Fewer than `needed` subspace directions survived D-orthogonalization,
    /// even after `retries` re-pivot attempts.
    DegenerateSubspace {
        /// Directions that survived.
        kept: usize,
        /// Directions the embedding dimension requires.
        needed: usize,
        /// The subspace dimension `s` that was attempted.
        subspace: usize,
        /// Re-pivot retries performed before giving up.
        retries: usize,
    },
    /// A NaN or ±∞ appeared mid-pipeline; names the phase and position.
    NonFiniteValue {
        /// Pipeline phase whose data went bad (e.g. `"dortho"`, `"spmm"`).
        phase: &'static str,
        /// Column of the first bad entry.
        column: usize,
        /// Row of the first bad entry.
        row: usize,
    },
    /// Malformed input text at a 1-indexed line and column.
    Parse {
        /// 1-indexed line of the defect.
        line: usize,
        /// 1-indexed column of the defect.
        column: usize,
        /// Description of the defect.
        message: String,
    },
    /// An I/O or non-positional format failure while loading input.
    Io(String),
    /// The run's wall-clock deadline passed; names the phase that was
    /// interrupted. Produced by the run supervisor (DESIGN.md §11).
    DeadlineExceeded {
        /// Pipeline phase that was executing when the budget tripped.
        phase: &'static str,
    },
    /// The soft memory budget was exceeded — either rejected up front by
    /// the admission estimator or tripped by a phase-boundary RSS poll.
    MemoryBudgetExceeded {
        /// Bytes the run needs (estimate) or currently holds (RSS poll).
        needed_bytes: u64,
        /// The configured soft budget in bytes.
        budget_bytes: u64,
    },
    /// The run was cancelled (SIGINT/SIGTERM or a peer thread); names the
    /// phase that was interrupted.
    Cancelled {
        /// Pipeline phase that was executing when cancellation landed.
        phase: &'static str,
    },
    /// A checkpoint file is unusable for this run: wrong magic/version,
    /// corrupt payload, or written for a different graph/configuration.
    CheckpointMismatch(String),
    /// A forced compute backend (`--backend simd`) cannot run on this CPU.
    BackendUnavailable {
        /// The backend the caller demanded (e.g. `"simd"`).
        requested: &'static str,
        /// Why it cannot be selected here.
        reason: String,
    },
    /// An internal invariant failed — a bug, not a user error.
    Internal(String),
}

impl std::fmt::Display for HdeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            Self::Disconnected { reached, n } => write!(
                f,
                "ParHDE requires a connected graph ({reached} of {n} vertices \
                 reached); extract the largest component first (paper §4.1) or \
                 use a try_* entry point for automatic fallback"
            ),
            Self::DegenerateSubspace { kept, needed, subspace, retries } => write!(
                f,
                "only {kept} independent subspace directions survived for a \
                 {needed}-D embedding; increase the subspace dimension \
                 (s = {subspace}, {retries} re-pivot retries)"
            ),
            Self::NonFiniteValue { phase, column, row } => write!(
                f,
                "non-finite value in phase {phase} at column {column}, row {row}"
            ),
            Self::Parse { line, column, message } => {
                write!(f, "parse error at line {line}, column {column}: {message}")
            }
            Self::Io(m) => write!(f, "input error: {m}"),
            Self::DeadlineExceeded { phase } => {
                write!(f, "wall-clock deadline exceeded during phase {phase}")
            }
            Self::MemoryBudgetExceeded { needed_bytes, budget_bytes } => write!(
                f,
                "memory budget exceeded: run needs ~{needed_bytes} bytes, \
                 soft budget is {budget_bytes} bytes"
            ),
            Self::Cancelled { phase } => {
                write!(f, "run cancelled during phase {phase}")
            }
            Self::CheckpointMismatch(m) => write!(f, "unusable checkpoint: {m}"),
            Self::BackendUnavailable { requested, reason } => {
                write!(f, "compute backend {requested:?} unavailable: {reason}")
            }
            Self::Internal(m) => write!(f, "internal error (bug): {m}"),
        }
    }
}

impl std::error::Error for HdeError {}

impl HdeError {
    /// The process exit code the binaries map this error to (distinct per
    /// cause; `1` is reserved for generic failure, `2` for CLI usage).
    pub fn exit_code(&self) -> i32 {
        match self {
            Self::Io(_) => 3,
            Self::Parse { .. } => 4,
            Self::InvalidConfig(_) => 5,
            Self::Disconnected { .. } => 6,
            Self::DegenerateSubspace { .. } => 7,
            Self::NonFiniteValue { .. } => 8,
            Self::DeadlineExceeded { .. } => 9,
            Self::MemoryBudgetExceeded { .. } => 10,
            Self::CheckpointMismatch(_) => 11,
            Self::BackendUnavailable { .. } => 12,
            Self::Cancelled { .. } => 130, // 128 + SIGINT, the shell convention
            Self::Internal(_) => 70,       // EX_SOFTWARE
        }
    }

    /// The pipeline phase associated with the failure, when one is known.
    pub fn phase(&self) -> Option<&'static str> {
        match self {
            Self::NonFiniteValue { phase, .. } => Some(phase),
            Self::Disconnected { .. } => Some("bfs"),
            Self::DegenerateSubspace { .. } => Some("dortho"),
            Self::DeadlineExceeded { phase } | Self::Cancelled { phase } => Some(phase),
            _ => None,
        }
    }

    /// Converts a supervisor trip into the matching typed error, tagging it
    /// with the phase that was interrupted.
    pub fn from_trip(reason: parhde_util::TripReason, phase: &'static str) -> Self {
        match reason {
            parhde_util::TripReason::Deadline => Self::DeadlineExceeded { phase },
            parhde_util::TripReason::Cancelled => Self::Cancelled { phase },
            parhde_util::TripReason::Memory => {
                let needed = parhde_trace::current_rss_bytes().unwrap_or(0);
                let budget = parhde_util::supervisor::ambient_mem_budget().unwrap_or(0);
                Self::MemoryBudgetExceeded {
                    needed_bytes: needed,
                    budget_bytes: budget,
                }
            }
        }
    }

    /// Whether this error is a run-supervisor budget trip that the
    /// degraded-retry ladder may respond to with a cheaper configuration
    /// (cancellation is deliberately excluded: a cancelled run must stop,
    /// not retry).
    pub fn is_budget_trip(&self) -> bool {
        matches!(
            self,
            Self::DeadlineExceeded { .. } | Self::MemoryBudgetExceeded { .. }
        )
    }
}

impl From<LinalgError> for HdeError {
    fn from(e: LinalgError) -> Self {
        match e {
            LinalgError::NonFinite { phase, column, row } => {
                Self::NonFiniteValue { phase, column, row }
            }
            LinalgError::BackendUnavailable { requested, reason } => {
                Self::BackendUnavailable { requested, reason }
            }
            // Shape/symmetry violations inside the pipeline mean we built a
            // bad matrix ourselves — surface as a bug, not a user error.
            other => Self::Internal(other.to_string()),
        }
    }
}

impl From<GraphIoError> for HdeError {
    fn from(e: GraphIoError) -> Self {
        match e {
            GraphIoError::Parse { line, column, message } => {
                Self::Parse { line, column, message }
            }
            other => Self::Io(other.to_string()),
        }
    }
}

impl From<std::io::Error> for HdeError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

/// A degradation the fail-soft pipeline absorbed instead of erroring;
/// recorded in [`crate::HdeStats::warnings`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Warning {
    /// The input was disconnected; the layout was computed on the largest
    /// component (paper §4.1) and the remaining vertices were placed at the
    /// layout centroid.
    DisconnectedFallback {
        /// Number of connected components in the input.
        components: usize,
        /// Vertices in the component that was laid out.
        kept: usize,
        /// Total vertices in the input.
        n: usize,
    },
    /// `subspace` was at or above `n` and was clamped to `n − 1`.
    SubspaceClamped {
        /// The requested subspace dimension.
        requested: usize,
        /// The dimension actually used.
        clamped: usize,
    },
    /// A degenerate subspace triggered a re-pivot retry with a reseeded RNG.
    RepivotRetry {
        /// 1-indexed retry attempt.
        attempt: usize,
        /// Directions that survived the failed attempt.
        kept: usize,
        /// Directions required.
        needed: usize,
    },
    /// The graph was too small for a spectral layout; vertices were placed
    /// on a deterministic line instead.
    TrivialLayout {
        /// Number of vertices.
        n: usize,
    },
    /// A supervised rung failed on a budget trip and the run moved to the
    /// next (cheaper) rung of the degraded-retry ladder (DESIGN.md §11).
    LadderStep {
        /// The rung that failed (`"full"`, `"halved_pivots"`, …).
        rung: &'static str,
        /// Display text of the budget trip that ended the rung.
        cause: String,
    },
    /// The memory-admission estimator shrank the subspace dimension to fit
    /// the soft memory budget before the run started.
    AdmissionDownscaled {
        /// The subspace dimension the caller asked for.
        requested: usize,
        /// The dimension admitted under the budget.
        admitted: usize,
        /// Estimated bytes at the admitted dimension.
        estimated_bytes: u64,
        /// The soft memory budget in bytes.
        budget_bytes: u64,
    },
    /// NaN entries appeared in a pivot-selection distance array (poisoned
    /// weighted input); they were excluded from the farthest-vertex argmax
    /// under a documented total order instead of panicking.
    NanDistances {
        /// NaN entries observed.
        count: usize,
    },
}

impl std::fmt::Display for Warning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DisconnectedFallback { components, kept, n } => write!(
                f,
                "input has {components} components; laid out the largest \
                 ({kept} of {n} vertices), rest placed at the centroid"
            ),
            Self::SubspaceClamped { requested, clamped } => write!(
                f,
                "subspace dimension {requested} clamped to {clamped} (must be below n)"
            ),
            Self::RepivotRetry { attempt, kept, needed } => write!(
                f,
                "re-pivot retry {attempt}: only {kept} of {needed} needed \
                 directions survived; reseeding pivots"
            ),
            Self::TrivialLayout { n } => write!(
                f,
                "graph with {n} vertices is below the spectral minimum; \
                 produced a trivial line layout"
            ),
            Self::LadderStep { rung, cause } => write!(
                f,
                "supervisor ladder step: rung {rung} gave up ({cause}); \
                 retrying with a cheaper configuration"
            ),
            Self::AdmissionDownscaled {
                requested,
                admitted,
                estimated_bytes,
                budget_bytes,
            } => write!(
                f,
                "memory admission downscaled subspace {requested} -> {admitted} \
                 (~{estimated_bytes} bytes estimated, {budget_bytes} byte budget)"
            ),
            Self::NanDistances { count } => write!(
                f,
                "{count} NaN entries in pivot distances were excluded from \
                 farthest-vertex selection (poisoned weighted input?)"
            ),
        }
    }
}

/// Deterministic reseeding for re-pivot retries: SplitMix64-style mixing of
/// the base seed with the attempt number, so retry sequences are
/// reproducible run-to-run (fixed seed ⇒ identical layouts).
pub(crate) fn reseed(seed: u64, attempt: usize) -> u64 {
    let mut z = seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic placement used when a graph is too small for the
/// spectral pipeline: vertex `i` at `(i, 0, …)`.
pub(crate) fn trivial_coords(n: usize, p: usize) -> ColMajorMatrix {
    let mut m = ColMajorMatrix::zeros(n, p);
    if p > 0 {
        for (i, x) in m.col_mut(0).iter_mut().enumerate() {
            *x = i as f64;
        }
    }
    m
}

/// Scatters an `old_ids`-indexed sub-layout back over the full vertex set:
/// laid-out vertices keep their coordinates, everything else sits at the
/// sub-layout's centroid.
pub(crate) fn scatter_coords(
    n: usize,
    sub: &ColMajorMatrix,
    old_ids: &[u32],
) -> ColMajorMatrix {
    let p = sub.cols();
    let mut full = ColMajorMatrix::zeros(n, p);
    for c in 0..p {
        let col = sub.col(c);
        let centroid = if col.is_empty() {
            0.0
        } else {
            col.iter().sum::<f64>() / col.len() as f64
        };
        full.col_mut(c).fill(centroid);
        for (sub_row, &old) in old_ids.iter().enumerate() {
            full.set(old as usize, c, col[sub_row]);
        }
    }
    full
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct() {
        let errs = [
            HdeError::Io("x".into()),
            HdeError::Parse { line: 1, column: 1, message: "x".into() },
            HdeError::InvalidConfig("x".into()),
            HdeError::Disconnected { reached: 1, n: 2 },
            HdeError::DegenerateSubspace { kept: 1, needed: 2, subspace: 3, retries: 0 },
            HdeError::NonFiniteValue { phase: "spmm", column: 0, row: 0 },
            HdeError::DeadlineExceeded { phase: "bfs" },
            HdeError::MemoryBudgetExceeded { needed_bytes: 2, budget_bytes: 1 },
            HdeError::CheckpointMismatch("x".into()),
            HdeError::BackendUnavailable { requested: "simd", reason: "x".into() },
            HdeError::Cancelled { phase: "gemm" },
            HdeError::Internal("x".into()),
        ];
        let codes: std::collections::HashSet<i32> =
            errs.iter().map(|e| e.exit_code()).collect();
        assert_eq!(codes.len(), errs.len());
        assert!(!codes.contains(&0) && !codes.contains(&1) && !codes.contains(&2));
    }

    #[test]
    fn trips_convert_to_typed_errors() {
        use parhde_util::TripReason;
        let e = HdeError::from_trip(TripReason::Deadline, "bfs");
        assert_eq!(e, HdeError::DeadlineExceeded { phase: "bfs" });
        assert_eq!(e.exit_code(), 9);
        assert_eq!(e.phase(), Some("bfs"));
        assert!(e.is_budget_trip());
        let e = HdeError::from_trip(TripReason::Cancelled, "dortho");
        assert_eq!(e, HdeError::Cancelled { phase: "dortho" });
        assert_eq!(e.exit_code(), 130);
        assert!(!e.is_budget_trip(), "cancellation must not walk the ladder");
        let e = HdeError::from_trip(TripReason::Memory, "ls");
        assert!(e.is_budget_trip());
        assert_eq!(e.exit_code(), 10);
    }

    #[test]
    fn conversions_preserve_position() {
        let e: HdeError = LinalgError::NonFinite { phase: "spmm", column: 3, row: 9 }.into();
        assert_eq!(e, HdeError::NonFiniteValue { phase: "spmm", column: 3, row: 9 });
        assert_eq!(e.phase(), Some("spmm"));
        let e: HdeError = GraphIoError::Parse {
            line: 12,
            column: 4,
            message: "bad weight".into(),
        }
        .into();
        assert_eq!(
            e,
            HdeError::Parse { line: 12, column: 4, message: "bad weight".into() }
        );
        assert_eq!(e.exit_code(), 4);
    }

    #[test]
    fn reseed_is_deterministic_and_spreads() {
        assert_eq!(reseed(7, 1), reseed(7, 1));
        assert_ne!(reseed(7, 1), reseed(7, 2));
        assert_ne!(reseed(7, 1), reseed(8, 1));
    }

    #[test]
    fn scatter_places_missing_vertices_at_centroid() {
        let mut sub = ColMajorMatrix::zeros(2, 2);
        sub.set(0, 0, 0.0);
        sub.set(1, 0, 4.0);
        sub.set(0, 1, 2.0);
        sub.set(1, 1, 6.0);
        let full = scatter_coords(4, &sub, &[0, 3]);
        assert_eq!(full.get(0, 0), 0.0);
        assert_eq!(full.get(3, 0), 4.0);
        assert_eq!(full.get(1, 0), 2.0); // centroid of column 0
        assert_eq!(full.get(2, 1), 4.0); // centroid of column 1
    }

    #[test]
    fn legacy_message_substrings_preserved() {
        // Seed tests assert on these substrings via the panicking wrappers.
        let d = HdeError::Disconnected { reached: 3, n: 9 }.to_string();
        assert!(d.contains("connected graph"));
        let c = HdeError::InvalidConfig("subspace dimension 9 must be below n = 9".into())
            .to_string();
        assert!(c.contains("must be below"));
        let g = HdeError::DegenerateSubspace { kept: 1, needed: 2, subspace: 4, retries: 2 }
            .to_string();
        assert!(g.contains("subspace directions survived"));
    }
}
