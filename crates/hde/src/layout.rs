//! 2-D layouts: the algorithm's output type.

/// A 2-dimensional graph layout: coordinates per vertex.
#[derive(Clone, Debug, PartialEq)]
pub struct Layout {
    /// X coordinates, one per vertex.
    pub x: Vec<f64>,
    /// Y coordinates, one per vertex.
    pub y: Vec<f64>,
}

impl Layout {
    /// Creates a layout from coordinate vectors.
    ///
    /// # Panics
    /// Panics if lengths differ or any coordinate is non-finite.
    pub fn new(x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "coordinate vectors must match");
        assert!(
            x.iter().chain(&y).all(|v| v.is_finite()),
            "layout coordinates must be finite"
        );
        Self { x, y }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True if the layout has no vertices.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Position of vertex `v`.
    pub fn position(&self, v: u32) -> (f64, f64) {
        (self.x[v as usize], self.y[v as usize])
    }

    /// Axis-aligned bounding box `(min_x, min_y, max_x, max_y)`.
    ///
    /// # Panics
    /// Panics if the layout is empty.
    pub fn bounding_box(&self) -> (f64, f64, f64, f64) {
        assert!(!self.is_empty(), "bounding box of empty layout");
        let min_x = self.x.iter().copied().fold(f64::INFINITY, f64::min);
        let max_x = self.x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min_y = self.y.iter().copied().fold(f64::INFINITY, f64::min);
        let max_y = self.y.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (min_x, min_y, max_x, max_y)
    }

    /// Euclidean distance between two vertices in the layout.
    pub fn distance(&self, u: u32, v: u32) -> f64 {
        let (ux, uy) = self.position(u);
        let (vx, vy) = self.position(v);
        ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt()
    }

    /// Rescales coordinates in place to fit `[0, w] × [0, h]`, preserving
    /// aspect ratio; degenerate axes map to the center. Used by the PNG
    /// renderer.
    pub fn fit_to(&mut self, w: f64, h: f64) {
        if self.is_empty() {
            return;
        }
        let (min_x, min_y, max_x, max_y) = self.bounding_box();
        let span_x = max_x - min_x;
        let span_y = max_y - min_y;
        let span = span_x.max(span_y);
        if span <= 0.0 {
            for v in self.x.iter_mut() {
                *v = w / 2.0;
            }
            for v in self.y.iter_mut() {
                *v = h / 2.0;
            }
            return;
        }
        let scale = w.min(h) / span;
        // Center the used extent inside the target rectangle.
        let off_x = (w - span_x * scale) / 2.0;
        let off_y = (h - span_y * scale) / 2.0;
        for v in self.x.iter_mut() {
            *v = (*v - min_x) * scale + off_x;
        }
        for v in self.y.iter_mut() {
            *v = (*v - min_y) * scale + off_y;
        }
    }

    /// Per-axis standard deviation — a scalar collapse detector (a healthy
    /// layout spreads vertices along both axes).
    pub fn axis_stddev(&self) -> (f64, f64) {
        let n = self.len().max(1) as f64;
        let mx = self.x.iter().sum::<f64>() / n;
        let my = self.y.iter().sum::<f64>() / n;
        let sx = (self.x.iter().map(|v| (v - mx).powi(2)).sum::<f64>() / n).sqrt();
        let sy = (self.y.iter().map(|v| (v - my).powi(2)).sum::<f64>() / n).sqrt();
        (sx, sy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let l = Layout::new(vec![0.0, 1.0], vec![2.0, 3.0]);
        assert_eq!(l.len(), 2);
        assert_eq!(l.position(1), (1.0, 3.0));
        assert!((l.distance(0, 1) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn bounding_box() {
        let l = Layout::new(vec![-1.0, 5.0, 2.0], vec![0.0, -3.0, 4.0]);
        assert_eq!(l.bounding_box(), (-1.0, -3.0, 5.0, 4.0));
    }

    #[test]
    fn fit_scales_into_target() {
        let mut l = Layout::new(vec![0.0, 10.0], vec![0.0, 5.0]);
        l.fit_to(100.0, 100.0);
        let (min_x, min_y, max_x, max_y) = l.bounding_box();
        assert!(min_x >= -1e-9 && min_y >= -1e-9);
        assert!(max_x <= 100.0 + 1e-9 && max_y <= 100.0 + 1e-9);
        // Aspect preserved: x-span (10) twice the y-span (5).
        assert!(((max_x - min_x) - 2.0 * (max_y - min_y)).abs() < 1e-9);
    }

    #[test]
    fn fit_degenerate_centers() {
        let mut l = Layout::new(vec![3.0, 3.0], vec![3.0, 3.0]);
        l.fit_to(80.0, 60.0);
        assert_eq!(l.position(0), (40.0, 30.0));
    }

    #[test]
    fn stddev_detects_collapse() {
        let flat = Layout::new(vec![1.0, 1.0, 1.0], vec![0.0, 1.0, 2.0]);
        let (sx, sy) = flat.axis_stddev();
        assert_eq!(sx, 0.0);
        assert!(sy > 0.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn rejects_nan() {
        Layout::new(vec![f64::NAN], vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn rejects_mismatch() {
        Layout::new(vec![0.0], vec![0.0, 1.0]);
    }
}
