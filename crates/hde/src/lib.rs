//! **ParHDE** — shared-memory parallel High-Dimensional Embedding graph
//! layout, a from-scratch Rust reproduction of Mishra, Kirmani & Madduri,
//! *Fast Spectral Graph Layout on Multicore Platforms*, ICPP 2020.
//!
//! # The algorithm
//!
//! HDE (Koren) computes a 2-D graph layout by eigen-projection *in a
//! subspace*: instead of solving the full `n×n` spectral problem, it spans a
//! small subspace with `s` graph-distance vectors (BFS from pivot vertices),
//! D-orthogonalizes them, and solves the spectral layout problem restricted
//! to that subspace — an `s×s` eigenproblem. ParHDE parallelizes the three
//! compute-intensive phases:
//!
//! 1. **BFS phase** — `s` traversals with the direction-optimizing parallel
//!    BFS, each writing a column of `B ∈ R^{n×s}`; pivots are chosen by the
//!    farthest-first k-centers heuristic (or uniformly at random);
//! 2. **DOrtho phase** — Gram-Schmidt D-orthogonalization of the columns
//!    (Modified by default, Classical as the faster BLAS-2 option),
//!    dropping degenerate vectors;
//! 3. **TripleProd phase** — `P = L·S` as an implicit-Laplacian SpMM
//!    followed by the small dense product `Z = Sᵀ·P`.
//!
//! A negligible `s×s` eigensolve and the projection `[x, y]` finish the
//! layout.
//!
//! # Asymptotics (paper Table 1)
//!
//! | Phase | Work | Depth |
//! |---|---|---|
//! | ParallelBFS | `s(d_max·n + γm)` | `s·max(d_max, log n)` |
//! | BFS: other | `sn` | `s·log n` |
//! | DOrtho | `s²n` | `s²·log n` |
//! | TripleProd: LS | `s(m+n)` | `log n` |
//! | TripleProd: matmul | `s²n` | `log n` |
//!
//! The empirical `ops-count` mode of the benchmark harness validates the
//! `s` / `s²` scaling split (Table 1 / Figure 5).
//!
//! # Variants provided
//!
//! * [`parhde::par_hde`] — the main algorithm (Algorithm 3);
//! * [`phde::phde`] — the older PCA-based HDE (Algorithm 2);
//! * [`pivot_mds::pivot_mds`] — PivotMDS (double-centered distances);
//! * plain orthogonalization instead of D-orthogonalization via
//!   [`config::ParHdeConfig::d_orthogonalize`] (§4.5.1 eigen-projection);
//! * weighted graphs via Δ-stepping SSSP ([`weighted`], §3.3);
//! * [`prior`] — the prior-work baseline of Table 3 (sequential BFS +
//!   explicitly materialized Laplacian);
//! * [`zoom`] — k-hop neighborhood re-layout (§4.5.2);
//! * [`refine`] — weighted-centroid refinement and eigensolver
//!   preconditioning (§4.5.3);
//! * [`coupled`] — the coupled BFS + D-orthogonalization schedule (§4.4);
//! * [`partition`] — geometric partitioning from layout coordinates
//!   (§4.5.4);
//! * [`stress`] — sparse stress majorization seeded by ParHDE (§4.5.4);
//! * [`multilevel`] — multilevel ParHDE (§5 future work).
//!
//! # Fail-soft entry points
//!
//! Every pipeline has a `try_*` twin ([`try_par_hde`], [`try_phde`],
//! [`try_pivot_mds`], [`try_par_hde_weighted`]) that never panics on
//! untrusted input: defects come back as typed [`HdeError`]s, and
//! recoverable ones (disconnected input, oversized subspace, tiny graphs,
//! degenerate subspaces) degrade gracefully with a [`Warning`] recorded in
//! [`HdeStats::warnings`]. See DESIGN.md's "Error handling & degradation
//! contract" for the full policy.
//!
//! # Supervised runs
//!
//! [`try_par_hde_nd_supervised`] runs the pipeline under a
//! [`parhde_util::RunBudget`] — a wall-clock deadline, a soft memory
//! budget with pre-run admission, and cooperative cancellation — and
//! degrades through a retry ladder (fewer pivots → batched BFS → PHDE →
//! trivial layout) instead of failing when a budget trips.
//! [`try_par_hde_nd_checkpointed`] / [`try_par_hde_resume`] persist the
//! post-BFS state so an interrupted run restarts bit-identically without
//! repeating the dominant BFS phase. See DESIGN.md §11 ("Supervision
//! contract").
//!
//! # Example
//!
//! ```
//! use parhde::{par_hde, config::ParHdeConfig};
//! use parhde_graph::gen::grid2d;
//!
//! let graph = grid2d(20, 20);
//! let (layout, stats) = par_hde(&graph, &ParHdeConfig::default());
//! assert_eq!(layout.len(), 400);
//! assert_eq!(stats.sources.len(), 10);          // s = 10 BFS pivots
//! // Edges land much closer together than random vertex pairs:
//! let q = parhde::quality::layout_quality(&graph, &layout, 200, 7);
//! assert!(q.contraction() < 0.5);
//! ```

#![warn(missing_docs)]

pub mod bfs_phase;
pub mod checkpoint;
pub mod config;
pub mod coupled;
pub mod error;
pub mod layout;
pub mod multilevel;
pub mod parhde;
pub mod partition;
pub mod phde;
pub mod pivot_mds;
pub mod pivots;
pub mod prior;
pub mod quality;
pub mod refine;
pub mod stats;
pub mod stress;
pub mod supervise;
pub mod weighted;
pub mod zoom;

pub use bfs_phase::{plan_bfs_phase, BfsPlan, PlannedBfsMode};
pub use checkpoint::{Checkpoint, CheckpointSpec};
pub use config::{BfsMode, OrthoMethod, ParHdeConfig, PivotStrategy};
pub use error::{HdeError, Warning};
pub use layout::Layout;
pub use parhde::{
    par_hde, par_hde_nd, try_par_hde, try_par_hde_nd,
    try_par_hde_nd_checkpointed, try_par_hde_resume,
};
pub use phde::{phde, try_phde, PhdeConfig};
pub use pivot_mds::{pivot_mds, try_pivot_mds};
pub use stats::HdeStats;
pub use supervise::{
    try_par_hde_nd_supervised, Supervised, SuperviseOptions,
};
pub use weighted::{
    par_hde_weighted, par_hde_weighted_with, try_par_hde_weighted,
    try_par_hde_weighted_with, WeightSemantics,
};
