//! Multilevel ParHDE — the paper's stated future-work direction.
//!
//! "In future work, we will adapt ParHDE to be compatible with the
//! multilevel approach" (§5); the prior work [27, 33] already ran HDE
//! inside a multilevel pipeline. The classic scheme, implemented here:
//!
//! 1. **Coarsen** with matching contraction until the graph is small
//!    ([`parhde_graph::coarsen`]);
//! 2. **Layout** the coarsest graph with plain ParHDE;
//! 3. **Prolong + refine**: broadcast coarse positions to fine vertices and
//!    run a few weighted-centroid sweeps ([`crate::refine`]) per level to
//!    recover local detail.
//!
//! The payoff is robustness on graphs where a small BFS subspace misses
//! structure, and an overall near-linear cost profile.

use crate::config::ParHdeConfig;
use crate::layout::Layout;
use crate::parhde::par_hde;
use crate::refine::refined_axes;
use crate::stats::HdeStats;
use parhde_graph::coarsen::build_hierarchy;
use parhde_graph::CsrGraph;
use parhde_util::Xoshiro256StarStar;

/// Options for the multilevel driver.
#[derive(Clone, Debug)]
pub struct MultilevelConfig {
    /// Base ParHDE configuration (used at the coarsest level; its seed
    /// also drives coarsening and jitter).
    pub base: ParHdeConfig,
    /// Stop coarsening at or below this many vertices.
    pub coarsest_size: usize,
    /// Maximum number of coarsening levels.
    pub max_levels: usize,
    /// Centroid-refinement sweeps applied after each prolongation.
    pub refine_sweeps: usize,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        Self {
            base: ParHdeConfig::default(),
            coarsest_size: 256,
            max_levels: 24,
            refine_sweeps: 8,
        }
    }
}

/// Statistics from a multilevel run.
#[derive(Clone, Debug)]
pub struct MultilevelStats {
    /// Vertex counts per level, finest first.
    pub level_sizes: Vec<usize>,
    /// The coarsest-level ParHDE statistics.
    pub coarsest: HdeStats,
}

/// Runs multilevel ParHDE on a connected graph.
///
/// # Panics
/// Panics if the graph is disconnected or too small for the coarsest-level
/// ParHDE (fewer than 8 vertices).
pub fn multilevel_hde(g: &CsrGraph, cfg: &MultilevelConfig) -> (Layout, MultilevelStats) {
    let n = g.num_vertices();
    assert!(n >= 8, "multilevel layout needs at least 8 vertices");
    let hierarchy = build_hierarchy(g, cfg.coarsest_size, cfg.max_levels, cfg.base.seed);
    let level_sizes: Vec<usize> = hierarchy.graphs.iter().map(|g| g.num_vertices()).collect();

    // Coarsest layout with plain ParHDE (clamp s to the coarse size).
    let coarsest = hierarchy.coarsest();
    let mut base = cfg.base.clone();
    base.subspace = base.subspace.min(coarsest.num_vertices() / 2).max(2);
    let (mut layout, coarsest_stats) = par_hde(coarsest, &base);

    // Walk back up: prolong, jitter (matched pairs start coincident —
    // a deterministic nudge lets refinement separate them), refine.
    let mut rng = Xoshiro256StarStar::seed_from_u64(cfg.base.seed ^ 0x3117);
    for level in (0..hierarchy.maps.len()).rev() {
        // One cooperative check per prolongation level (strict pipeline:
        // a budget trip panics like any other defect here).
        crate::supervise::budget_check_strict(crate::stats::phase::INIT);
        let x = hierarchy.prolong(level, &layout.x);
        let y = hierarchy.prolong(level, &layout.y);
        let (sx, sy) = Layout::new(x.clone(), y.clone()).axis_stddev();
        let eps = 1e-3 * (sx + sy).max(f64::MIN_POSITIVE);
        let jittered = Layout::new(
            x.into_iter().map(|v| v + eps * (rng.next_f64() - 0.5)).collect(),
            y.into_iter().map(|v| v + eps * (rng.next_f64() - 0.5)).collect(),
        );
        layout = refined_axes(&hierarchy.graphs[level], &jittered, cfg.refine_sweeps);
    }

    (
        layout,
        MultilevelStats { level_sizes, coarsest: coarsest_stats },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::{energy_objective, layout_quality};
    use parhde_graph::gen::{barth5_like, grid2d};

    #[test]
    fn multilevel_produces_quality_layout_on_grid() {
        let g = grid2d(50, 50);
        let (layout, stats) = multilevel_hde(&g, &MultilevelConfig::default());
        assert_eq!(layout.len(), 2500);
        assert!(stats.level_sizes.len() >= 2, "should actually coarsen");
        assert_eq!(stats.level_sizes[0], 2500);
        assert!(*stats.level_sizes.last().unwrap() <= 256);
        let q = layout_quality(&g, &layout, 400, 1);
        assert!(
            q.contraction() < 0.3,
            "multilevel layout weak: contraction {:.3}",
            q.contraction()
        );
    }

    #[test]
    fn multilevel_energy_is_competitive_with_direct() {
        let g = barth5_like();
        let (direct, _) = par_hde(&g, &ParHdeConfig::default());
        let (ml, _) = multilevel_hde(&g, &MultilevelConfig::default());
        let ed = energy_objective(&g, &direct);
        let em = energy_objective(&g, &ml);
        assert!(
            em < ed * 5.0,
            "multilevel energy {em:.6} far above direct {ed:.6}"
        );
    }

    #[test]
    fn multilevel_on_small_graph_degenerates_to_direct() {
        let g = grid2d(6, 6); // 36 < coarsest_size
        let (layout, stats) = multilevel_hde(&g, &MultilevelConfig::default());
        assert_eq!(stats.level_sizes, vec![36]);
        assert_eq!(layout.len(), 36);
    }

    #[test]
    fn multilevel_is_deterministic() {
        let g = grid2d(30, 30);
        let cfg = MultilevelConfig::default();
        let (a, _) = multilevel_hde(&g, &cfg);
        let (b, _) = multilevel_hde(&g, &cfg);
        assert_eq!(a, b);
    }
}
