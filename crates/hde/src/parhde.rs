//! The ParHDE pipeline (Algorithm 3), in strict and fail-soft flavors.
//!
//! [`par_hde`]/[`par_hde_nd`] are the historical strict entry points: any
//! defect panics with the same messages the seed releases used. The
//! [`try_par_hde`]/[`try_par_hde_nd`] entry points never panic: defects come
//! back as typed [`HdeError`]s, and recoverable ones degrade gracefully —
//! disconnected inputs fall back to the largest component (paper §4.1),
//! oversized subspaces are clamped, degenerate subspaces re-pivot with a
//! reseeded RNG — with every degradation recorded as a
//! [`Warning`](crate::Warning) in the returned stats.

use crate::bfs_phase::run_bfs_phase;
use crate::checkpoint::{self, Checkpoint, CheckpointSpec};
use crate::config::{LinalgMode, OrthoMethod, ParHdeConfig};
use crate::error::{reseed, scatter_coords, trivial_coords, HdeError, Warning};
use crate::layout::Layout;
use crate::stats::{phase, trace_warning, HdeStats, PhaseSpan};
use crate::supervise::budget_check;
use parhde_graph::prep;
use parhde_graph::store::GraphStore;
use parhde_linalg::blas1::{dot, dot_weighted};
use parhde_linalg::dense::ColMajorMatrix;
use parhde_linalg::eig::jacobi::try_symmetric_eigen;
use parhde_linalg::error::check_matrix_finite;
use parhde_linalg::gemm::{a_small, at_b};
use parhde_linalg::ortho::{try_bcgs2, try_cgs, try_mgs};
use parhde_util::Xoshiro256StarStar;

/// How the pipeline responds to defective input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// No degradation: the first defect is returned as an error (and the
    /// legacy wrappers turn it into a panic). Matches seed behavior.
    Strict,
    /// Degrade where a documented fallback exists; error otherwise.
    FailSoft,
}

/// Re-pivot attempts made in fail-soft mode when fewer than `p` subspace
/// directions survive D-orthogonalization.
const MAX_REPIVOT_RETRIES: usize = 3;

/// Runs ParHDE on a connected unweighted graph, producing a 2-D layout and
/// per-phase statistics.
///
/// # Panics
/// Panics if the configuration is invalid for the graph, if the graph is
/// not connected (run [`parhde_graph::prep::largest_component`] first —
/// the paper's §4.1 preprocessing), or if fewer than two independent
/// subspace directions survive orthogonalization. Use [`try_par_hde`] for
/// a non-panicking, gracefully degrading variant.
pub fn par_hde<G: GraphStore>(g: &G, cfg: &ParHdeConfig) -> (Layout, HdeStats) {
    let (coords, stats) = par_hde_nd(g, cfg, 2);
    (
        Layout::new(coords.col(0).to_vec(), coords.col(1).to_vec()),
        stats,
    )
}

/// ParHDE generalized to a `p`-dimensional embedding (§2.1: "in practice,
/// `p` is chosen to be 2 or 3 for screen layouts"). Returns the `n×p`
/// coordinate matrix (column `k` is the `k`-th axis, ordered by ascending
/// generalized eigenvalue) and the phase statistics.
///
/// # Panics
/// As [`par_hde`]; additionally requires `1 ≤ p` and at least `p`
/// surviving subspace directions.
pub fn par_hde_nd<G: GraphStore>(
    g: &G,
    cfg: &ParHdeConfig,
    p: usize,
) -> (ColMajorMatrix, HdeStats) {
    assert!(p >= 1, "embedding dimension must be at least 1");
    match run_nd(g, cfg, p, Mode::Strict, None) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fail-soft ParHDE: like [`par_hde`] but never panics on untrusted input.
///
/// Recoverable defects degrade with a recorded [`Warning`](crate::Warning)
/// instead of failing: disconnected graphs are laid out on their largest
/// component (remaining vertices at the centroid), `subspace ≥ n` is
/// clamped to `n − 1`, graphs too small for a spectral layout get a
/// deterministic line layout, and degenerate subspaces are retried with
/// reseeded pivots before giving up.
///
/// # Errors
/// [`HdeError::InvalidConfig`] for unusable parameters,
/// [`HdeError::DegenerateSubspace`] when re-pivot retries are exhausted,
/// and [`HdeError::NonFiniteValue`] if a numeric phase produces NaN/∞.
pub fn try_par_hde<G: GraphStore>(
    g: &G,
    cfg: &ParHdeConfig,
) -> Result<(Layout, HdeStats), HdeError> {
    let (coords, stats) = try_par_hde_nd(g, cfg, 2)?;
    Ok((
        Layout::new(coords.col(0).to_vec(), coords.col(1).to_vec()),
        stats,
    ))
}

/// Fail-soft [`par_hde_nd`]: `p`-dimensional embedding with graceful
/// degradation; see [`try_par_hde`] for the degradation contract.
///
/// # Errors
/// As [`try_par_hde`].
pub fn try_par_hde_nd<G: GraphStore>(
    g: &G,
    cfg: &ParHdeConfig,
    p: usize,
) -> Result<(ColMajorMatrix, HdeStats), HdeError> {
    run_nd(g, cfg, p, Mode::FailSoft, None)
}

/// [`try_par_hde_nd`] that additionally writes a post-BFS checkpoint of
/// every pipeline attempt into `spec`'s directory (atomically — a killed
/// run never leaves a torn checkpoint under the canonical name). Resume
/// with [`try_par_hde_resume`] to reproduce the uninterrupted result
/// bit-identically without re-running the BFS phase.
///
/// # Errors
/// As [`try_par_hde_nd`], plus [`HdeError::Io`] if the checkpoint cannot
/// be written.
pub fn try_par_hde_nd_checkpointed<G: GraphStore>(
    g: &G,
    cfg: &ParHdeConfig,
    p: usize,
    spec: &CheckpointSpec,
) -> Result<(ColMajorMatrix, HdeStats), HdeError> {
    run_nd(g, cfg, p, Mode::FailSoft, Some(spec))
}

/// Crate-internal fail-soft entry used by the supervised ladder
/// ([`crate::supervise`]): identical to [`try_par_hde_nd_checkpointed`]
/// with an optional checkpoint.
pub(crate) fn run_failsoft_nd<G: GraphStore>(
    g: &G,
    cfg: &ParHdeConfig,
    p: usize,
    ckpt: Option<&CheckpointSpec>,
) -> Result<(ColMajorMatrix, HdeStats), HdeError> {
    run_nd(g, cfg, p, Mode::FailSoft, ckpt)
}

/// Resumes a run from a post-BFS [`Checkpoint`]: replays the deterministic
/// downstream phases (DOrtho → TripleProd → eigensolve → projection) on
/// the stored distance matrix, reproducing the layout the uninterrupted
/// run would have produced **bit-identically**.
///
/// `g`, `cfg` and `p` must match the original invocation; the checkpoint's
/// graph digest and configuration fingerprint are verified after the same
/// fail-soft preprocessing (subspace clamping, largest-component
/// extraction) the original run applied, so passing the original
/// disconnected input resumes correctly.
///
/// # Errors
/// [`HdeError::CheckpointMismatch`] if the checkpoint does not belong to
/// this (graph, configuration, dimension) triple; otherwise as
/// [`try_par_hde_nd`], except that a degenerate subspace is not retried —
/// re-pivoting would need a fresh BFS phase, which is exactly what a
/// resume avoids.
pub fn try_par_hde_resume<G: GraphStore>(
    g: &G,
    cfg: &ParHdeConfig,
    p: usize,
    ckpt: &Checkpoint,
) -> Result<(ColMajorMatrix, HdeStats), HdeError> {
    let _root = parhde_trace::span!("parhde");
    let n = g.num_vertices();
    if p < 1 {
        return Err(HdeError::InvalidConfig(
            "embedding dimension must be at least 1".into(),
        ));
    }
    let mut cfg = cfg.clone();
    let s_requested = cfg.subspace;
    let mut warnings = Vec::new();
    // Mirror run_nd's fail-soft preamble so the resumed pipeline sees the
    // same clamped configuration and extracted component as the original.
    if n <= p {
        let mut stats = HdeStats { s_requested, ..HdeStats::default() };
        stats.warn(Warning::TrivialLayout { n });
        return Ok((trivial_coords(n, p), stats));
    }
    let feasible = cfg.subspace.clamp(p, n - 1);
    if feasible != cfg.subspace {
        warnings.push(trace_warning(Warning::SubspaceClamped {
            requested: cfg.subspace,
            clamped: feasible,
        }));
        cfg.subspace = feasible;
    }
    // The largest-component fallback needs plain CSR (component extraction
    // relabels vertices and rebuilds adjacency); on a compressed store a
    // disconnected graph surfaces as the checkpoint's digest mismatch or
    // the pipeline's Disconnected error instead of silently degrading.
    if let Some(csr) = g.as_csr() {
        if !prep::is_connected(csr) {
            let components = prep::connected_components(csr).count();
            let ext = prep::largest_component(csr);
            let kept = ext.graph.num_vertices();
            let fallback =
                trace_warning(Warning::DisconnectedFallback { components, kept, n });
            let (sub_coords, mut stats) =
                try_par_hde_resume(&ext.graph, &cfg, p, ckpt)?;
            let coords = scatter_coords(n, &sub_coords, &ext.old_ids);
            stats.warnings.splice(
                0..0,
                warnings.into_iter().chain(std::iter::once(fallback)),
            );
            return Ok((coords, stats));
        }
    }
    cfg.validate(n)?;
    ckpt.validate_for(g, &cfg, p)?;
    let backend_executed = crate::config::install_backend(cfg.backend)?;
    parhde_trace::counter!("supervisor.checkpoint.resume", 1);
    let mut stats = HdeStats {
        s_requested,
        sources: ckpt.sources.clone(),
        bfs_mode: Some("resumed"),
        backend: Some(cfg.backend.label()),
        backend_executed: Some(backend_executed),
        ..HdeStats::default()
    };
    let coords = pipeline_from_b(g, &cfg, p, &ckpt.b, &mut stats)?;
    stats.warnings = warnings;
    Ok((coords, stats))
}

/// Shared driver: handles degradation (fail-soft) and the retry loop, then
/// delegates each attempt to [`pipeline_once`].
fn run_nd<G: GraphStore>(
    g: &G,
    cfg: &ParHdeConfig,
    p: usize,
    mode: Mode,
    ckpt: Option<&CheckpointSpec>,
) -> Result<(ColMajorMatrix, HdeStats), HdeError> {
    let _root = parhde_trace::span!("parhde");
    let n = g.num_vertices();
    if p < 1 {
        return Err(HdeError::InvalidConfig(
            "embedding dimension must be at least 1".into(),
        ));
    }
    let mut cfg = cfg.clone();
    let s_requested = cfg.subspace;
    let mut warnings = Vec::new();

    if mode == Mode::FailSoft {
        // A spectral layout needs s ≥ p surviving directions and s ≤ n − 1,
        // i.e. n ≥ p + 1. Anything smaller gets the trivial line layout.
        if n <= p {
            let mut stats = HdeStats { s_requested, ..HdeStats::default() };
            stats.warn(Warning::TrivialLayout { n });
            return Ok((trivial_coords(n, p), stats));
        }
        // Clamp the subspace dimension into the feasible range [p, n − 1].
        let feasible = cfg.subspace.clamp(p, n - 1);
        if feasible != cfg.subspace {
            warnings.push(trace_warning(Warning::SubspaceClamped {
                requested: cfg.subspace,
                clamped: feasible,
            }));
            cfg.subspace = feasible;
        }
        // Disconnected input: lay out the largest component (paper §4.1)
        // and park the remaining vertices at the layout centroid. Only
        // available on plain CSR — component extraction relabels vertices
        // and rebuilds adjacency, which a compressed (possibly mmap-backed)
        // store cannot do without materializing itself; there, a
        // disconnected graph surfaces as the BFS phase's typed
        // `Disconnected` error. Writers are expected to pack the largest
        // component (parhde-pack does this by default).
        if let Some(csr) = g.as_csr() {
            if !prep::is_connected(csr) {
                let components = prep::connected_components(csr).count();
                let ext = prep::largest_component(csr);
                let kept = ext.graph.num_vertices();
                let fallback = trace_warning(Warning::DisconnectedFallback {
                    components,
                    kept,
                    n,
                });
                let (sub_coords, mut stats) = run_nd(&ext.graph, &cfg, p, mode, ckpt)?;
                let coords = scatter_coords(n, &sub_coords, &ext.old_ids);
                stats.warnings.splice(
                    0..0,
                    warnings.into_iter().chain(std::iter::once(fallback)),
                );
                return Ok((coords, stats));
            }
        }
    }
    cfg.validate(n)?;
    let backend_executed = crate::config::install_backend(cfg.backend)?;

    let max_attempts = match mode {
        Mode::Strict => 1,
        Mode::FailSoft => 1 + MAX_REPIVOT_RETRIES,
    };
    for attempt in 0..max_attempts {
        let seed = if attempt == 0 { cfg.seed } else { reseed(cfg.seed, attempt) };
        let mut stats = HdeStats {
            s_requested,
            backend: Some(cfg.backend.label()),
            backend_executed: Some(backend_executed),
            ..HdeStats::default()
        };
        match pipeline_once(g, &cfg, p, seed, ckpt, &mut stats) {
            Ok(coords) => {
                stats.warnings = warnings;
                return Ok((coords, stats));
            }
            Err(HdeError::DegenerateSubspace { kept, needed, subspace, .. }) => {
                if attempt + 1 < max_attempts {
                    warnings.push(trace_warning(Warning::RepivotRetry {
                        attempt: attempt + 1,
                        kept,
                        needed,
                    }));
                } else {
                    return Err(HdeError::DegenerateSubspace {
                        kept,
                        needed,
                        subspace,
                        retries: attempt,
                    });
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(HdeError::Internal("re-pivot retry loop fell through".into()))
}

/// One attempt at the full Algorithm 3 pipeline. All defects surface as
/// typed errors; degradation policy lives in [`run_nd`].
fn pipeline_once<G: GraphStore>(
    g: &G,
    cfg: &ParHdeConfig,
    p: usize,
    seed: u64,
    ckpt: Option<&CheckpointSpec>,
    stats: &mut HdeStats,
) -> Result<ColMajorMatrix, HdeError> {
    let s = cfg.subspace;

    // ---- Init -----------------------------------------------------------
    budget_check(phase::INIT)?;
    let ph = PhaseSpan::begin(phase::INIT);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    ph.end(&mut stats.phases);

    // ---- BFS phase ------------------------------------------------------
    let b = run_bfs_phase(g, s, cfg.pivots, cfg.bfs_mode, &mut rng, true, stats)?;

    // ---- Checkpoint (post-BFS: everything after is deterministic in B) --
    if let Some(spec) = ckpt {
        let ph = PhaseSpan::begin(phase::CHECKPOINT);
        checkpoint::write_post_bfs(spec, g, cfg, p, seed, &stats.sources, &b)?;
        ph.end(&mut stats.phases);
    }

    pipeline_from_b(g, cfg, p, &b, stats)
}

/// The deterministic post-BFS tail of the pipeline: DOrtho → TripleProd →
/// eigensolve → projection, given the distance matrix `B`. Shared between
/// a live run ([`pipeline_once`]) and checkpoint resumption
/// ([`try_par_hde_resume`]) — both paths execute the same floating-point
/// operations in the same order, which is what makes resume bit-identical.
fn pipeline_from_b<G: GraphStore>(
    g: &G,
    cfg: &ParHdeConfig,
    p: usize,
    b: &ColMajorMatrix,
    stats: &mut HdeStats,
) -> Result<ColMajorMatrix, HdeError> {
    let n = g.num_vertices();
    let s = cfg.subspace;

    // ---- Assemble S = [1/√n | B] ----------------------------------------
    let ph = PhaseSpan::begin(phase::INIT);
    let mut smat = ColMajorMatrix::zeros(n, s + 1);
    let inv_sqrt_n = 1.0 / (n as f64).sqrt();
    smat.col_mut(0).fill(inv_sqrt_n);
    for i in 0..s {
        smat.col_mut(i + 1).copy_from_slice(b.col(i));
    }
    let degrees = g.degree_vector();
    ph.end(&mut stats.phases);

    // ---- DOrtho phase ---------------------------------------------------
    let ph = PhaseSpan::begin(phase::DORTHO);
    let weights = cfg.d_orthogonalize.then_some(degrees.as_slice());
    let outcome = match cfg.ortho {
        OrthoMethod::Mgs => try_mgs(&mut smat, weights, cfg.drop_tolerance, "dortho")?,
        OrthoMethod::Cgs => try_cgs(&mut smat, weights, cfg.drop_tolerance, "dortho")?,
        OrthoMethod::Bcgs2 => try_bcgs2(&mut smat, weights, cfg.drop_tolerance, "dortho")?,
    };
    // Drop the 0th (degenerate constant) column — Algorithm 3 line 16. It
    // always survives orthogonalization (it is processed first and has unit
    // norm), landing at physical index 0 of the compacted matrix.
    debug_assert_eq!(outcome.kept.first(), Some(&0));
    let survivors: Vec<usize> = (1..smat.cols()).collect();
    smat.retain_columns(&survivors);
    stats.dropped_columns = outcome.dropped.len();
    stats.s_kept = smat.cols();
    ph.end(&mut stats.phases);
    // Budget check BEFORE the degenerate-subspace check: a tripped ortho
    // kernel abandons its remaining columns, and the trip must win over the
    // spurious degeneracy that abandonment creates.
    budget_check(phase::DORTHO)?;
    if smat.cols() < p {
        return Err(HdeError::DegenerateSubspace {
            kept: smat.cols(),
            needed: p,
            subspace: s,
            retries: 0,
        });
    }

    // ---- TripleProd phase -------------------------------------------------
    // Fused and staged produce bit-identical Z (the fused kernel replays
    // the staged operation order); only schedule and memory traffic differ.
    stats.linalg_mode = Some(cfg.linalg_mode.label());
    let z = match cfg.linalg_mode {
        LinalgMode::Fused => {
            let ph = PhaseSpan::begin(phase::FUSED);
            let z = parhde_linalg::fused::try_triple_product(g, &degrees, &smat)?;
            // Budget check before use: a tripped fused kernel returns
            // zeroed partials, which are finite but meaningless.
            budget_check(phase::FUSED)?;
            ph.end(&mut stats.phases);
            z
        }
        LinalgMode::Staged => {
            let ph = PhaseSpan::begin(phase::LS);
            let prod = parhde_linalg::spmm::try_laplacian_spmm(g, &degrees, &smat)?;
            ph.end(&mut stats.phases);
            budget_check(phase::LS)?;
            let ph = PhaseSpan::begin(phase::GEMM);
            let z = at_b(&smat, &prod);
            // Budget check before the finiteness check: a tripped gemm
            // returns zeroed blocks, which are finite but meaningless.
            budget_check(phase::GEMM)?;
            check_matrix_finite(&z, "gemm")?;
            ph.end(&mut stats.phases);
            z
        }
    };

    // ---- Eigensolve -------------------------------------------------------
    let ph = PhaseSpan::begin(phase::EIGEN);
    let (y, mus) = try_subspace_axes_nd(&smat, &z, weights, p)?;
    stats.axis_eigenvalues = mus;
    ph.end(&mut stats.phases);
    budget_check(phase::EIGEN)?;

    // ---- Projection -------------------------------------------------------
    let ph = PhaseSpan::begin(phase::PROJECT);
    let coords = if cfg.project_from_raw {
        // [x, y] = B·Y (the literal Algorithm 3 line 20): map each kept S
        // column back to the raw distance column it originated from.
        // outcome.kept lists original indices in [0, s]; index 0 is the
        // constant column, original index i ≥ 1 is B's column i − 1.
        let b_cols: Vec<usize> = outcome.kept[1..].iter().map(|&i| i - 1).collect();
        let mut b_kept = ColMajorMatrix::zeros(n, b_cols.len());
        for (dst, &src) in b_cols.iter().enumerate() {
            b_kept.col_mut(dst).copy_from_slice(b.col(src));
        }
        a_small(&b_kept, &y)
    } else {
        a_small(&smat, &y)
    };
    budget_check(phase::PROJECT)?;
    check_matrix_finite(&coords, "project")?;
    ph.end(&mut stats.phases);

    Ok(coords)
}

/// Solves the subspace layout problem and returns the two axis directions.
///
/// In the subspace spanned by the columns of `S`, the layout objective of
/// Equation 1 becomes the generalized problem `(SᵀLS) y = μ (SᵀDS) y`
/// (or `SᵀS` on the right for plain orthogonalization). `S` is
/// (D-)orthogonal with unit Euclidean columns, so the right-hand matrix is
/// diagonal up to round-off; the diagonal scaling reduces the problem to an
/// ordinary symmetric eigensolve. The **two smallest** generalized
/// eigenvalues give the drawing axes — the paper's "top two eigenvectors"
/// follows the transition-matrix ordering convention where these same
/// vectors are the *top* of `D⁻¹A` (§2.1: "the eigenvalues of this matrix
/// are in reverse order").
///
/// Shared by the weighted pipeline (crate-private).
pub(crate) fn subspace_axes(
    smat: &ColMajorMatrix,
    z: &ColMajorMatrix,
    weights: Option<&[f64]>,
) -> (ColMajorMatrix, Vec<f64>) {
    subspace_axes_nd(smat, z, weights, 2)
}

/// [`subspace_axes`] generalized to `p` axes (the `p` smallest generalized
/// eigenvalues, ascending).
pub(crate) fn subspace_axes_nd(
    smat: &ColMajorMatrix,
    z: &ColMajorMatrix,
    weights: Option<&[f64]>,
    p: usize,
) -> (ColMajorMatrix, Vec<f64>) {
    match try_subspace_axes_nd(smat, z, weights, p) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Guarded [`subspace_axes_nd`]: defects come back as typed errors instead
/// of panics. A non-positive subspace metric (`SᵀDS` diagonal) means the
/// pipeline assembled a bad basis — reported as [`HdeError::Internal`]
/// since it cannot arise from a connected graph.
pub(crate) fn try_subspace_axes_nd(
    smat: &ColMajorMatrix,
    z: &ColMajorMatrix,
    weights: Option<&[f64]>,
    p: usize,
) -> Result<(ColMajorMatrix, Vec<f64>), HdeError> {
    let k = smat.cols();
    if p < 1 || p > k {
        return Err(HdeError::InvalidConfig(format!(
            "need 1 ≤ p ≤ {k} axes, got {p}"
        )));
    }
    // Diagonal of SᵀDS (resp. SᵀS).
    let diag: Vec<f64> = (0..k)
        .map(|i| match weights {
            Some(w) => dot_weighted(smat.col(i), w, smat.col(i)),
            None => dot(smat.col(i), smat.col(i)),
        })
        .collect();
    if !diag.iter().all(|&d| d > 0.0) {
        return Err(HdeError::Internal(
            "degenerate subspace metric; graph may have isolated vertices".into(),
        ));
    }
    let inv_sqrt: Vec<f64> = diag.iter().map(|d| 1.0 / d.sqrt()).collect();
    // T = W^{-1/2} Z W^{-1/2}, symmetrized against round-off.
    let mut tmat = ColMajorMatrix::zeros(k, k);
    for i in 0..k {
        for j in 0..k {
            let v = 0.5 * (z.get(i, j) + z.get(j, i)) * inv_sqrt[i] * inv_sqrt[j];
            tmat.set(i, j, v);
        }
    }
    let eig = try_symmetric_eigen(&tmat)?;
    // The p smallest eigenvalues = the last p in descending order; report
    // them ascending (axis 0 = smoothest direction).
    let mut y = ColMajorMatrix::zeros(k, p);
    let mut mus = Vec::with_capacity(p);
    for axis in 0..p {
        let src = k - 1 - axis;
        mus.push(eig.values[src]);
        #[allow(clippy::needless_range_loop)] // r indexes two containers at once
        for r in 0..k {
            y.set(r, axis, eig.vectors.get(r, src) * inv_sqrt[r]);
        }
    }
    Ok((y, mus))
}

pub(crate) fn accumulate(
    total: &mut parhde_bfs::TraversalStats,
    one: parhde_bfs::TraversalStats,
) {
    total.top_down_steps += one.top_down_steps;
    total.bottom_up_steps += one.bottom_up_steps;
    total.top_down_edges += one.top_down_edges;
    total.bottom_up_edges += one.bottom_up_edges;
}

pub(crate) fn assert_connected(reached: usize, n: usize) {
    assert_eq!(
        reached, n,
        "ParHDE requires a connected graph ({reached} of {n} vertices \
         reached); extract the largest component first (paper §4.1)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PivotStrategy;
    use crate::quality;
    use parhde_graph::gen::{barth5_like, grid2d, pref_attach};

    #[test]
    fn grid_layout_is_sane() {
        let g = grid2d(20, 20);
        let (layout, stats) = par_hde(&g, &ParHdeConfig::default());
        assert_eq!(layout.len(), 400);
        // Not collapsed.
        let (sx, sy) = layout.axis_stddev();
        assert!(sx > 1e-6 && sy > 1e-6, "layout collapsed: {sx} {sy}");
        // All s vectors independent on a grid.
        assert_eq!(stats.s_kept, 10);
        assert_eq!(stats.sources.len(), 10);
        // Edges should be much shorter than random pairs.
        let q = quality::layout_quality(&g, &layout, 500, 1);
        assert!(
            q.mean_edge_length < 0.5 * q.mean_random_pair_distance,
            "edges not shorter than random pairs: {q:?}"
        );
    }

    #[test]
    fn kcenters_sources_are_distinct_and_spread() {
        let g = grid2d(15, 15);
        let (_, stats) = par_hde(&g, &ParHdeConfig::default());
        let set: std::collections::HashSet<_> = stats.sources.iter().collect();
        assert_eq!(set.len(), stats.sources.len(), "pivots must be distinct");
    }

    #[test]
    fn random_pivots_produce_sane_layout() {
        let g = barth5_like();
        let cfg = ParHdeConfig {
            pivots: PivotStrategy::Random,
            subspace: 12,
            ..ParHdeConfig::default()
        };
        let (layout, stats) = par_hde(&g, &cfg);
        assert_eq!(stats.sources.len(), 12);
        let q = quality::layout_quality(&g, &layout, 500, 2);
        assert!(q.mean_edge_length < 0.5 * q.mean_random_pair_distance);
    }

    #[test]
    fn cgs_matches_mgs_quality() {
        let g = grid2d(16, 16);
        let mgs_cfg = ParHdeConfig::default();
        let cgs_cfg = ParHdeConfig { ortho: OrthoMethod::Cgs, ..ParHdeConfig::default() };
        let (la, sa) = par_hde(&g, &mgs_cfg);
        let (lb, sb) = par_hde(&g, &cgs_cfg);
        assert_eq!(sa.s_kept, sb.s_kept);
        // Same pivots (same seed) ⇒ nearly identical axis eigenvalues.
        for (x, y) in sa.axis_eigenvalues.iter().zip(&sb.axis_eigenvalues) {
            assert!((x - y).abs() < 1e-6);
        }
        let qa = quality::layout_quality(&g, &la, 300, 3);
        let qb = quality::layout_quality(&g, &lb, 300, 3);
        let ra = qa.mean_edge_length / qa.mean_random_pair_distance;
        let rb = qb.mean_edge_length / qb.mean_random_pair_distance;
        assert!((ra - rb).abs() < 0.1, "quality diverged: {ra} vs {rb}");
    }

    #[test]
    fn plain_orthogonalization_variant_works() {
        // §4.5.1: orthogonalization instead of D-orthogonalization
        // approximates the Laplacian eigenvectors. On a near-regular grid
        // the layouts are "more or less identical".
        let g = grid2d(14, 14);
        let cfg = ParHdeConfig { d_orthogonalize: false, ..ParHdeConfig::default() };
        let (layout, _) = par_hde(&g, &cfg);
        let q = quality::layout_quality(&g, &layout, 300, 4);
        assert!(q.mean_edge_length < 0.5 * q.mean_random_pair_distance);
    }

    #[test]
    fn raw_projection_variant_works() {
        let g = grid2d(12, 12);
        let cfg = ParHdeConfig { project_from_raw: true, ..ParHdeConfig::default() };
        let (layout, _) = par_hde(&g, &cfg);
        let (sx, sy) = layout.axis_stddev();
        assert!(sx > 1e-9 && sy > 1e-9);
    }

    #[test]
    fn skewed_graph_layout_completes() {
        let g = pref_attach(2000, 4, 9);
        let (layout, stats) = par_hde(&g, &ParHdeConfig::default());
        assert_eq!(layout.len(), 2000);
        // Direction optimization must have engaged on this graph.
        assert!(stats.traversal.bottom_up_steps > 0);
        assert!(stats.traversal.gamma(g.num_arcs() * 10) < 1.0);
    }

    #[test]
    fn axis_eigenvalues_are_small_and_ordered() {
        // The two smallest generalized eigenvalues approximate μ₂, μ₃ of
        // Lx = μDx — nonnegative and below the trivial upper bound 2.
        let g = grid2d(18, 18);
        let (_, stats) = par_hde(&g, &ParHdeConfig::default());
        let mu = &stats.axis_eigenvalues;
        assert_eq!(mu.len(), 2);
        assert!(mu[0] <= mu[1] + 1e-12, "axes must be ascending in μ");
        assert!(mu[0] > -1e-9, "generalized eigenvalue must be ≥ 0");
        assert!(mu[1] < 2.0 + 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid2d(10, 10);
        let cfg = ParHdeConfig::default();
        let (a, _) = par_hde(&g, &cfg);
        let (b, _) = par_hde(&g, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn three_dimensional_embedding_works() {
        let g = grid2d(15, 15);
        let (coords, stats) = par_hde_nd(&g, &ParHdeConfig::default(), 3);
        assert_eq!(coords.rows(), 225);
        assert_eq!(coords.cols(), 3);
        assert_eq!(stats.axis_eigenvalues.len(), 3);
        // Ascending eigenvalues; no collapsed axis.
        for w in stats.axis_eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        for c in 0..3 {
            let col = coords.col(c);
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 =
                col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / col.len() as f64;
            assert!(var > 1e-12, "axis {c} collapsed");
        }
        // First two axes of the 3-D run equal the 2-D run.
        let (flat, _) = par_hde(&g, &ParHdeConfig::default());
        assert_eq!(coords.col(0), flat.x.as_slice());
        assert_eq!(coords.col(1), flat.y.as_slice());
    }

    #[test]
    fn one_dimensional_embedding_works() {
        let g = grid2d(10, 12);
        let (coords, stats) = par_hde_nd(&g, &ParHdeConfig::default(), 1);
        assert_eq!(coords.cols(), 1);
        assert_eq!(stats.axis_eigenvalues.len(), 1);
    }

    #[test]
    #[should_panic(expected = "connected graph")]
    fn disconnected_graph_rejected() {
        let g = parhde_graph::builder::build_from_edges(
            40,
            (0..19u32)
                .map(|i| (i, i + 1))
                .chain((20..39u32).map(|i| (i, i + 1)))
                .collect(),
        );
        par_hde(&g, &ParHdeConfig::with_subspace(4));
    }

    #[test]
    #[should_panic(expected = "must be below")]
    fn oversized_subspace_rejected() {
        par_hde(&grid2d(2, 3), &ParHdeConfig::with_subspace(6));
    }
}
