//! Geometric graph partitioning from layout coordinates (§4.5.4).
//!
//! "The vertex coordinates from ParHDE can be used by geometric graph
//! partitioners. The ScalaPart partitioner uses a force-directed layout to
//! compute coordinates. We can use ParHDE instead." This module implements
//! the classic geometric partitioner — recursive coordinate bisection
//! (RCB) — over any [`Layout`], plus the cut/balance metrics used to judge
//! partitions.

use crate::layout::Layout;
use parhde_graph::CsrGraph;

/// Partitions vertices into `parts` groups by recursive coordinate
/// bisection of the layout: each step splits the current group at a
/// coordinate quantile along its wider axis, sizing the two sides
/// proportionally so any `parts ≥ 1` (not just powers of two) is balanced.
///
/// Returns one part id in `[0, parts)` per vertex.
///
/// # Panics
/// Panics if `parts` is zero or exceeds the vertex count.
pub fn coordinate_bisection(layout: &Layout, parts: usize) -> Vec<u32> {
    let n = layout.len();
    assert!(parts >= 1, "at least one part required");
    assert!(parts <= n, "more parts ({parts}) than vertices ({n})");
    let mut assignment = vec![0u32; n];
    let mut vertices: Vec<u32> = (0..n as u32).collect();
    rcb(layout, &mut vertices, parts, 0, &mut assignment);
    assignment
}

fn rcb(layout: &Layout, group: &mut [u32], parts: usize, first_id: u32, out: &mut [u32]) {
    if parts == 1 {
        for &v in group.iter() {
            out[v as usize] = first_id;
        }
        return;
    }
    // Split proportionally: left gets ⌊parts/2⌋ of the parts and the
    // matching share of vertices.
    let left_parts = parts / 2;
    let split = group.len() * left_parts / parts;

    // Choose the wider axis within this group.
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in group.iter() {
        let (x, y) = layout.position(v);
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    let use_x = (max_x - min_x) >= (max_y - min_y);

    // Partial sort: place the `split` smallest-coordinate vertices first.
    // Ties are broken by vertex id, so the split is deterministic.
    let key = |v: u32| -> (f64, u32) {
        let (x, y) = layout.position(v);
        (if use_x { x } else { y }, v)
    };
    group.select_nth_unstable_by(split.min(group.len() - 1), |&a, &b| {
        key(a).partial_cmp(&key(b)).expect("finite coordinates")
    });

    let (left, right) = group.split_at_mut(split);
    rcb(layout, left, left_parts, first_id, out);
    rcb(layout, right, parts - left_parts, first_id + left_parts as u32, out);
}

/// Number of edges crossing between different parts.
pub fn edge_cut(g: &CsrGraph, partition: &[u32]) -> usize {
    assert_eq!(partition.len(), g.num_vertices(), "one label per vertex");
    g.edges()
        .filter(|&(u, v)| partition[u as usize] != partition[v as usize])
        .count()
}

/// The balance factor: largest part size divided by the ideal `n/parts`
/// (1.0 is perfect).
pub fn balance(partition: &[u32], parts: usize) -> f64 {
    assert!(parts >= 1);
    let mut sizes = vec![0usize; parts];
    for &p in partition {
        sizes[p as usize] += 1;
    }
    let max = *sizes.iter().max().unwrap_or(&0);
    max as f64 * parts as f64 / partition.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParHdeConfig;
    use crate::parhde::par_hde;
    use parhde_graph::gen::grid2d;
    use parhde_util::Xoshiro256StarStar;

    #[test]
    fn bisection_of_unit_square_is_balanced() {
        // 100 vertices on a 10×10 lattice of coordinates.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for r in 0..10 {
            for c in 0..10 {
                x.push(c as f64);
                y.push(r as f64);
            }
        }
        let layout = Layout::new(x, y);
        for parts in [1usize, 2, 3, 4, 5, 8] {
            let p = coordinate_bisection(&layout, parts);
            assert!(p.iter().all(|&id| (id as usize) < parts));
            let b = balance(&p, parts);
            assert!(b <= 1.15, "parts = {parts}: balance {b}");
        }
    }

    #[test]
    fn two_clusters_split_cleanly() {
        // Two separated point clouds must land in different parts.
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let offset = if i < 50 { 0.0 } else { 100.0 };
            x.push(offset + rng.next_f64());
            y.push(rng.next_f64());
        }
        let layout = Layout::new(x, y);
        let p = coordinate_bisection(&layout, 2);
        for i in 0..50 {
            assert_eq!(p[i], p[0], "left cloud split");
            assert_eq!(p[50 + i], p[50], "right cloud split");
        }
        assert_ne!(p[0], p[50]);
    }

    #[test]
    fn parhde_coordinates_give_good_grid_cuts() {
        // §4.5.4 in action: RCB on ParHDE coordinates should produce cuts
        // near the geometric optimum for a grid (≈ side length per split),
        // far below a random partition's expected cut.
        let side = 32usize;
        let g = grid2d(side, side);
        let (layout, _) = par_hde(&g, &ParHdeConfig::with_subspace(20));
        let parts = 4;
        let p = coordinate_bisection(&layout, parts);
        let cut = edge_cut(&g, &p);
        let m = g.num_edges();
        // Random 4-way partition cuts ~3/4 of all edges.
        assert!(
            cut < m / 8,
            "cut {cut} of {m} too high for geometric partitioning"
        );
        assert!(balance(&p, parts) <= 1.05);
    }

    #[test]
    fn edge_cut_counts_correctly() {
        let g = grid2d(2, 2); // square: 4 edges
        let cut = edge_cut(&g, &[0, 0, 1, 1]);
        assert_eq!(cut, 2); // the two vertical edges
        assert_eq!(edge_cut(&g, &[0, 0, 0, 0]), 0);
    }

    #[test]
    fn balance_detects_skew() {
        assert!((balance(&[0, 0, 0, 1], 2) - 1.5).abs() < 1e-12);
        assert!((balance(&[0, 1, 0, 1], 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "more parts")]
    fn too_many_parts_rejected() {
        let layout = Layout::new(vec![0.0], vec![0.0]);
        coordinate_bisection(&layout, 2);
    }
}
