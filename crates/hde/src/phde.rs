//! PHDE — the original PCA-based high-dimensional embedding (Algorithm 2).
//!
//! PHDE shares ParHDE's BFS phase but replaces the Laplacian machinery with
//! principal components analysis of the distance matrix: column-center `B`
//! into `C`, compute `CᵀC`, take its **top two** eigenvectors, and project
//! `[x, y] = C·Y` — which maximizes the scatter of the drawing (the
//! denominator of Equation 1 without D-normalization). Unlike ParHDE there
//! is no `L·S` product, so the matmul stage is just the `CᵀC` gemm
//! (Figure 6 right shows the resulting breakdown: BFS, ColCenter, MatMul,
//! Other).

use crate::bfs_phase::run_bfs_phase;
use crate::config::{BfsMode, LinalgMode, ParHdeConfig, PivotStrategy};
use crate::error::{scatter_coords, trivial_coords, HdeError, Warning};
use crate::layout::Layout;
use crate::stats::{phase, trace_warning, HdeStats, PhaseSpan};
use parhde_graph::{prep, CsrGraph};
use parhde_linalg::center::column_center;
use parhde_linalg::eig::jacobi::try_symmetric_eigen;
use parhde_linalg::error::check_matrix_finite;
use parhde_linalg::gemm::{a_small, at_b};
use parhde_util::Xoshiro256StarStar;

/// Configuration for PHDE / PivotMDS: the subset of [`ParHdeConfig`]
/// options these PCA-based pipelines use.
#[derive(Clone, Debug)]
pub struct PhdeConfig {
    /// Number of BFS pivots `s` (Algorithm 2 uses 50 by default in the
    /// original paper; the reproduction defaults to 10 to match Table 5's
    /// timing setup).
    pub subspace: usize,
    /// Pivot selection strategy.
    pub pivots: PivotStrategy,
    /// BFS execution mode for the BFS phase (default: planner-chosen).
    pub bfs_mode: BfsMode,
    /// MatMul execution mode: SYRK self-product vs staged `at_b(c, c)`
    /// (bit-identical results either way).
    pub linalg_mode: LinalgMode,
    /// Compute backend for the linalg hot kernels (see
    /// [`crate::config::LinalgBackend`]).
    pub backend: crate::config::LinalgBackend,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for PhdeConfig {
    fn default() -> Self {
        Self {
            subspace: 10,
            pivots: PivotStrategy::KCenters,
            bfs_mode: BfsMode::Auto,
            linalg_mode: LinalgMode::Fused,
            backend: crate::config::LinalgBackend::Auto,
            seed: 0x9a_7de,
        }
    }
}

impl From<&ParHdeConfig> for PhdeConfig {
    fn from(c: &ParHdeConfig) -> Self {
        Self {
            subspace: c.subspace,
            pivots: c.pivots,
            bfs_mode: c.bfs_mode,
            linalg_mode: c.linalg_mode,
            backend: c.backend,
            seed: c.seed,
        }
    }
}

/// Runs PHDE on a connected unweighted graph.
///
/// # Panics
/// Panics if the graph is disconnected or the configuration is invalid.
/// Use [`try_phde`] for a non-panicking, gracefully degrading variant.
pub fn phde(g: &CsrGraph, cfg: &PhdeConfig) -> (Layout, HdeStats) {
    match run_phde(g, cfg, false) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fail-soft PHDE: never panics on untrusted input. Disconnected graphs
/// fall back to their largest component, oversized subspaces are clamped
/// to `n − 1`, and graphs with fewer than three vertices get a trivial
/// line layout — each degradation recorded in
/// [`HdeStats::warnings`](crate::HdeStats::warnings).
///
/// # Errors
/// [`HdeError::InvalidConfig`] for unusable parameters and
/// [`HdeError::NonFiniteValue`] if a numeric phase produces NaN/∞.
pub fn try_phde(g: &CsrGraph, cfg: &PhdeConfig) -> Result<(Layout, HdeStats), HdeError> {
    run_phde(g, cfg, true)
}

/// Shared PHDE driver; `failsoft` selects the degradation policy.
fn run_phde(
    g: &CsrGraph,
    cfg: &PhdeConfig,
    failsoft: bool,
) -> Result<(Layout, HdeStats), HdeError> {
    let _root = parhde_trace::span!("phde");
    let n = g.num_vertices();
    let mut cfg = cfg.clone();
    let s_requested = cfg.subspace;
    let mut warnings = Vec::new();
    if failsoft {
        // PCA needs s in [2, n − 1], i.e. n ≥ 3; smaller inputs get the
        // deterministic line layout.
        if n < 3 {
            let mut stats = HdeStats { s_requested, ..HdeStats::default() };
            stats.warn(Warning::TrivialLayout { n });
            let coords = trivial_coords(n, 2);
            return Ok((
                Layout::new(coords.col(0).to_vec(), coords.col(1).to_vec()),
                stats,
            ));
        }
        let feasible = cfg.subspace.clamp(2, n - 1);
        if feasible != cfg.subspace {
            warnings.push(trace_warning(Warning::SubspaceClamped {
                requested: cfg.subspace,
                clamped: feasible,
            }));
            cfg.subspace = feasible;
        }
        if !prep::is_connected(g) {
            let components = prep::connected_components(g).count();
            let ext = prep::largest_component(g);
            let kept = ext.graph.num_vertices();
            let (sub, mut stats) = run_phde(&ext.graph, &cfg, failsoft)?;
            let mut sub_coords =
                parhde_linalg::dense::ColMajorMatrix::zeros(kept, 2);
            sub_coords.col_mut(0).copy_from_slice(&sub.x);
            sub_coords.col_mut(1).copy_from_slice(&sub.y);
            let coords = scatter_coords(n, &sub_coords, &ext.old_ids);
            stats.warnings.splice(
                0..0,
                warnings.into_iter().chain(std::iter::once(trace_warning(
                    Warning::DisconnectedFallback { components, kept, n },
                ))),
            );
            return Ok((
                Layout::new(coords.col(0).to_vec(), coords.col(1).to_vec()),
                stats,
            ));
        }
    }
    if cfg.subspace < 2 {
        return Err(HdeError::InvalidConfig("PHDE needs at least two pivots".into()));
    }
    if cfg.subspace >= n {
        return Err(HdeError::InvalidConfig(format!(
            "subspace must be below n (s = {}, n = {n})",
            cfg.subspace
        )));
    }
    let backend_executed = crate::config::install_backend(cfg.backend)?;
    let mut stats = HdeStats {
        s_requested,
        backend: Some(cfg.backend.label()),
        backend_executed: Some(backend_executed),
        ..HdeStats::default()
    };
    let mut rng = Xoshiro256StarStar::seed_from_u64(cfg.seed);

    // BFS phase (shared with ParHDE).
    let mut c = run_bfs_phase(
        g,
        cfg.subspace,
        cfg.pivots,
        cfg.bfs_mode,
        &mut rng,
        true,
        &mut stats,
    )?;

    // Column centering: make every column zero-mean (two-phase, §3.2).
    let ph = PhaseSpan::begin(phase::COL_CENTER);
    column_center(&mut c);
    ph.end(&mut stats.phases);
    crate::supervise::budget_check(phase::COL_CENTER)?;

    // MatMul: the small covariance CᵀC — SYRK computes only the lower
    // triangle and mirrors it, bitwise identical to `at_b(c, c)`.
    stats.linalg_mode = Some(cfg.linalg_mode.label());
    let ph = PhaseSpan::begin(phase::GEMM);
    let z = match cfg.linalg_mode {
        LinalgMode::Fused => parhde_linalg::syrk::at_a(&c),
        LinalgMode::Staged => at_b(&c, &c),
    };
    ph.end(&mut stats.phases);
    // A tripped gemm returns zeroed (finite but meaningless) blocks.
    crate::supervise::budget_check(phase::GEMM)?;

    // Eigensolve: top two eigenvectors of CᵀC (PCA axes).
    let ph = PhaseSpan::begin(phase::EIGEN);
    let eig = try_symmetric_eigen(&z)?;
    let (vals, y) = eig.top(2);
    stats.axis_eigenvalues = vals;
    stats.s_kept = c.cols();
    ph.end(&mut stats.phases);

    crate::supervise::budget_check(phase::EIGEN)?;

    // Projection [x, y] = C·Y.
    let ph = PhaseSpan::begin(phase::PROJECT);
    let coords = a_small(&c, &y);
    crate::supervise::budget_check(phase::PROJECT)?;
    check_matrix_finite(&coords, "project")?;
    let layout = Layout::new(coords.col(0).to_vec(), coords.col(1).to_vec());
    ph.end(&mut stats.phases);
    stats.warnings = warnings;
    Ok((layout, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::layout_quality;
    use parhde_graph::gen::{barth5_like, grid2d};

    #[test]
    fn phde_layout_is_sane_on_grid() {
        let g = grid2d(18, 18);
        let (layout, stats) = phde(&g, &PhdeConfig::default());
        assert_eq!(layout.len(), 324);
        let q = layout_quality(&g, &layout, 400, 1);
        assert!(
            q.contraction() < 0.5,
            "PHDE failed to contract edges: {}",
            q.contraction()
        );
        assert_eq!(stats.sources.len(), 10);
        // PCA eigenvalues are nonnegative, descending.
        assert!(stats.axis_eigenvalues[0] >= stats.axis_eigenvalues[1]);
        assert!(stats.axis_eigenvalues[1] >= -1e-9);
    }

    #[test]
    fn phde_handles_mesh_with_holes() {
        let g = barth5_like();
        let (layout, _) = phde(&g, &PhdeConfig { subspace: 8, ..Default::default() });
        let (sx, sy) = layout.axis_stddev();
        assert!(sx > 1e-9 && sy > 1e-9);
    }

    #[test]
    fn phde_records_colcenter_phase() {
        let g = grid2d(10, 10);
        let (_, stats) = phde(&g, &PhdeConfig::default());
        assert!(stats.phases.get(phase::COL_CENTER).is_some());
        assert!(stats.phases.get(phase::LS).is_none(), "PHDE has no LS product");
    }

    #[test]
    fn phde_deterministic() {
        let g = grid2d(9, 9);
        let cfg = PhdeConfig::default();
        assert_eq!(phde(&g, &cfg).0, phde(&g, &cfg).0);
    }

    #[test]
    #[should_panic(expected = "at least two pivots")]
    fn rejects_tiny_subspace() {
        phde(&grid2d(4, 4), &PhdeConfig { subspace: 1, ..Default::default() });
    }
}
