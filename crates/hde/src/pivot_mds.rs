//! PivotMDS (Brandes & Pich) — fast approximate classical MDS.
//!
//! Computationally a sibling of PHDE (§3.2: "the computational costs of
//! PivotMDS and PHDE are identical, but they differ in their derivation"):
//! the `n×s` pivot distance matrix is **double-centered** on its *squared*
//! entries (`c_ij = −½(d²_ij − rowmean − colmean + totalmean)`) instead of
//! column-centered, and the drawing axes are again the top two eigenvectors
//! of `CᵀC` projected through `C`. Figure 6 (left/middle) shows its
//! breakdown as BFS / DblCntr / MatMul / Other.

use crate::bfs_phase::run_bfs_phase;
use crate::config::LinalgMode;
use crate::error::{scatter_coords, trivial_coords, HdeError, Warning};
use crate::layout::Layout;
use crate::phde::PhdeConfig;
use crate::stats::{phase, trace_warning, HdeStats, PhaseSpan};
use parhde_graph::{prep, CsrGraph};
use parhde_linalg::center::{double_center_squared, square_entries};
use parhde_linalg::eig::jacobi::try_symmetric_eigen;
use parhde_linalg::error::check_matrix_finite;
use parhde_linalg::gemm::{a_small, at_b};
use parhde_util::Xoshiro256StarStar;

/// Runs PivotMDS on a connected unweighted graph.
///
/// # Panics
/// Panics if the graph is disconnected or the configuration is invalid.
/// Use [`try_pivot_mds`] for a non-panicking, gracefully degrading variant.
pub fn pivot_mds(g: &CsrGraph, cfg: &PhdeConfig) -> (Layout, HdeStats) {
    match run_pivot_mds(g, cfg, false) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fail-soft PivotMDS: never panics on untrusted input, with the same
/// degradation contract as [`crate::try_phde`] (largest-component fallback,
/// subspace clamping, trivial layout for tiny graphs — all recorded in
/// [`HdeStats::warnings`](crate::HdeStats::warnings)).
///
/// # Errors
/// [`HdeError::InvalidConfig`] for unusable parameters and
/// [`HdeError::NonFiniteValue`] if a numeric phase produces NaN/∞.
pub fn try_pivot_mds(
    g: &CsrGraph,
    cfg: &PhdeConfig,
) -> Result<(Layout, HdeStats), HdeError> {
    run_pivot_mds(g, cfg, true)
}

/// Shared PivotMDS driver; `failsoft` selects the degradation policy.
fn run_pivot_mds(
    g: &CsrGraph,
    cfg: &PhdeConfig,
    failsoft: bool,
) -> Result<(Layout, HdeStats), HdeError> {
    let _root = parhde_trace::span!("pivotmds");
    let n = g.num_vertices();
    let mut cfg = cfg.clone();
    let s_requested = cfg.subspace;
    let mut warnings = Vec::new();
    if failsoft {
        if n < 3 {
            let mut stats = HdeStats { s_requested, ..HdeStats::default() };
            stats.warn(Warning::TrivialLayout { n });
            let coords = trivial_coords(n, 2);
            return Ok((
                Layout::new(coords.col(0).to_vec(), coords.col(1).to_vec()),
                stats,
            ));
        }
        let feasible = cfg.subspace.clamp(2, n - 1);
        if feasible != cfg.subspace {
            warnings.push(trace_warning(Warning::SubspaceClamped {
                requested: cfg.subspace,
                clamped: feasible,
            }));
            cfg.subspace = feasible;
        }
        if !prep::is_connected(g) {
            let components = prep::connected_components(g).count();
            let ext = prep::largest_component(g);
            let kept = ext.graph.num_vertices();
            let (sub, mut stats) = run_pivot_mds(&ext.graph, &cfg, failsoft)?;
            let mut sub_coords =
                parhde_linalg::dense::ColMajorMatrix::zeros(kept, 2);
            sub_coords.col_mut(0).copy_from_slice(&sub.x);
            sub_coords.col_mut(1).copy_from_slice(&sub.y);
            let coords = scatter_coords(n, &sub_coords, &ext.old_ids);
            stats.warnings.splice(
                0..0,
                warnings.into_iter().chain(std::iter::once(trace_warning(
                    Warning::DisconnectedFallback { components, kept, n },
                ))),
            );
            return Ok((
                Layout::new(coords.col(0).to_vec(), coords.col(1).to_vec()),
                stats,
            ));
        }
    }
    if cfg.subspace < 2 {
        return Err(HdeError::InvalidConfig(
            "PivotMDS needs at least two pivots".into(),
        ));
    }
    if cfg.subspace >= n {
        return Err(HdeError::InvalidConfig(format!(
            "subspace must be below n (s = {}, n = {n})",
            cfg.subspace
        )));
    }
    let backend_executed = crate::config::install_backend(cfg.backend)?;
    let mut stats = HdeStats {
        s_requested,
        backend: Some(cfg.backend.label()),
        backend_executed: Some(backend_executed),
        ..HdeStats::default()
    };
    let mut rng = Xoshiro256StarStar::seed_from_u64(cfg.seed);

    // BFS phase (shared).
    let mut c = run_bfs_phase(
        g,
        cfg.subspace,
        cfg.pivots,
        cfg.bfs_mode,
        &mut rng,
        true,
        &mut stats,
    )?;

    // Double centering of squared distances.
    let ph = PhaseSpan::begin(phase::DBL_CENTER);
    square_entries(&mut c);
    double_center_squared(&mut c);
    ph.end(&mut stats.phases);
    crate::supervise::budget_check(phase::DBL_CENTER)?;

    // MatMul: SYRK self-product, bitwise identical to `at_b(c, c)`.
    stats.linalg_mode = Some(cfg.linalg_mode.label());
    let ph = PhaseSpan::begin(phase::GEMM);
    let z = match cfg.linalg_mode {
        LinalgMode::Fused => parhde_linalg::syrk::at_a(&c),
        LinalgMode::Staged => at_b(&c, &c),
    };
    ph.end(&mut stats.phases);
    // A tripped gemm returns zeroed (finite but meaningless) blocks.
    crate::supervise::budget_check(phase::GEMM)?;

    // Eigensolve: top two of CᵀC.
    let ph = PhaseSpan::begin(phase::EIGEN);
    let eig = try_symmetric_eigen(&z)?;
    let (vals, y) = eig.top(2);
    stats.axis_eigenvalues = vals;
    stats.s_kept = c.cols();
    ph.end(&mut stats.phases);

    crate::supervise::budget_check(phase::EIGEN)?;

    // Projection.
    let ph = PhaseSpan::begin(phase::PROJECT);
    let coords = a_small(&c, &y);
    crate::supervise::budget_check(phase::PROJECT)?;
    check_matrix_finite(&coords, "project")?;
    let layout = Layout::new(coords.col(0).to_vec(), coords.col(1).to_vec());
    ph.end(&mut stats.phases);
    stats.warnings = warnings;
    Ok((layout, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::layout_quality;
    use parhde_graph::gen::{barth5_like, chain, grid2d};

    #[test]
    fn pivot_mds_layout_is_sane_on_grid() {
        let g = grid2d(18, 18);
        let (layout, stats) = pivot_mds(&g, &PhdeConfig::default());
        let q = layout_quality(&g, &layout, 400, 1);
        assert!(
            q.contraction() < 0.5,
            "PivotMDS failed to contract edges: {}",
            q.contraction()
        );
        assert!(stats.phases.get(phase::DBL_CENTER).is_some());
        assert!(stats.phases.get(phase::COL_CENTER).is_none());
    }

    #[test]
    fn pivot_mds_recovers_chain_geometry() {
        // Classical MDS on a path should lay it out along a line: the first
        // axis dominates the second by a large factor.
        let g = chain(200);
        let (layout, stats) = pivot_mds(
            &g,
            &PhdeConfig { subspace: 8, ..Default::default() },
        );
        let (sx, sy) = layout.axis_stddev();
        let (big, small) = if sx > sy { (sx, sy) } else { (sy, sx) };
        assert!(
            big > 5.0 * small,
            "chain should be essentially 1-D: spread {big} vs {small}"
        );
        assert!(stats.axis_eigenvalues[0] > stats.axis_eigenvalues[1]);
    }

    #[test]
    fn pivot_mds_handles_mesh_with_holes() {
        let g = barth5_like();
        let (layout, _) =
            pivot_mds(&g, &PhdeConfig { subspace: 8, ..Default::default() });
        let (sx, sy) = layout.axis_stddev();
        assert!(sx > 1e-9 && sy > 1e-9);
    }

    #[test]
    fn pivot_mds_deterministic() {
        let g = grid2d(9, 9);
        let cfg = PhdeConfig::default();
        assert_eq!(pivot_mds(&g, &cfg).0, pivot_mds(&g, &cfg).0);
    }
}
