//! PivotMDS (Brandes & Pich) — fast approximate classical MDS.
//!
//! Computationally a sibling of PHDE (§3.2: "the computational costs of
//! PivotMDS and PHDE are identical, but they differ in their derivation"):
//! the `n×s` pivot distance matrix is **double-centered** on its *squared*
//! entries (`c_ij = −½(d²_ij − rowmean − colmean + totalmean)`) instead of
//! column-centered, and the drawing axes are again the top two eigenvectors
//! of `CᵀC` projected through `C`. Figure 6 (left/middle) shows its
//! breakdown as BFS / DblCntr / MatMul / Other.

use crate::bfs_phase::run_bfs_phase;
use crate::layout::Layout;
use crate::phde::PhdeConfig;
use crate::stats::{phase, HdeStats};
use parhde_graph::CsrGraph;
use parhde_linalg::center::{double_center_squared, square_entries};
use parhde_linalg::eig::jacobi::symmetric_eigen;
use parhde_linalg::gemm::{a_small, at_b};
use parhde_util::{Timer, Xoshiro256StarStar};

/// Runs PivotMDS on a connected unweighted graph.
///
/// # Panics
/// Panics if the graph is disconnected or the configuration is invalid.
pub fn pivot_mds(g: &CsrGraph, cfg: &PhdeConfig) -> (Layout, HdeStats) {
    let n = g.num_vertices();
    assert!(cfg.subspace >= 2, "PivotMDS needs at least two pivots");
    assert!(cfg.subspace < n, "subspace must be below n");
    let mut stats = HdeStats { s_requested: cfg.subspace, ..HdeStats::default() };
    let mut rng = Xoshiro256StarStar::seed_from_u64(cfg.seed);

    // BFS phase (shared).
    let mut c = run_bfs_phase(g, cfg.subspace, cfg.pivots, &mut rng, true, &mut stats);

    // Double centering of squared distances.
    let t = Timer::start();
    square_entries(&mut c);
    double_center_squared(&mut c);
    stats.phases.add(phase::DBL_CENTER, t.elapsed());

    // MatMul.
    let t = Timer::start();
    let z = at_b(&c, &c);
    stats.phases.add(phase::GEMM, t.elapsed());

    // Eigensolve: top two of CᵀC.
    let t = Timer::start();
    let eig = symmetric_eigen(&z);
    let (vals, y) = eig.top(2);
    stats.axis_eigenvalues = vals;
    stats.s_kept = c.cols();
    stats.phases.add(phase::EIGEN, t.elapsed());

    // Projection.
    let t = Timer::start();
    let coords = a_small(&c, &y);
    let layout = Layout::new(coords.col(0).to_vec(), coords.col(1).to_vec());
    stats.phases.add(phase::PROJECT, t.elapsed());
    (layout, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::layout_quality;
    use parhde_graph::gen::{barth5_like, chain, grid2d};

    #[test]
    fn pivot_mds_layout_is_sane_on_grid() {
        let g = grid2d(18, 18);
        let (layout, stats) = pivot_mds(&g, &PhdeConfig::default());
        let q = layout_quality(&g, &layout, 400, 1);
        assert!(
            q.contraction() < 0.5,
            "PivotMDS failed to contract edges: {}",
            q.contraction()
        );
        assert!(stats.phases.get(phase::DBL_CENTER).is_some());
        assert!(stats.phases.get(phase::COL_CENTER).is_none());
    }

    #[test]
    fn pivot_mds_recovers_chain_geometry() {
        // Classical MDS on a path should lay it out along a line: the first
        // axis dominates the second by a large factor.
        let g = chain(200);
        let (layout, stats) = pivot_mds(
            &g,
            &PhdeConfig { subspace: 8, ..Default::default() },
        );
        let (sx, sy) = layout.axis_stddev();
        let (big, small) = if sx > sy { (sx, sy) } else { (sy, sx) };
        assert!(
            big > 5.0 * small,
            "chain should be essentially 1-D: spread {big} vs {small}"
        );
        assert!(stats.axis_eigenvalues[0] > stats.axis_eigenvalues[1]);
    }

    #[test]
    fn pivot_mds_handles_mesh_with_holes() {
        let g = barth5_like();
        let (layout, _) =
            pivot_mds(&g, &PhdeConfig { subspace: 8, ..Default::default() });
        let (sx, sy) = layout.axis_stddev();
        assert!(sx > 1e-9 && sy > 1e-9);
    }

    #[test]
    fn pivot_mds_deterministic() {
        let g = grid2d(9, 9);
        let cfg = PhdeConfig::default();
        assert_eq!(pivot_mds(&g, &cfg).0, pivot_mds(&g, &cfg).0);
    }
}
