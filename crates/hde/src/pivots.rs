//! Pivot (BFS source) selection.
//!
//! The default strategy is the farthest-first 2-approximation to k-centers
//! (§2.2): start from a random vertex; after each BFS, fold the new distance
//! column into a running minimum-distance array (Algorithm 1 lines 13-14)
//! and pick the vertex farthest from all previous sources as the next pivot
//! (ties broken deterministically towards the lowest id). These two
//! reductions are the "BFS: Other" row of Table 1 — `O(sn)` work with a
//! `log n` reduction depth per source.

use rayon::prelude::*;

/// Chunk length for the parallel fold/argmax reductions.
const CHUNK: usize = 1 << 13;

/// Folds a freshly computed distance column into the running minimum
/// (`d[j] ← min(d[j], column[j])`), in parallel.
///
/// # Panics
/// Panics if lengths differ.
pub fn fold_min_distance(min_dist: &mut [f64], column: &[f64]) {
    assert_eq!(min_dist.len(), column.len(), "length mismatch");
    if min_dist.len() < CHUNK {
        for (m, &c) in min_dist.iter_mut().zip(column) {
            if c < *m {
                *m = c;
            }
        }
        return;
    }
    min_dist
        .par_chunks_mut(CHUNK)
        .zip(column.par_chunks(CHUNK))
        .for_each(|(ms, cs)| {
            for (m, &c) in ms.iter_mut().zip(cs) {
                if c < *m {
                    *m = c;
                }
            }
        });
}

/// Returns the vertex maximizing the minimum distance to all previous
/// sources — the next k-centers pivot. Ties break to the lowest id so the
/// pipeline is deterministic. Infinite entries (unreached vertices) win
/// immediately, which steers pivots into unexplored regions.
///
/// # Panics
/// Panics if `min_dist` is empty.
pub fn farthest_vertex(min_dist: &[f64]) -> u32 {
    assert!(!min_dist.is_empty(), "empty distance array");
    let per_chunk: Vec<(usize, f64)> = min_dist
        .par_chunks(CHUNK)
        .enumerate()
        .map(|(ci, chunk)| {
            let mut best = (0usize, f64::NEG_INFINITY);
            for (i, &d) in chunk.iter().enumerate() {
                if d > best.1 {
                    best = (ci * CHUNK + i, d);
                }
            }
            best
        })
        .collect();
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, d) in per_chunk {
        if d > best.1 {
            best = (i, d);
        }
    }
    best.0 as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_takes_elementwise_min() {
        let mut m = vec![3.0, 1.0, f64::INFINITY];
        fold_min_distance(&mut m, &[2.0, 5.0, 7.0]);
        assert_eq!(m, vec![2.0, 1.0, 7.0]);
    }

    #[test]
    fn fold_large_matches_scalar() {
        let n = CHUNK * 2 + 11;
        let mut a: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
        let mut expect = a.clone();
        for (e, &x) in expect.iter_mut().zip(&b) {
            *e = e.min(x);
        }
        fold_min_distance(&mut a, &b);
        assert_eq!(a, expect);
    }

    #[test]
    fn farthest_picks_max() {
        assert_eq!(farthest_vertex(&[1.0, 9.0, 3.0]), 1);
    }

    #[test]
    fn farthest_tie_breaks_low() {
        assert_eq!(farthest_vertex(&[5.0, 5.0, 5.0]), 0);
    }

    #[test]
    fn farthest_prefers_unreached() {
        assert_eq!(farthest_vertex(&[3.0, f64::INFINITY, 9.0]), 1);
    }

    #[test]
    fn farthest_large_matches_scalar() {
        let n = CHUNK * 3 + 7;
        let v: Vec<f64> = (0..n).map(|i| ((i * 7919) % 10007) as f64).collect();
        let expect = v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
            .unwrap()
            .0;
        assert_eq!(farthest_vertex(&v) as usize, expect);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn farthest_empty_panics() {
        farthest_vertex(&[]);
    }
}
