//! Pivot (BFS source) selection.
//!
//! The default strategy is the farthest-first 2-approximation to k-centers
//! (§2.2): start from a random vertex; after each BFS, fold the new distance
//! column into a running minimum-distance array (Algorithm 1 lines 13-14)
//! and pick the vertex farthest from all previous sources as the next pivot
//! (ties broken deterministically towards the lowest id). These two
//! reductions are the "BFS: Other" row of Table 1 — `O(sn)` work with a
//! `log n` reduction depth per source.
//!
//! # NaN policy
//!
//! BFS levels are always finite, but the weighted (Δ-stepping) pipeline can
//! be fed poisoned inputs whose distances come out NaN. Both reductions use
//! total-order semantics: a NaN never becomes the running minimum and never
//! wins the farthest-vertex argmax (an all-NaN array deterministically
//! yields vertex 0). Each reduction *counts* the NaNs it excluded so
//! callers can surface the exclusion as a
//! [`Warning::NanDistances`](crate::Warning::NanDistances) instead of
//! silently selecting pivots from corrupted geometry — or, in an earlier
//! life, panicking in a `partial_cmp(..).unwrap()`.

use rayon::prelude::*;

/// Chunk length for the parallel fold/argmax reductions.
const CHUNK: usize = 1 << 13;

/// Folds a freshly computed distance column into the running minimum
/// (`d[j] ← min(d[j], column[j])`), in parallel. NaN entries in `column`
/// are excluded (the running minimum keeps its previous value) and their
/// count is returned.
///
/// # Panics
/// Panics if lengths differ.
pub fn fold_min_distance(min_dist: &mut [f64], column: &[f64]) -> usize {
    assert_eq!(min_dist.len(), column.len(), "length mismatch");
    fn fold_chunk(ms: &mut [f64], cs: &[f64]) -> usize {
        let mut nans = 0usize;
        for (m, &c) in ms.iter_mut().zip(cs) {
            if c.is_nan() {
                nans += 1;
            } else if c < *m {
                *m = c;
            }
        }
        nans
    }
    if min_dist.len() < CHUNK {
        return fold_chunk(min_dist, column);
    }
    min_dist
        .par_chunks_mut(CHUNK)
        .zip(column.par_chunks(CHUNK))
        .map(|(ms, cs)| fold_chunk(ms, cs))
        .sum()
}

/// Returns the vertex maximizing the minimum distance to all previous
/// sources — the next k-centers pivot — plus the number of NaN entries
/// that were excluded from the argmax. Ties break to the lowest id so the
/// pipeline is deterministic. Infinite entries (unreached vertices) win
/// immediately, which steers pivots into unexplored regions; an all-NaN
/// array yields vertex 0.
///
/// # Panics
/// Panics if `min_dist` is empty.
pub fn farthest_vertex_counting(min_dist: &[f64]) -> (u32, usize) {
    assert!(!min_dist.is_empty(), "empty distance array");
    let per_chunk: Vec<(usize, f64, usize)> = min_dist
        .par_chunks(CHUNK)
        .enumerate()
        .map(|(ci, chunk)| {
            let mut best = (0usize, f64::NEG_INFINITY);
            let mut nans = 0usize;
            for (i, &d) in chunk.iter().enumerate() {
                if d.is_nan() {
                    nans += 1;
                } else if d > best.1 {
                    best = (ci * CHUNK + i, d);
                }
            }
            (best.0, best.1, nans)
        })
        .collect();
    let mut best = (0usize, f64::NEG_INFINITY);
    let mut nans = 0usize;
    for (i, d, chunk_nans) in per_chunk {
        nans += chunk_nans;
        if d > best.1 {
            best = (i, d);
        }
    }
    // All-NaN chunks report index ci·CHUNK with a NEG_INFINITY key that
    // never wins; an entirely NaN input falls through to (0, NEG_INFINITY).
    (best.0 as u32, nans)
}

/// [`farthest_vertex_counting`] without the NaN count, for callers that
/// have already validated their distances (BFS levels are always finite).
///
/// # Panics
/// Panics if `min_dist` is empty.
pub fn farthest_vertex(min_dist: &[f64]) -> u32 {
    farthest_vertex_counting(min_dist).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_takes_elementwise_min() {
        let mut m = vec![3.0, 1.0, f64::INFINITY];
        assert_eq!(fold_min_distance(&mut m, &[2.0, 5.0, 7.0]), 0);
        assert_eq!(m, vec![2.0, 1.0, 7.0]);
    }

    #[test]
    fn fold_skips_and_counts_nan() {
        let mut m = vec![3.0, 1.0, f64::INFINITY, 4.0];
        let nans = fold_min_distance(&mut m, &[f64::NAN, 0.5, f64::NAN, 9.0]);
        assert_eq!(nans, 2);
        // NaN entries leave the running minimum untouched; no NaN leaks in.
        assert_eq!(m, vec![3.0, 0.5, f64::INFINITY, 4.0]);
    }

    #[test]
    fn fold_large_counts_nan_in_parallel_path() {
        let n = CHUNK * 2 + 11;
        let mut m = vec![f64::INFINITY; n];
        let col: Vec<f64> = (0..n)
            .map(|i| if i % 97 == 0 { f64::NAN } else { i as f64 })
            .collect();
        let expect_nans = col.iter().filter(|d| d.is_nan()).count();
        assert_eq!(fold_min_distance(&mut m, &col), expect_nans);
        assert!(m.iter().all(|d| !d.is_nan()));
    }

    #[test]
    fn fold_large_matches_scalar() {
        let n = CHUNK * 2 + 11;
        let mut a: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
        let mut expect = a.clone();
        for (e, &x) in expect.iter_mut().zip(&b) {
            *e = e.min(x);
        }
        fold_min_distance(&mut a, &b);
        assert_eq!(a, expect);
    }

    #[test]
    fn farthest_picks_max() {
        assert_eq!(farthest_vertex(&[1.0, 9.0, 3.0]), 1);
    }

    #[test]
    fn farthest_tie_breaks_low() {
        assert_eq!(farthest_vertex(&[5.0, 5.0, 5.0]), 0);
    }

    #[test]
    fn farthest_prefers_unreached() {
        assert_eq!(farthest_vertex(&[3.0, f64::INFINITY, 9.0]), 1);
    }

    #[test]
    fn farthest_large_matches_scalar() {
        let n = CHUNK * 3 + 7;
        let v: Vec<f64> = (0..n).map(|i| ((i * 7919) % 10007) as f64).collect();
        // total_cmp, not partial_cmp().unwrap(): the reference reduction
        // must not be the one thing in the pipeline that panics on NaN.
        let expect = v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
            .unwrap()
            .0;
        assert_eq!(farthest_vertex(&v) as usize, expect);
    }

    #[test]
    fn farthest_never_selects_nan() {
        let (v, nans) =
            farthest_vertex_counting(&[f64::NAN, 2.0, f64::NAN, 7.0, 3.0]);
        assert_eq!(v, 3);
        assert_eq!(nans, 2);
    }

    #[test]
    fn farthest_all_nan_is_deterministic() {
        let (v, nans) = farthest_vertex_counting(&[f64::NAN; 5]);
        assert_eq!(v, 0);
        assert_eq!(nans, 5);
    }

    #[test]
    fn farthest_large_with_nans_matches_scalar() {
        let n = CHUNK * 2 + 3;
        let v: Vec<f64> = (0..n)
            .map(|i| {
                if i % 31 == 0 {
                    f64::NAN
                } else {
                    ((i * 7919) % 10007) as f64
                }
            })
            .collect();
        let expect = v
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_nan())
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
            .unwrap()
            .0;
        let (got, nans) = farthest_vertex_counting(&v);
        assert_eq!(got as usize, expect);
        assert_eq!(nans, v.iter().filter(|d| d.is_nan()).count());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn farthest_empty_panics() {
        farthest_vertex(&[]);
    }
}
