//! The prior-work baseline of Table 3.
//!
//! Kirmani & Madduri's earlier parallel HDE implementation [27, 33] differs
//! from ParHDE in two load-bearing ways the paper calls out (§4.2):
//!
//! * it "does not use parallel BFS" — each of the `s` traversals is a
//!   sequential queue BFS;
//! * it materializes the Laplacian through a generic sparse-matrix library
//!   ("the use of an Eigen function for constructing the Laplacian matrix
//!   leads to a significant increase in the peak memory footprint"), and
//!   runs the triple product through that explicit matrix.
//!
//! Everything else (pivot selection, D-orthogonalization, eigensolve,
//! projection) matches ParHDE, so the measured gap between the two isolates
//! exactly the contributions the paper claims. Expect the baseline's
//! breakdown to be BFS-dominated (Figure 3, right chart).

use crate::bfs_phase::run_bfs_phase;
use crate::config::ParHdeConfig;
use crate::layout::Layout;
use crate::parhde::subspace_axes;
use crate::stats::{phase, HdeStats, PhaseSpan};
use parhde_graph::CsrGraph;
use parhde_linalg::dense::ColMajorMatrix;
use parhde_linalg::gemm::{a_small, at_b};
use parhde_linalg::ortho::mgs;
use parhde_linalg::spmm::ExplicitLaplacian;
use parhde_util::Xoshiro256StarStar;

/// Runs the prior-work HDE baseline.
///
/// # Panics
/// Panics under the same conditions as [`crate::par_hde`].
pub fn prior_hde(g: &CsrGraph, cfg: &ParHdeConfig) -> (Layout, HdeStats) {
    let n = g.num_vertices();
    if let Err(e) = cfg.validate(n) {
        panic!("{e}");
    }
    let s = cfg.subspace;
    let _root = parhde_trace::span!("prior_hde");
    let mut stats = HdeStats { s_requested: s, ..HdeStats::default() };
    let mut rng = Xoshiro256StarStar::seed_from_u64(cfg.seed);

    // Sequential BFS phase (the decisive difference). Budget trips inside
    // the phase surface as the panic below, like every other strict defect.
    let b = match run_bfs_phase(g, s, cfg.pivots, cfg.bfs_mode, &mut rng, false, &mut stats) {
        Ok(b) => b,
        Err(e) => panic!("{e}"),
    };

    // Assemble S and materialize the Laplacian the way the prior code does.
    let ph = PhaseSpan::begin(phase::INIT);
    let mut smat = ColMajorMatrix::zeros(n, s + 1);
    smat.col_mut(0).fill(1.0 / (n as f64).sqrt());
    for i in 0..s {
        smat.col_mut(i + 1).copy_from_slice(b.col(i));
    }
    let degrees = g.degree_vector();
    let laplacian = ExplicitLaplacian::build(g);
    ph.end(&mut stats.phases);

    // D-orthogonalization (MGS, as in the prior code).
    let ph = PhaseSpan::begin(phase::DORTHO);
    let weights = cfg.d_orthogonalize.then_some(degrees.as_slice());
    let outcome = mgs(&mut smat, weights, cfg.drop_tolerance);
    debug_assert_eq!(outcome.kept.first(), Some(&0));
    let survivors: Vec<usize> = (1..smat.cols()).collect();
    smat.retain_columns(&survivors);
    stats.dropped_columns = outcome.dropped.len();
    stats.s_kept = smat.cols();
    ph.end(&mut stats.phases);
    // Trip wins over the spurious degeneracy an abandoned ortho creates.
    crate::supervise::budget_check_strict(phase::DORTHO);
    assert!(smat.cols() >= 2, "fewer than two directions survived");

    // TripleProd through the explicit Laplacian.
    let ph = PhaseSpan::begin(phase::LS);
    let p = laplacian.spmm(&smat);
    ph.end(&mut stats.phases);
    crate::supervise::budget_check_strict(phase::LS);
    let ph = PhaseSpan::begin(phase::GEMM);
    let z = at_b(&smat, &p);
    ph.end(&mut stats.phases);
    crate::supervise::budget_check_strict(phase::GEMM);

    // Eigensolve + projection, identical to ParHDE.
    let ph = PhaseSpan::begin(phase::EIGEN);
    let (y, mus) = subspace_axes(&smat, &z, weights);
    stats.axis_eigenvalues = mus;
    ph.end(&mut stats.phases);
    let ph = PhaseSpan::begin(phase::PROJECT);
    let coords = a_small(&smat, &y);
    let layout = Layout::new(coords.col(0).to_vec(), coords.col(1).to_vec());
    ph.end(&mut stats.phases);
    (layout, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parhde::par_hde;
    use parhde_graph::gen::grid2d;

    #[test]
    fn prior_matches_parhde_result() {
        // Same pivots (deterministic BFS distances), same math ⇒ the two
        // implementations must agree numerically; only speed differs.
        let g = grid2d(15, 15);
        let cfg = ParHdeConfig::default();
        let (la, sa) = par_hde(&g, &cfg);
        let (lb, sb) = prior_hde(&g, &cfg);
        assert_eq!(sa.sources, sb.sources);
        assert_eq!(sa.s_kept, sb.s_kept);
        for (a, b) in la.x.iter().zip(&lb.x) {
            assert!((a - b).abs() < 1e-8);
        }
        for (a, b) in la.y.iter().zip(&lb.y) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn prior_reports_no_direction_opt_stats() {
        let g = grid2d(10, 10);
        let (_, stats) = prior_hde(&g, &ParHdeConfig::default());
        // Sequential BFS records no traversal statistics.
        assert_eq!(stats.traversal.total_edges(), 0);
    }
}
