//! Layout quality metrics.
//!
//! The paper evaluates drawings qualitatively ("all the drawings capture
//! global structure with four holes"); for automated testing this module
//! provides scalar proxies: a good layout places edge endpoints much closer
//! together than random vertex pairs, and it does not collapse onto a line
//! or point.

use crate::layout::Layout;
use parhde_graph::CsrGraph;
use parhde_util::Xoshiro256StarStar;

/// Scalar quality measurements of a layout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayoutQuality {
    /// Mean Euclidean length of (sampled) graph edges in the layout.
    pub mean_edge_length: f64,
    /// Mean Euclidean distance between (sampled) uniformly random vertex
    /// pairs.
    pub mean_random_pair_distance: f64,
    /// Standard deviation of coordinates along x and y.
    pub spread: (f64, f64),
}

impl LayoutQuality {
    /// The edge-contraction ratio (edge length / random-pair distance);
    /// lower is better, 1.0 means the layout carries no structure.
    pub fn contraction(&self) -> f64 {
        if self.mean_random_pair_distance <= 0.0 {
            return 1.0;
        }
        self.mean_edge_length / self.mean_random_pair_distance
    }
}

/// Measures layout quality by sampling up to `samples` edges and the same
/// number of random pairs.
///
/// # Panics
/// Panics if sizes mismatch or the graph has no edges.
pub fn layout_quality(
    g: &CsrGraph,
    layout: &Layout,
    samples: usize,
    seed: u64,
) -> LayoutQuality {
    assert_eq!(layout.len(), g.num_vertices(), "layout/graph size mismatch");
    assert!(g.num_edges() > 0, "quality of an edgeless graph is undefined");
    assert!(samples > 0, "need at least one sample");
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let n = g.num_vertices();

    // Sample edges via random (vertex, incident-edge) draws weighted by
    // degree — cheap and adequate for a metric.
    let mut edge_total = 0.0;
    let mut edge_count = 0usize;
    while edge_count < samples {
        let v = rng.next_index(n) as u32;
        let deg = g.degree(v);
        if deg == 0 {
            continue;
        }
        let u = g.neighbors(v)[rng.next_index(deg)];
        edge_total += layout.distance(u, v);
        edge_count += 1;
    }

    let mut pair_total = 0.0;
    for _ in 0..samples {
        let a = rng.next_index(n) as u32;
        let b = rng.next_index(n) as u32;
        pair_total += layout.distance(a, b);
    }

    LayoutQuality {
        mean_edge_length: edge_total / samples as f64,
        mean_random_pair_distance: pair_total / samples as f64,
        spread: layout.axis_stddev(),
    }
}

/// The constrained-minimization objective of Equation 1 evaluated for a
/// 2-D layout: `Σ_k (x_kᵀ L x_k) / (x_kᵀ D x_k)`. Lower is better; for the
/// optimal degree-normalized eigenvectors this equals `μ₂ + μ₃`.
pub fn energy_objective(g: &CsrGraph, layout: &Layout) -> f64 {
    let deg = g.degree_vector();
    let mut total = 0.0;
    for axis in [&layout.x, &layout.y] {
        let mut num = 0.0;
        for (u, v) in g.edges() {
            num += (axis[u as usize] - axis[v as usize]).powi(2);
        }
        let den: f64 = axis
            .iter()
            .zip(&deg)
            .map(|(x, d)| x * x * d)
            .sum();
        if den > 0.0 {
            total += num / den;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParHdeConfig;
    use crate::parhde::par_hde;
    use parhde_graph::gen::{chain, grid2d};
    use parhde_linalg::eig::power::dominant_walk_eigenvectors;

    #[test]
    fn chain_natural_layout_contracts_edges() {
        let g = chain(100);
        let layout = Layout::new(
            (0..100).map(|i| i as f64).collect(),
            vec![0.0; 100],
        );
        let q = layout_quality(&g, &layout, 200, 1);
        assert!(q.mean_edge_length <= 1.0 + 1e-9);
        assert!(q.mean_random_pair_distance > 10.0);
        assert!(q.contraction() < 0.1);
    }

    #[test]
    fn random_layout_has_contraction_near_one() {
        let g = grid2d(20, 20);
        let mut rng = parhde_util::Xoshiro256StarStar::seed_from_u64(5);
        let layout = Layout::new(
            (0..400).map(|_| rng.next_f64()).collect(),
            (0..400).map(|_| rng.next_f64()).collect(),
        );
        let q = layout_quality(&g, &layout, 1000, 2);
        assert!(
            (q.contraction() - 1.0).abs() < 0.15,
            "random layout contraction {} should be ≈ 1",
            q.contraction()
        );
    }

    #[test]
    fn energy_of_eigenvector_layout_matches_eigenvalues() {
        // For exact degree-normalized eigenvectors, the objective equals
        // (1−λ₂) + (1−λ₃) in walk eigenvalues = μ₂ + μ₃.
        let g = grid2d(8, 8);
        let (vecs, report) =
            dominant_walk_eigenvectors(&g, 2, 4000, 1e-12, 3, None);
        let layout = Layout::new(vecs[0].clone(), vecs[1].clone());
        let expected: f64 = report.eigenvalues.iter().map(|l| 1.0 - l).sum();
        let measured = energy_objective(&g, &layout);
        assert!(
            (measured - expected).abs() < 1e-6,
            "objective {measured} vs eigenvalue sum {expected}"
        );
    }

    #[test]
    fn hde_energy_is_close_to_spectral_optimum() {
        // HDE approximates the spectral solution: its objective should be
        // within a small factor of the optimum (and far below random).
        let g = grid2d(12, 12);
        let (layout, _) = par_hde(&g, &ParHdeConfig::default());
        let hde_energy = energy_objective(&g, &layout);
        let (vecs, _) = dominant_walk_eigenvectors(&g, 2, 4000, 1e-12, 3, None);
        let opt = energy_objective(&g, &Layout::new(vecs[0].clone(), vecs[1].clone()));
        let mut rng = parhde_util::Xoshiro256StarStar::seed_from_u64(9);
        let rand_layout = Layout::new(
            (0..144).map(|_| rng.next_f64()).collect(),
            (0..144).map(|_| rng.next_f64()).collect(),
        );
        let rand_energy = energy_objective(&g, &rand_layout);
        assert!(
            hde_energy < opt * 20.0 && hde_energy < rand_energy * 0.5,
            "HDE {hde_energy} vs optimum {opt} vs random {rand_energy}"
        );
    }

    #[test]
    #[should_panic(expected = "edgeless")]
    fn edgeless_graph_rejected() {
        let g = parhde_graph::builder::build_from_edges(3, vec![]);
        let layout = Layout::new(vec![0.0; 3], vec![0.0; 3]);
        layout_quality(&g, &layout, 10, 0);
    }
}
