//! Weighted-centroid refinement and eigensolver preconditioning (§4.5.3).
//!
//! Kirmani et al. observed that HDE followed by a lightweight *weighted
//! centroid refinement* closely approximates the true degree-normalized
//! eigenvectors — "one could go from the top drawing to the bottom drawing
//! in Figure 1" — at a fraction of the cost of running power iteration from
//! scratch (22×–131× faster in their Table 6). A centroid sweep moves every
//! vertex to the average of its neighbors, i.e. applies the walk matrix
//! `D⁻¹A`; interleaved D-orthogonalization against the constant vector and
//! the other axis keeps the two directions from collapsing onto each other.
//!
//! [`refined_axes`] exposes the refinement; together with the warm-start
//! support in [`parhde_linalg::eig::power`], it realizes the paper's
//! "ParHDE as preprocessing for iterative eigensolvers" extension.

use crate::layout::Layout;
use parhde_graph::CsrGraph;
use parhde_linalg::blas1::{axpy, dot_weighted, norm2, scale};
use rayon::prelude::*;

/// Applies `sweeps` weighted-centroid sweeps to the layout axes.
///
/// Each sweep maps every axis `x` to `D⁻¹A·x` (each vertex to its
/// neighbors' centroid), then re-imposes the layout constraints:
/// D-orthogonality to `1ₙ` and between the two axes, unit norm. With enough
/// sweeps this converges to the dominant non-trivial degree-normalized
/// eigenvectors; a handful of sweeps suffices to "clean up" an HDE layout.
///
/// Returns the refined layout.
///
/// # Panics
/// Panics if sizes mismatch or the graph has an isolated vertex.
pub fn refined_axes(g: &CsrGraph, layout: &Layout, sweeps: usize) -> Layout {
    let n = g.num_vertices();
    assert_eq!(layout.len(), n, "layout/graph size mismatch");
    let deg = g.degree_vector();
    assert!(
        deg.iter().all(|&d| d > 0.0),
        "centroid refinement undefined for isolated vertices"
    );
    let mut x = layout.x.clone();
    let mut y = layout.y.clone();
    let ones = vec![1.0; n];
    let total_degree: f64 = deg.iter().sum();

    for _ in 0..sweeps {
        // Shifted sweep (x + D⁻¹Ax)/2: same fixed points, but convergence
        // targets the largest *algebraic* walk eigenvalue — plain centroid
        // averaging would lock onto the λ ≈ −1 end on bipartite graphs.
        x = shifted_centroid_sweep(g, &x);
        y = shifted_centroid_sweep(g, &y);
        // Re-impose constraints (cheap O(n) work).
        for axis in [&mut x, &mut y] {
            // D-orthogonality to 1: subtract the degree-weighted mean.
            let mean = dot_weighted(axis, &deg, &ones) / total_degree;
            axpy(-mean, &ones, axis);
        }
        // D-orthogonalize y against x.
        let xx = dot_weighted(&x, &deg, &x);
        if xx > 0.0 {
            let coeff = dot_weighted(&x, &deg, &y) / xx;
            let x_snapshot = x.clone();
            axpy(-coeff, &x_snapshot, &mut y);
        }
        for axis in [&mut x, &mut y] {
            let norm = norm2(axis);
            assert!(norm > 0.0, "axis collapsed during refinement");
            scale(1.0 / norm, axis);
        }
    }
    Layout::new(x, y)
}

/// One shifted centroid sweep:
/// `out[v] = ½·(x[v] + (Σ_{u ∈ Adj(v)} x[u]) / deg(v))`.
fn shifted_centroid_sweep(g: &CsrGraph, x: &[f64]) -> Vec<f64> {
    (0..g.num_vertices())
        .into_par_iter()
        .map(|v| {
            let nb = g.neighbors(v as u32);
            let mut acc = 0.0;
            for &u in nb {
                acc += x[u as usize];
            }
            0.5 * (x[v] + acc / nb.len() as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParHdeConfig;
    use crate::parhde::par_hde;
    use crate::quality::energy_objective;
    use parhde_graph::gen::grid2d;
    use parhde_linalg::eig::power::dominant_walk_eigenvectors;

    #[test]
    fn refinement_lowers_the_energy_objective() {
        let g = grid2d(16, 16);
        let (layout, _) = par_hde(&g, &ParHdeConfig::default());
        let before = energy_objective(&g, &layout);
        let refined = refined_axes(&g, &layout, 30);
        let after = energy_objective(&g, &refined);
        assert!(
            after < before,
            "refinement should reduce energy: {before} → {after}"
        );
    }

    #[test]
    fn refinement_converges_towards_spectral_optimum() {
        let g = grid2d(12, 12);
        let (layout, _) = par_hde(&g, &ParHdeConfig::default());
        let refined = refined_axes(&g, &layout, 200);
        let energy = energy_objective(&g, &refined);
        let (vecs, _) = dominant_walk_eigenvectors(&g, 2, 5000, 1e-12, 3, None);
        let opt = energy_objective(
            &g,
            &Layout::new(vecs[0].clone(), vecs[1].clone()),
        );
        assert!(
            energy < opt * 1.1 + 1e-9,
            "refined energy {energy} should approach optimum {opt}"
        );
    }

    #[test]
    fn refined_axes_satisfy_constraints() {
        let g = grid2d(10, 10);
        let (layout, _) = par_hde(&g, &ParHdeConfig::default());
        let refined = refined_axes(&g, &layout, 10);
        let deg = g.degree_vector();
        let ones = vec![1.0; 100];
        // D-orthogonal to 1 and to each other; unit 2-norm.
        assert!(dot_weighted(&refined.x, &deg, &ones).abs() < 1e-8);
        assert!(dot_weighted(&refined.y, &deg, &ones).abs() < 1e-8);
        assert!(dot_weighted(&refined.x, &deg, &refined.y).abs() < 1e-8);
        assert!((norm2(&refined.x) - 1.0).abs() < 1e-10);
        assert!((norm2(&refined.y) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn hde_warm_start_beats_cold_power_iteration() {
        // The §4.5.3 claim in miniature: seeding the eigensolver with
        // refined HDE axes takes far fewer matvecs than a random start.
        let g = grid2d(14, 14);
        let (layout, _) = par_hde(&g, &ParHdeConfig::default());
        let refined = refined_axes(&g, &layout, 5);
        let init = vec![refined.x.clone(), refined.y.clone()];
        let (_, cold) = dominant_walk_eigenvectors(&g, 2, 20_000, 1e-10, 7, None);
        let (_, warm) =
            dominant_walk_eigenvectors(&g, 2, 20_000, 1e-10, 7, Some(&init));
        assert!(
            warm.matvecs * 2 < cold.matvecs,
            "warm {} vs cold {} matvecs",
            warm.matvecs,
            cold.matvecs
        );
    }

    #[test]
    fn zero_sweeps_is_identity_modulo_nothing() {
        let g = grid2d(6, 6);
        let (layout, _) = par_hde(&g, &ParHdeConfig::default());
        let same = refined_axes(&g, &layout, 0);
        assert_eq!(same, layout);
    }
}
