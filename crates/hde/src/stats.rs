//! Per-run statistics and phase breakdowns.
//!
//! Figures 3, 5 and 6 of the paper are percentage breakdowns over four
//! canonical buckets — BFS, TripleProd, DOrtho, Other — with Figure 5
//! additionally splitting BFS into traversal vs. overhead and TripleProd
//! into `LS` vs. `Sᵀ(LS)`. [`HdeStats`] records the fine-grained phases and
//! [`HdeStats::grouped`] folds them into the canonical buckets.

use parhde_bfs::TraversalStats;
use parhde_util::{PhaseTimes, Timer};

/// Fine-grained phase names recorded by the pipelines.
pub mod phase {
    /// BFS/SSSP traversal proper.
    pub const BFS: &str = "bfs";
    /// Source-selection overhead (min-distance update + farthest argmax).
    pub const BFS_OTHER: &str = "bfs_other";
    /// Gram-Schmidt (D-)orthogonalization.
    pub const DORTHO: &str = "dortho";
    /// The `P = L·S` implicit SpMM.
    pub const LS: &str = "ls";
    /// The `Z = Sᵀ·P` dense product ("dgemm" in the paper).
    pub const GEMM: &str = "gemm";
    /// The fused one-pass TripleProd `Z = Sᵀ·L·S` (replaces `ls` + `gemm`
    /// under `--linalg-mode fused`).
    pub const FUSED: &str = "fused_triple";
    /// Column centering (PHDE).
    pub const COL_CENTER: &str = "col_center";
    /// Double centering (PivotMDS).
    pub const DBL_CENTER: &str = "dbl_center";
    /// The small eigensolve.
    pub const EIGEN: &str = "eigensolve";
    /// Final projection to coordinates.
    pub const PROJECT: &str = "project";
    /// Initialization (allocation, seeding).
    pub const INIT: &str = "init";
    /// Post-BFS checkpoint serialization.
    pub const CHECKPOINT: &str = "checkpoint";
}

/// Mirrors `w` into the active trace session as a structured warning event
/// (no-op when tracing is disabled), then hands it back for storage.
pub(crate) fn trace_warning(w: crate::Warning) -> crate::Warning {
    if parhde_trace::enabled() {
        parhde_trace::warning(&w.to_string());
    }
    w
}

/// A phase measurement that is simultaneously a wall-clock timer (feeding
/// [`HdeStats::phases`]) and a hierarchical trace span (feeding an active
/// `parhde_trace::TraceSession`, if any). The pipelines wrap every stage in
/// one of these so the printed breakdown and the exported trace are two
/// views of the *same* intervals and can never disagree.
#[must_use = "a PhaseSpan measures nothing unless ended"]
pub struct PhaseSpan {
    name: &'static str,
    timer: Timer,
    guard: parhde_trace::SpanGuard,
    /// Peak RSS (VmHWM) at phase entry; `None` when tracing is off or the
    /// proc pseudo-file is unavailable.
    rss_begin: Option<u64>,
}

impl PhaseSpan {
    /// Starts timing phase `name` and opens the matching trace span. When a
    /// trace session is active, also samples the process's peak RSS so the
    /// phase's high-water-mark growth can be reported.
    pub fn begin(name: &'static str) -> Self {
        let rss_begin = if parhde_trace::enabled() {
            parhde_trace::peak_rss_bytes()
        } else {
            None
        };
        Self { name, timer: Timer::start(), guard: parhde_trace::span(name), rss_begin }
    }

    /// Closes the span and accumulates the elapsed time under the phase
    /// name. With tracing active, emits the phase's peak-RSS growth as the
    /// counter `process.peak_rss_delta.<phase>` (0 for phases that ran
    /// inside already-reserved memory) — the per-phase view of the fused
    /// path's memory win.
    pub fn end(self, phases: &mut PhaseTimes) {
        if let (Some(b), Some(e)) = (self.rss_begin, parhde_trace::peak_rss_bytes()) {
            parhde_trace::counter!(rss_counter(self.name), e.saturating_sub(b));
        }
        drop(self.guard);
        phases.add(self.name, self.timer.elapsed());
    }
}

/// Maps a phase name to its `process.peak_rss_delta.*` counter (counter
/// names must be `&'static str`, hence the static table).
fn rss_counter(name: &str) -> &'static str {
    match name {
        "bfs" => "process.peak_rss_delta.bfs",
        "bfs_other" => "process.peak_rss_delta.bfs_other",
        "dortho" => "process.peak_rss_delta.dortho",
        "ls" => "process.peak_rss_delta.ls",
        "gemm" => "process.peak_rss_delta.gemm",
        "fused_triple" => "process.peak_rss_delta.fused_triple",
        "col_center" => "process.peak_rss_delta.col_center",
        "dbl_center" => "process.peak_rss_delta.dbl_center",
        "eigensolve" => "process.peak_rss_delta.eigensolve",
        "project" => "process.peak_rss_delta.project",
        "init" => "process.peak_rss_delta.init",
        "checkpoint" => "process.peak_rss_delta.checkpoint",
        _ => "process.peak_rss_delta.other",
    }
}

/// The four canonical breakdown buckets of Figures 3/5/6.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GroupedBreakdown {
    /// BFS traversal + source selection, seconds.
    pub bfs: f64,
    /// `LS` + `Sᵀ(LS)` (or the centering + matmul stages for PHDE/PivotMDS),
    /// seconds.
    pub triple_prod: f64,
    /// (D-)orthogonalization, seconds.
    pub dortho: f64,
    /// Everything else (eigensolve, projection, init), seconds.
    pub other: f64,
}

impl GroupedBreakdown {
    /// Total seconds across buckets.
    pub fn total(&self) -> f64 {
        self.bfs + self.triple_prod + self.dortho + self.other
    }

    /// The buckets as named `(label, seconds)` entries in canonical order —
    /// the rows of the Figure-3 breakdown table and of the run report.
    pub fn entries(&self) -> Vec<(String, f64)> {
        vec![
            ("BFS".to_string(), self.bfs),
            ("TripleProd".to_string(), self.triple_prod),
            ("DOrtho".to_string(), self.dortho),
            ("Other".to_string(), self.other),
        ]
    }

    /// Percentages in bucket order `[bfs, triple_prod, dortho, other]`
    /// (all zeros if nothing was recorded).
    pub fn percentages(&self) -> [f64; 4] {
        let t = self.total();
        if t <= 0.0 {
            return [0.0; 4];
        }
        [
            100.0 * self.bfs / t,
            100.0 * self.triple_prod / t,
            100.0 * self.dortho / t,
            100.0 * self.other / t,
        ]
    }
}

/// Statistics from one layout-pipeline run.
#[derive(Clone, Debug, Default)]
pub struct HdeStats {
    /// Fine-grained phase times.
    pub phases: PhaseTimes,
    /// Aggregated traversal statistics over all BFS runs (zeroed when the
    /// traversal does not report stats, e.g. sequential BFS or SSSP).
    pub traversal: TraversalStats,
    /// Requested subspace dimension `s`.
    pub s_requested: usize,
    /// Columns surviving orthogonalization (excluding the constant column).
    pub s_kept: usize,
    /// Degenerate columns dropped by DOrtho.
    pub dropped_columns: usize,
    /// The eigenvalues selected for the two layout axes (generalized
    /// Rayleigh quotients for ParHDE; `CᵀC` eigenvalues for PHDE/PivotMDS).
    pub axis_eigenvalues: Vec<f64>,
    /// The pivot vertices used, in selection order.
    pub sources: Vec<u32>,
    /// The BFS execution mode the planner resolved to (`"direction_opt"`,
    /// `"per_source"` or `"batched"`); `None` when no BFS phase ran.
    pub bfs_mode: Option<&'static str>,
    /// The TripleProd execution mode (`"fused"` or `"staged"`); `None`
    /// when the pipeline has no TripleProd-shaped phase.
    pub linalg_mode: Option<&'static str>,
    /// The compute-backend knob the run was configured with (`"auto"`,
    /// `"scalar"` or `"simd"`); `None` when the pipeline never installed
    /// one.
    pub backend: Option<&'static str>,
    /// The backend that actually served the kernels after `auto`
    /// resolution (`"scalar"` or `"simd"`); `None` when none was installed.
    pub backend_executed: Option<&'static str>,
    /// Degradations the fail-soft pipeline absorbed (empty on a clean run;
    /// always empty for the strict/panicking entry points).
    pub warnings: Vec<crate::Warning>,
}

impl HdeStats {
    /// Folds fine-grained phases into the four canonical buckets.
    pub fn grouped(&self) -> GroupedBreakdown {
        let p = &self.phases;
        GroupedBreakdown {
            bfs: p.seconds(phase::BFS) + p.seconds(phase::BFS_OTHER),
            triple_prod: p.seconds(phase::LS)
                + p.seconds(phase::GEMM)
                + p.seconds(phase::FUSED)
                + p.seconds(phase::COL_CENTER)
                + p.seconds(phase::DBL_CENTER),
            dortho: p.seconds(phase::DORTHO),
            other: p.seconds(phase::EIGEN)
                + p.seconds(phase::PROJECT)
                + p.seconds(phase::INIT),
        }
    }

    /// Total wall seconds across all recorded phases.
    pub fn total_seconds(&self) -> f64 {
        self.phases.total().as_secs_f64()
    }

    /// Records a degradation: the warning lands in [`HdeStats::warnings`]
    /// *and* — when a trace session is active — in the event stream as a
    /// structured warning event under the currently open span.
    pub fn warn(&mut self, w: crate::Warning) {
        self.warnings.push(trace_warning(w));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn grouping_folds_correctly() {
        let mut s = HdeStats::default();
        s.phases.add(phase::BFS, Duration::from_millis(60));
        s.phases.add(phase::BFS_OTHER, Duration::from_millis(40));
        s.phases.add(phase::LS, Duration::from_millis(30));
        s.phases.add(phase::GEMM, Duration::from_millis(20));
        s.phases.add(phase::DORTHO, Duration::from_millis(25));
        s.phases.add(phase::EIGEN, Duration::from_millis(5));
        let g = s.grouped();
        assert!((g.bfs - 0.1).abs() < 1e-9);
        assert!((g.triple_prod - 0.05).abs() < 1e-9);
        assert!((g.dortho - 0.025).abs() < 1e-9);
        assert!((g.other - 0.005).abs() < 1e-9);
        assert!((g.total() - 0.18).abs() < 1e-9);
        let pct = g.percentages();
        assert!((pct.iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fused_phase_folds_into_triple_prod() {
        let mut s = HdeStats::default();
        s.phases.add(phase::FUSED, Duration::from_millis(50));
        let g = s.grouped();
        assert!((g.triple_prod - 0.05).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_all_zero() {
        let s = HdeStats::default();
        let g = s.grouped();
        assert_eq!(g.total(), 0.0);
        assert_eq!(g.percentages(), [0.0; 4]);
        assert_eq!(s.total_seconds(), 0.0);
    }
}
