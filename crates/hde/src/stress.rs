//! Sparse stress majorization seeded by ParHDE (§4.5.4).
//!
//! "It is known that PHDE's layout serves as a good initialization for
//! layout using stress majorization. We could consider replacing PHDE by
//! ParHDE to see if this speeds up this optimization problem." This module
//! implements that experiment: the *sparse* stress model (all graph edges
//! plus a few landmark pairs per vertex, with the standard `w = 1/d²`
//! weights) minimized by Jacobi-style majorization sweeps — each vertex
//! moves to the weighted average of the positions its constraints ask for,
//! computed in parallel from the previous iterate, which keeps the sweep
//! deterministic.

use crate::layout::Layout;
use parhde_bfs::serial::bfs_serial;
use parhde_graph::CsrGraph;
use parhde_util::Xoshiro256StarStar;
use rayon::prelude::*;

/// One stress term: vertex `other` should sit at distance `target`.
#[derive(Clone, Copy, Debug)]
struct Term {
    other: u32,
    target: f64,
    weight: f64,
}

/// The sparse stress model: per-vertex constraint lists.
#[derive(Clone, Debug)]
pub struct StressModel {
    terms: Vec<Vec<Term>>,
}

impl StressModel {
    /// Builds the model from all graph edges (target distance 1) plus BFS
    /// distances to `landmarks` randomly chosen landmark vertices —
    /// the sparse surrogate for all-pairs stress that keeps cost
    /// near-linear. Weights follow the standard `1/d²` rule.
    ///
    /// # Panics
    /// Panics if the graph is disconnected (landmark distances must be
    /// finite) or has no vertices.
    pub fn build(g: &CsrGraph, landmarks: usize, seed: u64) -> Self {
        let n = g.num_vertices();
        assert!(n > 0, "empty graph");
        let mut terms: Vec<Vec<Term>> = (0..n as u32)
            .map(|v| {
                g.neighbors(v)
                    .iter()
                    .map(|&u| Term { other: u, target: 1.0, weight: 1.0 })
                    .collect()
            })
            .collect();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed ^ 0x57E5);
        let picks = rng.sample_distinct(n, landmarks.min(n));
        for lm in picks {
            let r = bfs_serial(g, lm as u32);
            assert_eq!(
                r.reached, n,
                "stress model requires a connected graph"
            );
            for v in 0..n {
                let d = r.dist[v] as f64;
                if d > 0.0 {
                    let w = 1.0 / (d * d);
                    terms[v].push(Term { other: lm as u32, target: d, weight: w });
                    terms[lm].push(Term { other: v as u32, target: d, weight: w });
                }
            }
        }
        Self { terms }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if the model covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The (sparse) stress of a layout under this model:
    /// `Σ w·(‖x_i − x_j‖ − d_ij)²` with each pair counted once.
    pub fn stress(&self, layout: &Layout) -> f64 {
        assert_eq!(layout.len(), self.terms.len(), "layout size mismatch");
        self.terms
            .par_iter()
            .enumerate()
            .map(|(v, list)| {
                let mut acc = 0.0;
                for t in list {
                    if (t.other as usize) < v {
                        continue; // count each unordered pair once
                    }
                    let d = layout.distance(v as u32, t.other);
                    acc += t.weight * (d - t.target).powi(2);
                }
                acc
            })
            .sum()
    }

    /// Runs `sweeps` Jacobi majorization sweeps from `start`, returning the
    /// improved layout. Each sweep reads only the previous iterate, so the
    /// result is independent of thread count.
    pub fn majorize(&self, start: &Layout, sweeps: usize) -> Layout {
        assert_eq!(start.len(), self.terms.len(), "layout size mismatch");
        let mut x = start.x.clone();
        let mut y = start.y.clone();
        for _ in 0..sweeps {
            let updates: Vec<(f64, f64)> = self
                .terms
                .par_iter()
                .enumerate()
                .map(|(v, list)| {
                    if list.is_empty() {
                        return (x[v], y[v]);
                    }
                    let (mut nx, mut ny, mut wsum) = (0.0, 0.0, 0.0);
                    for t in list {
                        let o = t.other as usize;
                        let dx = x[v] - x[o];
                        let dy = y[v] - y[o];
                        let dist = (dx * dx + dy * dy).sqrt();
                        // The majorizer places v at `other + target · unit
                        // vector towards v`; coincident points fall back to
                        // a fixed direction so progress is deterministic.
                        let (ux, uy) = if dist > 1e-12 {
                            (dx / dist, dy / dist)
                        } else {
                            (1.0, 0.0)
                        };
                        nx += t.weight * (x[o] + t.target * ux);
                        ny += t.weight * (y[o] + t.target * uy);
                        wsum += t.weight;
                    }
                    (nx / wsum, ny / wsum)
                })
                .collect();
            for (v, (ux, uy)) in updates.into_iter().enumerate() {
                x[v] = ux;
                y[v] = uy;
            }
        }
        Layout::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParHdeConfig;
    use crate::parhde::par_hde;
    use parhde_graph::gen::{chain, grid2d};

    #[test]
    fn stress_of_perfect_chain_layout_is_zero() {
        let g = chain(20);
        let model = StressModel::build(&g, 0, 1);
        let perfect = Layout::new(
            (0..20).map(|i| i as f64).collect(),
            vec![0.0; 20],
        );
        assert!(model.stress(&perfect) < 1e-12);
    }

    #[test]
    fn majorization_reduces_stress_from_random() {
        let g = grid2d(15, 15);
        let model = StressModel::build(&g, 4, 2);
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let random = Layout::new(
            (0..225).map(|_| rng.next_f64() * 10.0).collect(),
            (0..225).map(|_| rng.next_f64() * 10.0).collect(),
        );
        let s0 = model.stress(&random);
        let improved = model.majorize(&random, 30);
        let s1 = model.stress(&improved);
        assert!(
            s1 < 0.5 * s0,
            "stress should drop substantially: {s0:.3} → {s1:.3}"
        );
    }

    #[test]
    fn parhde_initialization_beats_random_initialization() {
        // The §4.5.4 hypothesis: starting from ParHDE, few sweeps suffice.
        let g = grid2d(20, 20);
        let model = StressModel::build(&g, 4, 5);
        let (hde, _) = par_hde(&g, &ParHdeConfig::default());
        // Scale the HDE layout to the right size regime first (stress cares
        // about absolute distances; one majorization sweep fixes scale).
        let hde_scaled = model.majorize(&hde, 1);
        let hde_stress = model.stress(&model.majorize(&hde_scaled, 10));

        let mut rng = Xoshiro256StarStar::seed_from_u64(8);
        let random = Layout::new(
            (0..400).map(|_| rng.next_f64()).collect(),
            (0..400).map(|_| rng.next_f64()).collect(),
        );
        let rand_stress = model.stress(&model.majorize(&random, 11));
        assert!(
            hde_stress <= rand_stress * 1.05,
            "after equal sweeps, HDE start {hde_stress:.3} should not lose to \
             random start {rand_stress:.3}"
        );
    }

    #[test]
    fn majorization_is_deterministic_across_threads() {
        let g = grid2d(10, 10);
        let model = StressModel::build(&g, 3, 7);
        let (hde, _) = par_hde(&g, &ParHdeConfig::default());
        let a = parhde_util::threads::run_with_threads(1, || model.majorize(&hde, 5));
        let b = parhde_util::threads::run_with_threads(4, || model.majorize(&hde, 5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "connected graph")]
    fn disconnected_graph_rejected() {
        let g = parhde_graph::builder::build_from_edges(4, vec![(0, 1), (2, 3)]);
        StressModel::build(&g, 2, 0);
    }
}
