//! Run supervision: cooperative budget checks, memory admission, and the
//! degraded-retry ladder (DESIGN.md §11).
//!
//! The [`parhde_util::supervisor`] layer owns the ambient [`RunBudget`];
//! this module is the pipeline side of the contract:
//!
//! * [`budget_check`] converts an ambient budget trip into a typed
//!   [`HdeError`] at a phase boundary, and polls resident-set size against
//!   the soft memory budget (kernels never poll memory — an RSS read is a
//!   `/proc` file read, far too slow for a hot loop);
//! * [`estimate_run_bytes`]/[`admit`] implement pre-run memory admission:
//!   the run is rejected or its subspace dimension shrunk *before* the big
//!   allocations happen, so the soft budget is respected by construction
//!   rather than by after-the-fact unwinding;
//! * [`try_par_hde_nd_supervised`] walks the degraded-retry ladder: when a
//!   rung trips its slice of the deadline (or the memory budget), the next
//!   rung retries with a cheaper configuration, ending at a trivial layout
//!   that always succeeds. Cancellation is sticky and never retried.
//!
//! # Deadline slicing
//!
//! A single wall-clock deadline `D` covers the *whole* supervised run, not
//! each rung. The ladder arms per-rung deadlines at fixed fractions of `D`
//! measured from the supervised start — 0.55·D for the full run, 0.75·D
//! after one halving, 0.9·D for the batched-BFS rung, 0.97·D for the PHDE
//! fallback — so even a run that exhausts every rung produces its trivial
//! layout and returns within a small overshoot of `D` (the distance the
//! active kernel travels between two cooperative checks).

use crate::checkpoint::CheckpointSpec;
use crate::config::{BfsMode, LinalgMode, ParHdeConfig, PivotStrategy};
use crate::error::{trivial_coords, HdeError, Warning};
use crate::phde::PhdeConfig;
use crate::stats::{trace_warning, HdeStats};
use parhde_graph::store::GraphStore;
use parhde_linalg::dense::ColMajorMatrix;
use parhde_util::supervisor;
use parhde_util::RunBudget;
use std::time::{Duration, Instant};

/// Converts an ambient budget trip into a typed error at a phase boundary,
/// after polling resident-set size against the soft memory budget.
///
/// Fail-soft pipelines call this between phases; the cooperative kernels
/// only *abandon* work (cheap partial results), and this is where the
/// abandonment becomes a typed [`HdeError`] instead of garbage flowing
/// downstream.
///
/// # Errors
/// [`HdeError::DeadlineExceeded`], [`HdeError::MemoryBudgetExceeded`] or
/// [`HdeError::Cancelled`], tagged with `phase`.
pub(crate) fn budget_check(phase: &'static str) -> Result<(), HdeError> {
    poll_memory();
    supervisor::should_stop();
    match supervisor::ambient_trip() {
        Some(reason) => Err(HdeError::from_trip(reason, phase)),
        None => Ok(()),
    }
}

/// [`budget_check`] for the strict (panicking) pipelines: trips surface as
/// a panic carrying the typed error's message, mirroring how strict entry
/// points report every other defect.
pub(crate) fn budget_check_strict(phase: &'static str) {
    poll_memory();
    supervisor::should_stop();
    if let Some(reason) = supervisor::ambient_trip() {
        let e = HdeError::from_trip(reason, phase);
        panic!("{e}");
    }
}

/// One RSS-vs-budget poll. `VmRSS` (not the `VmHWM` high-water mark) so a
/// rung retried after freeing the tripped allocation is not condemned by
/// history it no longer occupies.
fn poll_memory() {
    if let Some(budget) = supervisor::ambient_mem_budget() {
        if let Some(rss) = parhde_trace::current_rss_bytes() {
            if rss > budget {
                supervisor::ambient_trip_memory();
            }
        }
    }
}

/// Estimated peak working set, in bytes, of a ParHDE run on a graph with
/// `n` vertices and `m` undirected edges using `s` pivots and a
/// `p`-dimensional embedding — the input to memory admission.
///
/// Counts the CSR graph itself (offsets + adjacency), the `n×s` distance
/// matrix `B`, the `n×(s+1)` basis `S`, the TripleProd working set (under
/// [`LinalgMode::Staged`] the materialized `L·S` product plus the SpMM's
/// collected row-block partials plus the packed row-major copy of `S` —
/// peak 3×`n×(s+1)`; under [`LinalgMode::Fused`] just the pack), the
/// degree vector, per-mode BFS scratch (bit-lane rows for
/// [`BfsMode::Batched`], a distance buffer otherwise), the small `s×s`
/// matrices, and the output coordinates. Deliberately a slight
/// *over*-estimate: admission should err toward downscaling, since the
/// runtime RSS trip that backstops it is much more disruptive.
pub fn estimate_run_bytes(
    n: usize,
    m: usize,
    s: usize,
    p: usize,
    mode: BfsMode,
    linalg: LinalgMode,
) -> u64 {
    let graph = (n as u64 + 1) * 8 + 2 * m as u64 * 4; // offsets + symmetric u32 adjacency
    graph + estimate_workspace_bytes(n, s, p, mode, linalg)
}

/// [`estimate_run_bytes`] with the graph term priced from the store that
/// will actually be traversed instead of the plain-CSR formula.
///
/// For [`StorageKind::Plain`](parhde_graph::store::StorageKind) the two
/// agree exactly (a `CsrGraph`'s resident bytes *are* its offsets plus
/// adjacency). Compressed storage is charged its resident footprint —
/// heap-held varint blocks, or just the offset/degree sidecars when the
/// blocks live in a file mapping the kernel pages on demand — plus one
/// max-degree decode scratch per worker thread, which is what the chunked
/// kernels actually allocate. This is how admission learns that a
/// compressed or mmap-backed graph leaves more of the budget for the
/// subspace.
pub fn estimate_run_bytes_stored<G: GraphStore>(
    g: &G,
    s: usize,
    p: usize,
    mode: BfsMode,
    linalg: LinalgMode,
) -> u64 {
    let decode_scratch = if g.storage().is_compressed() {
        rayon::current_num_threads() as u64 * g.max_degree() as u64 * 4
    } else {
        0
    };
    g.resident_bytes() as u64
        + decode_scratch
        + estimate_workspace_bytes(g.num_vertices(), s, p, mode, linalg)
}

/// The non-graph share of the peak working set: everything
/// [`estimate_run_bytes`] counts except the graph's own storage.
fn estimate_workspace_bytes(n: usize, s: usize, p: usize, mode: BfsMode, linalg: LinalgMode) -> u64 {
    const F: u64 = 8; // bytes per f64 / usize / lane word
    let n = n as u64;
    let s = s as u64;
    let p = p as u64;
    let b = n * s * F;
    let smat = n * (s + 1) * F;
    let prod = match linalg {
        // laplacian_spmm collects per-block partials and then assembles
        // the output, and reads `S` through a packed row-major copy, so
        // three `S`-shaped buffers coexist at peak.
        LinalgMode::Staged => 3 * n * (s + 1) * F,
        // The fused kernel never materializes `L·S`; its only n-sized
        // allocation is the packed row-major copy of `S`.
        LinalgMode::Fused => n * (s + 1) * F,
    };
    let degrees = n * F;
    let bfs_scratch = match mode {
        // seen/frontier/next lane-row triple of ⌈s/64⌉ words per vertex.
        BfsMode::Batched => 3 * n * s.div_ceil(64) * F,
        // Distance/frontier buffers for the traversal kernels.
        _ => 2 * n * F,
    };
    let small = 3 * (s + 1) * (s + 1) * F; // Z, T and the eigenvector matrix
    let coords = n * p * F;
    b + smat + prod + degrees + bfs_scratch + small + coords
}

/// Memory admission's verdict for one run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Admission {
    /// The admitted subspace dimension (≤ the requested one).
    pub subspace: usize,
    /// Estimated bytes at the admitted dimension.
    pub estimated_bytes: u64,
    /// Whether the requested dimension had to shrink to fit.
    pub downscaled: bool,
}

/// Decides whether a run fits `budget_bytes`, halving the subspace
/// dimension (never below `max(p, 2)`) until the estimate fits. Returns
/// `None` when even the smallest usable subspace does not fit — the caller
/// degrades straight to a trivial layout.
pub fn admit(
    n: usize,
    m: usize,
    s: usize,
    p: usize,
    mode: BfsMode,
    linalg: LinalgMode,
    budget_bytes: u64,
) -> Option<Admission> {
    admit_with(s, p, budget_bytes, |cur| estimate_run_bytes(n, m, cur, p, mode, linalg))
}

/// [`admit`] priced against the actual store via
/// [`estimate_run_bytes_stored`]: a compressed or mmap-backed graph's
/// smaller resident footprint admits larger subspaces under the same
/// budget.
pub fn admit_stored<G: GraphStore>(
    g: &G,
    s: usize,
    p: usize,
    mode: BfsMode,
    linalg: LinalgMode,
    budget_bytes: u64,
) -> Option<Admission> {
    admit_with(s, p, budget_bytes, |cur| estimate_run_bytes_stored(g, cur, p, mode, linalg))
}

fn admit_with(
    s: usize,
    p: usize,
    budget_bytes: u64,
    estimate: impl Fn(usize) -> u64,
) -> Option<Admission> {
    let floor = p.max(2);
    let mut cur = s.max(floor);
    loop {
        let estimated = estimate(cur);
        if estimated <= budget_bytes {
            return Some(Admission {
                subspace: cur,
                estimated_bytes: estimated,
                downscaled: cur != s,
            });
        }
        if cur == floor {
            return None;
        }
        cur = (cur / 2).max(floor);
    }
}

/// Knobs of a supervised run.
#[derive(Clone, Debug, Default)]
pub struct SuperviseOptions {
    /// Wall-clock deadline for the whole run (all ladder rungs included).
    pub deadline: Option<Duration>,
    /// Soft memory budget in bytes: gates admission up front and arms the
    /// runtime RSS backstop.
    pub mem_budget_bytes: Option<u64>,
    /// Directory receiving the post-BFS checkpoint of every attempted rung.
    pub checkpoint: Option<CheckpointSpec>,
    /// Trip the budget when [`parhde_util::supervisor::request_global_cancel`]
    /// fires (set by the CLI signal handlers).
    pub honor_global_cancel: bool,
    /// External cancellation flag linked into the run's budget: the serve
    /// layer sets it from a connection watchdog when the requesting client
    /// disconnects mid-run.
    pub cancel_flag: Option<parhde_util::CancelFlag>,
    /// Request trace ID carried by the run's budget
    /// ([`parhde_util::supervisor::ambient_trace_id`]), joining run
    /// artifacts to the service request that caused them.
    pub trace_id: Option<String>,
}

/// One abandoned rung of the degraded-retry ladder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LadderStep {
    /// The rung that was abandoned.
    pub rung: &'static str,
    /// Display text of the budget trip that ended it.
    pub cause: String,
}

/// The result of a supervised run: the coordinates, the stats of the rung
/// that produced them, and the trail of rungs abandoned on the way there.
#[derive(Clone, Debug)]
pub struct Supervised {
    /// The `n×p` layout coordinates.
    pub coords: ColMajorMatrix,
    /// Statistics from the successful rung (ladder and admission events are
    /// also recorded in its `warnings`).
    pub stats: HdeStats,
    /// Rungs abandoned before `rung` succeeded; empty on an undegraded run.
    pub ladder: Vec<LadderStep>,
    /// Label of the rung that produced `coords`: `"full"`,
    /// `"halved_pivots"`, `"batched_bfs"`, `"phde"` or `"trivial"`.
    pub rung: &'static str,
}

/// Fractions of the total deadline at which each rung must be done.
const SLICE_FULL: f64 = 0.55;
const SLICE_HALVED: f64 = 0.75;
const SLICE_BATCHED: f64 = 0.90;
const SLICE_PHDE: f64 = 0.97;

/// Supervised fail-soft ParHDE: runs [`crate::try_par_hde_nd`] under a
/// [`RunBudget`] and degrades through the retry ladder instead of failing
/// when the deadline or memory budget trips.
///
/// The ladder, cheapest-last: the full configuration → half the pivots →
/// batched-BFS with random pivots → the PHDE pipeline (2-D runs only) → a
/// trivial line layout. Only *budget* trips (deadline, memory) descend the
/// ladder; cancellation and every ordinary pipeline error return
/// immediately. Every attempted rung writes `opts.checkpoint` after its
/// BFS phase, so even an interrupted degraded run leaves a resumable
/// checkpoint behind.
///
/// Installs the ambient budget for its whole duration — callers must not
/// hold their own [`supervisor::install`] guard around this call (ambient
/// installation is exclusive; the inner install would block).
///
/// Works on any [`GraphStore`]; memory admission prices the store's actual
/// resident footprint ([`admit_stored`]), and the PHDE rung — whose
/// coarsening pipeline rebuilds plain CSR graphs — is skipped silently on
/// compressed storage, the same way it is skipped for non-2-D runs.
///
/// # Errors
/// [`HdeError::Cancelled`] if the run is cancelled; otherwise any
/// non-budget error of [`crate::try_par_hde_nd`]. Budget trips themselves
/// never surface: the trivial rung always succeeds.
pub fn try_par_hde_nd_supervised<G: GraphStore>(
    g: &G,
    cfg: &ParHdeConfig,
    p: usize,
    opts: &SuperviseOptions,
) -> Result<Supervised, HdeError> {
    let _root = parhde_trace::span!("parhde_supervised");
    let start = Instant::now();
    let n = g.num_vertices();

    let mut budget = RunBudget::unbounded();
    if let Some(bytes) = opts.mem_budget_bytes {
        budget = budget.with_mem_budget(bytes);
    }
    if opts.honor_global_cancel {
        budget = budget.honoring_global_cancel();
    }
    if let Some(flag) = &opts.cancel_flag {
        budget = budget.with_external_cancel(std::sync::Arc::clone(flag));
    }
    if let Some(id) = &opts.trace_id {
        budget = budget.with_trace_id(id);
    }
    let installed = supervisor::install(&budget);

    // ---- Memory admission (before any large allocation) -----------------
    let mut cfg = cfg.clone();
    let mut pre_warnings: Vec<Warning> = Vec::new();
    if let Some(bytes) = opts.mem_budget_bytes {
        match admit_stored(g, cfg.subspace, p, cfg.bfs_mode, cfg.linalg_mode, bytes) {
            Some(a) if a.downscaled => {
                parhde_trace::counter!("supervisor.admission.downscaled", 1);
                pre_warnings.push(trace_warning(Warning::AdmissionDownscaled {
                    requested: cfg.subspace,
                    admitted: a.subspace,
                    estimated_bytes: a.estimated_bytes,
                    budget_bytes: bytes,
                }));
                cfg.subspace = a.subspace;
            }
            Some(_) => {
                parhde_trace::counter!("supervisor.admission.admitted", 1);
            }
            None => {
                parhde_trace::counter!("supervisor.admission.rejected", 1);
                let mut stats = HdeStats {
                    s_requested: cfg.subspace,
                    ..HdeStats::default()
                };
                stats.warnings = pre_warnings;
                stats.warn(Warning::TrivialLayout { n });
                emit_final_counters(&budget);
                drop(installed);
                return Ok(Supervised {
                    coords: trivial_coords(n, p),
                    stats,
                    ladder: Vec::new(),
                    rung: "trivial",
                });
            }
        }
    }

    // ---- The ladder ------------------------------------------------------
    let mut ladder: Vec<LadderStep> = Vec::new();
    let mut ladder_warnings: Vec<Warning> = Vec::new();
    let rungs: [(&'static str, f64); 4] = [
        ("full", SLICE_FULL),
        ("halved_pivots", SLICE_HALVED),
        ("batched_bfs", SLICE_BATCHED),
        ("phde", SLICE_PHDE),
    ];
    let mut rung_cfg = cfg.clone();
    for (rung, slice) in rungs {
        // Specialize the configuration for this rung; a rung that cannot
        // change anything (or does not apply) is skipped silently.
        match rung {
            "full" => {}
            "halved_pivots" => {
                let floor = p.max(2).min(rung_cfg.subspace);
                let halved = (rung_cfg.subspace / 2).max(floor);
                if halved == rung_cfg.subspace {
                    continue;
                }
                rung_cfg.subspace = halved;
            }
            "batched_bfs" => {
                if rung_cfg.pivots == PivotStrategy::Random
                    && rung_cfg.bfs_mode == BfsMode::Batched
                {
                    continue;
                }
                // K-centers pivots serialize the traversals; the batched
                // kernel needs independent (random) pivots.
                rung_cfg.pivots = PivotStrategy::Random;
                rung_cfg.bfs_mode = BfsMode::Batched;
            }
            "phde" => {
                if p != 2 || n < 3 || g.as_csr().is_none() {
                    continue;
                }
            }
            _ => unreachable!("unknown rung"),
        }
        if let Some(d) = opts.deadline {
            budget.arm_deadline_at(start + d.mul_f64(slice));
        }
        let attempt = if rung == "phde" {
            // The rung-selection arm above guarantees plain storage here.
            let csr = g.as_csr().expect("phde rung is gated on as_csr()");
            let phde_cfg = PhdeConfig::from(&rung_cfg);
            crate::phde::try_phde(csr, &phde_cfg).map(|(layout, stats)| {
                let mut coords = ColMajorMatrix::zeros(layout.len(), 2);
                coords.col_mut(0).copy_from_slice(&layout.x);
                coords.col_mut(1).copy_from_slice(&layout.y);
                (coords, stats)
            })
        } else {
            crate::parhde::run_failsoft_nd(g, &rung_cfg, p, opts.checkpoint.as_ref())
        };
        match attempt {
            Ok((coords, mut stats)) => {
                stats.warnings.splice(
                    0..0,
                    std::mem::take(&mut pre_warnings)
                        .into_iter()
                        .chain(std::mem::take(&mut ladder_warnings)),
                );
                emit_final_counters(&budget);
                drop(installed);
                return Ok(Supervised { coords, stats, ladder, rung });
            }
            Err(e) if e.is_budget_trip() => {
                parhde_trace::counter!("supervisor.ladder.step", 1);
                match &e {
                    HdeError::DeadlineExceeded { .. } => {
                        parhde_trace::counter!("supervisor.trip.deadline", 1);
                    }
                    HdeError::MemoryBudgetExceeded { .. } => {
                        parhde_trace::counter!("supervisor.trip.memory", 1);
                    }
                    _ => {}
                }
                let cause = e.to_string();
                ladder_warnings.push(trace_warning(Warning::LadderStep {
                    rung,
                    cause: cause.clone(),
                }));
                ladder.push(LadderStep { rung, cause });
            }
            Err(e) => {
                if matches!(e, HdeError::Cancelled { .. }) {
                    parhde_trace::counter!("supervisor.trip.cancelled", 1);
                }
                emit_final_counters(&budget);
                drop(installed);
                return Err(e);
            }
        }
    }

    // ---- Trivial rung (always succeeds, no budget needed) ----------------
    budget.disarm_deadline();
    let mut stats = HdeStats { s_requested: cfg.subspace, ..HdeStats::default() };
    stats.warnings = pre_warnings;
    stats.warnings.extend(ladder_warnings);
    stats.warn(Warning::TrivialLayout { n });
    emit_final_counters(&budget);
    drop(installed);
    Ok(Supervised {
        coords: trivial_coords(n, p),
        stats,
        ladder,
        rung: "trivial",
    })
}

/// Emits the end-of-run supervisor counters.
fn emit_final_counters(budget: &RunBudget) {
    parhde_trace::counter!("supervisor.checks", budget.checks());
}

#[cfg(test)]
mod tests {
    // NOTE: tests that install an ambient budget live in the dedicated
    // integration-test binary `crates/hde/tests/supervise.rs` — an ambient
    // install here would leak into unrelated pipeline unit tests running
    // concurrently in this process. Only pure functions are tested here.
    use super::*;

    #[test]
    fn estimate_grows_with_every_dimension() {
        let base = estimate_run_bytes(10_000, 40_000, 10, 2, BfsMode::Auto, LinalgMode::Fused);
        assert!(estimate_run_bytes(20_000, 40_000, 10, 2, BfsMode::Auto, LinalgMode::Fused) > base);
        assert!(estimate_run_bytes(10_000, 80_000, 10, 2, BfsMode::Auto, LinalgMode::Fused) > base);
        assert!(estimate_run_bytes(10_000, 40_000, 20, 2, BfsMode::Auto, LinalgMode::Fused) > base);
        assert!(estimate_run_bytes(10_000, 40_000, 10, 3, BfsMode::Auto, LinalgMode::Fused) > base);
    }

    #[test]
    fn fused_estimate_is_below_staged() {
        // The fused TripleProd skips the materialized L·S product; the
        // estimate must reflect that so admission admits larger subspaces.
        let fused =
            estimate_run_bytes(100_000, 400_000, 50, 2, BfsMode::Auto, LinalgMode::Fused);
        let staged =
            estimate_run_bytes(100_000, 400_000, 50, 2, BfsMode::Auto, LinalgMode::Staged);
        // Two S-shaped buffers of difference: the materialized product's
        // partials and its assembled output (both paths share the packed
        // row-major copy of `S`).
        assert_eq!(staged - fused, 2 * 100_000 * 51 * 8);
    }

    #[test]
    fn estimate_is_plausible_for_a_known_shape() {
        // 100k vertices, 10 pivots: B alone is 100_000 × 10 × 8 = 8 MB; the
        // total should be the same order of magnitude, not wildly off.
        let est = estimate_run_bytes(100_000, 400_000, 10, 2, BfsMode::Auto, LinalgMode::Fused);
        assert!(est > 8_000_000, "below the B matrix alone: {est}");
        assert!(est < 80_000_000, "order of magnitude too high: {est}");
    }

    #[test]
    fn admission_accepts_when_budget_is_ample() {
        let a = admit(10_000, 40_000, 10, 2, BfsMode::Auto, LinalgMode::Fused, u64::MAX).unwrap();
        assert_eq!(a.subspace, 10);
        assert!(!a.downscaled);
    }

    #[test]
    fn admission_downscales_by_halving() {
        let full = estimate_run_bytes(100_000, 400_000, 48, 2, BfsMode::Auto, LinalgMode::Fused);
        let a = admit(100_000, 400_000, 48, 2, BfsMode::Auto, LinalgMode::Fused, full - 1).unwrap();
        assert!(a.downscaled);
        assert!(a.subspace < 48 && a.subspace >= 2);
        assert!(a.estimated_bytes < full);
    }

    #[test]
    fn admission_rejects_impossible_budgets() {
        assert_eq!(admit(100_000, 400_000, 10, 2, BfsMode::Auto, LinalgMode::Fused, 1024), None);
    }

    #[test]
    fn admission_floor_is_embedding_dimension() {
        let floor = estimate_run_bytes(50_000, 200_000, 3, 3, BfsMode::Auto, LinalgMode::Fused);
        let a = admit(50_000, 200_000, 40, 3, BfsMode::Auto, LinalgMode::Fused, floor).unwrap();
        assert!(a.subspace >= 3);
    }

    #[test]
    fn stored_estimate_matches_formula_on_plain_csr() {
        // A plain CSR's resident bytes are exactly the offsets + adjacency
        // the formula charges, so the two estimates must agree bit-for-bit
        // (admission behavior is unchanged for in-RAM graphs).
        let g = parhde_graph::gen::grid2d(40, 30);
        let est = estimate_run_bytes_stored(&g, 12, 2, BfsMode::Auto, LinalgMode::Fused);
        let formula = estimate_run_bytes(
            g.num_vertices(),
            g.num_edges(),
            12,
            2,
            BfsMode::Auto,
            LinalgMode::Fused,
        );
        assert_eq!(est, formula);
    }

    #[test]
    fn compressed_estimate_is_below_plain() {
        let g = parhde_graph::gen::kron(10, 8, 5);
        let c = parhde_graph::CompressedCsr::from_csr(&g);
        let plain = estimate_run_bytes_stored(&g, 16, 2, BfsMode::Auto, LinalgMode::Fused);
        let comp = estimate_run_bytes_stored(&c, 16, 2, BfsMode::Auto, LinalgMode::Fused);
        assert!(
            comp < plain,
            "compressed residency must shrink the estimate: {comp} vs {plain}"
        );
    }

    #[test]
    fn compressed_admission_admits_larger_subspaces() {
        // Pin the budget just under the plain estimate at the requested
        // subspace: plain admission halves, compressed admission fits.
        let g = parhde_graph::gen::kron(10, 8, 5);
        let c = parhde_graph::CompressedCsr::from_csr(&g);
        let budget =
            estimate_run_bytes_stored(&g, 32, 2, BfsMode::Auto, LinalgMode::Fused) - 1;
        let plain =
            admit_stored(&g, 32, 2, BfsMode::Auto, LinalgMode::Fused, budget).unwrap();
        let comp =
            admit_stored(&c, 32, 2, BfsMode::Auto, LinalgMode::Fused, budget).unwrap();
        assert!(plain.downscaled);
        assert!(!comp.downscaled, "compressed store must fit the same budget");
        assert_eq!(comp.subspace, 32);
    }
}
