//! Weighted-graph ParHDE: SSSP distances instead of BFS levels (§3.3).
//!
//! The pipeline is Algorithm 3 with two substitutions: the traversal is
//! Δ-stepping SSSP, and `D`/`L` use weighted degrees. Note the edge-weight
//! convention flip the paper inherits from HDE vs. PHDE (§2.1 vs. §2.3):
//! for the *distance* computation, weights are lengths (lower = closer),
//! while for the Laplacian they are similarities (higher = closer). Using
//! the same numbers for both makes the two effects cancel, so
//! [`WeightSemantics`] states which convention the input uses and the
//! pipeline derives the other side as the reciprocal — with a
//! [`WeightSemantics::Raw`] escape hatch that feeds the numbers to both
//! sides unchanged (the literal reading of §3.3).

use crate::config::{LinalgMode, OrthoMethod, ParHdeConfig, PivotStrategy};
use crate::error::{reseed, scatter_coords, trivial_coords, HdeError, Warning};
use crate::layout::Layout;
use crate::parhde::try_subspace_axes_nd;
use crate::pivots::{farthest_vertex, fold_min_distance};
use crate::stats::{phase, trace_warning, HdeStats, PhaseSpan};
use parhde_graph::{prep, WeightedCsr};
use parhde_linalg::dense::ColMajorMatrix;
use parhde_linalg::error::check_matrix_finite;
use parhde_linalg::gemm::{a_small, at_b};
use parhde_linalg::ortho::{try_bcgs2, try_cgs, try_mgs};
use parhde_linalg::spmm::laplacian_spmm_weighted;
use parhde_sssp::delta_stepping::delta_stepping_into_f64;
use parhde_util::Xoshiro256StarStar;
use rayon::prelude::*;

/// Re-pivot attempts in fail-soft mode (matches the unweighted pipeline).
const MAX_REPIVOT_RETRIES: usize = 3;

/// How the input edge weights should be interpreted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WeightSemantics {
    /// Weights are **lengths** (SSSP convention: lower = closer). The
    /// Laplacian/D side uses reciprocal weights as similarities. Requires
    /// strictly positive weights.
    #[default]
    Lengths,
    /// Weights are **similarities** (Laplacian convention, §2.1: heavier =
    /// more similar). SSSP runs on reciprocal weights as lengths. Requires
    /// strictly positive weights.
    Similarities,
    /// Feed the raw numbers to both sides — the literal reading of the
    /// paper's §3.3. The SSSP stretch and the Laplacian pull then largely
    /// cancel; useful mainly for performance experiments.
    Raw,
}

/// Runs weighted ParHDE with Δ-stepping SSSP for the distance phase.
///
/// `delta` is the Δ-stepping bucket width **in length units**; pass
/// [`parhde_sssp::suggest_delta`]'s output (computed on the length-weighted
/// graph) when in doubt (§4.4 notes performance "is dependent on the
/// setting for Δ").
///
/// # Panics
/// Panics under the same conditions as [`crate::par_hde`], if `delta` is
/// not positive, or if a non-positive weight appears under a reciprocal
/// semantics.
pub fn par_hde_weighted(
    g: &WeightedCsr,
    cfg: &ParHdeConfig,
    delta: f64,
) -> (Layout, HdeStats) {
    par_hde_weighted_with(g, cfg, delta, WeightSemantics::default())
}

/// [`par_hde_weighted`] with an explicit [`WeightSemantics`].
///
/// # Panics
/// See [`par_hde_weighted`].
pub fn par_hde_weighted_with(
    g: &WeightedCsr,
    cfg: &ParHdeConfig,
    delta: f64,
    semantics: WeightSemantics,
) -> (Layout, HdeStats) {
    match run_weighted(g, cfg, delta, semantics, false) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fail-soft [`par_hde_weighted`] with default ([`WeightSemantics::Lengths`])
/// semantics; see [`try_par_hde_weighted_with`].
///
/// # Errors
/// See [`try_par_hde_weighted_with`].
pub fn try_par_hde_weighted(
    g: &WeightedCsr,
    cfg: &ParHdeConfig,
    delta: f64,
) -> Result<(Layout, HdeStats), HdeError> {
    try_par_hde_weighted_with(g, cfg, delta, WeightSemantics::default())
}

/// Fail-soft weighted ParHDE: never panics on untrusted input. Carries the
/// same degradation contract as [`crate::try_par_hde`] — largest-component
/// fallback, subspace clamping, trivial layout for tiny graphs, re-pivot
/// retries — plus upfront weight validation: non-finite weights are a
/// typed error (phase `"weights"`, row = arc index), and non-positive
/// weights are rejected under the reciprocal semantics.
///
/// # Errors
/// [`HdeError::NonFiniteValue`], [`HdeError::InvalidConfig`], or
/// [`HdeError::DegenerateSubspace`] when retries are exhausted.
pub fn try_par_hde_weighted_with(
    g: &WeightedCsr,
    cfg: &ParHdeConfig,
    delta: f64,
    semantics: WeightSemantics,
) -> Result<(Layout, HdeStats), HdeError> {
    run_weighted(g, cfg, delta, semantics, true)
}

/// Shared weighted driver; `failsoft` selects the degradation policy.
fn run_weighted(
    g: &WeightedCsr,
    cfg: &ParHdeConfig,
    delta: f64,
    semantics: WeightSemantics,
    failsoft: bool,
) -> Result<(Layout, HdeStats), HdeError> {
    let _root = parhde_trace::span!("parhde_weighted");
    let n = g.num_vertices();
    // Upfront weight/parameter validation (both modes — a NaN weight would
    // otherwise smear through every phase before being noticed).
    if let Some(idx) = g.weights().iter().position(|w| !w.is_finite()) {
        return Err(HdeError::NonFiniteValue { phase: "weights", column: 0, row: idx });
    }
    if !(delta > 0.0 && delta.is_finite()) {
        return Err(HdeError::InvalidConfig(format!(
            "Δ bucket width must be positive and finite, got {delta}"
        )));
    }
    let mut cfg = cfg.clone();
    let s_requested = cfg.subspace;
    let mut warnings = Vec::new();

    if failsoft {
        if n <= 2 {
            let mut stats = HdeStats { s_requested, ..HdeStats::default() };
            stats.warn(Warning::TrivialLayout { n });
            let coords = trivial_coords(n, 2);
            return Ok((
                Layout::new(coords.col(0).to_vec(), coords.col(1).to_vec()),
                stats,
            ));
        }
        let feasible = cfg.subspace.clamp(2, n - 1);
        if feasible != cfg.subspace {
            warnings.push(trace_warning(Warning::SubspaceClamped {
                requested: cfg.subspace,
                clamped: feasible,
            }));
            cfg.subspace = feasible;
        }
        if !prep::is_connected(g.graph()) {
            let components = prep::connected_components(g.graph()).count();
            let (sub_wg, old_ids) = prep::largest_component_weighted(g);
            let kept = sub_wg.num_vertices();
            let (sub, mut stats) = run_weighted(&sub_wg, &cfg, delta, semantics, failsoft)?;
            let mut sub_coords = ColMajorMatrix::zeros(kept, 2);
            sub_coords.col_mut(0).copy_from_slice(&sub.x);
            sub_coords.col_mut(1).copy_from_slice(&sub.y);
            let coords = scatter_coords(n, &sub_coords, &old_ids);
            stats.warnings.splice(
                0..0,
                warnings.into_iter().chain(std::iter::once(trace_warning(
                    Warning::DisconnectedFallback { components, kept, n },
                ))),
            );
            return Ok((
                Layout::new(coords.col(0).to_vec(), coords.col(1).to_vec()),
                stats,
            ));
        }
    }
    cfg.validate(n)?;

    // Derive the length-weighted graph (for SSSP) and the
    // similarity-weighted graph (for D and L) from the declared semantics.
    let needs_reciprocal = matches!(
        semantics,
        WeightSemantics::Lengths | WeightSemantics::Similarities
    );
    if needs_reciprocal && !g.weights().iter().all(|&x| x > 0.0) {
        return Err(HdeError::InvalidConfig(
            "reciprocal weight semantics require strictly positive weights".into(),
        ));
    }
    let reciprocal = |w: &WeightedCsr| -> WeightedCsr {
        let inv: Vec<f64> = w.weights().iter().map(|x| 1.0 / x).collect();
        WeightedCsr::from_parts_unchecked(w.graph().clone(), inv)
    };
    let (lengths, sims) = match semantics {
        WeightSemantics::Lengths => (g.clone(), reciprocal(g)),
        WeightSemantics::Similarities => (reciprocal(g), g.clone()),
        WeightSemantics::Raw => (g.clone(), g.clone()),
    };

    let backend_executed = crate::config::install_backend(cfg.backend)?;
    let max_attempts = if failsoft { 1 + MAX_REPIVOT_RETRIES } else { 1 };
    for attempt in 0..max_attempts {
        let seed = if attempt == 0 { cfg.seed } else { reseed(cfg.seed, attempt) };
        let mut stats = HdeStats {
            s_requested,
            backend: Some(cfg.backend.label()),
            backend_executed: Some(backend_executed),
            ..HdeStats::default()
        };
        match weighted_pipeline_once(&lengths, &sims, &cfg, delta, seed, &mut stats) {
            Ok(layout) => {
                stats.warnings = warnings;
                return Ok((layout, stats));
            }
            Err(HdeError::DegenerateSubspace { kept, needed, subspace, .. }) => {
                if attempt + 1 < max_attempts {
                    warnings.push(trace_warning(Warning::RepivotRetry {
                        attempt: attempt + 1,
                        kept,
                        needed,
                    }));
                } else {
                    return Err(HdeError::DegenerateSubspace {
                        kept,
                        needed,
                        subspace,
                        retries: attempt,
                    });
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(HdeError::Internal("re-pivot retry loop fell through".into()))
}

/// One attempt at the weighted Algorithm 3 pipeline.
fn weighted_pipeline_once(
    lengths: &WeightedCsr,
    sims: &WeightedCsr,
    cfg: &ParHdeConfig,
    delta: f64,
    seed: u64,
    stats: &mut HdeStats,
) -> Result<Layout, HdeError> {
    let n = lengths.num_vertices();
    let s = cfg.subspace;
    let g = lengths;
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut b = ColMajorMatrix::zeros(n, s);

    // ---- SSSP phase -------------------------------------------------------
    match cfg.pivots {
        PivotStrategy::KCenters => {
            let mut min_dist = vec![f64::INFINITY; n];
            let mut src = rng.next_index(n) as u32;
            let mut nan_dropped = 0usize;
            for i in 0..s {
                stats.sources.push(src);
                let ph = PhaseSpan::begin(phase::BFS);
                let reached = delta_stepping_into_f64(g, src, delta, b.col_mut(i));
                ph.end(&mut stats.phases);
                // Budget check before the connectivity check: an abandoned
                // traversal settles fewer than n vertices, and the trip
                // must win over the spurious "disconnected" that creates.
                crate::supervise::budget_check(phase::BFS)?;
                if reached != n {
                    return Err(HdeError::Disconnected { reached, n });
                }
                let ph = PhaseSpan::begin(phase::BFS_OTHER);
                // Δ-stepping on poisoned weights can emit NaN distances;
                // both reductions exclude (and count) them rather than let
                // a NaN pivot corrupt the whole k-centers sequence.
                nan_dropped += fold_min_distance(&mut min_dist, b.col(i));
                src = farthest_vertex(&min_dist);
                ph.end(&mut stats.phases);
            }
            if nan_dropped > 0 {
                stats.warn(Warning::NanDistances { count: nan_dropped });
            }
        }
        PivotStrategy::Random => {
            let ph = PhaseSpan::begin(phase::BFS_OTHER);
            let sources: Vec<u32> = rng
                .sample_distinct(n, s)
                .into_iter()
                .map(|v| v as u32)
                .collect();
            stats.sources = sources.clone();
            ph.end(&mut stats.phases);
            let ph = PhaseSpan::begin(phase::BFS);
            let reached: Vec<usize> = sources
                .par_iter()
                .zip(b.columns_mut())
                .map(|(&src, col)| delta_stepping_into_f64(g, src, delta, col))
                .collect();
            ph.end(&mut stats.phases);
            // As above: the trip outranks the partial reach it causes.
            crate::supervise::budget_check(phase::BFS)?;
            if reached[0] != n {
                return Err(HdeError::Disconnected { reached: reached[0], n });
            }
        }
    }

    // ---- S assembly ---------------------------------------------------------
    let ph = PhaseSpan::begin(phase::INIT);
    let mut smat = ColMajorMatrix::zeros(n, s + 1);
    smat.col_mut(0).fill(1.0 / (n as f64).sqrt());
    for i in 0..s {
        smat.col_mut(i + 1).copy_from_slice(b.col(i));
    }
    let degrees = sims.weighted_degree_vector();
    ph.end(&mut stats.phases);

    // ---- DOrtho -------------------------------------------------------------
    let ph = PhaseSpan::begin(phase::DORTHO);
    let weights = cfg.d_orthogonalize.then_some(degrees.as_slice());
    let outcome = match cfg.ortho {
        OrthoMethod::Mgs => try_mgs(&mut smat, weights, cfg.drop_tolerance, "dortho")?,
        OrthoMethod::Cgs => try_cgs(&mut smat, weights, cfg.drop_tolerance, "dortho")?,
        OrthoMethod::Bcgs2 => try_bcgs2(&mut smat, weights, cfg.drop_tolerance, "dortho")?,
    };
    debug_assert_eq!(outcome.kept.first(), Some(&0));
    let survivors: Vec<usize> = (1..smat.cols()).collect();
    smat.retain_columns(&survivors);
    stats.dropped_columns = outcome.dropped.len();
    stats.s_kept = smat.cols();
    ph.end(&mut stats.phases);
    // Trip wins over the spurious degeneracy an abandoned ortho creates.
    crate::supervise::budget_check(phase::DORTHO)?;
    if smat.cols() < 2 {
        return Err(HdeError::DegenerateSubspace {
            kept: smat.cols(),
            needed: 2,
            subspace: s,
            retries: 0,
        });
    }

    // ---- TripleProd -----------------------------------------------------------
    stats.linalg_mode = Some(cfg.linalg_mode.label());
    let z = match cfg.linalg_mode {
        LinalgMode::Fused => {
            let ph = PhaseSpan::begin(phase::FUSED);
            let z = parhde_linalg::fused::try_triple_product_weighted(sims, &degrees, &smat)?;
            // A tripped fused kernel returns zeroed (finite but meaningless)
            // leaf blocks.
            crate::supervise::budget_check(phase::FUSED)?;
            ph.end(&mut stats.phases);
            z
        }
        LinalgMode::Staged => {
            let ph = PhaseSpan::begin(phase::LS);
            let p = laplacian_spmm_weighted(sims, &degrees, &smat);
            ph.end(&mut stats.phases);
            crate::supervise::budget_check(phase::LS)?;
            let ph = PhaseSpan::begin(phase::GEMM);
            let z = at_b(&smat, &p);
            // A tripped gemm returns zeroed (finite but meaningless) blocks.
            crate::supervise::budget_check(phase::GEMM)?;
            check_matrix_finite(&z, "gemm")?;
            ph.end(&mut stats.phases);
            z
        }
    };

    // ---- Eigensolve + projection -----------------------------------------------
    let ph = PhaseSpan::begin(phase::EIGEN);
    let (y, mus) = try_subspace_axes_nd(&smat, &z, weights, 2)?;
    stats.axis_eigenvalues = mus;
    ph.end(&mut stats.phases);
    let ph = PhaseSpan::begin(phase::PROJECT);
    let coords = a_small(&smat, &y);
    crate::supervise::budget_check(phase::PROJECT)?;
    check_matrix_finite(&coords, "project")?;
    let layout = Layout::new(coords.col(0).to_vec(), coords.col(1).to_vec());
    ph.end(&mut stats.phases);
    Ok(layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parhde::par_hde;
    use parhde_graph::builder::build_weighted_from_edges;
    use parhde_graph::gen::grid2d;
    use parhde_util::Xoshiro256StarStar as Rng;

    #[test]
    fn unit_weights_reproduce_unweighted_layout() {
        // §4.4 runs SSSP with unit weights as a consistency check; the
        // distances (and thus the layout) must match the BFS pipeline.
        let g = grid2d(12, 12);
        let wg = WeightedCsr::unit_weights(g.clone());
        let cfg = ParHdeConfig::default();
        let (a, sa) = par_hde(&g, &cfg);
        let (b, sb) = par_hde_weighted(&wg, &cfg, 1.0);
        assert_eq!(sa.sources, sb.sources);
        for (x, y) in a.x.iter().zip(&b.x) {
            assert!((x - y).abs() < 1e-8);
        }
        for (x, y) in a.y.iter().zip(&b.y) {
            assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn random_weights_produce_sane_layout() {
        let base = grid2d(10, 10);
        let mut rng = Rng::seed_from_u64(5);
        let edges: Vec<(u32, u32, f64)> = base
            .edges()
            .map(|(u, v)| (u, v, 0.5 + rng.next_f64() * 4.5))
            .collect();
        let wg = build_weighted_from_edges(100, edges);
        let delta = parhde_sssp::suggest_delta(&wg);
        let (layout, stats) = par_hde_weighted(&wg, &ParHdeConfig::default(), delta);
        assert_eq!(layout.len(), 100);
        assert!(stats.s_kept >= 2);
        let (sx, sy) = layout.axis_stddev();
        assert!(sx > 1e-9 && sy > 1e-9);
    }

    #[test]
    fn semantics_modes_agree_on_unit_weights() {
        // 1/1 = 1, so all three semantics coincide for unit weights.
        let g = WeightedCsr::unit_weights(grid2d(8, 8));
        let cfg = ParHdeConfig::default();
        let (a, _) = par_hde_weighted_with(&g, &cfg, 1.0, WeightSemantics::Lengths);
        let (b, _) =
            par_hde_weighted_with(&g, &cfg, 1.0, WeightSemantics::Similarities);
        let (c, _) = par_hde_weighted_with(&g, &cfg, 1.0, WeightSemantics::Raw);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn length_semantics_stretch_the_long_edges() {
        // Grid whose vertical edges are 5× longer than horizontal ones
        // (similarity 1/5 after reciprocation — enough that the two
        // cheapest Laplacian modes are both vertical). The cheap variation
        // directions are then vertical, so the drawing separates vertical
        // neighbors much more than horizontal ones. (Note the global
        // aspect ratio stays ≈ 1 — spectral axes are individually
        // normalized — the weighting shows in per-direction edge lengths.)
        let base = grid2d(30, 30);
        let edges: Vec<(u32, u32, f64)> = base
            .edges()
            .map(|(u, v)| (u, v, if v == u + 1 { 1.0 } else { 5.0 }))
            .collect();
        let wg = build_weighted_from_edges(900, edges);
        let cfg = ParHdeConfig::with_subspace(15);
        let direction_ratio = |layout: &Layout| {
            let (mut h, mut hn, mut v, mut vn) = (0.0, 0usize, 0.0, 0usize);
            for (u, w) in base.edges() {
                let d = layout.distance(u, w);
                if w == u + 1 {
                    h += d;
                    hn += 1;
                } else {
                    v += d;
                    vn += 1;
                }
            }
            (v / vn as f64) / (h / hn as f64)
        };
        let (long_v, _) =
            par_hde_weighted_with(&wg, &cfg, 2.0, WeightSemantics::Lengths);
        let ratio = direction_ratio(&long_v);
        assert!(
            ratio > 2.0,
            "vertical edges should draw much longer than horizontal: {ratio:.2}"
        );
        // Raw semantics cancel and keep the two directions comparable.
        let (raw, _) = par_hde_weighted_with(&wg, &cfg, 2.0, WeightSemantics::Raw);
        let raw_ratio = direction_ratio(&raw);
        assert!(
            raw_ratio < ratio / 1.5,
            "raw ratio {raw_ratio:.2} should sit below lengths ratio {ratio:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn reciprocal_semantics_reject_zero_weights() {
        let wg = build_weighted_from_edges(3, vec![(0, 1, 0.0), (1, 2, 1.0)]);
        par_hde_weighted_with(
            &wg,
            &ParHdeConfig::with_subspace(1),
            1.0,
            WeightSemantics::Lengths,
        );
    }

    #[test]
    fn random_pivot_strategy_works_weighted() {
        let g = WeightedCsr::unit_weights(grid2d(9, 9));
        let cfg = ParHdeConfig {
            pivots: PivotStrategy::Random,
            subspace: 6,
            ..ParHdeConfig::default()
        };
        let (layout, stats) = par_hde_weighted(&g, &cfg, 1.0);
        assert_eq!(stats.sources.len(), 6);
        assert_eq!(layout.len(), 81);
    }
}
