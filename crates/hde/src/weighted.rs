//! Weighted-graph ParHDE: SSSP distances instead of BFS levels (§3.3).
//!
//! The pipeline is Algorithm 3 with two substitutions: the traversal is
//! Δ-stepping SSSP, and `D`/`L` use weighted degrees. Note the edge-weight
//! convention flip the paper inherits from HDE vs. PHDE (§2.1 vs. §2.3):
//! for the *distance* computation, weights are lengths (lower = closer),
//! while for the Laplacian they are similarities (higher = closer). Using
//! the same numbers for both makes the two effects cancel, so
//! [`WeightSemantics`] states which convention the input uses and the
//! pipeline derives the other side as the reciprocal — with a
//! [`WeightSemantics::Raw`] escape hatch that feeds the numbers to both
//! sides unchanged (the literal reading of §3.3).

use crate::config::{OrthoMethod, ParHdeConfig, PivotStrategy};
use crate::layout::Layout;
use crate::parhde::{assert_connected, subspace_axes};
use crate::pivots::{farthest_vertex, fold_min_distance};
use crate::stats::{phase, HdeStats};
use parhde_graph::WeightedCsr;
use parhde_linalg::dense::ColMajorMatrix;
use parhde_linalg::gemm::{a_small, at_b};
use parhde_linalg::ortho::{cgs, mgs};
use parhde_linalg::spmm::laplacian_spmm_weighted;
use parhde_sssp::delta_stepping::delta_stepping_into_f64;
use parhde_util::{Timer, Xoshiro256StarStar};
use rayon::prelude::*;

/// How the input edge weights should be interpreted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WeightSemantics {
    /// Weights are **lengths** (SSSP convention: lower = closer). The
    /// Laplacian/D side uses reciprocal weights as similarities. Requires
    /// strictly positive weights.
    #[default]
    Lengths,
    /// Weights are **similarities** (Laplacian convention, §2.1: heavier =
    /// more similar). SSSP runs on reciprocal weights as lengths. Requires
    /// strictly positive weights.
    Similarities,
    /// Feed the raw numbers to both sides — the literal reading of the
    /// paper's §3.3. The SSSP stretch and the Laplacian pull then largely
    /// cancel; useful mainly for performance experiments.
    Raw,
}

/// Runs weighted ParHDE with Δ-stepping SSSP for the distance phase.
///
/// `delta` is the Δ-stepping bucket width **in length units**; pass
/// [`parhde_sssp::suggest_delta`]'s output (computed on the length-weighted
/// graph) when in doubt (§4.4 notes performance "is dependent on the
/// setting for Δ").
///
/// # Panics
/// Panics under the same conditions as [`crate::par_hde`], if `delta` is
/// not positive, or if a non-positive weight appears under a reciprocal
/// semantics.
pub fn par_hde_weighted(
    g: &WeightedCsr,
    cfg: &ParHdeConfig,
    delta: f64,
) -> (Layout, HdeStats) {
    par_hde_weighted_with(g, cfg, delta, WeightSemantics::default())
}

/// [`par_hde_weighted`] with an explicit [`WeightSemantics`].
///
/// # Panics
/// See [`par_hde_weighted`].
pub fn par_hde_weighted_with(
    g: &WeightedCsr,
    cfg: &ParHdeConfig,
    delta: f64,
    semantics: WeightSemantics,
) -> (Layout, HdeStats) {
    let n = g.num_vertices();
    cfg.validate(n);
    let s = cfg.subspace;

    // Derive the length-weighted graph (for SSSP) and the
    // similarity-weighted graph (for D and L) from the declared semantics.
    let reciprocal = |w: &WeightedCsr| -> WeightedCsr {
        assert!(
            w.weights().iter().all(|&x| x > 0.0),
            "reciprocal weight semantics require strictly positive weights"
        );
        let inv: Vec<f64> = w.weights().iter().map(|x| 1.0 / x).collect();
        WeightedCsr::from_parts_unchecked(w.graph().clone(), inv)
    };
    let (lengths, sims) = match semantics {
        WeightSemantics::Lengths => (g.clone(), reciprocal(g)),
        WeightSemantics::Similarities => (reciprocal(g), g.clone()),
        WeightSemantics::Raw => (g.clone(), g.clone()),
    };
    let g = &lengths;

    let mut stats = HdeStats { s_requested: s, ..HdeStats::default() };
    let mut rng = Xoshiro256StarStar::seed_from_u64(cfg.seed);
    let mut b = ColMajorMatrix::zeros(n, s);

    // ---- SSSP phase -------------------------------------------------------
    match cfg.pivots {
        PivotStrategy::KCenters => {
            let mut min_dist = vec![f64::INFINITY; n];
            let mut src = rng.next_index(n) as u32;
            for i in 0..s {
                stats.sources.push(src);
                let t = Timer::start();
                let reached = delta_stepping_into_f64(g, src, delta, b.col_mut(i));
                stats.phases.add(phase::BFS, t.elapsed());
                assert_connected(reached, n);
                let t = Timer::start();
                fold_min_distance(&mut min_dist, b.col(i));
                src = farthest_vertex(&min_dist);
                stats.phases.add(phase::BFS_OTHER, t.elapsed());
            }
        }
        PivotStrategy::Random => {
            let t = Timer::start();
            let sources: Vec<u32> = rng
                .sample_distinct(n, s)
                .into_iter()
                .map(|v| v as u32)
                .collect();
            stats.sources = sources.clone();
            stats.phases.add(phase::BFS_OTHER, t.elapsed());
            let t = Timer::start();
            let reached: Vec<usize> = sources
                .par_iter()
                .zip(b.columns_mut())
                .map(|(&src, col)| delta_stepping_into_f64(g, src, delta, col))
                .collect();
            stats.phases.add(phase::BFS, t.elapsed());
            assert_connected(reached[0], n);
        }
    }

    // ---- S assembly ---------------------------------------------------------
    let t = Timer::start();
    let mut smat = ColMajorMatrix::zeros(n, s + 1);
    smat.col_mut(0).fill(1.0 / (n as f64).sqrt());
    for i in 0..s {
        smat.col_mut(i + 1).copy_from_slice(b.col(i));
    }
    let degrees = sims.weighted_degree_vector();
    stats.phases.add(phase::INIT, t.elapsed());

    // ---- DOrtho -------------------------------------------------------------
    let t = Timer::start();
    let weights = cfg.d_orthogonalize.then_some(degrees.as_slice());
    let outcome = match cfg.ortho {
        OrthoMethod::Mgs => mgs(&mut smat, weights, cfg.drop_tolerance),
        OrthoMethod::Cgs => cgs(&mut smat, weights, cfg.drop_tolerance),
    };
    debug_assert_eq!(outcome.kept.first(), Some(&0));
    let survivors: Vec<usize> = (1..smat.cols()).collect();
    smat.retain_columns(&survivors);
    stats.dropped_columns = outcome.dropped.len();
    stats.s_kept = smat.cols();
    stats.phases.add(phase::DORTHO, t.elapsed());
    assert!(smat.cols() >= 2, "fewer than two directions survived");

    // ---- TripleProd -----------------------------------------------------------
    let t = Timer::start();
    let p = laplacian_spmm_weighted(&sims, &degrees, &smat);
    stats.phases.add(phase::LS, t.elapsed());
    let t = Timer::start();
    let z = at_b(&smat, &p);
    stats.phases.add(phase::GEMM, t.elapsed());

    // ---- Eigensolve + projection -----------------------------------------------
    let t = Timer::start();
    let (y, mus) = subspace_axes(&smat, &z, weights);
    stats.axis_eigenvalues = mus;
    stats.phases.add(phase::EIGEN, t.elapsed());
    let t = Timer::start();
    let coords = a_small(&smat, &y);
    let layout = Layout::new(coords.col(0).to_vec(), coords.col(1).to_vec());
    stats.phases.add(phase::PROJECT, t.elapsed());
    (layout, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parhde::par_hde;
    use parhde_graph::builder::build_weighted_from_edges;
    use parhde_graph::gen::grid2d;
    use parhde_util::Xoshiro256StarStar as Rng;

    #[test]
    fn unit_weights_reproduce_unweighted_layout() {
        // §4.4 runs SSSP with unit weights as a consistency check; the
        // distances (and thus the layout) must match the BFS pipeline.
        let g = grid2d(12, 12);
        let wg = WeightedCsr::unit_weights(g.clone());
        let cfg = ParHdeConfig::default();
        let (a, sa) = par_hde(&g, &cfg);
        let (b, sb) = par_hde_weighted(&wg, &cfg, 1.0);
        assert_eq!(sa.sources, sb.sources);
        for (x, y) in a.x.iter().zip(&b.x) {
            assert!((x - y).abs() < 1e-8);
        }
        for (x, y) in a.y.iter().zip(&b.y) {
            assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn random_weights_produce_sane_layout() {
        let base = grid2d(10, 10);
        let mut rng = Rng::seed_from_u64(5);
        let edges: Vec<(u32, u32, f64)> = base
            .edges()
            .map(|(u, v)| (u, v, 0.5 + rng.next_f64() * 4.5))
            .collect();
        let wg = build_weighted_from_edges(100, edges);
        let delta = parhde_sssp::suggest_delta(&wg);
        let (layout, stats) = par_hde_weighted(&wg, &ParHdeConfig::default(), delta);
        assert_eq!(layout.len(), 100);
        assert!(stats.s_kept >= 2);
        let (sx, sy) = layout.axis_stddev();
        assert!(sx > 1e-9 && sy > 1e-9);
    }

    #[test]
    fn semantics_modes_agree_on_unit_weights() {
        // 1/1 = 1, so all three semantics coincide for unit weights.
        let g = WeightedCsr::unit_weights(grid2d(8, 8));
        let cfg = ParHdeConfig::default();
        let (a, _) = par_hde_weighted_with(&g, &cfg, 1.0, WeightSemantics::Lengths);
        let (b, _) =
            par_hde_weighted_with(&g, &cfg, 1.0, WeightSemantics::Similarities);
        let (c, _) = par_hde_weighted_with(&g, &cfg, 1.0, WeightSemantics::Raw);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn length_semantics_stretch_the_long_edges() {
        // Grid whose vertical edges are 5× longer than horizontal ones
        // (similarity 1/5 after reciprocation — enough that the two
        // cheapest Laplacian modes are both vertical). The cheap variation
        // directions are then vertical, so the drawing separates vertical
        // neighbors much more than horizontal ones. (Note the global
        // aspect ratio stays ≈ 1 — spectral axes are individually
        // normalized — the weighting shows in per-direction edge lengths.)
        let base = grid2d(30, 30);
        let edges: Vec<(u32, u32, f64)> = base
            .edges()
            .map(|(u, v)| (u, v, if v == u + 1 { 1.0 } else { 5.0 }))
            .collect();
        let wg = build_weighted_from_edges(900, edges);
        let cfg = ParHdeConfig::with_subspace(15);
        let direction_ratio = |layout: &Layout| {
            let (mut h, mut hn, mut v, mut vn) = (0.0, 0usize, 0.0, 0usize);
            for (u, w) in base.edges() {
                let d = layout.distance(u, w);
                if w == u + 1 {
                    h += d;
                    hn += 1;
                } else {
                    v += d;
                    vn += 1;
                }
            }
            (v / vn as f64) / (h / hn as f64)
        };
        let (long_v, _) =
            par_hde_weighted_with(&wg, &cfg, 2.0, WeightSemantics::Lengths);
        let ratio = direction_ratio(&long_v);
        assert!(
            ratio > 2.0,
            "vertical edges should draw much longer than horizontal: {ratio:.2}"
        );
        // Raw semantics cancel and keep the two directions comparable.
        let (raw, _) = par_hde_weighted_with(&wg, &cfg, 2.0, WeightSemantics::Raw);
        let raw_ratio = direction_ratio(&raw);
        assert!(
            raw_ratio < ratio / 1.5,
            "raw ratio {raw_ratio:.2} should sit below lengths ratio {ratio:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn reciprocal_semantics_reject_zero_weights() {
        let wg = build_weighted_from_edges(3, vec![(0, 1, 0.0), (1, 2, 1.0)]);
        par_hde_weighted_with(
            &wg,
            &ParHdeConfig::with_subspace(1),
            1.0,
            WeightSemantics::Lengths,
        );
    }

    #[test]
    fn random_pivot_strategy_works_weighted() {
        let g = WeightedCsr::unit_weights(grid2d(9, 9));
        let cfg = ParHdeConfig {
            pivots: PivotStrategy::Random,
            subspace: 6,
            ..ParHdeConfig::default()
        };
        let (layout, stats) = par_hde_weighted(&g, &cfg, 1.0);
        assert_eq!(stats.sources.len(), 6);
        assert_eq!(layout.len(), 81);
    }
}
