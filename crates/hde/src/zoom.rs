//! The "zoom" feature for interactive multilevel visualization (§4.5.2).
//!
//! The user selects a vertex in the global layout; the k-hop neighborhood
//! of that vertex is extracted as an induced subgraph and re-laid-out with
//! ParHDE (Figure 8 shows the 10-hop neighborhood of a random vertex of
//! barth5). Real-time re-layout is feasible because HDE's cost is nearly
//! linear in the neighborhood size.

use crate::config::ParHdeConfig;
use crate::layout::Layout;
use crate::parhde::par_hde;
use crate::stats::HdeStats;
use parhde_graph::prep::{induced_subgraph, k_hop_neighborhood};
use parhde_graph::CsrGraph;

/// A zoomed view: the neighborhood subgraph, its layout, and the mapping
/// back to the original vertex ids.
#[derive(Clone, Debug)]
pub struct ZoomView {
    /// The induced neighborhood subgraph (contiguous local ids).
    pub graph: CsrGraph,
    /// Layout of the subgraph (indexed by local ids).
    pub layout: Layout,
    /// `old_ids[local]` is the original vertex id.
    pub old_ids: Vec<u32>,
    /// The local id of the zoom center.
    pub center: u32,
    /// Pipeline statistics of the sub-layout.
    pub stats: HdeStats,
}

/// Extracts the `hops`-hop neighborhood of `center` and lays it out.
///
/// The subspace dimension is clamped to the neighborhood size when the
/// neighborhood is small (a 10-hop ball can have only a handful of
/// vertices).
///
/// # Panics
/// Panics if `center` is out of range or the neighborhood has fewer than
/// 4 vertices (nothing meaningful to lay out).
pub fn zoom(g: &CsrGraph, center: u32, hops: usize, cfg: &ParHdeConfig) -> ZoomView {
    let ids = k_hop_neighborhood(g, center, hops);
    assert!(
        ids.len() >= 4,
        "{}-hop neighborhood of {center} has only {} vertices",
        hops,
        ids.len()
    );
    let ex = induced_subgraph(g, &ids);
    let mut sub_cfg = cfg.clone();
    // Keep s comfortably below the neighborhood size.
    sub_cfg.subspace = sub_cfg.subspace.min(ex.graph.num_vertices() / 2).max(2);
    let (layout, stats) = par_hde(&ex.graph, &sub_cfg);
    let center_local = ex
        .new_id(center)
        .expect("center is in its own neighborhood");
    ZoomView {
        graph: ex.graph,
        layout,
        old_ids: ex.old_ids,
        center: center_local,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parhde_graph::gen::{barth5_like, grid2d};

    #[test]
    fn zoom_extracts_ball_and_lays_out() {
        let g = grid2d(30, 30);
        let center = 30 * 15 + 15;
        let view = zoom(&g, center as u32, 5, &ParHdeConfig::default());
        // A 5-hop L1 ball in a grid interior has 2k²+2k+1 = 61 vertices.
        assert_eq!(view.graph.num_vertices(), 61);
        assert_eq!(view.layout.len(), 61);
        assert_eq!(view.old_ids[view.center as usize], center as u32);
        let (sx, sy) = view.layout.axis_stddev();
        assert!(sx > 1e-9 && sy > 1e-9);
    }

    #[test]
    fn zoom_ten_hops_on_mesh() {
        // The Figure 8 scenario: 10-hop neighborhood of a vertex of the
        // barth5 analogue.
        let g = barth5_like();
        let view = zoom(&g, 7000, 10, &ParHdeConfig::default());
        assert!(view.graph.num_vertices() > 100);
        assert!(view.graph.num_vertices() < g.num_vertices());
        assert!(parhde_graph::prep::is_connected(&view.graph));
    }

    #[test]
    fn zoom_clamps_subspace_for_tiny_neighborhoods() {
        let g = grid2d(20, 20);
        let cfg = ParHdeConfig::with_subspace(50);
        let view = zoom(&g, 0, 2, &cfg); // corner: 2-hop ball has 6 vertices
        assert!(view.stats.s_requested <= view.graph.num_vertices() / 2);
    }

    #[test]
    #[should_panic(expected = "has only")]
    fn zoom_rejects_degenerate_ball() {
        let g = grid2d(20, 20);
        zoom(&g, 0, 0, &ParHdeConfig::default());
    }
}
