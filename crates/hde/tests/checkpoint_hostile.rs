//! Adversarial checkpoint-loader sweep (ISSUE 6 satellite): the PHDECKPT
//! parser must survive truncated, bit-flipped, and hostile-length inputs
//! without panicking or over-allocating — every failure is the typed
//! [`HdeError::CheckpointMismatch`] (or `Io` for unreadable files), never
//! a crash. The daemon feeds the loader files from a cache directory that
//! a crash, a concurrent writer, or an operator's stray `dd` may have
//! mangled, so "garbage in → typed error out" is a load-bearing contract.

use parhde::checkpoint::{graph_digest, write_post_bfs, Fnv64, MAGIC};
use parhde::config::ParHdeConfig;
use parhde::{Checkpoint, CheckpointSpec, HdeError};
use parhde_graph::gen::grid2d;
use parhde_linalg::dense::ColMajorMatrix;
use std::path::PathBuf;

/// A valid checkpoint's bytes, produced through the real writer.
fn valid_bytes(tag: &str) -> Vec<u8> {
    let g = grid2d(5, 4);
    let cfg = ParHdeConfig::with_subspace(4);
    let sources = vec![0u32, 7, 13, 19];
    let mut b = ColMajorMatrix::zeros(20, 4);
    for c in 0..4 {
        for r in 0..20 {
            b.set(r, c, (r * 4 + c) as f64 * 0.125 - 3.0);
        }
    }
    let dir = std::env::temp_dir().join(format!(
        "parhde-ckpt-hostile-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = CheckpointSpec::in_dir(&dir);
    let path = write_post_bfs(&spec, &g, &cfg, 2, 99, &sources, &b).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    // Sanity: the untampered bytes parse and carry the expected digest.
    let ck = Checkpoint::from_bytes(&bytes).unwrap();
    assert_eq!(ck.graph_digest, graph_digest(&g));
    bytes
}

/// Replaces the trailing whole-file checksum so that only the *structural*
/// validation under test can reject the tampered bytes.
fn reseal(bytes: &mut [u8]) {
    let body = bytes.len() - 8;
    let mut h = Fnv64::new();
    h.update(&bytes[..body]);
    bytes[body..].copy_from_slice(&h.finish().to_le_bytes());
}

/// Byte offsets of every section boundary in the version-1 layout.
fn section_boundaries(total: usize) -> Vec<usize> {
    // magic 8 | version 4 | flags 4 | digest 8 | seed 8 | p 4 | reserved 4
    // | config fp 8 | n 8 | s 8 | pivot count 8 | pivots | B | checksum 8
    let mut cuts = vec![0, 8, 12, 16, 24, 32, 36, 40, 48, 56, 64, 72];
    cuts.push(72 + 4 * 4); // after the 4 pivots
    cuts.push(total - 8); // after the matrix, before the checksum
    cuts.push(total - 1); // one byte short
    cuts.retain(|&c| c < total);
    cuts
}

#[test]
fn truncation_at_every_section_boundary_is_typed() {
    let bytes = valid_bytes("trunc");
    for cut in section_boundaries(bytes.len()) {
        match Checkpoint::from_bytes(&bytes[..cut]) {
            Err(HdeError::CheckpointMismatch(_)) => {}
            Err(other) => panic!("cut at {cut}: wrong error type {other:?}"),
            Ok(_) => panic!("cut at {cut}: truncated checkpoint accepted"),
        }
    }
}

#[test]
fn every_single_byte_truncation_is_rejected() {
    let bytes = valid_bytes("trunc-all");
    for cut in 0..bytes.len() {
        assert!(
            Checkpoint::from_bytes(&bytes[..cut]).is_err(),
            "{cut}-byte prefix accepted"
        );
    }
}

#[test]
fn bit_flips_at_every_byte_are_typed_errors() {
    let bytes = valid_bytes("flip");
    for pos in 0..bytes.len() {
        for bit in [0x01u8, 0x80] {
            let mut evil = bytes.clone();
            evil[pos] ^= bit;
            match Checkpoint::from_bytes(&evil) {
                Err(HdeError::CheckpointMismatch(_)) => {}
                Err(other) => {
                    panic!("flip at {pos}/{bit:#x}: wrong error {other:?}")
                }
                // A flip in the f64 payload with a colliding checksum is
                // astronomically unlikely; anything accepted must at least
                // not be the original file.
                Ok(_) => panic!("flip at {pos}/{bit:#x} accepted"),
            }
        }
    }
}

/// Writes hostile values into the three u64 length fields (n at offset 48,
/// s at 56, pivot count at 64), reseals the checksum, and asserts the
/// parser refuses without over-allocating. Before the loader used fully
/// checked arithmetic, `4 * n_sources + 8 * n * s` could wrap `usize` in a
/// release build, pass the bounds test, and hand `Vec::with_capacity` a
/// near-`usize::MAX` request — an allocator abort from a 300-byte file.
#[test]
fn hostile_length_fields_never_over_allocate() {
    let bytes = valid_bytes("hostile");
    let hostile: [(usize, u64); 7] = [
        (48, u64::MAX),                  // n
        (56, u64::MAX),                  // s
        (64, u64::MAX),                  // pivot count: 4·c wraps to < len
        (64, (usize::MAX / 4) as u64 + 1), // 4·c wraps exactly past zero
        (48, u64::MAX / 8),              // 8·n·s wraps
        (56, 1 << 62),                   // n·s overflows the product itself
        (64, 1 << 61),                   // pivots alone exceed any file
    ];
    for (off, v) in hostile {
        let mut evil = bytes.clone();
        evil[off..off + 8].copy_from_slice(&v.to_le_bytes());
        reseal(&mut evil);
        match Checkpoint::from_bytes(&evil) {
            Err(HdeError::CheckpointMismatch(m)) => assert!(
                m.contains("exceeds") || m.contains("overflows") || m.contains("truncated"),
                "field at {off}={v:#x}: unexpected message {m:?}"
            ),
            Err(other) => panic!("field at {off}={v:#x}: wrong error {other:?}"),
            Ok(_) => panic!("field at {off}={v:#x}: hostile sizes accepted"),
        }
    }
}

#[test]
fn consistent_lies_that_fit_the_file_still_fail_structurally() {
    // Shrink the declared matrix while growing the pivot list so the total
    // byte count still matches: the parser must notice the mismatch (here
    // via the pivots/data split) rather than return a frankenstein.
    let bytes = valid_bytes("lies");
    let mut evil = bytes.clone();
    // n=20,s=4 (640 matrix bytes) + 4 pivots (16 bytes) -> declare the
    // matrix as 20x3 (480 bytes) and 44 pivots (176 bytes): same total.
    evil[56..64].copy_from_slice(&3u64.to_le_bytes());
    evil[64..72].copy_from_slice(&44u64.to_le_bytes());
    reseal(&mut evil);
    match Checkpoint::from_bytes(&evil) {
        // Structurally self-consistent lies parse, but validate_for must
        // refuse them against the real graph/config.
        Ok(ck) => {
            let g = grid2d(5, 4);
            let cfg = ParHdeConfig::with_subspace(4);
            assert!(matches!(
                ck.validate_for(&g, &cfg, 2),
                Err(HdeError::CheckpointMismatch(_))
            ));
        }
        Err(HdeError::CheckpointMismatch(_)) => {}
        Err(other) => panic!("wrong error {other:?}"),
    }
}

#[test]
fn empty_and_tiny_files_are_rejected() {
    for len in 0..MAGIC.len() + 8 {
        let junk = vec![0x50u8; len];
        assert!(Checkpoint::from_bytes(&junk).is_err(), "{len}-byte junk accepted");
    }
    let mut almost = Vec::from(MAGIC);
    almost.extend_from_slice(&[0u8; 8]);
    assert!(Checkpoint::from_bytes(&almost).is_err());
}

#[test]
fn unreadable_path_is_io_not_panic() {
    let path = PathBuf::from("/nonexistent/parhde/never/here.ckpt");
    assert!(matches!(Checkpoint::read(&path), Err(HdeError::Io(_))));
}
