//! Concurrent supervised runs (ISSUE 6 satellite): the ambient budget
//! install slot is process-exclusive, so two supervised runs launched
//! simultaneously must serialize on it and *both* complete — the daemon's
//! worker pool leans on exactly this. Lives in its own test binary: every
//! test here installs ambient budgets, and the file-level `LOCK` keeps the
//! in-binary tests from racing each other.

use parhde::config::ParHdeConfig;
use parhde::supervise::estimate_run_bytes;
use parhde::{try_par_hde_nd_supervised, SuperviseOptions, Warning};
use parhde_graph::gen::grid2d;
use parhde_util::supervisor;
use std::sync::{Barrier, Mutex};
use std::time::Duration;

static LOCK: Mutex<()> = Mutex::new(());

fn serialize_tests() -> std::sync::MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    supervisor::reset_global_cancel();
    guard
}

#[test]
fn two_contending_supervised_runs_both_complete() {
    let _guard = serialize_tests();
    let barrier = Barrier::new(2);
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let g = grid2d(12 + i, 12);
                    let cfg = ParHdeConfig::with_subspace(8);
                    let opts = SuperviseOptions {
                        deadline: Some(Duration::from_secs(60)),
                        ..SuperviseOptions::default()
                    };
                    // Release both threads into the exclusive install slot
                    // at once; one of them must block, then proceed.
                    barrier.wait();
                    try_par_hde_nd_supervised(&g, &cfg, 2, &opts)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, r) in results.into_iter().enumerate() {
        let sup = r.unwrap_or_else(|e| panic!("run {i} failed: {e}"));
        let n = (12 + i) * 12;
        assert_eq!(sup.coords.rows(), n, "run {i}: wrong row count");
        assert_eq!(sup.coords.cols(), 2);
        assert!(
            sup.coords.data().iter().all(|x| x.is_finite()),
            "run {i}: non-finite coordinates"
        );
    }
}

#[test]
fn contending_runs_under_one_shared_memory_budget_degrade_not_die() {
    let _guard = serialize_tests();
    // A budget that admits the run only after halving the subspace at
    // least once: both concurrent requests should finish, at least via
    // the admission-downscale warning, never by killing the process.
    let g = grid2d(40, 40);
    let n = g.num_vertices();
    let m = g.num_edges();
    let cfg = ParHdeConfig::with_subspace(32);
    let full = estimate_run_bytes(
        n,
        m,
        32,
        2,
        cfg.bfs_mode,
        cfg.linalg_mode,
    );
    let halved = estimate_run_bytes(n, m, 16, 2, cfg.bfs_mode, cfg.linalg_mode);
    assert!(halved < full);
    let budget_bytes = (full + halved) / 2; // fits 16 pivots, not 32

    let barrier = Barrier::new(2);
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (g, cfg, barrier) = (&g, &cfg, &barrier);
                scope.spawn(move || {
                    let opts = SuperviseOptions {
                        deadline: Some(Duration::from_secs(60)),
                        mem_budget_bytes: Some(budget_bytes),
                        ..SuperviseOptions::default()
                    };
                    barrier.wait();
                    try_par_hde_nd_supervised(g, cfg, 2, &opts)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, r) in results.into_iter().enumerate() {
        let sup = r.unwrap_or_else(|e| panic!("run {i} failed: {e}"));
        assert_eq!(sup.coords.rows(), n);
        let downscaled = sup.stats.warnings.iter().any(|w| {
            matches!(w, Warning::AdmissionDownscaled { admitted, .. } if *admitted < 32)
        });
        assert!(
            downscaled || sup.rung != "full" || sup.stats.s_requested <= 16,
            "run {i}: admitted the full subspace under an undersized budget \
             (rung {}, warnings {:?})",
            sup.rung,
            sup.stats.warnings
        );
    }
}

#[test]
fn budget_check_counters_are_thread_count_invariant() {
    let _guard = serialize_tests();
    // The *result* of a supervised run must not depend on how many other
    // threads were contending: rerun the same request serially and
    // concurrently and compare coordinates bit-for-bit.
    let g = grid2d(15, 15);
    let cfg = ParHdeConfig::with_subspace(8);
    let opts = SuperviseOptions::default();
    let reference = try_par_hde_nd_supervised(&g, &cfg, 2, &opts).unwrap();

    let barrier = Barrier::new(3);
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let (g, cfg, barrier) = (&g, &cfg, &barrier);
                scope.spawn(move || {
                    let opts = SuperviseOptions::default();
                    barrier.wait();
                    try_par_hde_nd_supervised(g, cfg, 2, &opts)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, r) in results.into_iter().enumerate() {
        let sup = r.unwrap_or_else(|e| panic!("run {i} failed: {e}"));
        assert_eq!(
            sup.coords, reference.coords,
            "run {i}: contention perturbed the layout"
        );
        assert_eq!(sup.rung, reference.rung);
    }
}
