//! Degradation-contract tests: the fail-soft pipeline must degrade the way
//! DESIGN.md documents — largest-component fallback equals an explicit
//! `prep::largest_component` run, clamping equals the clamped strict run,
//! and every degraded path stays deterministic under a fixed seed.

use parhde::config::ParHdeConfig;
use parhde::{par_hde, try_par_hde, HdeError, Warning};
use parhde_graph::gen::poison;
use parhde_graph::{builder, gen, prep};

#[test]
fn disconnected_fallback_matches_explicit_largest_component_run() {
    let g = poison::two_paths(24, 7);
    let cfg = ParHdeConfig::default();

    let (fallback, stats) = try_par_hde(&g, &cfg).unwrap();
    assert_eq!(
        stats.warnings,
        vec![Warning::DisconnectedFallback { components: 2, kept: 24, n: 31 }]
    );

    // The degraded layout must be exactly what a user doing the paper's
    // §4.1 preprocessing by hand would get on the kept component…
    let ext = prep::largest_component(&g);
    let (explicit, _) = par_hde(&ext.graph, &cfg);
    for v in 0..ext.graph.num_vertices() {
        let orig = ext.old_ids[v] as usize;
        assert_eq!(fallback.x[orig], explicit.x[v], "x mismatch at vertex {orig}");
        assert_eq!(fallback.y[orig], explicit.y[v], "y mismatch at vertex {orig}");
    }

    // …with every vertex outside the component parked at its centroid.
    let n_kept = ext.graph.num_vertices() as f64;
    let cx = explicit.x.iter().sum::<f64>() / n_kept;
    let cy = explicit.y.iter().sum::<f64>() / n_kept;
    let kept: std::collections::HashSet<u32> = ext.old_ids.iter().copied().collect();
    for v in 0..g.num_vertices() {
        if !kept.contains(&(v as u32)) {
            assert_eq!(fallback.x[v], cx, "straggler {v} not at centroid");
            assert_eq!(fallback.y[v], cy, "straggler {v} not at centroid");
        }
    }
}

#[test]
fn subspace_clamp_matches_explicit_feasible_run() {
    let g = gen::grid2d(5, 5); // n = 25
    let (clamped, stats) = try_par_hde(&g, &ParHdeConfig::with_subspace(25)).unwrap();
    assert_eq!(
        stats.warnings,
        vec![Warning::SubspaceClamped { requested: 25, clamped: 24 }]
    );
    let (explicit, _) = par_hde(&g, &ParHdeConfig::with_subspace(24));
    assert_eq!(clamped.x, explicit.x);
    assert_eq!(clamped.y, explicit.y);
}

/// On a 3-vertex path with s = 2, k-centers picking both endpoints yields
/// distance columns that sum to a constant — a genuinely degenerate
/// subspace (rank 2 with the constant column). The first attempt then
/// fails and the re-pivot retry must rescue it deterministically.
#[test]
fn repivot_retry_is_deterministic_under_fixed_seed() {
    let g = builder::build_from_edges(3, vec![(0, 1), (1, 2)]);
    let cfg_for = |seed: u64| ParHdeConfig { seed, ..ParHdeConfig::with_subspace(2) };

    let mut retry_seed = None;
    for seed in 0..200 {
        match try_par_hde(&g, &cfg_for(seed)) {
            Ok((_, stats)) => {
                if stats.warnings.iter().any(|w| matches!(w, Warning::RepivotRetry { .. })) {
                    retry_seed = Some(seed);
                    break;
                }
            }
            // All retries exhausted: must report the full retry budget.
            Err(HdeError::DegenerateSubspace { retries, .. }) => {
                assert_eq!(retries, 3, "seed {seed} gave up early");
            }
            Err(other) => panic!("seed {seed}: unexpected error {other:?}"),
        }
    }
    let seed = retry_seed.expect("no seed in 0..200 exercised the re-pivot retry");

    // Two runs with the identical seed: identical warnings, identical layout.
    let (a, sa) = try_par_hde(&g, &cfg_for(seed)).unwrap();
    let (b, sb) = try_par_hde(&g, &cfg_for(seed)).unwrap();
    assert_eq!(sa.warnings, sb.warnings);
    assert!(sa.warnings.iter().any(|w| matches!(w, Warning::RepivotRetry { .. })));
    assert_eq!(a.x, b.x);
    assert_eq!(a.y, b.y);
}

#[test]
fn degraded_runs_are_reproducible_end_to_end() {
    // The multi-layer degradation (clamp + fallback + trivial sub-cases)
    // must also be bitwise reproducible.
    for g in [
        poison::two_paths(16, 5),
        poison::grid_with_stragglers(5, 7),
        poison::isolated(20),
    ] {
        let cfg = ParHdeConfig::with_subspace(40); // forces a clamp too
        let (a, sa) = try_par_hde(&g, &cfg).unwrap();
        let (b, sb) = try_par_hde(&g, &cfg).unwrap();
        assert_eq!(sa.warnings, sb.warnings);
        assert_eq!(a.x, b.x);
        assert_eq!(a.y, b.y);
    }
}

#[test]
fn for_graph_builds_a_feasible_config() {
    for n in [1usize, 2, 3, 5, 8, 100] {
        let cfg = ParHdeConfig::for_graph(n);
        if n >= 2 {
            cfg.validate(n).unwrap();
        }
    }
    // A for_graph config on a small connected graph runs strictly, with no
    // clamp warning on the fail-soft path.
    let g = builder::build_from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
    let cfg = ParHdeConfig::for_graph(5);
    let (layout, stats) = try_par_hde(&g, &cfg).unwrap();
    assert_eq!(layout.len(), 5);
    assert!(
        !stats.warnings.iter().any(|w| matches!(w, Warning::SubspaceClamped { .. })),
        "for_graph config should never need clamping: {:?}",
        stats.warnings
    );
}
