//! Fault-injection harness: poison inputs through every pipeline variant.
//!
//! Every builder in `parhde_graph::gen::poison` is fed through the four
//! layout variants (ParHDE, PHDE, PivotMDS, and the eigen-projection
//! configuration) plus the weighted pipeline, through the fail-soft `try_*`
//! entry points. The contract under test: **no panic, ever** — each poison
//! input either returns a typed `HdeError` or succeeds with a documented
//! degradation recorded in `HdeStats::warnings`.

use parhde::config::ParHdeConfig;
use parhde::phde::PhdeConfig;
use parhde::{
    try_par_hde, try_par_hde_nd, try_par_hde_weighted, try_par_hde_weighted_with,
    try_phde, try_pivot_mds, HdeError, Warning, WeightSemantics,
};
use parhde_graph::gen::poison;
use parhde_graph::{gen, CsrGraph};

/// Runs one graph through all four unweighted variants and asserts each
/// returns (no panic); passes each result to `check`.
fn all_variants(g: &CsrGraph, check: impl Fn(&str, Result<usize, HdeError>)) {
    let cfg = ParHdeConfig::default();
    check("parhde", try_par_hde(g, &cfg).map(|(l, _)| l.len()));
    let eigen_cfg = ParHdeConfig { d_orthogonalize: false, ..ParHdeConfig::default() };
    check(
        "eigen-projection",
        try_par_hde(g, &eigen_cfg).map(|(l, _)| l.len()),
    );
    let pcfg = PhdeConfig::default();
    check("phde", try_phde(g, &pcfg).map(|(l, _)| l.len()));
    check("pivotmds", try_pivot_mds(g, &pcfg).map(|(l, _)| l.len()));
}

#[test]
fn empty_graph_degrades_to_empty_layout() {
    all_variants(&poison::empty(), |variant, r| {
        assert_eq!(r.as_ref().ok(), Some(&0), "{variant} on empty graph: {r:?}");
    });
}

#[test]
fn singleton_degrades_to_trivial_layout() {
    all_variants(&poison::singleton(), |variant, r| {
        assert_eq!(r.as_ref().ok(), Some(&1), "{variant} on singleton: {r:?}");
    });
    let (_, stats) = try_par_hde(&poison::singleton(), &ParHdeConfig::default()).unwrap();
    assert_eq!(stats.warnings, vec![Warning::TrivialLayout { n: 1 }]);
}

#[test]
fn fully_isolated_vertices_degrade_not_panic() {
    // 50 components of one vertex each: fallback keeps one vertex, parks
    // the other 49 at the centroid.
    all_variants(&poison::isolated(50), |variant, r| {
        assert_eq!(r.as_ref().ok(), Some(&50), "{variant} on isolated(50): {r:?}");
    });
    let (_, stats) = try_par_hde(&poison::isolated(50), &ParHdeConfig::default()).unwrap();
    assert!(stats
        .warnings
        .iter()
        .any(|w| matches!(w, Warning::DisconnectedFallback { components: 50, kept: 1, n: 50 })));
}

#[test]
fn multi_component_graphs_fall_back_to_largest() {
    for g in [
        poison::two_paths(30, 12),
        poison::grid_with_stragglers(6, 9),
        poison::many_cycles(4, 9),
    ] {
        let n = g.num_vertices();
        all_variants(&g, |variant, r| {
            assert_eq!(r.as_ref().ok(), Some(&n), "{variant} on {n} vertices: {r:?}");
        });
        let (_, stats) = try_par_hde(&g, &ParHdeConfig::default()).unwrap();
        assert!(
            stats
                .warnings
                .iter()
                .any(|w| matches!(w, Warning::DisconnectedFallback { .. })),
            "missing fallback warning: {:?}",
            stats.warnings
        );
    }
}

#[test]
fn oversized_subspace_clamps_in_failsoft_and_errors_in_strict() {
    let g = gen::grid2d(5, 5); // n = 25
    for s in [25, 26, 1000] {
        let cfg = ParHdeConfig::with_subspace(s);
        let (layout, stats) = try_par_hde(&g, &cfg).unwrap();
        assert_eq!(layout.len(), 25);
        assert!(stats
            .warnings
            .iter()
            .any(|w| matches!(w, Warning::SubspaceClamped { clamped: 24, .. })));
        // The strict configuration check still rejects it.
        assert!(matches!(cfg.validate(25), Err(HdeError::InvalidConfig(_))));
    }
}

#[test]
fn zero_subspace_is_a_typed_config_error() {
    let g = gen::grid2d(4, 4);
    // Fail-soft clamps s = 0 up into the feasible range rather than
    // erroring; the strict validator rejects it.
    let cfg = ParHdeConfig::with_subspace(0);
    assert!(matches!(cfg.validate(16), Err(HdeError::InvalidConfig(_))));
    let (layout, stats) = try_par_hde(&g, &cfg).unwrap();
    assert_eq!(layout.len(), 16);
    assert!(stats
        .warnings
        .iter()
        .any(|w| matches!(w, Warning::SubspaceClamped { requested: 0, .. })));
}

#[test]
fn zero_embedding_dimension_is_rejected() {
    let g = gen::grid2d(4, 4);
    let err = try_par_hde_nd(&g, &ParHdeConfig::default(), 0).unwrap_err();
    assert!(matches!(err, HdeError::InvalidConfig(_)));
    assert_eq!(err.exit_code(), 5);
}

#[test]
fn duplicate_heavy_edge_lists_are_harmless() {
    let g = parhde_graph::builder::build_from_edges(
        40,
        poison::duplicate_heavy_edges(40, 25),
    );
    let (layout, stats) = try_par_hde(&g, &ParHdeConfig::default()).unwrap();
    assert_eq!(layout.len(), 40);
    assert!(stats.warnings.is_empty(), "clean run expected: {:?}", stats.warnings);
}

#[test]
fn nan_weights_are_a_typed_error_with_position() {
    let w = poison::nan_weighted(12);
    let err = try_par_hde_weighted(&w, &ParHdeConfig::default(), 1.0).unwrap_err();
    match err {
        HdeError::NonFiniteValue { phase: "weights", row, .. } => assert_eq!(row, 0),
        other => panic!("expected weights NonFiniteValue, got {other:?}"),
    }
    assert_eq!(err.exit_code(), 8);
}

#[test]
fn zero_weights_rejected_under_reciprocal_semantics() {
    let w = poison::zero_weighted(12);
    for sem in [WeightSemantics::Lengths, WeightSemantics::Similarities] {
        let err =
            try_par_hde_weighted_with(&w, &ParHdeConfig::default(), 1.0, sem).unwrap_err();
        assert!(
            matches!(&err, HdeError::InvalidConfig(m) if m.contains("strictly positive")),
            "{sem:?}: {err:?}"
        );
    }
}

#[test]
fn bad_delta_is_a_typed_config_error() {
    let w = parhde_graph::WeightedCsr::unit_weights(gen::grid2d(5, 5));
    for delta in [0.0, -1.0, f64::NAN, f64::INFINITY] {
        let err = try_par_hde_weighted(&w, &ParHdeConfig::default(), delta).unwrap_err();
        assert!(matches!(err, HdeError::InvalidConfig(_)), "delta {delta}: {err:?}");
    }
}

#[test]
fn weighted_pipeline_degrades_on_disconnected_input() {
    let g = poison::two_paths(20, 6);
    let w = parhde_graph::WeightedCsr::unit_weights(g);
    let (layout, stats) = try_par_hde_weighted(&w, &ParHdeConfig::default(), 1.0).unwrap();
    assert_eq!(layout.len(), 26);
    assert!(stats
        .warnings
        .iter()
        .any(|w| matches!(w, Warning::DisconnectedFallback { kept: 20, n: 26, .. })));
}

#[test]
fn truncated_and_corrupt_files_become_positioned_errors() {
    // Every text poison converts into an HdeError that names a position
    // (Parse) or at least the failure class (Io), with its distinct exit
    // code — the path the binaries use.
    let cases: Vec<(&str, Result<CsrGraph, parhde_graph::io::GraphIoError>)> = vec![
        (
            "truncated header",
            parhde_graph::io::parse_matrix_market(&poison::truncated_matrix_market(1))
                .map_err(Into::into),
        ),
        (
            "chopped size line",
            parhde_graph::io::parse_matrix_market(&poison::chopped_size_line())
                .map_err(Into::into),
        ),
        (
            "garbage tail",
            parhde_graph::io::parse_edge_list(&poison::garbage_tail_edge_list(6), 0),
        ),
        (
            "truncated snapshot",
            parhde_graph::io::read_csr_binary(&poison::truncated_snapshot(5)),
        ),
    ];
    for (name, r) in cases {
        let e: HdeError = r.expect_err(name).into();
        assert!(
            matches!(e, HdeError::Parse { .. } | HdeError::Io(_)),
            "{name}: {e:?}"
        );
        assert!([3, 4].contains(&e.exit_code()), "{name}: code {}", e.exit_code());
    }
    // NaN values in a weighted Matrix Market file carry their position.
    let e: HdeError = parhde_graph::io::GraphIoError::from(
        parhde_graph::io::parse_matrix_market_weighted(&poison::nan_matrix_market())
            .unwrap_err(),
    )
    .into();
    match e {
        HdeError::Parse { line, column, .. } => {
            assert_eq!(line, 4);
            assert!(column > 1);
        }
        other => panic!("expected positioned parse error, got {other:?}"),
    }
}

#[test]
fn strict_wrappers_still_panic_with_legacy_messages() {
    let g = poison::two_paths(10, 10);
    let err = std::panic::catch_unwind(|| parhde::par_hde(&g, &ParHdeConfig::with_subspace(4)))
        .unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("connected graph"), "panic message drifted: {msg}");
}

/// Large-scale poison sweep, gated behind `PARHDE_SLOW_TESTS=1` (run with
/// `cargo test -- --ignored`).
#[test]
#[ignore = "slow; set PARHDE_SLOW_TESTS=1 and pass --ignored"]
fn large_poison_inputs_degrade_within_budget() {
    if std::env::var("PARHDE_SLOW_TESTS").as_deref() != Ok("1") {
        eprintln!("PARHDE_SLOW_TESTS != 1; skipping large poison sweep");
        return;
    }
    // A big component plus heavy dust, and a large forest of cycles.
    for g in [
        poison::grid_with_stragglers(180, 50_000),
        poison::many_cycles(1_000, 64),
        poison::isolated(200_000),
    ] {
        let n = g.num_vertices();
        let (layout, _) = try_par_hde(&g, &ParHdeConfig::default()).unwrap();
        assert_eq!(layout.len(), n);
    }
}
