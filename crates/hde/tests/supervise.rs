//! Integration tests for the run supervisor (DESIGN.md §11): deadline
//! degradation down the retry ladder, memory admission, cooperative
//! cancellation, and checkpoint/resume.
//!
//! Every test here installs an ambient budget (directly or through the
//! supervised entry point), and ambient installation is process-exclusive,
//! so the tests serialize on a local mutex instead of deadlocking on the
//! supervisor's own slot lock in surprising orders.

use parhde::config::ParHdeConfig;
use parhde::supervise::estimate_run_bytes;
use parhde::{
    try_par_hde_nd, try_par_hde_nd_checkpointed, try_par_hde_nd_supervised,
    try_par_hde_resume, Checkpoint, CheckpointSpec, HdeError, SuperviseOptions,
    Warning,
};
use parhde_graph::gen;
use parhde_util::supervisor;
use parhde_util::RunBudget;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes the tests and clears global state a previous (possibly
/// panicked) test may have left behind.
fn serialize() -> MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    supervisor::reset_global_cancel();
    guard
}

/// A fresh scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("parhde-supervise-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Leftover `*.tmp` files in `dir` (atomic-write violations).
fn tmp_files(dir: &PathBuf) -> Vec<PathBuf> {
    match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "tmp"))
            .collect(),
        Err(_) => Vec::new(),
    }
}

#[test]
fn unbudgeted_supervised_run_matches_plain_pipeline() {
    let _guard = serialize();
    let g = gen::grid2d(30, 30);
    let cfg = ParHdeConfig::default();
    let (plain, _) = try_par_hde_nd(&g, &cfg, 2).unwrap();
    let sup = try_par_hde_nd_supervised(&g, &cfg, 2, &SuperviseOptions::default())
        .unwrap();
    assert_eq!(sup.rung, "full");
    assert!(sup.ladder.is_empty(), "no budget, no degradation");
    assert_eq!(sup.coords, plain, "supervision must not perturb the result");
}

#[test]
fn zero_deadline_walks_the_ladder_to_trivial() {
    let _guard = serialize();
    let g = gen::grid2d(40, 40);
    let cfg = ParHdeConfig::default();
    let opts = SuperviseOptions {
        deadline: Some(Duration::ZERO),
        ..SuperviseOptions::default()
    };
    let sup = try_par_hde_nd_supervised(&g, &cfg, 2, &opts).unwrap();
    assert_eq!(sup.rung, "trivial");
    assert_eq!(
        sup.ladder.iter().map(|s| s.rung).collect::<Vec<_>>(),
        vec!["full", "halved_pivots", "batched_bfs", "phde"],
        "every rung must be attempted and abandoned"
    );
    // The layout is still usable: right shape, finite entries.
    assert_eq!(sup.coords.rows(), g.num_vertices());
    assert_eq!(sup.coords.cols(), 2);
    assert!(sup.coords.col(0).iter().all(|v| v.is_finite()));
    // Each abandoned rung is also recorded as a warning for reports.
    let ladder_warnings = sup
        .stats
        .warnings
        .iter()
        .filter(|w| matches!(w, Warning::LadderStep { .. }))
        .count();
    assert_eq!(ladder_warnings, 4);
}

#[test]
fn short_deadline_still_returns_promptly() {
    let _guard = serialize();
    let g = gen::kron(12, 8, 7);
    let cfg = ParHdeConfig::default();
    let opts = SuperviseOptions {
        deadline: Some(Duration::from_millis(40)),
        ..SuperviseOptions::default()
    };
    let started = std::time::Instant::now();
    let sup = try_par_hde_nd_supervised(&g, &cfg, 2, &opts).unwrap();
    // Generous bound: the contract is a *small* overshoot (the distance a
    // kernel travels between two cooperative checks), not a hard realtime
    // guarantee, and CI machines are slow.
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "supervised run did not come back promptly"
    );
    assert_eq!(sup.coords.rows(), g.num_vertices());
}

#[test]
fn cancellation_is_sticky_and_never_walks_the_ladder() {
    let _guard = serialize();
    let g = gen::grid2d(30, 30);
    let cfg = ParHdeConfig::default();
    supervisor::request_global_cancel();
    let opts = SuperviseOptions {
        honor_global_cancel: true,
        ..SuperviseOptions::default()
    };
    let err = try_par_hde_nd_supervised(&g, &cfg, 2, &opts).unwrap_err();
    supervisor::reset_global_cancel();
    assert!(
        matches!(err, HdeError::Cancelled { .. }),
        "cancellation must surface as Cancelled, got {err:?}"
    );
    assert_eq!(err.exit_code(), 130);
}

#[test]
fn memory_admission_downscales_and_warns() {
    let _guard = serialize();
    let g = gen::grid2d(250, 250);
    let cfg = ParHdeConfig::default();
    let (n, m) = (g.num_vertices(), g.num_edges());
    let est_full = estimate_run_bytes(n, m, cfg.subspace, 2, cfg.bfs_mode, cfg.linalg_mode);
    let est_half = estimate_run_bytes(n, m, cfg.subspace / 2, 2, cfg.bfs_mode, cfg.linalg_mode);
    assert!(est_half < est_full);
    // A budget between the halved and the full estimate forces exactly one
    // admission halving up front. (Runtime RSS polls may still trip on a
    // loaded machine — the assertion below is about the admission record,
    // which survives whatever rung ends up succeeding.)
    let opts = SuperviseOptions {
        mem_budget_bytes: Some((est_full + est_half) / 2),
        ..SuperviseOptions::default()
    };
    let sup = try_par_hde_nd_supervised(&g, &cfg, 2, &opts).unwrap();
    let downscaled = sup.stats.warnings.iter().find_map(|w| match w {
        Warning::AdmissionDownscaled { requested, admitted, .. } => {
            Some((*requested, *admitted))
        }
        _ => None,
    });
    let (requested, admitted) =
        downscaled.expect("admission must record the downscale");
    assert_eq!(requested, cfg.subspace);
    assert!(admitted < requested, "subspace must shrink ({admitted})");
}

#[test]
fn memory_rejection_degrades_to_trivial_layout() {
    let _guard = serialize();
    let g = gen::grid2d(40, 40);
    let cfg = ParHdeConfig::default();
    // One byte fits nothing: admission rejects the run outright.
    let opts = SuperviseOptions {
        mem_budget_bytes: Some(1),
        ..SuperviseOptions::default()
    };
    let sup = try_par_hde_nd_supervised(&g, &cfg, 2, &opts).unwrap();
    assert_eq!(sup.rung, "trivial");
    assert!(sup
        .stats
        .warnings
        .iter()
        .any(|w| matches!(w, Warning::TrivialLayout { .. })));
}

#[test]
fn checkpoint_roundtrip_and_resume_are_bit_identical() {
    let _guard = serialize();
    let dir = scratch("roundtrip");
    let g = gen::grid2d(25, 25);
    let cfg = ParHdeConfig::default();
    let spec = CheckpointSpec::in_dir(dir.clone());

    let (direct, _) = try_par_hde_nd(&g, &cfg, 2).unwrap();
    let (checkpointed, _) = try_par_hde_nd_checkpointed(&g, &cfg, 2, &spec).unwrap();
    assert_eq!(checkpointed, direct, "checkpoint write must not perturb");
    assert!(tmp_files(&dir).is_empty(), "atomic write left a .tmp file");

    let ckpt = Checkpoint::read(&spec.file_path()).unwrap();
    let (resumed, stats) = try_par_hde_resume(&g, &cfg, 2, &ckpt).unwrap();
    assert_eq!(resumed, direct, "resume must be bit-identical");
    assert_eq!(stats.bfs_mode, Some("resumed"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_rejects_a_different_graph_and_config() {
    let _guard = serialize();
    let dir = scratch("mismatch");
    let g = gen::grid2d(25, 25);
    let cfg = ParHdeConfig::default();
    let spec = CheckpointSpec::in_dir(dir.clone());
    try_par_hde_nd_checkpointed(&g, &cfg, 2, &spec).unwrap();
    let ckpt = Checkpoint::read(&spec.file_path()).unwrap();

    let other = gen::grid2d(26, 25);
    let err = try_par_hde_resume(&other, &cfg, 2, &ckpt).unwrap_err();
    assert!(matches!(err, HdeError::CheckpointMismatch(_)), "{err:?}");
    assert_eq!(err.exit_code(), 11);

    let reseeded = ParHdeConfig { seed: cfg.seed + 1, ..cfg.clone() };
    let err = try_par_hde_resume(&g, &reseeded, 2, &ckpt).unwrap_err();
    assert!(matches!(err, HdeError::CheckpointMismatch(_)), "{err:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_mid_run_leaves_no_partial_checkpoint_files() {
    let _guard = serialize();
    let g = gen::grid2d(40, 40);
    let cfg = ParHdeConfig::default();
    // Cancel at several points across the run; whatever the timing, the
    // checkpoint directory must contain either nothing or a complete,
    // readable checkpoint — never a stray temporary.
    for trip_at in [1u64, 3, 10, 100, 1000] {
        let dir = scratch(&format!("cancel-{trip_at}"));
        let spec = CheckpointSpec::in_dir(dir.clone());
        let budget = RunBudget::unbounded();
        budget.cancel_after_checks(trip_at);
        let installed = supervisor::install(&budget);
        let outcome = try_par_hde_nd_checkpointed(&g, &cfg, 2, &spec);
        drop(installed);
        assert!(
            tmp_files(&dir).is_empty(),
            "trip_at {trip_at}: partial .tmp file left behind"
        );
        if spec.file_path().exists() {
            let ckpt = Checkpoint::read(&spec.file_path())
                .expect("existing checkpoint must be complete and readable");
            // And it must actually be usable for a resume.
            let (resumed, _) = try_par_hde_resume(&g, &cfg, 2, &ckpt).unwrap();
            assert_eq!(resumed.rows(), g.num_vertices());
        }
        if let Err(e) = outcome {
            assert!(
                matches!(e, HdeError::Cancelled { .. }),
                "trip_at {trip_at}: unexpected error {e:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn deadline_error_carries_the_tripped_phase() {
    let _guard = serialize();
    let g = gen::grid2d(40, 40);
    let cfg = ParHdeConfig::default();
    let budget = RunBudget::unbounded().with_deadline(Duration::ZERO);
    let installed = supervisor::install(&budget);
    let err = try_par_hde_nd(&g, &cfg, 2).unwrap_err();
    drop(installed);
    match err {
        HdeError::DeadlineExceeded { phase } => {
            assert!(!phase.is_empty());
            assert_eq!(err.exit_code(), 9);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}
