//! Pluggable compute backends for the hot kernels.
//!
//! Every floating-point inner loop the profiler ever ranked — the shared
//! 4×4 register-tile microkernel ([`crate::gemm`], [`crate::syrk`],
//! [`crate::fused`]), the SpMM/fused row accumulations, the BCGS2 block
//! projections ([`crate::ortho`]), and the BLAS-1 primitives
//! ([`crate::blas1`]) — runs behind the [`Kernels`] trait. Two
//! implementations exist:
//!
//! * [`ScalarKernels`] — the pre-backend scalar loops, moved here verbatim.
//!   This is the *reference implementation*: every exactness claim below is
//!   stated against it.
//! * [`SimdKernels`] — explicit f64×4 vectors via `std::arch` AVX2/FMA
//!   intrinsics, compiled only on `x86_64` and selected at runtime by CPU
//!   feature detection (`avx2` **and** `fma`). On other architectures the
//!   type still exists (so the knob surface is portable) but
//!   [`install`]ing it reports [`LinalgError::BackendUnavailable`].
//!
//! ## Exactness contract
//!
//! The SIMD kernels are **bit-identical** to scalar wherever the scalar
//! accumulation order maps onto vector lanes without reassociation:
//!
//! | kernel                         | SIMD vs scalar                        |
//! |--------------------------------|---------------------------------------|
//! | `tile_4x4` (GEMM/SYRK/fused)   | bit-exact: lanes = the 16 chains      |
//! | `row_scale`/`row_sub`/`row_sub_scaled` (SpMM rows) | bit-exact: elementwise |
//! | `axpy_chunk`, `scale_chunk`    | bit-exact: elementwise mul+add        |
//! | `dot_chunk`, `dot_weighted_chunk`, `sum_chunk` | ≤1e-13·‖x‖‖y‖ (lane reassociation + FMA) |
//! | `ortho_dot` (BCGS2 pass 1)     | ≤1e-13·‖x‖‖y‖ (FMA contraction)       |
//!
//! Bit-exact kernels deliberately use separate multiply and add
//! instructions — an FMA single-rounds `a·b + c` and would change the low
//! bits of every chain. The dot-product family cannot be vectorized
//! without widening the scalar summation chain into independent lanes, so
//! it carries a documented tolerance instead; the decisions derived from
//! those dots (BCGS2's energy criterion, the kept/dropped column verdicts)
//! are required by the equivalence suite to be identical across backends.
//!
//! ## Dispatch
//!
//! The active backend is a process-wide knob: [`install`] pins it
//! (`auto` resolves by feature detection), and before the first `install`
//! the `PARHDE_BACKEND` environment variable is consulted once, falling
//! back to `auto`. Dispatch happens at kernel-call granularity (one
//! virtual call per row block / panel / vector chunk), so its cost is
//! noise against the loops it guards.
//!
//! Each public kernel reports the elements it processed to a per-backend
//! trace counter (`linalg.backend.<backend>.<family>`), which is what lets
//! `trace-validate` prove which backend actually served a run — a silent
//! scalar fallback inside an `auto` run shows up as scalar counters in a
//! report whose config claims `simd`.

use crate::error::LinalgError;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which backend the caller asks for; `Auto` resolves by CPU detection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Choice {
    /// Pick SIMD when the CPU supports it, scalar otherwise (default).
    #[default]
    Auto,
    /// Force the scalar reference kernels.
    Scalar,
    /// Force the explicit-SIMD kernels; [`install`] fails with a typed
    /// error when the CPU lacks AVX2+FMA.
    Simd,
}

impl Choice {
    /// Stable lowercase label for reports and error messages.
    pub fn label(self) -> &'static str {
        match self {
            Choice::Auto => "auto",
            Choice::Scalar => "scalar",
            Choice::Simd => "simd",
        }
    }
}

impl std::str::FromStr for Choice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Choice::Auto),
            "scalar" => Ok(Choice::Scalar),
            "simd" => Ok(Choice::Simd),
            other => Err(format!(
                "unknown backend {other:?} (expected auto, scalar or simd)"
            )),
        }
    }
}

/// The hot-kernel surface a backend must provide. Methods operate on the
/// *chunk* level — callers own parallel decomposition, chain boundaries and
/// edge-tile handling, so every backend sees identical work shapes.
pub trait Kernels: Sync + Send {
    /// Stable lowercase backend name (`"scalar"` / `"simd"`).
    fn name(&self) -> &'static str;

    /// The full-tile microkernel: extends the 16 accumulator chains
    /// `acc[jj·4 + ii] += Σ_{r<len} a[ii][r] · b[bi + r·b_rs + jj·b_cs]`
    /// in ascending-`r` order. Each `acc` entry is one *independent*
    /// summation chain (the bit-reproducibility contract of
    /// `gemm::accumulate_block`); implementations must extend each chain
    /// with one rounding per multiply and one per add — no FMA, no
    /// cross-chain reassociation — so the result is bit-identical across
    /// backends.
    #[allow(clippy::too_many_arguments)] // mirrors the microkernel ABI
    fn tile_4x4(
        &self,
        acc: &mut [f64; 16],
        a: [&[f64]; 4],
        b: &[f64],
        bi: usize,
        b_rs: usize,
        b_cs: usize,
        len: usize,
    );

    /// Dot product of one chunk, `Σ x_i·y_i`. Tolerance-class: the scalar
    /// reference is a single left-to-right chain, SIMD uses independent
    /// lanes + FMA.
    fn dot_chunk(&self, x: &[f64], y: &[f64]) -> f64;

    /// Weighted dot of one chunk, `Σ x_i·d_i·y_i`. Tolerance-class.
    fn dot_weighted_chunk(&self, x: &[f64], d: &[f64], y: &[f64]) -> f64;

    /// Sum of one chunk. Tolerance-class.
    fn sum_chunk(&self, x: &[f64]) -> f64;

    /// `y ← y + α·x` over one chunk. Bit-exact (elementwise mul then add).
    fn axpy_chunk(&self, alpha: f64, x: &[f64], y: &mut [f64]);

    /// `x ← α·x` over one chunk. Bit-exact.
    fn scale_chunk(&self, alpha: f64, x: &mut [f64]);

    /// SpMM/fused row op: `out[c] = α·src[c]` (the `deg(v)·S[v,·]` diagonal
    /// term). Bit-exact.
    fn row_scale(&self, out: &mut [f64], alpha: f64, src: &[f64]);

    /// SpMM/fused row op: `out[c] -= src[c]` (one unweighted neighbor row).
    /// Bit-exact.
    fn row_sub(&self, out: &mut [f64], src: &[f64]);

    /// SpMM/fused/BCGS2 op: `out[c] -= α·src[c]` (weighted neighbor row;
    /// BCGS2 pass-2 rank-update column). Bit-exact (mul then sub).
    fn row_sub_scaled(&self, out: &mut [f64], alpha: f64, src: &[f64]);

    /// Fused/SpMM whole-row assembly: `out[c] = α·src[c] − Σ_u pack[u·k+c]`
    /// with `k = out.len()` and the neighbor sum folded in slice order.
    /// Per element this is exactly [`Kernels::row_scale`] followed by one
    /// [`Kernels::row_sub`] per neighbor — the default body — so it is
    /// bit-exact across backends; SIMD implementations may keep `out`
    /// register-resident across neighbors (each element's operation chain
    /// is unchanged: scale, then neighbors in order).
    fn laplacian_row(
        &self,
        out: &mut [f64],
        alpha: f64,
        src: &[f64],
        pack: &[f64],
        neighbors: &[u32],
    ) {
        let k = out.len();
        self.row_scale(out, alpha, src);
        for &u in neighbors {
            self.row_sub(out, &pack[u as usize * k..(u as usize + 1) * k]);
        }
    }

    /// BCGS2 pass-2 whole-row rank update:
    /// `out[c] -= Σ_i coeffs[i] · pack[bases[i] + c]`, pairs folded in
    /// slice order. Per element this is exactly one
    /// [`Kernels::row_sub_scaled`] per `(coeff, base)` pair — the default
    /// body — so it is bit-exact across backends; SIMD implementations may
    /// keep `out` register-resident across the kept prefix (each element's
    /// mul-then-sub chain is unchanged: pairs in order, two roundings per
    /// pair). Callers decide any zero-coefficient skipping *before* the
    /// call so both backends see the same pair list.
    fn rank_update_row(
        &self,
        out: &mut [f64],
        coeffs: &[f64],
        pack: &[f64],
        bases: &[usize],
    ) {
        let k = out.len();
        for (&c, &b) in coeffs.iter().zip(bases) {
            self.row_sub_scaled(out, c, &pack[b..b + k]);
        }
    }

    /// BCGS2 pass-1 projection dot over one chunk. The scalar reference is
    /// the historical 4-lane accumulator loop of `ortho::block_project`;
    /// SIMD widens the lanes and uses FMA — tolerance-class, with the
    /// requirement that the energy-criterion and kept/dropped decisions
    /// derived from it stay identical (asserted by the equivalence suite).
    fn ortho_dot(&self, x: &[f64], y: &[f64]) -> f64;
}

// ---------------------------------------------------------------------------
// Scalar reference backend
// ---------------------------------------------------------------------------

/// The pre-backend scalar loops, verbatim — the reference every SIMD
/// exactness/tolerance claim is tested against.
pub struct ScalarKernels;

impl Kernels for ScalarKernels {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn tile_4x4(
        &self,
        acc: &mut [f64; 16],
        a: [&[f64]; 4],
        b: &[f64],
        bi: usize,
        b_rs: usize,
        b_cs: usize,
        len: usize,
    ) {
        #[allow(clippy::needless_range_loop)] // rr indexes four rows + strided b
        for rr in 0..len {
            let av = [a[0][rr], a[1][rr], a[2][rr], a[3][rr]];
            let base = bi + rr * b_rs;
            let bv = [b[base], b[base + b_cs], b[base + 2 * b_cs], b[base + 3 * b_cs]];
            for (jj, &bvj) in bv.iter().enumerate() {
                for (ii, &avi) in av.iter().enumerate() {
                    acc[jj * 4 + ii] += avi * bvj;
                }
            }
        }
    }

    fn dot_chunk(&self, x: &[f64], y: &[f64]) -> f64 {
        x.iter().zip(y).map(|(a, b)| a * b).sum()
    }

    fn dot_weighted_chunk(&self, x: &[f64], d: &[f64], y: &[f64]) -> f64 {
        x.iter().zip(d).zip(y).map(|((a, w), b)| a * w * b).sum()
    }

    fn sum_chunk(&self, x: &[f64]) -> f64 {
        x.iter().sum()
    }

    fn axpy_chunk(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    fn scale_chunk(&self, alpha: f64, x: &mut [f64]) {
        for xi in x.iter_mut() {
            *xi *= alpha;
        }
    }

    fn row_scale(&self, out: &mut [f64], alpha: f64, src: &[f64]) {
        for (o, &s) in out.iter_mut().zip(src) {
            *o = alpha * s;
        }
    }

    fn row_sub(&self, out: &mut [f64], src: &[f64]) {
        for (o, &s) in out.iter_mut().zip(src) {
            *o -= s;
        }
    }

    fn row_sub_scaled(&self, out: &mut [f64], alpha: f64, src: &[f64]) {
        for (o, &s) in out.iter_mut().zip(src) {
            *o -= alpha * s;
        }
    }

    fn ortho_dot(&self, x: &[f64], y: &[f64]) -> f64 {
        // Four independent accumulator lanes break the serial add
        // dependency (fixed lane assignment ⇒ the summation order is
        // still schedule-independent) — the historical `block_project`
        // pass-1 loop.
        let mut acc = [0.0f64; 4];
        for (ca, pa) in x.chunks_exact(4).zip(y.chunks_exact(4)) {
            acc[0] += ca[0] * pa[0];
            acc[1] += ca[1] * pa[1];
            acc[2] += ca[2] * pa[2];
            acc[3] += ca[3] * pa[3];
        }
        let mut tail = 0.0;
        for (&a, &b) in x
            .chunks_exact(4)
            .remainder()
            .iter()
            .zip(y.chunks_exact(4).remainder())
        {
            tail += a * b;
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }
}

// ---------------------------------------------------------------------------
// Explicit-SIMD backend (x86_64 AVX2 + FMA)
// ---------------------------------------------------------------------------

/// Explicit f64×4 kernels. Installable only when the running CPU reports
/// `avx2` and `fma`; the safe wrappers assert slice bounds before entering
/// the `target_feature` functions.
pub struct SimdKernels;

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! The `unsafe` intrinsic bodies. Every function is only reachable
    //! through [`super::SimdKernels`], which is only installable after
    //! `is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")`
    //! — the safety requirement of `#[target_feature]`. Callers assert all
    //! slice-length preconditions before the call; the bodies use raw
    //! pointers so the hot loops carry no bounds checks.
    #![allow(unsafe_code)]

    use std::arch::x86_64::*;

    /// Horizontal sum in the fixed order `(l0+l1) + (l2+l3)` — the same
    /// combination the scalar 4-lane reference uses.
    #[inline]
    unsafe fn hsum(v: __m256d) -> f64 {
        let mut l = [0.0f64; 4];
        _mm256_storeu_pd(l.as_mut_ptr(), v);
        (l[0] + l[1]) + (l[2] + l[3])
    }

    /// FMA multi-lane dot product (tolerance-class).
    ///
    /// # Safety
    /// Requires AVX2+FMA and `x.len() == y.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len();
        let (xp, yp) = (x.as_ptr(), y.as_ptr());
        let mut v0 = _mm256_setzero_pd();
        let mut v1 = _mm256_setzero_pd();
        let mut v2 = _mm256_setzero_pd();
        let mut v3 = _mm256_setzero_pd();
        let mut i = 0usize;
        while i + 16 <= n {
            v0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)), v0);
            v1 = _mm256_fmadd_pd(
                _mm256_loadu_pd(xp.add(i + 4)),
                _mm256_loadu_pd(yp.add(i + 4)),
                v1,
            );
            v2 = _mm256_fmadd_pd(
                _mm256_loadu_pd(xp.add(i + 8)),
                _mm256_loadu_pd(yp.add(i + 8)),
                v2,
            );
            v3 = _mm256_fmadd_pd(
                _mm256_loadu_pd(xp.add(i + 12)),
                _mm256_loadu_pd(yp.add(i + 12)),
                v3,
            );
            i += 16;
        }
        while i + 4 <= n {
            v0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)), v0);
            i += 4;
        }
        let mut acc = hsum(_mm256_add_pd(_mm256_add_pd(v0, v1), _mm256_add_pd(v2, v3)));
        while i < n {
            acc += *xp.add(i) * *yp.add(i);
            i += 1;
        }
        acc
    }

    /// FMA multi-lane weighted dot `Σ x·d·y` (tolerance-class).
    ///
    /// # Safety
    /// Requires AVX2+FMA and equal slice lengths.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_weighted(x: &[f64], d: &[f64], y: &[f64]) -> f64 {
        let n = x.len();
        let (xp, dp, yp) = (x.as_ptr(), d.as_ptr(), y.as_ptr());
        let mut v0 = _mm256_setzero_pd();
        let mut v1 = _mm256_setzero_pd();
        let mut i = 0usize;
        while i + 8 <= n {
            let xw0 = _mm256_mul_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(dp.add(i)));
            v0 = _mm256_fmadd_pd(xw0, _mm256_loadu_pd(yp.add(i)), v0);
            let xw1 = _mm256_mul_pd(
                _mm256_loadu_pd(xp.add(i + 4)),
                _mm256_loadu_pd(dp.add(i + 4)),
            );
            v1 = _mm256_fmadd_pd(xw1, _mm256_loadu_pd(yp.add(i + 4)), v1);
            i += 8;
        }
        while i + 4 <= n {
            let xw = _mm256_mul_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(dp.add(i)));
            v0 = _mm256_fmadd_pd(xw, _mm256_loadu_pd(yp.add(i)), v0);
            i += 4;
        }
        let mut acc = hsum(_mm256_add_pd(v0, v1));
        while i < n {
            acc += *xp.add(i) * *dp.add(i) * *yp.add(i);
            i += 1;
        }
        acc
    }

    /// Multi-lane sum (tolerance-class).
    ///
    /// # Safety
    /// Requires AVX2+FMA.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sum(x: &[f64]) -> f64 {
        let n = x.len();
        let xp = x.as_ptr();
        let mut v0 = _mm256_setzero_pd();
        let mut v1 = _mm256_setzero_pd();
        let mut i = 0usize;
        while i + 8 <= n {
            v0 = _mm256_add_pd(v0, _mm256_loadu_pd(xp.add(i)));
            v1 = _mm256_add_pd(v1, _mm256_loadu_pd(xp.add(i + 4)));
            i += 8;
        }
        while i + 4 <= n {
            v0 = _mm256_add_pd(v0, _mm256_loadu_pd(xp.add(i)));
            i += 4;
        }
        let mut acc = hsum(_mm256_add_pd(v0, v1));
        while i < n {
            acc += *xp.add(i);
            i += 1;
        }
        acc
    }

    /// Bit-exact vectorized `y += α·x`: each lane performs exactly the
    /// scalar multiply-then-add, so no FMA.
    ///
    /// # Safety
    /// Requires AVX2+FMA and `x.len() == y.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
        let va = _mm256_set1_pd(alpha);
        let mut i = 0usize;
        while i + 4 <= n {
            let prod = _mm256_mul_pd(va, _mm256_loadu_pd(xp.add(i)));
            _mm256_storeu_pd(yp.add(i), _mm256_add_pd(_mm256_loadu_pd(yp.add(i)), prod));
            i += 4;
        }
        while i < n {
            *yp.add(i) += alpha * *xp.add(i);
            i += 1;
        }
    }

    /// Bit-exact vectorized `x ← α·x`.
    ///
    /// # Safety
    /// Requires AVX2+FMA.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn scale(alpha: f64, x: &mut [f64]) {
        let n = x.len();
        let xp = x.as_mut_ptr();
        let va = _mm256_set1_pd(alpha);
        let mut i = 0usize;
        while i + 4 <= n {
            _mm256_storeu_pd(xp.add(i), _mm256_mul_pd(va, _mm256_loadu_pd(xp.add(i))));
            i += 4;
        }
        while i < n {
            *xp.add(i) *= alpha;
            i += 1;
        }
    }

    /// Bit-exact vectorized `out = α·src`.
    ///
    /// # Safety
    /// Requires AVX2+FMA and `out.len() == src.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn row_scale(out: &mut [f64], alpha: f64, src: &[f64]) {
        let n = out.len();
        let (op, sp) = (out.as_mut_ptr(), src.as_ptr());
        let va = _mm256_set1_pd(alpha);
        let mut i = 0usize;
        while i + 4 <= n {
            _mm256_storeu_pd(op.add(i), _mm256_mul_pd(va, _mm256_loadu_pd(sp.add(i))));
            i += 4;
        }
        while i < n {
            *op.add(i) = alpha * *sp.add(i);
            i += 1;
        }
    }

    /// Bit-exact vectorized `out -= src`.
    ///
    /// # Safety
    /// Requires AVX2+FMA and `out.len() == src.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn row_sub(out: &mut [f64], src: &[f64]) {
        let n = out.len();
        let (op, sp) = (out.as_mut_ptr(), src.as_ptr());
        let mut i = 0usize;
        while i + 8 <= n {
            _mm256_storeu_pd(
                op.add(i),
                _mm256_sub_pd(_mm256_loadu_pd(op.add(i)), _mm256_loadu_pd(sp.add(i))),
            );
            _mm256_storeu_pd(
                op.add(i + 4),
                _mm256_sub_pd(
                    _mm256_loadu_pd(op.add(i + 4)),
                    _mm256_loadu_pd(sp.add(i + 4)),
                ),
            );
            i += 8;
        }
        while i + 4 <= n {
            _mm256_storeu_pd(
                op.add(i),
                _mm256_sub_pd(_mm256_loadu_pd(op.add(i)), _mm256_loadu_pd(sp.add(i))),
            );
            i += 4;
        }
        while i < n {
            *op.add(i) -= *sp.add(i);
            i += 1;
        }
    }

    /// Bit-exact vectorized `out -= α·src` (multiply then subtract — an
    /// FNMADD would single-round and break bit-identity).
    ///
    /// # Safety
    /// Requires AVX2+FMA and `out.len() == src.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn row_sub_scaled(out: &mut [f64], alpha: f64, src: &[f64]) {
        let n = out.len();
        let (op, sp) = (out.as_mut_ptr(), src.as_ptr());
        let va = _mm256_set1_pd(alpha);
        let mut i = 0usize;
        while i + 8 <= n {
            let p0 = _mm256_mul_pd(va, _mm256_loadu_pd(sp.add(i)));
            let p1 = _mm256_mul_pd(va, _mm256_loadu_pd(sp.add(i + 4)));
            _mm256_storeu_pd(op.add(i), _mm256_sub_pd(_mm256_loadu_pd(op.add(i)), p0));
            _mm256_storeu_pd(
                op.add(i + 4),
                _mm256_sub_pd(_mm256_loadu_pd(op.add(i + 4)), p1),
            );
            i += 8;
        }
        while i + 4 <= n {
            let prod = _mm256_mul_pd(va, _mm256_loadu_pd(sp.add(i)));
            _mm256_storeu_pd(op.add(i), _mm256_sub_pd(_mm256_loadu_pd(op.add(i)), prod));
            i += 4;
        }
        while i < n {
            *op.add(i) -= alpha * *sp.add(i);
            i += 1;
        }
    }

    /// Bit-exact whole-row Laplacian assembly:
    /// `out[j] = α·src[j] − Σ_u pack[u·k + j]`, neighbors in slice order.
    /// The output row stays register-resident across the neighbor sweep
    /// (one store per 16-element chunk instead of one load+store per
    /// neighbor); each element's operation chain is the scalar one.
    ///
    /// # Safety
    /// Requires AVX2+FMA; `out.len() == src.len() == k`; every neighbor
    /// row `pack[u·k .. (u+1)·k]` in bounds.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn laplacian_row(
        out: &mut [f64],
        alpha: f64,
        src: &[f64],
        pack: &[f64],
        neighbors: &[u32],
    ) {
        let k = out.len();
        let (op, sp, pp) = (out.as_mut_ptr(), src.as_ptr(), pack.as_ptr());
        let va = _mm256_set1_pd(alpha);
        let mut j = 0usize;
        while j + 16 <= k {
            let mut r0 = _mm256_mul_pd(va, _mm256_loadu_pd(sp.add(j)));
            let mut r1 = _mm256_mul_pd(va, _mm256_loadu_pd(sp.add(j + 4)));
            let mut r2 = _mm256_mul_pd(va, _mm256_loadu_pd(sp.add(j + 8)));
            let mut r3 = _mm256_mul_pd(va, _mm256_loadu_pd(sp.add(j + 12)));
            for &u in neighbors {
                let np = pp.add(u as usize * k + j);
                r0 = _mm256_sub_pd(r0, _mm256_loadu_pd(np));
                r1 = _mm256_sub_pd(r1, _mm256_loadu_pd(np.add(4)));
                r2 = _mm256_sub_pd(r2, _mm256_loadu_pd(np.add(8)));
                r3 = _mm256_sub_pd(r3, _mm256_loadu_pd(np.add(12)));
            }
            _mm256_storeu_pd(op.add(j), r0);
            _mm256_storeu_pd(op.add(j + 4), r1);
            _mm256_storeu_pd(op.add(j + 8), r2);
            _mm256_storeu_pd(op.add(j + 12), r3);
            j += 16;
        }
        while j + 4 <= k {
            let mut r = _mm256_mul_pd(va, _mm256_loadu_pd(sp.add(j)));
            for &u in neighbors {
                r = _mm256_sub_pd(r, _mm256_loadu_pd(pp.add(u as usize * k + j)));
            }
            _mm256_storeu_pd(op.add(j), r);
            j += 4;
        }
        while j < k {
            let mut acc = alpha * *sp.add(j);
            for &u in neighbors {
                acc -= *pp.add(u as usize * k + j);
            }
            *op.add(j) = acc;
            j += 1;
        }
    }

    /// Bit-exact whole-row rank update:
    /// `out[j] -= Σ_i coeffs[i] · pack[bases[i] + j]`, pairs in slice
    /// order. The output row stays register-resident across the kept
    /// prefix (one load + one store per 16-element chunk instead of one
    /// load+store per coefficient); each element's chain is the scalar
    /// one — separate multiply and subtract per pair, no FNMADD.
    ///
    /// # Safety
    /// Requires AVX2+FMA; `coeffs.len() == bases.len()`; every row
    /// `pack[b .. b + out.len()]` in bounds.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn rank_update_row(
        out: &mut [f64],
        coeffs: &[f64],
        pack: &[f64],
        bases: &[usize],
    ) {
        let k = out.len();
        let (op, pp) = (out.as_mut_ptr(), pack.as_ptr());
        let mut j = 0usize;
        while j + 16 <= k {
            let mut r0 = _mm256_loadu_pd(op.add(j));
            let mut r1 = _mm256_loadu_pd(op.add(j + 4));
            let mut r2 = _mm256_loadu_pd(op.add(j + 8));
            let mut r3 = _mm256_loadu_pd(op.add(j + 12));
            for (&c, &b) in coeffs.iter().zip(bases) {
                let vc = _mm256_set1_pd(c);
                let sp = pp.add(b + j);
                r0 = _mm256_sub_pd(r0, _mm256_mul_pd(vc, _mm256_loadu_pd(sp)));
                r1 = _mm256_sub_pd(r1, _mm256_mul_pd(vc, _mm256_loadu_pd(sp.add(4))));
                r2 = _mm256_sub_pd(r2, _mm256_mul_pd(vc, _mm256_loadu_pd(sp.add(8))));
                r3 = _mm256_sub_pd(r3, _mm256_mul_pd(vc, _mm256_loadu_pd(sp.add(12))));
            }
            _mm256_storeu_pd(op.add(j), r0);
            _mm256_storeu_pd(op.add(j + 4), r1);
            _mm256_storeu_pd(op.add(j + 8), r2);
            _mm256_storeu_pd(op.add(j + 12), r3);
            j += 16;
        }
        while j + 4 <= k {
            let mut r = _mm256_loadu_pd(op.add(j));
            for (&c, &b) in coeffs.iter().zip(bases) {
                let prod =
                    _mm256_mul_pd(_mm256_set1_pd(c), _mm256_loadu_pd(pp.add(b + j)));
                r = _mm256_sub_pd(r, prod);
            }
            _mm256_storeu_pd(op.add(j), r);
            j += 4;
        }
        while j < k {
            let mut acc = *op.add(j);
            for (&c, &b) in coeffs.iter().zip(bases) {
                acc -= c * *pp.add(b + j);
            }
            *op.add(j) = acc;
            j += 1;
        }
    }

    /// Bit-exact full-tile microkernel: four `__m256d` accumulators, one
    /// per output column `jj`, each lane one of the four `ii` chains.
    /// Separate multiply and add per step reproduce the scalar chains
    /// exactly; lanes never reassociate.
    ///
    /// # Safety
    /// Requires AVX2+FMA; each `a[i].len() >= len`; for `len > 0`,
    /// `bi + (len-1)·b_rs + 3·b_cs < b.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn tile_4x4(
        acc: &mut [f64; 16],
        a: [&[f64]; 4],
        b: &[f64],
        bi: usize,
        b_rs: usize,
        b_cs: usize,
        len: usize,
    ) {
        let ap = acc.as_mut_ptr();
        let mut c0 = _mm256_loadu_pd(ap);
        let mut c1 = _mm256_loadu_pd(ap.add(4));
        let mut c2 = _mm256_loadu_pd(ap.add(8));
        let mut c3 = _mm256_loadu_pd(ap.add(12));
        let (a0, a1, a2, a3) = (a[0].as_ptr(), a[1].as_ptr(), a[2].as_ptr(), a[3].as_ptr());
        let bp = b.as_ptr();
        for r in 0..len {
            let av = _mm256_set_pd(*a3.add(r), *a2.add(r), *a1.add(r), *a0.add(r));
            let base = bi + r * b_rs;
            c0 = _mm256_add_pd(c0, _mm256_mul_pd(av, _mm256_set1_pd(*bp.add(base))));
            c1 = _mm256_add_pd(c1, _mm256_mul_pd(av, _mm256_set1_pd(*bp.add(base + b_cs))));
            c2 = _mm256_add_pd(c2, _mm256_mul_pd(av, _mm256_set1_pd(*bp.add(base + 2 * b_cs))));
            c3 = _mm256_add_pd(c3, _mm256_mul_pd(av, _mm256_set1_pd(*bp.add(base + 3 * b_cs))));
        }
        _mm256_storeu_pd(ap, c0);
        _mm256_storeu_pd(ap.add(4), c1);
        _mm256_storeu_pd(ap.add(8), c2);
        _mm256_storeu_pd(ap.add(12), c3);
    }
}

#[cfg(target_arch = "x86_64")]
impl Kernels for SimdKernels {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn tile_4x4(
        &self,
        acc: &mut [f64; 16],
        a: [&[f64]; 4],
        b: &[f64],
        bi: usize,
        b_rs: usize,
        b_cs: usize,
        len: usize,
    ) {
        assert!(a.iter().all(|c| c.len() >= len), "tile operand too short");
        if len > 0 {
            assert!(
                bi + (len - 1) * b_rs + 3 * b_cs < b.len(),
                "tile right operand out of bounds"
            );
        }
        // SAFETY: bounds asserted above; AVX2+FMA verified at install time.
        unsafe { avx2::tile_4x4(acc, a, b, bi, b_rs, b_cs, len) }
    }

    fn dot_chunk(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "dot length mismatch");
        // SAFETY: lengths asserted; AVX2+FMA verified at install time.
        unsafe { avx2::dot(x, y) }
    }

    fn dot_weighted_chunk(&self, x: &[f64], d: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "dot_weighted length mismatch");
        assert_eq!(x.len(), d.len(), "weight vector length mismatch");
        // SAFETY: lengths asserted; AVX2+FMA verified at install time.
        unsafe { avx2::dot_weighted(x, d, y) }
    }

    fn sum_chunk(&self, x: &[f64]) -> f64 {
        // SAFETY: AVX2+FMA verified at install time.
        unsafe { avx2::sum(x) }
    }

    fn axpy_chunk(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), y.len(), "axpy length mismatch");
        // SAFETY: lengths asserted; AVX2+FMA verified at install time.
        unsafe { avx2::axpy(alpha, x, y) }
    }

    fn scale_chunk(&self, alpha: f64, x: &mut [f64]) {
        // SAFETY: AVX2+FMA verified at install time.
        unsafe { avx2::scale(alpha, x) }
    }

    fn row_scale(&self, out: &mut [f64], alpha: f64, src: &[f64]) {
        assert_eq!(out.len(), src.len(), "row length mismatch");
        // SAFETY: lengths asserted; AVX2+FMA verified at install time.
        unsafe { avx2::row_scale(out, alpha, src) }
    }

    fn row_sub(&self, out: &mut [f64], src: &[f64]) {
        assert_eq!(out.len(), src.len(), "row length mismatch");
        // SAFETY: lengths asserted; AVX2+FMA verified at install time.
        unsafe { avx2::row_sub(out, src) }
    }

    fn row_sub_scaled(&self, out: &mut [f64], alpha: f64, src: &[f64]) {
        assert_eq!(out.len(), src.len(), "row length mismatch");
        // SAFETY: lengths asserted; AVX2+FMA verified at install time.
        unsafe { avx2::row_sub_scaled(out, alpha, src) }
    }

    fn laplacian_row(
        &self,
        out: &mut [f64],
        alpha: f64,
        src: &[f64],
        pack: &[f64],
        neighbors: &[u32],
    ) {
        let k = out.len();
        assert_eq!(src.len(), k, "row length mismatch");
        if let Some(&mx) = neighbors.iter().max() {
            assert!(
                (mx as usize + 1) * k <= pack.len(),
                "neighbor row out of bounds"
            );
        }
        // SAFETY: bounds asserted above; AVX2+FMA verified at install time.
        unsafe { avx2::laplacian_row(out, alpha, src, pack, neighbors) }
    }

    fn rank_update_row(
        &self,
        out: &mut [f64],
        coeffs: &[f64],
        pack: &[f64],
        bases: &[usize],
    ) {
        let k = out.len();
        assert_eq!(coeffs.len(), bases.len(), "coeff/base length mismatch");
        for &b in bases {
            assert!(b + k <= pack.len(), "rank-update row out of bounds");
        }
        // SAFETY: bounds asserted above; AVX2+FMA verified at install time.
        unsafe { avx2::rank_update_row(out, coeffs, pack, bases) }
    }

    fn ortho_dot(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "ortho_dot length mismatch");
        // SAFETY: lengths asserted; AVX2+FMA verified at install time.
        unsafe { avx2::dot(x, y) }
    }
}

/// Off x86_64 the SIMD backend is never installable, so these bodies are
/// unreachable; they delegate to scalar to keep the type well-formed.
#[cfg(not(target_arch = "x86_64"))]
impl Kernels for SimdKernels {
    fn name(&self) -> &'static str {
        "simd"
    }
    fn tile_4x4(
        &self,
        acc: &mut [f64; 16],
        a: [&[f64]; 4],
        b: &[f64],
        bi: usize,
        b_rs: usize,
        b_cs: usize,
        len: usize,
    ) {
        ScalarKernels.tile_4x4(acc, a, b, bi, b_rs, b_cs, len);
    }
    fn dot_chunk(&self, x: &[f64], y: &[f64]) -> f64 {
        ScalarKernels.dot_chunk(x, y)
    }
    fn dot_weighted_chunk(&self, x: &[f64], d: &[f64], y: &[f64]) -> f64 {
        ScalarKernels.dot_weighted_chunk(x, d, y)
    }
    fn sum_chunk(&self, x: &[f64]) -> f64 {
        ScalarKernels.sum_chunk(x)
    }
    fn axpy_chunk(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        ScalarKernels.axpy_chunk(alpha, x, y);
    }
    fn scale_chunk(&self, alpha: f64, x: &mut [f64]) {
        ScalarKernels.scale_chunk(alpha, x);
    }
    fn row_scale(&self, out: &mut [f64], alpha: f64, src: &[f64]) {
        ScalarKernels.row_scale(out, alpha, src);
    }
    fn row_sub(&self, out: &mut [f64], src: &[f64]) {
        ScalarKernels.row_sub(out, src);
    }
    fn row_sub_scaled(&self, out: &mut [f64], alpha: f64, src: &[f64]) {
        ScalarKernels.row_sub_scaled(out, alpha, src);
    }
    fn ortho_dot(&self, x: &[f64], y: &[f64]) -> f64 {
        ScalarKernels.ortho_dot(x, y)
    }
}

// ---------------------------------------------------------------------------
// Runtime dispatch
// ---------------------------------------------------------------------------

static SCALAR: ScalarKernels = ScalarKernels;
static SIMD: SimdKernels = SimdKernels;

const ID_SCALAR: u8 = 0;
const ID_SIMD: u8 = 1;
const ID_UNSET: u8 = u8::MAX;

/// The process-wide active backend; `ID_UNSET` until the first kernel call
/// or [`install`] resolves it.
static ACTIVE: AtomicU8 = AtomicU8::new(ID_UNSET);

/// `true` when the running CPU can execute the explicit-SIMD kernels.
pub fn simd_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Detected CPU features relevant to backend selection, as a stable label
/// for reports/gauges: `"avx2+fma"`, `"baseline"` (x86 without the
/// required extensions), or `"non-x86"`.
pub fn cpu_features() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_supported() {
            "avx2+fma"
        } else {
            "baseline"
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "non-x86"
    }
}

/// First-touch resolution: honor a well-formed `PARHDE_BACKEND` (an
/// unsupported forced `simd` quietly degrades to scalar here — the typed
/// rejection belongs to [`install`], which the CLI/daemon/pipelines call),
/// otherwise auto-detect.
fn resolve_default() -> u8 {
    if let Ok(v) = std::env::var("PARHDE_BACKEND") {
        match v.as_str() {
            "scalar" => return ID_SCALAR,
            "simd" if simd_supported() => return ID_SIMD,
            _ => {}
        }
    }
    if simd_supported() {
        ID_SIMD
    } else {
        ID_SCALAR
    }
}

fn active_id() -> u8 {
    let v = ACTIVE.load(Ordering::Relaxed);
    if v != ID_UNSET {
        return v;
    }
    let resolved = resolve_default();
    // Racing first-touches resolve to the same value, so last-store-wins
    // is benign.
    ACTIVE.store(resolved, Ordering::Relaxed);
    resolved
}

/// Pins the process-wide backend. Returns the *executed* backend's label
/// (`auto` resolves to what detection picked).
///
/// # Errors
/// [`LinalgError::BackendUnavailable`] when `simd` is forced on a CPU
/// without AVX2+FMA (or off x86_64) — a typed error, never a panic.
pub fn install(choice: Choice) -> Result<&'static str, LinalgError> {
    let id = match choice {
        Choice::Scalar => ID_SCALAR,
        Choice::Simd => {
            if !simd_supported() {
                return Err(LinalgError::BackendUnavailable {
                    requested: "simd",
                    reason: format!(
                        "CPU lacks the required features (detected: {})",
                        cpu_features()
                    ),
                });
            }
            ID_SIMD
        }
        Choice::Auto => {
            if simd_supported() {
                ID_SIMD
            } else {
                ID_SCALAR
            }
        }
    };
    ACTIVE.store(id, Ordering::Relaxed);
    Ok(if id == ID_SIMD { "simd" } else { "scalar" })
}

/// The active backend's kernel table.
pub fn active() -> &'static dyn Kernels {
    if active_id() == ID_SIMD {
        &SIMD
    } else {
        &SCALAR
    }
}

/// The active backend's label (`"scalar"` / `"simd"`).
pub fn active_name() -> &'static str {
    active().name()
}

/// The scalar reference backend, for direct A/B use by tests and benches
/// (no global state touched).
pub fn scalar() -> &'static dyn Kernels {
    &SCALAR
}

/// The SIMD backend when this CPU can run it, for direct A/B use by tests
/// and benches (no global state touched).
pub fn simd() -> Option<&'static dyn Kernels> {
    if simd_supported() {
        Some(&SIMD)
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Per-backend trace counters
// ---------------------------------------------------------------------------

/// Kernel families for the `linalg.backend.*` element counters.
#[derive(Clone, Copy, Debug)]
pub enum Family {
    /// The register-tile microkernel (GEMM, SYRK, fused TripleProd).
    Gemm,
    /// SpMM/fused Laplacian row accumulations.
    Spmm,
    /// BLAS-1 vector primitives.
    Blas1,
    /// BCGS2 block projections.
    Ortho,
}

/// Records `elems` elements processed by `family` under the active
/// backend, as counter `linalg.backend.<backend>.<family>`. The static
/// name table keeps the hot path allocation-free; a no-op when tracing is
/// disabled.
pub fn count(family: Family, elems: u64) {
    if !parhde_trace::enabled() {
        return;
    }
    let name = match (active_id(), family) {
        (ID_SIMD, Family::Gemm) => "linalg.backend.simd.gemm",
        (ID_SIMD, Family::Spmm) => "linalg.backend.simd.spmm",
        (ID_SIMD, Family::Blas1) => "linalg.backend.simd.blas1",
        (ID_SIMD, Family::Ortho) => "linalg.backend.simd.ortho",
        (_, Family::Gemm) => "linalg.backend.scalar.gemm",
        (_, Family::Spmm) => "linalg.backend.scalar.spmm",
        (_, Family::Blas1) => "linalg.backend.scalar.blas1",
        (_, Family::Ortho) => "linalg.backend.scalar.ortho",
    };
    parhde_trace::counter!(name, elems);
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use parhde_util::Xoshiro256StarStar;

    fn random_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect()
    }

    /// The backend pairs to compare: scalar vs SIMD when the CPU has it,
    /// scalar vs scalar otherwise (so the suite is meaningful everywhere).
    fn pair() -> (&'static dyn Kernels, &'static dyn Kernels) {
        (scalar(), simd().unwrap_or_else(scalar))
    }

    #[test]
    fn choice_parses_and_labels() {
        assert_eq!("auto".parse(), Ok(Choice::Auto));
        assert_eq!("scalar".parse(), Ok(Choice::Scalar));
        assert_eq!("simd".parse(), Ok(Choice::Simd));
        assert!("avx512".parse::<Choice>().is_err());
        assert_eq!(Choice::default(), Choice::Auto);
        assert_eq!(Choice::Auto.label(), "auto");
        assert_eq!(Choice::Simd.label(), "simd");
    }

    #[test]
    fn forced_simd_is_a_typed_error_when_unsupported() {
        if simd_supported() {
            // Covered on feature-poor CI runners; here just check the
            // supported path reports the right label.
            return;
        }
        let err = install(Choice::Simd).unwrap_err();
        assert!(matches!(err, LinalgError::BackendUnavailable { requested: "simd", .. }));
        assert!(err.to_string().contains("simd"));
    }

    #[test]
    fn elementwise_kernels_are_bit_exact() {
        let (s, v) = pair();
        for n in [0usize, 1, 3, 4, 5, 63, 64, 65, 1000] {
            let x = random_vec(n, n as u64 + 1);
            let mut ys = random_vec(n, n as u64 + 2);
            let mut yv = ys.clone();
            s.axpy_chunk(-0.37, &x, &mut ys);
            v.axpy_chunk(-0.37, &x, &mut yv);
            assert_eq!(ys, yv, "axpy n={n}");

            let mut xs = x.clone();
            let mut xv = x.clone();
            s.scale_chunk(1.0 / 3.0, &mut xs);
            v.scale_chunk(1.0 / 3.0, &mut xv);
            assert_eq!(xs, xv, "scale n={n}");

            let src = random_vec(n, n as u64 + 3);
            let mut os = vec![0.0; n];
            let mut ov = vec![0.0; n];
            s.row_scale(&mut os, 2.5, &src);
            v.row_scale(&mut ov, 2.5, &src);
            assert_eq!(os, ov, "row_scale n={n}");
            s.row_sub(&mut os, &x);
            v.row_sub(&mut ov, &x);
            assert_eq!(os, ov, "row_sub n={n}");
            s.row_sub_scaled(&mut os, 0.77, &src);
            v.row_sub_scaled(&mut ov, 0.77, &src);
            assert_eq!(os, ov, "row_sub_scaled n={n}");
        }
    }

    #[test]
    fn tile_kernel_is_bit_exact_for_both_stride_settings() {
        let (s, v) = pair();
        for len in [0usize, 1, 3, 4, 7, 64, 65, 300] {
            let a: Vec<Vec<f64>> = (0..4).map(|i| random_vec(len, 40 + i)).collect();
            let arefs = [&a[0][..], &a[1][..], &a[2][..], &a[3][..]];
            // Column-major setting (b_rs = 1, b_cs = n) and packed
            // row-major panel setting (b_rs = q, b_cs = 1).
            for &(b_rs, b_cs, blen) in
                &[(1usize, len.max(1), 4 * len.max(1)), (4usize, 1, 4 * len.max(1))]
            {
                let b = random_vec(blen, (len + b_rs) as u64);
                let mut accs = [0.1f64; 16];
                let mut accv = [0.1f64; 16];
                s.tile_4x4(&mut accs, arefs, &b, 0, b_rs, b_cs, len);
                v.tile_4x4(&mut accv, arefs, &b, 0, b_rs, b_cs, len);
                for (x, y) in accs.iter().zip(&accv) {
                    assert_eq!(x.to_bits(), y.to_bits(), "len={len} b_rs={b_rs}");
                }
            }
        }
    }

    #[test]
    fn laplacian_row_is_bit_exact_and_matches_its_default_body() {
        let (s, v) = pair();
        // Row widths across the 16-wide, 4-wide and scalar-tail regimes;
        // neighbor counts including none.
        for k in [0usize, 1, 3, 4, 5, 15, 16, 17, 51, 64, 65] {
            for deg in [0usize, 1, 2, 7] {
                let rows = deg + 1;
                let pack = random_vec(rows * k, (k * 31 + deg) as u64);
                let neighbors: Vec<u32> = (1..=deg as u32).collect();
                let src = &pack[..k];
                let mut outs = vec![0.5; k];
                let mut outv = vec![0.5; k];
                s.laplacian_row(&mut outs, 2.5, src, &pack, &neighbors);
                v.laplacian_row(&mut outv, 2.5, src, &pack, &neighbors);
                // Reference: the default body's composition of row ops.
                let mut outr = vec![0.5; k];
                s.row_scale(&mut outr, 2.5, src);
                for &u in &neighbors {
                    s.row_sub(&mut outr, &pack[u as usize * k..(u as usize + 1) * k]);
                }
                for ((a, b), r) in outs.iter().zip(&outv).zip(&outr) {
                    assert_eq!(a.to_bits(), b.to_bits(), "k={k} deg={deg}");
                    assert_eq!(a.to_bits(), r.to_bits(), "k={k} deg={deg}");
                }
            }
        }
    }

    #[test]
    fn rank_update_row_is_bit_exact_and_matches_its_default_body() {
        let (s, v) = pair();
        for k in [0usize, 1, 3, 4, 5, 15, 16, 17, 51, 64, 65] {
            for nc in [0usize, 1, 2, 7, 23] {
                let pack = random_vec(nc * k + k.max(1), (k * 37 + nc) as u64);
                let coeffs = random_vec(nc, (k + nc * 13) as u64);
                let bases: Vec<usize> = (0..nc).map(|i| i * k).collect();
                let mut outs = vec![0.5; k];
                let mut outv = vec![0.5; k];
                s.rank_update_row(&mut outs, &coeffs, &pack, &bases);
                v.rank_update_row(&mut outv, &coeffs, &pack, &bases);
                // Reference: the default body's composition of row ops.
                let mut outr = vec![0.5; k];
                for (&c, &b) in coeffs.iter().zip(&bases) {
                    s.row_sub_scaled(&mut outr, c, &pack[b..b + k]);
                }
                for ((a, b), r) in outs.iter().zip(&outv).zip(&outr) {
                    assert_eq!(a.to_bits(), b.to_bits(), "k={k} nc={nc}");
                    assert_eq!(a.to_bits(), r.to_bits(), "k={k} nc={nc}");
                }
            }
        }
    }

    #[test]
    fn dot_family_stays_within_documented_tolerance() {
        let (s, v) = pair();
        for n in [0usize, 1, 3, 5, 63, 64, 65, 1 << 14] {
            let x = random_vec(n, 90 + n as u64);
            let y = random_vec(n, 91 + n as u64);
            let d: Vec<f64> = random_vec(n, 92 + n as u64)
                .into_iter()
                .map(|w| w.abs() + 0.5)
                .collect();
            let bound = |a: &[f64], b: &[f64]| {
                let na = a.iter().map(|t| t * t).sum::<f64>().sqrt();
                let nb = b.iter().map(|t| t * t).sum::<f64>().sqrt();
                1e-13 * na * nb + f64::MIN_POSITIVE
            };
            assert!((s.dot_chunk(&x, &y) - v.dot_chunk(&x, &y)).abs() <= bound(&x, &y));
            assert!((s.ortho_dot(&x, &y) - v.ortho_dot(&x, &y)).abs() <= bound(&x, &y));
            let dw = (s.dot_weighted_chunk(&x, &d, &y) - v.dot_weighted_chunk(&x, &d, &y)).abs();
            assert!(dw <= 8.0 * bound(&x, &y), "n={n}");
            let su = (s.sum_chunk(&x) - v.sum_chunk(&x)).abs();
            assert!(su <= 1e-13 * x.iter().map(|t| t.abs()).sum::<f64>() + f64::MIN_POSITIVE);
        }
    }

    #[test]
    fn poison_values_propagate_identically() {
        let (s, v) = pair();
        let mut x = random_vec(64, 7);
        x[3] = f64::NAN;
        x[17] = f64::INFINITY;
        x[40] = -0.0;
        x[41] = f64::MIN_POSITIVE / 2.0; // denormal
        let y = random_vec(64, 8);
        // NaN/Inf poison must surface under both backends.
        assert!(s.dot_chunk(&x, &y).is_nan());
        assert!(v.dot_chunk(&x, &y).is_nan());
        let mut ys = y.clone();
        let mut yv = y.clone();
        s.axpy_chunk(1.0, &x, &mut ys);
        v.axpy_chunk(1.0, &x, &mut yv);
        for (a, b) in ys.iter().zip(&yv) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // ±0 and denormals: elementwise ops stay bit-exact.
        let mut os = vec![0.0; 64];
        let mut ov = vec![0.0; 64];
        s.row_scale(&mut os, -0.0, &x);
        v.row_scale(&mut ov, -0.0, &x);
        for (a, b) in os.iter().zip(&ov) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn cpu_feature_label_is_consistent_with_detection() {
        if simd_supported() {
            assert_eq!(cpu_features(), "avx2+fma");
            assert!(simd().is_some());
        } else {
            assert!(simd().is_none());
            assert_ne!(cpu_features(), "avx2+fma");
        }
        assert_eq!(scalar().name(), "scalar");
    }
}
