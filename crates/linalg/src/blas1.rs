//! Parallel BLAS-1 vector kernels.
//!
//! These are the inner operations of the DOrtho phase (Algorithm 3 line 11:
//! dot products and axpy updates on O(n) vectors, parallelized across
//! threads; the `log n` depth term in Table 1 is the reduction tree of the
//! dot-product sum).
//!
//! Reductions are **deterministic**: vectors are cut into fixed-size chunks,
//! each chunk is summed in a schedule-independent order, and the per-chunk
//! partials are summed in chunk order. Determinism costs nothing here and
//! makes every layout in the test suite reproducible bit-for-bit across
//! thread counts.
//!
//! Chunk bodies dispatch through [`crate::backend`]: `axpy`/`scale` are
//! bit-exact across backends (elementwise mul+add); the dot/sum family
//! carries the documented ≤1e-13·‖x‖‖y‖ backend tolerance (SIMD widens the
//! summation chain into lanes and contracts with FMA). Whatever the
//! backend, results stay bitwise thread-count-independent — the chunk
//! decomposition is fixed and each chunk is summed by one backend call.

use crate::backend::{self, Family};
use rayon::prelude::*;

/// Chunk length for parallel reductions; below this, kernels run scalar
/// (rayon task overhead would dominate for short vectors).
pub const PAR_CHUNK: usize = 1 << 14;

/// Dot product `xᵀ y`.
///
/// # Panics
/// Panics if lengths differ.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let be = backend::active();
    backend::count(Family::Blas1, x.len() as u64);
    if x.len() < PAR_CHUNK {
        return be.dot_chunk(x, y);
    }
    let partials: Vec<f64> = x
        .par_chunks(PAR_CHUNK)
        .zip(y.par_chunks(PAR_CHUNK))
        .map(|(cx, cy)| be.dot_chunk(cx, cy))
        .collect();
    partials.iter().sum()
}

/// D-weighted dot product `xᵀ D y = Σ_i x_i d_i y_i` — the inner product of
/// the D-orthogonalization (Algorithm 3 line 11 uses `s'_j D s_i`).
///
/// # Panics
/// Panics if lengths differ.
pub fn dot_weighted(x: &[f64], d: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot_weighted length mismatch");
    assert_eq!(x.len(), d.len(), "weight vector length mismatch");
    let be = backend::active();
    backend::count(Family::Blas1, x.len() as u64);
    if x.len() < PAR_CHUNK {
        return be.dot_weighted_chunk(x, d, y);
    }
    let partials: Vec<f64> = x
        .par_chunks(PAR_CHUNK)
        .zip(d.par_chunks(PAR_CHUNK))
        .zip(y.par_chunks(PAR_CHUNK))
        .map(|((cx, cd), cy)| be.dot_weighted_chunk(cx, cd, cy))
        .collect();
    partials.iter().sum()
}

/// `y ← y + α·x`.
///
/// # Panics
/// Panics if lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    let be = backend::active();
    backend::count(Family::Blas1, x.len() as u64);
    if x.len() < PAR_CHUNK {
        be.axpy_chunk(alpha, x, y);
        return;
    }
    y.par_chunks_mut(PAR_CHUNK)
        .zip(x.par_chunks(PAR_CHUNK))
        .for_each(|(cy, cx)| be.axpy_chunk(alpha, cx, cy));
}

/// `x ← α·x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    let be = backend::active();
    backend::count(Family::Blas1, x.len() as u64);
    if x.len() < PAR_CHUNK {
        be.scale_chunk(alpha, x);
        return;
    }
    x.par_chunks_mut(PAR_CHUNK).for_each(|c| be.scale_chunk(alpha, c));
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// D-weighted norm `√(xᵀ D x)`.
///
/// # Panics
/// Panics if lengths differ.
pub fn norm2_weighted(x: &[f64], d: &[f64]) -> f64 {
    dot_weighted(x, d, x).sqrt()
}

/// Fills `x` with a constant.
pub fn fill(x: &mut [f64], v: f64) {
    if x.len() < PAR_CHUNK {
        x.fill(v);
        return;
    }
    x.par_chunks_mut(PAR_CHUNK).for_each(|c| c.fill(v));
}

/// Sum of all entries.
pub fn sum(x: &[f64]) -> f64 {
    let be = backend::active();
    backend::count(Family::Blas1, x.len() as u64);
    if x.len() < PAR_CHUNK {
        return be.sum_chunk(x);
    }
    let partials: Vec<f64> = x
        .par_chunks(PAR_CHUNK)
        .map(|c| be.sum_chunk(c))
        .collect();
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parhde_util::Xoshiro256StarStar;

    fn random_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect()
    }

    #[test]
    fn dot_small() {
        assert_eq!(dot(&[1., 2., 3.], &[4., 5., 6.]), 32.0);
    }

    #[test]
    fn dot_large_matches_scalar() {
        let n = PAR_CHUNK * 3 + 17;
        let x = random_vec(n, 1);
        let y = random_vec(n, 2);
        let scalar: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - scalar).abs() < 1e-9 * n as f64);
    }

    #[test]
    fn dot_is_deterministic_across_pool_sizes() {
        let n = PAR_CHUNK * 4 + 5;
        let x = random_vec(n, 3);
        let y = random_vec(n, 4);
        let a = parhde_util::threads::run_with_threads(1, || dot(&x, &y));
        let b = parhde_util::threads::run_with_threads(4, || dot(&x, &y));
        assert_eq!(a.to_bits(), b.to_bits(), "parallel dot must be bitwise deterministic");
    }

    #[test]
    fn weighted_dot_matches_definition() {
        let x = [1., 2.];
        let d = [3., 4.];
        let y = [5., 6.];
        assert_eq!(dot_weighted(&x, &d, &y), 1. * 3. * 5. + 2. * 4. * 6.);
    }

    #[test]
    fn weighted_dot_with_unit_weights_is_dot() {
        let n = PAR_CHUNK + 100;
        let x = random_vec(n, 5);
        let y = random_vec(n, 6);
        let d = vec![1.0; n];
        assert!((dot_weighted(&x, &d, &y) - dot(&x, &y)).abs() < 1e-9);
    }

    #[test]
    fn axpy_small_and_large() {
        let mut y = vec![1.0; 3];
        axpy(2.0, &[1., 2., 3.], &mut y);
        assert_eq!(y, vec![3., 5., 7.]);

        let n = PAR_CHUNK * 2 + 9;
        let x = random_vec(n, 7);
        let mut y1 = random_vec(n, 8);
        let mut y2 = y1.clone();
        axpy(-0.5, &x, &mut y1);
        for (yi, xi) in y2.iter_mut().zip(&x) {
            *yi += -0.5 * xi;
        }
        assert_eq!(y1, y2);
    }

    #[test]
    fn scale_and_norm() {
        let mut x = vec![3.0, 4.0];
        assert_eq!(norm2(&x), 5.0);
        scale(2.0, &mut x);
        assert_eq!(x, vec![6.0, 8.0]);
    }

    #[test]
    fn weighted_norm() {
        // xᵀDx = 1·2·1 + 2·3·2 = 14
        assert!((norm2_weighted(&[1., 2.], &[2., 3.]) - 14f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn fill_and_sum() {
        let mut x = vec![0.0; PAR_CHUNK + 3];
        fill(&mut x, 2.5);
        assert!((sum(&x) - 2.5 * x.len() as f64).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
