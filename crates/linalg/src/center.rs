//! Column centering (PHDE) and double centering (PivotMDS).
//!
//! §3.2: "PHDE ... has a column centering step which requires subtracting
//! the mean of every column from the column entries. We implement this in a
//! two-phase manner, computing the column means in the first phase and
//! performing the subtraction in the second phase. PivotMDS requires
//! double-centering of the distance matrix, which is computationally
//! similar."

use crate::blas1;
use crate::dense::ColMajorMatrix;
use rayon::prelude::*;

/// Subtracts each column's mean from its entries (two-phase, parallel
/// across columns — columns are contiguous in the layout). Returns the
/// per-column means that were removed.
pub fn column_center(m: &mut ColMajorMatrix) -> Vec<f64> {
    let rows = m.rows();
    if rows == 0 {
        return vec![0.0; m.cols()];
    }
    let mut means = vec![0.0; m.cols()];
    m.columns_mut()
        .into_par_iter()
        .zip(means.par_iter_mut())
        .for_each(|(col, mean)| {
            // Phase 1: mean.
            *mean = blas1::sum(col) / rows as f64;
            // Phase 2: subtract.
            let mu = *mean;
            for x in col.iter_mut() {
                *x -= mu;
            }
        });
    means
}

/// Double-centers the matrix of **squared** distances, PivotMDS-style:
///
/// `c_ij = −½ (d²_ij − rowmean_i − colmean_j + totalmean)`
///
/// The input should already hold squared distances; the operation is in
/// place.
pub fn double_center_squared(m: &mut ColMajorMatrix) {
    let rows = m.rows();
    let cols = m.cols();
    if rows == 0 || cols == 0 {
        return;
    }
    // Column means (parallel per column).
    let col_means: Vec<f64> = (0..cols)
        .into_par_iter()
        .map(|c| blas1::sum(m.col(c)) / rows as f64)
        .collect();
    // Row means: accumulate across columns (parallel over row chunks via a
    // fold over columns kept sequential for determinism; n×s with small s,
    // so a single pass is cheap).
    let mut row_sums = vec![0.0; rows];
    for c in 0..cols {
        for (rs, &x) in row_sums.iter_mut().zip(m.col(c)) {
            *rs += x;
        }
    }
    let inv_cols = 1.0 / cols as f64;
    let row_means: Vec<f64> = row_sums.iter().map(|s| s * inv_cols).collect();
    let total_mean = blas1::sum(&col_means) / cols as f64;

    let row_means_ref = &row_means;
    m.columns_mut()
        .into_par_iter()
        .enumerate()
        .for_each(|(c, col)| {
            let cm = col_means[c];
            for (r, x) in col.iter_mut().enumerate() {
                *x = -0.5 * (*x - row_means_ref[r] - cm + total_mean);
            }
        });
}

/// Squares every entry in place (distance matrix → squared distances,
/// the PivotMDS preprocessing input to [`double_center_squared`]).
pub fn square_entries(m: &mut ColMajorMatrix) {
    m.data_mut().par_chunks_mut(1 << 14).for_each(|chunk| {
        for x in chunk {
            *x *= *x;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_center_zeroes_means() {
        let mut m = ColMajorMatrix::from_columns(&[
            vec![1.0, 2.0, 3.0],
            vec![10.0, 20.0, 30.0],
        ]);
        let means = column_center(&mut m);
        assert_eq!(means, vec![2.0, 20.0]);
        assert_eq!(m.col(0), &[-1.0, 0.0, 1.0]);
        assert!((blas1::sum(m.col(1))).abs() < 1e-12);
    }

    #[test]
    fn column_center_is_idempotent() {
        let mut m = ColMajorMatrix::from_columns(&[vec![5.0, 7.0, 9.0]]);
        column_center(&mut m);
        let first = m.clone();
        let means = column_center(&mut m);
        assert!(means[0].abs() < 1e-12);
        assert_eq!(m, first);
    }

    #[test]
    fn double_center_zeroes_both_margins() {
        let mut m = ColMajorMatrix::from_columns(&[
            vec![0.0, 1.0, 4.0],
            vec![1.0, 0.0, 1.0],
            vec![4.0, 1.0, 0.0],
        ]);
        double_center_squared(&mut m);
        // All row sums and column sums must vanish after double centering.
        for c in 0..3 {
            assert!(blas1::sum(m.col(c)).abs() < 1e-12, "col {c} sum");
        }
        for r in 0..3 {
            let rs: f64 = (0..3).map(|c| m.get(r, c)).sum();
            assert!(rs.abs() < 1e-12, "row {r} sum");
        }
    }

    #[test]
    fn double_center_classic_mds_identity() {
        // For points on a line at 0, 1, 3: squared distances reproduce the
        // Gram matrix of centered coordinates after double centering.
        let pts = [0.0f64, 1.0, 3.0];
        let mut m = ColMajorMatrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                m.set(i, j, (pts[i] - pts[j]).powi(2));
            }
        }
        double_center_squared(&mut m);
        let mean = pts.iter().sum::<f64>() / 3.0;
        for i in 0..3 {
            for j in 0..3 {
                let gram = (pts[i] - mean) * (pts[j] - mean);
                assert!(
                    (m.get(i, j) - gram).abs() < 1e-12,
                    "Gram mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn square_entries_squares() {
        let mut m = ColMajorMatrix::from_data(2, 1, vec![-3.0, 2.0]);
        square_entries(&mut m);
        assert_eq!(m.data(), &[9.0, 4.0]);
    }

    #[test]
    fn empty_matrix_centering_is_safe() {
        let mut m = ColMajorMatrix::zeros(0, 2);
        let means = column_center(&mut m);
        assert_eq!(means, vec![0.0, 0.0]);
        double_center_squared(&mut m);
    }
}
