//! Column-major dense matrices.
//!
//! Algorithm 3 line 2 specifies the embedding matrix `B ∈ R^{n×s}` in
//! "column-major format": each BFS writes one contiguous column, and the
//! DOrtho phase's vector ops stream over contiguous columns. This type is
//! that layout plus the handful of accessors the pipeline needs.

/// A dense matrix stored column-major: entry `(row, col)` lives at
/// `data[col * rows + row]`.
#[derive(Clone, Debug, PartialEq)]
pub struct ColMajorMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl ColMajorMatrix {
    /// Allocates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Wraps an existing column-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_data(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Builds from column slices.
    ///
    /// # Panics
    /// Panics if columns have differing lengths.
    pub fn from_columns(columns: &[Vec<f64>]) -> Self {
        assert!(!columns.is_empty(), "at least one column required");
        let rows = columns[0].len();
        let mut data = Vec::with_capacity(rows * columns.len());
        for c in columns {
            assert_eq!(c.len(), rows, "ragged columns");
            data.extend_from_slice(c);
        }
        Self { rows, cols: columns.len(), data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[c * self.rows + r]
    }

    /// Sets entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[c * self.rows + r] = v;
    }

    /// Column `c` as a contiguous slice.
    #[inline]
    pub fn col(&self, c: usize) -> &[f64] {
        &self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Column `c` as a mutable contiguous slice.
    #[inline]
    pub fn col_mut(&mut self, c: usize) -> &mut [f64] {
        &mut self.data[c * self.rows..(c + 1) * self.rows]
    }

    /// Disjoint mutable column `i` plus shared earlier column `j < i`
    /// (the DOrtho access pattern: update column i against column j).
    ///
    /// # Panics
    /// Panics unless `j < i < cols`.
    pub fn col_pair(&mut self, j: usize, i: usize) -> (&[f64], &mut [f64]) {
        assert!(j < i && i < self.cols, "need j < i < cols");
        let (head, tail) = self.data.split_at_mut(i * self.rows);
        (
            &head[j * self.rows..(j + 1) * self.rows],
            &mut tail[..self.rows],
        )
    }

    /// All columns strictly before `i` as one contiguous column-major slice,
    /// plus mutable column `i` — the Classical Gram-Schmidt access pattern
    /// (read the whole kept prefix, update one column).
    ///
    /// # Panics
    /// Panics if `i ≥ cols`.
    pub fn prefix_and_col_mut(&mut self, i: usize) -> (&[f64], &mut [f64]) {
        assert!(i < self.cols, "column {i} out of range");
        let (head, tail) = self.data.split_at_mut(i * self.rows);
        (&head[..], &mut tail[..self.rows])
    }

    /// All columns strictly before `i0` as one contiguous column-major
    /// slice, plus the mutable column panel `i0..i1` — the block
    /// Gram-Schmidt access pattern (project a whole panel against the kept
    /// prefix at once).
    ///
    /// # Panics
    /// Panics unless `i0 ≤ i1 ≤ cols`.
    pub fn prefix_and_panel_mut(&mut self, i0: usize, i1: usize) -> (&[f64], &mut [f64]) {
        assert!(i0 <= i1 && i1 <= self.cols, "need i0 ≤ i1 ≤ cols");
        let (head, tail) = self.data.split_at_mut(i0 * self.rows);
        (&head[..], &mut tail[..(i1 - i0) * self.rows])
    }

    /// The full backing buffer (column-major).
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// The full mutable backing buffer (column-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Splits the buffer into per-column mutable slices (for concurrent
    /// column writers like the multi-source BFS).
    pub fn columns_mut(&mut self) -> Vec<&mut [f64]> {
        self.data.chunks_mut(self.rows).collect()
    }

    /// Keeps only the columns whose indices appear in `keep` (ascending),
    /// compacting in place. Used when DOrtho drops degenerate vectors.
    ///
    /// # Panics
    /// Panics if `keep` is not strictly ascending or out of range.
    pub fn retain_columns(&mut self, keep: &[usize]) {
        for w in keep.windows(2) {
            assert!(w[0] < w[1], "keep must be strictly ascending");
        }
        if let Some(&last) = keep.last() {
            assert!(last < self.cols, "kept column out of range");
        }
        let rows = self.rows;
        for (dst, &src) in keep.iter().enumerate() {
            if dst != src {
                let (a, b) = self.data.split_at_mut(src * rows);
                a[dst * rows..(dst + 1) * rows].copy_from_slice(&b[..rows]);
            }
        }
        self.cols = keep.len();
        self.data.truncate(self.cols * rows);
    }

    /// Transposed copy (row-major view materialized as a new column-major
    /// matrix with swapped dimensions).
    pub fn transpose(&self) -> ColMajorMatrix {
        let mut t = ColMajorMatrix::zeros(self.cols, self.rows);
        for c in 0..self.cols {
            for r in 0..self.rows {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut m = ColMajorMatrix::zeros(3, 2);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        m.set(2, 1, 7.5);
        assert_eq!(m.get(2, 1), 7.5);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn column_major_layout() {
        let m = ColMajorMatrix::from_data(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.col(0), &[1., 2.]);
        assert_eq!(m.col(2), &[5., 6.]);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn from_columns_roundtrip() {
        let m = ColMajorMatrix::from_columns(&[vec![1., 2.], vec![3., 4.]]);
        assert_eq!(m.col(1), &[3., 4.]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_columns_rejected() {
        ColMajorMatrix::from_columns(&[vec![1.], vec![2., 3.]]);
    }

    #[test]
    fn col_pair_gives_disjoint_views() {
        let mut m = ColMajorMatrix::from_columns(&[vec![1., 1.], vec![5., 5.]]);
        let (j, i) = m.col_pair(0, 1);
        assert_eq!(j, &[1., 1.]);
        i[0] = 9.0;
        assert_eq!(m.get(0, 1), 9.0);
    }

    #[test]
    #[should_panic(expected = "need j < i")]
    fn col_pair_order_enforced() {
        let mut m = ColMajorMatrix::zeros(2, 2);
        let _ = m.col_pair(1, 1);
    }

    #[test]
    fn retain_columns_compacts() {
        let mut m = ColMajorMatrix::from_columns(&[
            vec![1., 1.],
            vec![2., 2.],
            vec![3., 3.],
            vec![4., 4.],
        ]);
        m.retain_columns(&[0, 2, 3]);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.col(0), &[1., 1.]);
        assert_eq!(m.col(1), &[3., 3.]);
        assert_eq!(m.col(2), &[4., 4.]);
    }

    #[test]
    fn retain_nothing_empties() {
        let mut m = ColMajorMatrix::zeros(2, 2);
        m.retain_columns(&[]);
        assert_eq!(m.cols(), 0);
        assert!(m.data().is_empty());
    }

    #[test]
    fn transpose_swaps() {
        let m = ColMajorMatrix::from_data(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(m.get(r, c), t.get(c, r));
            }
        }
    }

    #[test]
    fn frobenius_norm_matches() {
        let m = ColMajorMatrix::from_data(1, 2, vec![3., 4.]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn columns_mut_are_disjoint_slices() {
        let mut m = ColMajorMatrix::zeros(3, 2);
        {
            let mut cols = m.columns_mut();
            assert_eq!(cols.len(), 2);
            cols[1][2] = 8.0;
        }
        assert_eq!(m.get(2, 1), 8.0);
    }
}
