//! Cyclic Jacobi eigensolver for small dense symmetric matrices.
//!
//! Classic two-sided Jacobi: repeatedly zero the largest-magnitude
//! off-diagonal entries with Givens rotations until the off-diagonal
//! Frobenius norm is negligible. Unconditionally stable, simple, and for
//! the `s×s` matrices of HDE (`s ≤ 50`) far below a millisecond — matching
//! the paper's observation that the eigensolve is lost in the noise.

use crate::dense::ColMajorMatrix;
use crate::error::LinalgError;

/// An eigendecomposition: `values[k]` with eigenvector `vectors.col(k)`,
/// sorted by eigenvalue **descending** (HDE wants the *top* eigenvectors of
/// `SᵀLS`/`CᵀC`; callers needing the smallest take from the tail).
#[derive(Clone, Debug)]
pub struct Eigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as matrix columns, aligned with `values`.
    pub vectors: ColMajorMatrix,
}

impl Eigen {
    /// The top `k` eigenpairs as a `(values, n×k matrix)` pair.
    ///
    /// # Panics
    /// Panics if `k` exceeds the number of eigenpairs.
    pub fn top(&self, k: usize) -> (Vec<f64>, ColMajorMatrix) {
        assert!(k <= self.values.len(), "requested too many eigenpairs");
        let vals = self.values[..k].to_vec();
        let n = self.vectors.rows();
        let mut m = ColMajorMatrix::zeros(n, k);
        for c in 0..k {
            m.col_mut(c).copy_from_slice(self.vectors.col(c));
        }
        (vals, m)
    }
}

/// Convergence threshold on the off-diagonal Frobenius norm, relative to
/// the total Frobenius norm.
const TOL: f64 = 1e-12;
/// Hard sweep cap (converges in ~6-10 sweeps in practice).
const MAX_SWEEPS: usize = 64;

/// Computes all eigenpairs of a symmetric matrix given **column-major**
/// (equivalently row-major — it is symmetric) dense storage.
///
/// # Panics
/// Panics if the matrix is not square or not (numerically) symmetric.
/// Untrusted callers should use [`try_symmetric_eigen`] instead.
pub fn symmetric_eigen(m: &ColMajorMatrix) -> Eigen {
    match try_symmetric_eigen(m) {
        Ok(e) => e,
        Err(e) => panic!("{e}"),
    }
}

/// Guarded eigensolve: rejects non-square, non-finite, and asymmetric
/// input with a typed error instead of panicking, and names the position
/// of the first defect.
///
/// # Errors
/// [`LinalgError::NotSquare`], [`LinalgError::NonFinite`] (phase
/// `"eigen"`), or [`LinalgError::NotSymmetric`].
pub fn try_symmetric_eigen(m: &ColMajorMatrix) -> Result<Eigen, LinalgError> {
    let n = m.rows();
    if m.cols() != n {
        return Err(LinalgError::NotSquare { rows: n, cols: m.cols() });
    }
    crate::error::check_matrix_finite(m, "eigen")?;
    // Verify symmetry up to a tolerance scaled by magnitude.
    let scale = m.frobenius_norm().max(1.0);
    for i in 0..n {
        for j in 0..i {
            if (m.get(i, j) - m.get(j, i)).abs() > 1e-9 * scale {
                return Err(LinalgError::NotSymmetric { row: i, col: j });
            }
        }
    }
    Ok(jacobi_core(m))
}

/// The unchecked cyclic-Jacobi iteration; callers have validated `m`.
fn jacobi_core(m: &ColMajorMatrix) -> Eigen {
    let n = m.rows();
    // Work on a copy A; accumulate rotations into V.
    let mut a: Vec<f64> = m.data().to_vec();
    let at = |a: &Vec<f64>, r: usize, c: usize| a[c * n + r];
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let off_norm = |a: &Vec<f64>| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += at(a, i, j) * at(a, i, j);
                }
            }
        }
        s.sqrt()
    };
    let total = m.frobenius_norm().max(f64::MIN_POSITIVE);

    for _ in 0..MAX_SWEEPS {
        if off_norm(&a) <= TOL * total {
            break;
        }
        // Cooperative cancellation point (once per sweep): a tripped run
        // budget returns the current (unconverged) approximation, which
        // the caller discards at its next phase boundary.
        if parhde_util::supervisor::should_stop() {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = at(&a, p, q);
                if apq.abs() <= TOL * total / (n as f64) {
                    continue;
                }
                let app = at(&a, p, p);
                let aqq = at(&a, q, q);
                // Stable rotation computation (Golub & Van Loan).
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // A ← JᵀAJ applied to rows/cols p and q.
                for k in 0..n {
                    let akp = at(&a, k, p);
                    let akq = at(&a, k, q);
                    a[p * n + k] = c * akp - s * akq;
                    a[q * n + k] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[k * n + p];
                    let aqk = a[k * n + q];
                    a[k * n + p] = c * apk - s * aqk;
                    a[k * n + q] = s * apk + c * aqk;
                }
                // V ← VJ.
                for k in 0..n {
                    let vkp = v[p * n + k];
                    let vkq = v[q * n + k];
                    v[p * n + k] = c * vkp - s * vkq;
                    v[q * n + k] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| at(&a, i, i)).collect();
    // total_cmp: no panic even if a caller bypassed the finite-input guard.
    order.sort_by(|&i, &j| diag[j].total_cmp(&diag[i]));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = ColMajorMatrix::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        vectors
            .col_mut(dst)
            .copy_from_slice(&v[src * n..(src + 1) * n]);
    }
    Eigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas1::{dot, norm2};
    use parhde_util::Xoshiro256StarStar;

    fn random_symmetric(n: usize, seed: u64) -> ColMajorMatrix {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut m = ColMajorMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let x = rng.next_f64() * 2.0 - 1.0;
                m.set(i, j, x);
                m.set(j, i, x);
            }
        }
        m
    }

    fn check_decomposition(m: &ColMajorMatrix, e: &Eigen, tol: f64) {
        let n = m.rows();
        // A v = λ v for every pair.
        for k in 0..n {
            let vk = e.vectors.col(k);
            for i in 0..n {
                let mut av = 0.0;
                #[allow(clippy::needless_range_loop)] // j walks the matrix row and vk together
                for j in 0..n {
                    av += m.get(i, j) * vk[j];
                }
                assert!(
                    (av - e.values[k] * vk[i]).abs() < tol,
                    "eigenpair {k} residual at row {i}"
                );
            }
            assert!((norm2(vk) - 1.0).abs() < tol, "vector {k} not unit");
        }
        // Pairwise orthogonality.
        for i in 0..n {
            for j in 0..i {
                assert!(
                    dot(e.vectors.col(i), e.vectors.col(j)).abs() < tol,
                    "vectors {i},{j} not orthogonal"
                );
            }
        }
        // Sorted descending.
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - tol);
        }
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let mut m = ColMajorMatrix::zeros(3, 3);
        m.set(0, 0, 2.0);
        m.set(1, 1, -1.0);
        m.set(2, 2, 5.0);
        let e = symmetric_eigen(&m);
        assert_eq!(e.values, vec![5.0, 2.0, -1.0]);
        check_decomposition(&m, &e, 1e-10);
    }

    #[test]
    fn two_by_two_known_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = ColMajorMatrix::from_data(2, 2, vec![2., 1., 1., 2.]);
        let e = symmetric_eigen(&m);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        check_decomposition(&m, &e, 1e-10);
    }

    #[test]
    fn random_matrices_decompose() {
        for seed in 0..5 {
            let m = random_symmetric(10, seed);
            let e = symmetric_eigen(&m);
            check_decomposition(&m, &e, 1e-8);
        }
    }

    #[test]
    fn hde_sized_matrix_decomposes() {
        let m = random_symmetric(50, 99);
        let e = symmetric_eigen(&m);
        check_decomposition(&m, &e, 1e-7);
    }

    #[test]
    fn trace_is_preserved() {
        let m = random_symmetric(12, 7);
        let e = symmetric_eigen(&m);
        let trace: f64 = (0..12).map(|i| m.get(i, i)).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn top_k_extracts_prefix() {
        let m = random_symmetric(8, 3);
        let e = symmetric_eigen(&m);
        let (vals, vecs) = e.top(2);
        assert_eq!(vals.len(), 2);
        assert_eq!(vecs.cols(), 2);
        assert_eq!(vecs.col(0), e.vectors.col(0));
        assert_eq!(vals[0], e.values[0]);
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn asymmetric_rejected() {
        let m = ColMajorMatrix::from_data(2, 2, vec![1., 0., 5., 1.]);
        symmetric_eigen(&m);
    }

    #[test]
    fn try_eigen_rejects_poison_typed() {
        use crate::error::LinalgError;
        let m = ColMajorMatrix::from_data(2, 2, vec![1., 0., 5., 1.]);
        assert_eq!(
            try_symmetric_eigen(&m).unwrap_err(),
            LinalgError::NotSymmetric { row: 1, col: 0 }
        );
        let mut m = ColMajorMatrix::zeros(2, 2);
        m.set(0, 0, f64::NAN);
        assert!(matches!(
            try_symmetric_eigen(&m).unwrap_err(),
            LinalgError::NonFinite { phase: "eigen", .. }
        ));
        let m = ColMajorMatrix::zeros(2, 3);
        assert_eq!(
            try_symmetric_eigen(&m).unwrap_err(),
            LinalgError::NotSquare { rows: 2, cols: 3 }
        );
    }

    #[test]
    fn one_by_one() {
        let m = ColMajorMatrix::from_data(1, 1, vec![4.2]);
        let e = symmetric_eigen(&m);
        assert_eq!(e.values, vec![4.2]);
        assert_eq!(e.vectors.get(0, 0).abs(), 1.0);
    }
}
