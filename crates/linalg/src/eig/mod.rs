//! Eigensolvers.
//!
//! Two solvers for two very different regimes:
//!
//! * [`jacobi`] — cyclic Jacobi rotations for the dense symmetric `s×s`
//!   problem of Algorithm 3 line 19 (`s ≤ 50`, so the O(s³)-per-sweep cost
//!   is the paper's "negligible" eigensolve);
//! * [`power`] — deflated power iteration on the symmetric normalized
//!   adjacency `D^{-1/2} A D^{-1/2}`, which yields the degree-normalized
//!   eigenvectors used for the "exact" reference drawing of Figure 1
//!   (bottom) and the §4.5.3 eigensolver-preprocessing experiments.

pub mod jacobi;
pub mod power;

pub use jacobi::{symmetric_eigen, try_symmetric_eigen, Eigen};
pub use power::{dominant_walk_eigenvectors, PowerIterationReport};
