//! Deflated power iteration on the normalized adjacency.
//!
//! Computes the dominant non-trivial eigenvectors of the walk matrix
//! `D^{-1}A` — the degree-normalized eigenvectors Koren recommends for
//! layout (§2.1) and the reference drawing of Figure 1 (bottom). Working in
//! the symmetric similarity transform `N = D^{-1/2} A D^{-1/2}` keeps the
//! iteration an ordinary symmetric power method:
//!
//! * `N`'s top eigenvector is `D^{1/2}·1` (eigenvalue 1, the trivial one) —
//!   it is deflated analytically;
//! * each subsequent vector is power-iterated with re-orthogonalization
//!   against all previous ones;
//! * converged vectors `w` map back to walk-matrix eigenvectors via
//!   `u = D^{-1/2} w`.
//!
//! This is also the "expensive eigensolver" that §4.5.3's
//! HDE-as-preprocessing experiment competes against.

use crate::blas1::{axpy, dot, norm2, scale};
use crate::spmm::normalized_adjacency_spmv;
use parhde_graph::CsrGraph;
use parhde_util::Xoshiro256StarStar;

/// Convergence and cost report from a power-iteration run.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerIterationReport {
    /// Estimated eigenvalues of the walk matrix, one per computed vector.
    pub eigenvalues: Vec<f64>,
    /// Matrix-vector products performed in total (the cost unit for the
    /// §4.5.3 comparison).
    pub matvecs: usize,
    /// Whether each vector converged within the iteration cap.
    pub converged: Vec<bool>,
}

/// Computes the `k` dominant non-trivial degree-normalized eigenvectors of
/// the graph's walk matrix `D^{-1}A`.
///
/// `max_iters` caps iterations per vector; `tol` is the eigenvector change
/// threshold (`‖x_{t+1} − x_t‖ < tol` in the symmetric space, checked after
/// sign alignment). Optionally warm-starts from `init` (one column per
/// vector, in walk-matrix coordinates — the §4.5.3 use case feeds HDE
/// output here); missing columns are seeded randomly from `seed`.
///
/// Returns `(vectors, report)`, vectors in walk coordinates, D-normalized
/// so that `uᵀ D u = 1`.
///
/// # Panics
/// Panics if the graph has isolated vertices (no walk matrix), `k == 0`,
/// or an `init` column has the wrong length.
pub fn dominant_walk_eigenvectors(
    g: &CsrGraph,
    k: usize,
    max_iters: usize,
    tol: f64,
    seed: u64,
    init: Option<&[Vec<f64>]>,
) -> (Vec<Vec<f64>>, PowerIterationReport) {
    let n = g.num_vertices();
    assert!(k > 0, "k must be positive");
    let deg = g.degree_vector();
    assert!(
        deg.iter().all(|&d| d > 0.0),
        "walk matrix undefined: graph has isolated vertices"
    );
    let inv_sqrt: Vec<f64> = deg.iter().map(|d| 1.0 / d.sqrt()).collect();
    let sqrt_deg: Vec<f64> = deg.iter().map(|d| d.sqrt()).collect();

    // The trivial top eigenvector of N, normalized.
    let mut trivial = sqrt_deg.clone();
    let tn = norm2(&trivial);
    scale(1.0 / tn, &mut trivial);

    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut basis: Vec<Vec<f64>> = vec![trivial];
    let mut eigenvalues = Vec::with_capacity(k);
    let mut converged = Vec::with_capacity(k);
    let mut matvecs = 0usize;

    for idx in 0..k {
        // Seed: warm start (mapped to symmetric coords w = D^{1/2} u) or random.
        let mut x: Vec<f64> = match init.and_then(|cols| cols.get(idx)) {
            Some(u0) => {
                assert_eq!(u0.len(), n, "init column length mismatch");
                u0.iter().zip(&sqrt_deg).map(|(u, s)| u * s).collect()
            }
            None => (0..n).map(|_| rng.next_f64() - 0.5).collect(),
        };
        orthogonalize(&mut x, &basis);
        let nx = norm2(&x);
        assert!(nx > 0.0, "degenerate start vector");
        scale(1.0 / nx, &mut x);

        let mut lambda = 0.0;
        let mut ok = false;
        for _ in 0..max_iters {
            // Cooperative cancellation point (once per power iteration).
            if parhde_util::supervisor::should_stop() {
                break;
            }
            // Iterate the shifted operator (N + I)/2, whose spectrum is
            // (λ+1)/2 ∈ [0, 1]: monotone in λ, so the dominant direction is
            // the largest *algebraic* eigenvalue. Plain N would converge to
            // the −1 eigenvector on bipartite graphs (|−1| = |+1|), which is
            // useless for layout.
            let mut y = normalized_adjacency_spmv(g, &inv_sqrt, &x);
            matvecs += 1;
            for (yi, xi) in y.iter_mut().zip(&x) {
                *yi = 0.5 * (*yi + xi);
            }
            orthogonalize(&mut y, &basis);
            let ny = norm2(&y);
            if ny <= f64::MIN_POSITIVE.sqrt() {
                // x is (numerically) in the span of the basis ⇒ eigenvalue 0
                // direction; keep the current x.
                lambda = 0.0;
                ok = true;
                break;
            }
            scale(1.0 / ny, &mut y);
            // Rayleigh quotient estimate uses λ ≈ xᵀNx; with y normalized,
            // sign-aligned difference measures convergence.
            let aligned_sign = if dot(&x, &y) < 0.0 { -1.0 } else { 1.0 };
            let mut diff = 0.0;
            for (a, b) in x.iter().zip(&y) {
                let d = a - aligned_sign * b;
                diff += d * d;
            }
            // ny estimates the shifted eigenvalue (λ+1)/2; undo the shift.
            lambda = 2.0 * ny * aligned_sign - 1.0;
            x = y;
            if diff.sqrt() < tol {
                ok = true;
                break;
            }
        }
        eigenvalues.push(lambda);
        converged.push(ok);
        basis.push(x);
    }

    // Map back to walk coordinates and D-normalize: u = D^{-1/2} w has
    // uᵀDu = wᵀw = 1 already.
    let vectors: Vec<Vec<f64>> = basis[1..]
        .iter()
        .map(|w| w.iter().zip(&inv_sqrt).map(|(x, s)| x * s).collect())
        .collect();
    (
        vectors,
        PowerIterationReport { eigenvalues, matvecs, converged },
    )
}

/// Removes the components of `x` along each (orthonormal) basis vector.
fn orthogonalize(x: &mut [f64], basis: &[Vec<f64>]) {
    for b in basis {
        let c = dot(b, x);
        axpy(-c, b, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas1::dot_weighted;
    use parhde_graph::gen::{cycle, grid2d};

    #[test]
    fn cycle_eigenvalues_match_theory() {
        // Walk matrix of C_n has eigenvalues cos(2πk/n); the dominant
        // non-trivial one is cos(2π/n) with multiplicity 2.
        let n = 24;
        let g = cycle(n);
        let (vecs, report) =
            dominant_walk_eigenvectors(&g, 2, 4000, 1e-12, 7, None);
        let expect = (2.0 * std::f64::consts::PI / n as f64).cos();
        for (i, lam) in report.eigenvalues.iter().enumerate() {
            assert!(
                (lam - expect).abs() < 1e-5,
                "eigenvalue {i}: {lam} vs {expect}"
            );
        }
        assert_eq!(vecs.len(), 2);
        assert!(report.converged.iter().all(|&c| c));
    }

    #[test]
    fn vectors_are_d_orthonormal_and_nontrivial() {
        let g = grid2d(10, 10);
        let deg = g.degree_vector();
        let (vecs, _) = dominant_walk_eigenvectors(&g, 2, 3000, 1e-11, 3, None);
        // uᵀDu = 1.
        for v in &vecs {
            assert!((dot_weighted(v, &deg, v) - 1.0).abs() < 1e-8);
        }
        // D-orthogonal to each other and to 1.
        assert!(dot_weighted(&vecs[0], &deg, &vecs[1]).abs() < 1e-6);
        let ones = vec![1.0; 100];
        for v in &vecs {
            assert!(dot_weighted(v, &deg, &ones).abs() < 1e-6);
        }
    }

    #[test]
    fn residual_is_small() {
        // Check D^{-1}A u ≈ λ u directly in walk coordinates.
        let g = grid2d(8, 8);
        let (vecs, report) =
            dominant_walk_eigenvectors(&g, 1, 5000, 1e-12, 1, None);
        let u = &vecs[0];
        let lam = report.eigenvalues[0];
        for v in 0..g.num_vertices() {
            let mut acc = 0.0;
            for &w in g.neighbors(v as u32) {
                acc += u[w as usize];
            }
            acc /= g.degree(v as u32) as f64;
            assert!(
                (acc - lam * u[v]).abs() < 1e-5,
                "residual at {v}: {acc} vs {}",
                lam * u[v]
            );
        }
    }

    #[test]
    fn warm_start_converges_faster() {
        let g = grid2d(12, 12);
        let (vecs, cold) = dominant_walk_eigenvectors(&g, 1, 5000, 1e-10, 5, None);
        let (_, warm) =
            dominant_walk_eigenvectors(&g, 1, 5000, 1e-10, 5, Some(&vecs));
        assert!(
            warm.matvecs < cold.matvecs / 2,
            "warm start {} vs cold {}",
            warm.matvecs,
            cold.matvecs
        );
    }

    #[test]
    #[should_panic(expected = "isolated vertices")]
    fn isolated_vertex_rejected() {
        let g = parhde_graph::builder::build_from_edges(3, vec![(0, 1)]);
        dominant_walk_eigenvectors(&g, 1, 10, 1e-6, 0, None);
    }
}
