//! Typed errors and non-finite guards for the numeric kernels.
//!
//! The panicking kernels stay as-is for trusted internal callers; the
//! `try_*` wrappers in [`crate::ortho`], [`crate::spmm`], and
//! [`crate::eig::jacobi`] run the same code behind guards that report
//! *which phase and column* first went non-finite — so a NaN is caught at
//! its source instead of surfacing as a blank PNG three phases later.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use crate::dense::ColMajorMatrix;

/// A failure inside a numeric kernel, attributed to a pipeline phase.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// A NaN or ±∞ appeared in `phase` at the given column and row.
    NonFinite {
        /// The pipeline phase whose data went bad (e.g. `"dortho"`).
        phase: &'static str,
        /// Column index of the first non-finite entry.
        column: usize,
        /// Row index of the first non-finite entry.
        row: usize,
    },
    /// A square-matrix kernel was given a non-square input.
    NotSquare {
        /// Rows of the offending matrix.
        rows: usize,
        /// Columns of the offending matrix.
        cols: usize,
    },
    /// A symmetric kernel was given an asymmetric input.
    NotSymmetric {
        /// Row of the first asymmetric pair.
        row: usize,
        /// Column of the first asymmetric pair.
        col: usize,
    },
    /// Mismatched dimensions or an invalid scalar argument.
    InvalidArgument(String),
    /// A forced compute backend cannot run on this CPU.
    BackendUnavailable {
        /// The backend the caller demanded (e.g. `"simd"`).
        requested: &'static str,
        /// Why it cannot be selected here.
        reason: String,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonFinite { phase, column, row } => write!(
                f,
                "non-finite value in {phase} at column {column}, row {row}"
            ),
            Self::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}×{cols}")
            }
            Self::NotSymmetric { row, col } => {
                write!(f, "matrix not symmetric at ({row},{col})")
            }
            Self::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Self::BackendUnavailable { requested, reason } => {
                write!(f, "backend {requested:?} unavailable: {reason}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Returns the (column, row) of the first non-finite entry, scanning
/// column-major — i.e. in the order the BFS/DOrtho phases produced the
/// data — or `None` if the matrix is entirely finite.
pub fn first_non_finite(m: &ColMajorMatrix) -> Option<(usize, usize)> {
    let rows = m.rows();
    m.data()
        .iter()
        .position(|x| !x.is_finite())
        .map(|idx| (idx / rows.max(1), idx % rows.max(1)))
}

/// Guards a whole matrix: `Err(NonFinite)` naming `phase` and the first
/// bad column/row, `Ok(())` otherwise.
pub fn check_matrix_finite(m: &ColMajorMatrix, phase: &'static str) -> Result<(), LinalgError> {
    match first_non_finite(m) {
        None => Ok(()),
        Some((column, row)) => Err(LinalgError::NonFinite { phase, column, row }),
    }
}

/// Guards a vector treated as column `column` of `phase`.
pub fn check_slice_finite(
    v: &[f64],
    phase: &'static str,
    column: usize,
) -> Result<(), LinalgError> {
    match v.iter().position(|x| !x.is_finite()) {
        None => Ok(()),
        Some(row) => Err(LinalgError::NonFinite { phase, column, row }),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn locates_first_bad_entry_column_major() {
        let mut m = ColMajorMatrix::zeros(3, 2);
        m.set(1, 1, f64::NAN);
        assert_eq!(first_non_finite(&m), Some((1, 1)));
        m.set(2, 0, f64::INFINITY);
        assert_eq!(first_non_finite(&m), Some((0, 2)));
        assert!(check_matrix_finite(&ColMajorMatrix::zeros(2, 2), "x").is_ok());
    }

    #[test]
    fn slice_guard_names_phase_and_column() {
        let err = check_slice_finite(&[0.0, f64::NEG_INFINITY], "project", 1).unwrap_err();
        assert_eq!(
            err,
            LinalgError::NonFinite { phase: "project", column: 1, row: 1 }
        );
        assert!(err.to_string().contains("project"));
    }
}
