//! Fused one-pass TripleProd: `Z = Sᵀ·(L·S)` without the `n×s`
//! intermediate.
//!
//! The staged schedule ([`crate::spmm::laplacian_spmm`] then
//! [`crate::gemm::at_b`]) materializes `P = L·S` (two `n×s` buffers at its
//! peak: the row-block partials plus the assembled product), writes it to
//! memory, and immediately streams it back in — plus a third full pass
//! re-reading `S`. The fused kernel instead walks the `at_b` fixed-split
//! row tree and, inside each leaf, produces `L·S` in small row panels that
//! stay cache-resident: each panel is consumed by the register-tile
//! microkernel the moment it is written, so the intermediate never exists
//! at `n×s` scale and the dominant memory traffic of the phase is roughly
//! halved.
//!
//! One `n×s` allocation remains: a packed *row-major* copy of `S`. The
//! SpMM half of the kernel reads `S[u,·]` for every neighbor `u`; in the
//! column-major original that row is `s` cache lines apart, while in the
//! packed copy it is `s` contiguous doubles — the access pattern that
//! dominates the phase on graphs larger than cache. Packing changes
//! neither values nor operation order, only addresses.
//!
//! Bit-reproducibility contract (PR 3): the reduction tree is the same
//! `ROW_CHUNK`-aligned fixed-split `rayon::join` tree as `at_b`; each
//! `L·S` row is accumulated in exactly `laplacian_spmm`'s operation order
//! (diagonal term, then neighbors in CSR order, column-ascending inner
//! loop); and the microkernel extends each output entry's summation chain
//! in ascending-row order across panels. The fused product is therefore
//! *bitwise identical* to `at_b(s, laplacian_spmm(g, degrees, s))` at any
//! thread count — asserted by the property tests — which is what lets
//! `--linalg-mode fused|staged` be a pure performance knob. The row fill
//! and the microkernel both dispatch through [`crate::backend`]; the row
//! ops and the tile kernel are bit-exact across backends, so the contract
//! also holds at any backend setting.

use crate::dense::ColMajorMatrix;
use crate::error::LinalgError;
use crate::gemm::{accumulate_block, ROW_CHUNK};
use parhde_graph::store::{GraphStore, NeighborScratch};
use parhde_graph::WeightedCsr;
use rayon::prelude::*;

/// Rows per cache-resident `L·S` panel inside one leaf: at `s = 51` a
/// panel is ~100 KiB — comfortably L2 — while the microkernel re-reads it
/// once per 4-column tile of the output.
const PANEL_ROWS: usize = 256;

/// Row grain for the parallel row-major packing sweep (a pure copy, so
/// its blocking is free to differ from the reduction tree's).
const PACK_CHUNK: usize = 4096;

/// Computes `Z = Sᵀ·L·S` in one pass; bitwise identical to
/// `at_b(s, laplacian_spmm(g, degrees, s))` at any thread count.
///
/// Generic over [`GraphStore`]: each leaf of the reduction tree owns one
/// decode scratch, so compressed stores stream their adjacency without
/// changing the operation order (the bitwise contract holds per storage).
///
/// # Panics
/// Panics if dimensions disagree.
pub fn triple_product<G: GraphStore>(
    g: &G,
    degrees: &[f64],
    s: &ColMajorMatrix,
) -> ColMajorMatrix {
    let n = g.num_vertices();
    assert_eq!(s.rows(), n, "S row count must equal n");
    assert_eq!(degrees.len(), n, "degree vector length must equal n");
    let k = s.cols();
    let _span = parhde_trace::span!("fused.triple_product");
    parhde_trace::counter!(
        "linalg.fused.flops",
        (2 * (g.num_arcs() + n) * k + 2 * n * k * k) as u64
    );
    crate::backend::count(
        crate::backend::Family::Spmm,
        ((g.num_arcs() + n) * k) as u64,
    );
    let pack = pack_row_major(s);
    let be = crate::backend::active();
    let zdata = partial_triple(s.data(), n, k, 0, n, &|v, row, scratch| {
        be.laplacian_row(
            row,
            degrees[v],
            &pack[v * k..(v + 1) * k],
            &pack,
            g.neighbors_in(v as u32, scratch),
        );
    });
    ColMajorMatrix::from_data(k, k, zdata)
}

/// Weighted-graph variant of [`triple_product`] (`L = D − A` with
/// `A(u,v) = w(u,v)`); bitwise identical to
/// `at_b(s, laplacian_spmm_weighted(g, degrees, s))`.
///
/// # Panics
/// Panics if dimensions disagree.
pub fn triple_product_weighted(
    g: &WeightedCsr,
    degrees: &[f64],
    s: &ColMajorMatrix,
) -> ColMajorMatrix {
    let n = g.num_vertices();
    assert_eq!(s.rows(), n, "S row count must equal n");
    assert_eq!(degrees.len(), n, "degree vector length must equal n");
    let k = s.cols();
    let _span = parhde_trace::span!("fused.triple_product_weighted");
    parhde_trace::counter!(
        "linalg.fused.flops",
        (2 * (g.graph().num_arcs() + n) * k + 2 * n * k * k) as u64
    );
    crate::backend::count(
        crate::backend::Family::Spmm,
        ((g.graph().num_arcs() + n) * k) as u64,
    );
    let pack = pack_row_major(s);
    let be = crate::backend::active();
    let zdata = partial_triple(s.data(), n, k, 0, n, &|v, row, _scratch| {
        be.row_scale(row, degrees[v], &pack[v * k..(v + 1) * k]);
        for (u, w) in g.neighbors(v as u32) {
            be.row_sub_scaled(row, w, &pack[u as usize * k..(u as usize + 1) * k]);
        }
    });
    ColMajorMatrix::from_data(k, k, zdata)
}

/// Guarded [`triple_product`]: same validation ladder as the staged
/// `try_laplacian_spmm` + `at_b` pair, reported as phase `"fused"`.
///
/// # Errors
/// [`LinalgError::InvalidArgument`] on shape mismatch,
/// [`LinalgError::NonFinite`] on poison data. Never panics.
pub fn try_triple_product<G: GraphStore>(
    g: &G,
    degrees: &[f64],
    s: &ColMajorMatrix,
) -> Result<ColMajorMatrix, LinalgError> {
    check_args(g.num_vertices(), degrees, s)?;
    let z = triple_product(g, degrees, s);
    crate::error::check_matrix_finite(&z, "fused")?;
    Ok(z)
}

/// Guarded [`triple_product_weighted`]; see [`try_triple_product`].
///
/// # Errors
/// [`LinalgError::InvalidArgument`] on shape mismatch,
/// [`LinalgError::NonFinite`] on poison data. Never panics.
pub fn try_triple_product_weighted(
    g: &WeightedCsr,
    degrees: &[f64],
    s: &ColMajorMatrix,
) -> Result<ColMajorMatrix, LinalgError> {
    check_args(g.num_vertices(), degrees, s)?;
    let z = triple_product_weighted(g, degrees, s);
    crate::error::check_matrix_finite(&z, "fused")?;
    Ok(z)
}

fn check_args(n: usize, degrees: &[f64], s: &ColMajorMatrix) -> Result<(), LinalgError> {
    if s.rows() != n {
        return Err(LinalgError::InvalidArgument(format!(
            "S row count {} != n = {n}",
            s.rows()
        )));
    }
    if degrees.len() != n {
        return Err(LinalgError::InvalidArgument(format!(
            "degree vector length {} != n = {n}",
            degrees.len()
        )));
    }
    crate::error::check_slice_finite(degrees, "fused degrees", 0)?;
    crate::error::check_matrix_finite(s, "fused input")?;
    Ok(())
}

/// Packed row-major copy of `S`: `pack[v·k + c] = S(v, c)`. A value-exact
/// relayout, parallel over row blocks. Shared with the staged
/// [`crate::spmm`] kernels, which adopt the same contiguous-row access
/// pattern for the same reason.
pub(crate) fn pack_row_major(s: &ColMajorMatrix) -> Vec<f64> {
    let n = s.rows();
    let k = s.cols();
    let sdata = s.data();
    parhde_trace::counter!("linalg.fused.pack_bytes", (n * k * 8) as u64);
    let mut pack = vec![0.0; n * k];
    if pack.is_empty() {
        return pack;
    }
    pack.par_chunks_mut(PACK_CHUNK * k).enumerate().for_each(|(blk, chunk)| {
        let base = blk * PACK_CHUNK;
        for (local, row) in chunk.chunks_mut(k).enumerate() {
            let v = base + local;
            for (c, x) in row.iter_mut().enumerate() {
                *x = sdata[c * n + v];
            }
        }
    });
    pack
}

/// The `k×k` partial product of rows `lo..hi`: the same fixed-split
/// recursion as `gemm::partial_at_b`, with each leaf streaming `L·S` row
/// panels through the microkernel. `fill_row(v, row, scratch)` writes row
/// `v` of `L·S` into `row` in `laplacian_spmm`'s operation order; the leaf
/// owns the decode scratch so compressed adjacency reuses one allocation
/// per leaf.
fn partial_triple(
    sdata: &[f64],
    n: usize,
    k: usize,
    lo: usize,
    hi: usize,
    fill_row: &(dyn Fn(usize, &mut [f64], &mut NeighborScratch) + Sync),
) -> Vec<f64> {
    if hi - lo <= ROW_CHUNK {
        let mut z = vec![0.0; k * k];
        let mut panel = vec![0.0; PANEL_ROWS * k];
        let mut scratch = NeighborScratch::new();
        let mut plo = lo;
        while plo < hi {
            // Cooperative cancellation point (once per panel): remaining
            // panels are skipped and the caller discards the poisoned
            // product at its next phase boundary.
            if parhde_util::supervisor::should_stop() {
                return z;
            }
            let phi = (plo + PANEL_ROWS).min(hi);
            for v in plo..phi {
                fill_row(v, &mut panel[(v - plo) * k..(v - plo + 1) * k], &mut scratch);
            }
            // Row-major panel: element (r, c) at (r − plo)·k + c.
            accumulate_block(
                &mut z,
                sdata,
                n,
                k,
                k,
                &panel[..(phi - plo) * k],
                0,
                k,
                1,
                plo,
                phi,
                false,
            );
            plo = phi;
        }
        return z;
    }
    let chunks = (hi - lo).div_ceil(ROW_CHUNK);
    let mid = lo + chunks.div_ceil(2) * ROW_CHUNK;
    let (mut left, right) = rayon::join(
        || partial_triple(sdata, n, k, lo, mid, fill_row),
        || partial_triple(sdata, n, k, mid, hi, fill_row),
    );
    for (l, r) in left.iter_mut().zip(right) {
        *l += r;
    }
    left
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::at_b;
    use crate::spmm::{laplacian_spmm, laplacian_spmm_weighted};
    use parhde_graph::builder::build_weighted_from_edges;
    use parhde_graph::gen::{chain, grid2d, kron};
    use parhde_util::Xoshiro256StarStar;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> ColMajorMatrix {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let data = (0..rows * cols).map(|_| rng.next_f64() - 0.5).collect();
        ColMajorMatrix::from_data(rows, cols, data)
    }

    #[test]
    fn fused_bitwise_matches_staged() {
        // Column counts around the tile edge; kron(12,·) has n = 4096 =
        // 2·ROW_CHUNK so the fixed-split recursion actually splits.
        for g in [chain(37), grid2d(50, 41), kron(12, 8, 2)] {
            let n = g.num_vertices();
            let deg = g.degree_vector();
            for &cols in &[1usize, 5, 8, 13] {
                let s = random_matrix(n, cols, (n + cols) as u64);
                let fused = triple_product(&g, &deg, &s);
                let staged = at_b(&s, &laplacian_spmm(&g, &deg, &s));
                for (x, y) in fused.data().iter().zip(staged.data()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "n = {n}, cols = {cols}");
                }
            }
        }
    }

    #[test]
    fn fused_weighted_bitwise_matches_staged() {
        let base = grid2d(40, 33);
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let edges: Vec<(u32, u32, f64)> = base
            .edges()
            .map(|(u, v)| (u, v, rng.next_f64() + 0.5))
            .collect();
        let wg = build_weighted_from_edges(base.num_vertices(), edges);
        let deg = wg.weighted_degree_vector();
        let s = random_matrix(base.num_vertices(), 7, 11);
        let fused = triple_product_weighted(&wg, &deg, &s);
        let staged = at_b(&s, &laplacian_spmm_weighted(&wg, &deg, &s));
        for (x, y) in fused.data().iter().zip(staged.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fused_annihilates_constant_vector() {
        // Z = Sᵀ L S with S = 1 ⇒ 1ᵀ·(L·1) = 0.
        let g = grid2d(9, 9);
        let n = g.num_vertices();
        let ones = ColMajorMatrix::from_data(n, 1, vec![1.0; n]);
        let z = triple_product(&g, &g.degree_vector(), &ones);
        assert!(z.get(0, 0).abs() < 1e-12);
    }

    #[test]
    fn try_fused_rejects_shape_mismatch() {
        let g = chain(5);
        let s = ColMajorMatrix::zeros(4, 2);
        let err = try_triple_product(&g, &g.degree_vector(), &s).unwrap_err();
        assert!(format!("{err}").contains("row count"), "{err}");
    }

    #[test]
    fn try_fused_rejects_poison_degrees() {
        let g = chain(5);
        let s = ColMajorMatrix::zeros(5, 2);
        let mut deg = g.degree_vector();
        deg[3] = f64::NAN;
        assert!(try_triple_product(&g, &deg, &s).is_err());
    }
}
