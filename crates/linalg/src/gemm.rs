//! Tall-skinny dense products.
//!
//! Step 2 of TripleProd is `Z = Sᵀ·P` with `S, P ∈ R^{n×s}` — a product of
//! an `s×n` and an `n×s` matrix (the paper uses MKL `dgemm` here). With
//! `s ≤ 50` the result is tiny; the efficient schedule is a parallel
//! reduction over row blocks, each contributing a local `s×s` partial
//! product. The reduction is a recursive `rayon::join` over row ranges
//! whose split points depend only on `n` (always on a `ROW_CHUNK`
//! boundary), so the floating-point combination tree — and therefore the
//! result, bit for bit — is independent of thread count and scheduling.
//! No index vector or per-chunk partial collection is materialized on this
//! hot path; each leaf owns one `s×s` accumulator and partials are summed
//! pairwise as the recursion unwinds.

use crate::dense::ColMajorMatrix;
use rayon::prelude::*;

/// Row-block grain for the reduction. Shared with the SYRK and fused
/// TripleProd kernels so all three walk the identical fixed-split tree.
pub(crate) const ROW_CHUNK: usize = 2048;

/// Register-tile edge of the shared microkernel: 4×4 output entries per
/// inner-loop iteration, i.e. 16 independent accumulator chains.
pub(crate) const TILE: usize = 4;

/// The shared cache-blocked microkernel: accumulates
/// `Z[j·p + i] += Σ_{r ∈ lo..hi} A[i·n + r] · B(r, j)` where element
/// `(r, j)` of the right operand lives at `b_base + (r − lo)·b_rs + j·b_cs`.
/// Two stride settings cover every caller:
///
/// * column-major `B (n×q)` restricted to rows `lo..hi`:
///   `b_base = lo, b_rs = 1, b_cs = n` (plain `at_b`, SYRK);
/// * a packed row-major panel holding rows `lo..hi` contiguously:
///   `b_base = 0, b_rs = q, b_cs = 1` (the fused TripleProd).
///
/// Bit-reproducibility contract: each output entry is loaded into a
/// register, extended by this block's products in ascending-`r` order, and
/// stored back — so repeated calls over consecutive row blocks build the
/// exact left-to-right summation chain a single scalar pass over the union
/// of the blocks would build. The 4×4 register tile holds 16 such
/// *independent* chains (no cross-entry reassociation), which is what lets
/// the unrolled kernel stay bit-identical to the naive triple loop while
/// feeding the out-of-order core 16 parallel dependency chains instead
/// of 1. Edge tiles fall back to the scalar loop with the same chain order.
/// The full-tile inner loop dispatches through [`crate::backend`]; both
/// backends extend the 16 chains identically (mul then add, never FMA), so
/// the contract holds bit-for-bit regardless of the active backend.
///
/// With `lower_only`, register tiles that lie strictly above the diagonal
/// (`i < j` everywhere) are skipped — the SYRK savings; diagonal-crossing
/// tiles are computed in full and the caller mirrors the lower triangle.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn accumulate_block(
    z: &mut [f64],
    adata: &[f64],
    n: usize,
    p: usize,
    q: usize,
    b: &[f64],
    b_base: usize,
    b_rs: usize,
    b_cs: usize,
    lo: usize,
    hi: usize,
    lower_only: bool,
) {
    let len = hi - lo;
    let be = crate::backend::active();
    crate::backend::count(crate::backend::Family::Gemm, (len * p * q) as u64);
    let mut jt = 0;
    while jt < q {
        let jb = (q - jt).min(TILE);
        let mut it = 0;
        while it < p {
            let ib = (p - it).min(TILE);
            if lower_only && it + ib <= jt {
                // Entire tile strictly above the diagonal: mirrored later.
                it += ib;
                continue;
            }
            if ib == TILE && jb == TILE {
                let a0 = &adata[it * n + lo..it * n + hi];
                let a1 = &adata[(it + 1) * n + lo..(it + 1) * n + hi];
                let a2 = &adata[(it + 2) * n + lo..(it + 2) * n + hi];
                let a3 = &adata[(it + 3) * n + lo..(it + 3) * n + hi];
                let mut acc = [0.0f64; TILE * TILE];
                for jj in 0..TILE {
                    for ii in 0..TILE {
                        acc[jj * TILE + ii] = z[(jt + jj) * p + it + ii];
                    }
                }
                be.tile_4x4(&mut acc, [a0, a1, a2, a3], b, b_base + jt * b_cs, b_rs, b_cs, len);
                for jj in 0..TILE {
                    for ii in 0..TILE {
                        z[(jt + jj) * p + it + ii] = acc[jj * TILE + ii];
                    }
                }
            } else {
                for jj in 0..jb {
                    let j = jt + jj;
                    for ii in 0..ib {
                        let i = it + ii;
                        let acol = &adata[i * n + lo..i * n + hi];
                        let mut acc = z[j * p + i];
                        for (rr, &av) in acol.iter().enumerate() {
                            acc += av * b[b_base + rr * b_rs + j * b_cs];
                        }
                        z[j * p + i] = acc;
                    }
                }
            }
            it += ib;
        }
        jt += jb;
    }
}

/// Computes `Z = Aᵀ·B` for column-major `A (n×p)` and `B (n×q)`;
/// `Z` is `p×q` column-major.
///
/// # Panics
/// Panics if row counts differ.
pub fn at_b(a: &ColMajorMatrix, b: &ColMajorMatrix) -> ColMajorMatrix {
    let n = a.rows();
    assert_eq!(b.rows(), n, "row count mismatch");
    let p = a.cols();
    let q = b.cols();
    let adata = a.data();
    let bdata = b.data();

    let _span = parhde_trace::span!("gemm.at_b");
    parhde_trace::counter!("gemm.flops", (2 * n * p * q) as u64);
    let zdata = partial_at_b(adata, bdata, n, p, q, 0, n);
    ColMajorMatrix::from_data(p, q, zdata)
}

/// Computes the `p×q` partial product of rows `lo..hi` by fixed-split
/// recursion: ranges longer than one chunk split at the `ROW_CHUNK`-aligned
/// midpoint and combine with `rayon::join`. The tree shape is a function of
/// `n` alone, so partials are always summed in the same order.
fn partial_at_b(
    adata: &[f64],
    bdata: &[f64],
    n: usize,
    p: usize,
    q: usize,
    lo: usize,
    hi: usize,
) -> Vec<f64> {
    if hi - lo <= ROW_CHUNK {
        // Cooperative cancellation point (once per row block): a tripped
        // run budget zeroes the remaining partials — the caller discards
        // the poisoned product at its next phase boundary.
        if parhde_util::supervisor::should_stop() {
            return vec![0.0; p * q];
        }
        let mut z = vec![0.0; p * q];
        // Column-major B: element (r, j) at j·n + r = lo + (r − lo)·1 + j·n.
        accumulate_block(&mut z, adata, n, p, q, bdata, lo, 1, n, lo, hi, false);
        return z;
    }
    let chunks = (hi - lo).div_ceil(ROW_CHUNK);
    let mid = lo + chunks.div_ceil(2) * ROW_CHUNK;
    let (mut left, right) = rayon::join(
        || partial_at_b(adata, bdata, n, p, q, lo, mid),
        || partial_at_b(adata, bdata, n, p, q, mid, hi),
    );
    for (l, r) in left.iter_mut().zip(right) {
        *l += r;
    }
    left
}

/// Computes the tall product `Y = A·W` for column-major `A (n×p)` and a
/// small `W (p×q)` — the final projection `[x, y] = B·Y` of Algorithm 3
/// line 20. Parallel over row blocks of the output.
///
/// # Panics
/// Panics if inner dimensions disagree.
pub fn a_small(a: &ColMajorMatrix, w: &ColMajorMatrix) -> ColMajorMatrix {
    let n = a.rows();
    let p = a.cols();
    assert_eq!(w.rows(), p, "inner dimension mismatch");
    let q = w.cols();
    let adata = a.data();

    let _span = parhde_trace::span!("gemm.a_small");
    parhde_trace::counter!("gemm.flops", (2 * n * p * q) as u64);
    let mut out = ColMajorMatrix::zeros(n, q);
    // Column-major output: each output column is one contiguous `n`-sized
    // chunk of the backing slice, so `par_chunks_mut` hands every rayon
    // task a disjoint column to fill in place — no per-column allocation
    // and no second copy pass.
    out.data_mut().par_chunks_mut(n).enumerate().for_each(|(j, col)| {
        // Cooperative cancellation point (once per output column).
        if parhde_util::supervisor::should_stop() {
            return;
        }
        for i in 0..p {
            let coeff = w.get(i, j);
            if coeff == 0.0 {
                continue;
            }
            let acol = &adata[i * n..(i + 1) * n];
            for (c, &av) in col.iter_mut().zip(acol) {
                *c += coeff * av;
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parhde_util::Xoshiro256StarStar;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> ColMajorMatrix {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let data = (0..rows * cols).map(|_| rng.next_f64() - 0.5).collect();
        ColMajorMatrix::from_data(rows, cols, data)
    }

    fn naive_at_b(a: &ColMajorMatrix, b: &ColMajorMatrix) -> ColMajorMatrix {
        let mut z = ColMajorMatrix::zeros(a.cols(), b.cols());
        for i in 0..a.cols() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for r in 0..a.rows() {
                    acc += a.get(r, i) * b.get(r, j);
                }
                z.set(i, j, acc);
            }
        }
        z
    }

    #[test]
    fn at_b_small_exact() {
        let a = ColMajorMatrix::from_data(2, 2, vec![1., 2., 3., 4.]);
        let b = ColMajorMatrix::from_data(2, 1, vec![5., 6.]);
        let z = at_b(&a, &b);
        // Aᵀ = [[1,2],[3,4]]  ⇒ Z = [1·5+2·6, 3·5+4·6] = [17, 39]
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 1);
        assert_eq!(z.get(0, 0), 17.0);
        assert_eq!(z.get(1, 0), 39.0);
    }

    #[test]
    fn at_b_matches_naive_large() {
        let a = random_matrix(5000, 7, 1);
        let b = random_matrix(5000, 4, 2);
        let fast = at_b(&a, &b);
        let slow = naive_at_b(&a, &b);
        for i in 0..fast.data().len() {
            assert!((fast.data()[i] - slow.data()[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn at_b_matches_naive_across_chunk_boundaries() {
        // Sizes straddling the ROW_CHUNK grain exercise the fixed-split
        // recursion: exact multiples, one-off tails, and odd chunk counts.
        for n in [2048, 2049, 4096, 6161] {
            let a = random_matrix(n, 3, 10);
            let b = random_matrix(n, 2, 11);
            let fast = at_b(&a, &b);
            let slow = naive_at_b(&a, &b);
            for i in 0..fast.data().len() {
                assert!((fast.data()[i] - slow.data()[i]).abs() < 1e-9, "n = {n}");
            }
        }
    }

    #[test]
    fn at_a_is_symmetric_psd_diagonal() {
        let a = random_matrix(300, 5, 3);
        let z = at_b(&a, &a);
        for i in 0..5 {
            assert!(z.get(i, i) >= 0.0);
            for j in 0..5 {
                assert!((z.get(i, j) - z.get(j, i)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn a_small_projection_exact() {
        // A (3×2) · W (2×2)
        let a = ColMajorMatrix::from_data(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let w = ColMajorMatrix::from_data(2, 2, vec![1., 0., 0., 1.]);
        let y = a_small(&a, &w);
        assert_eq!(y.data(), a.data()); // identity W
        let w2 = ColMajorMatrix::from_data(2, 1, vec![2., -1.]);
        let y2 = a_small(&a, &w2);
        // col = 2·[1,2,3] − [4,5,6] = [−2,−1,0]
        assert_eq!(y2.col(0), &[-2., -1., 0.]);
    }

    #[test]
    fn a_small_matches_naive() {
        let a = random_matrix(400, 6, 5);
        let w = random_matrix(6, 2, 6);
        let y = a_small(&a, &w);
        for r in 0..400 {
            for c in 0..2 {
                let mut acc = 0.0;
                for k in 0..6 {
                    acc += a.get(r, k) * w.get(k, c);
                }
                assert!((y.get(r, c) - acc).abs() < 1e-10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn at_b_dimension_check() {
        at_b(&ColMajorMatrix::zeros(3, 1), &ColMajorMatrix::zeros(4, 1));
    }

    #[test]
    fn empty_rows_edgecase() {
        let a = ColMajorMatrix::zeros(0, 3);
        let b = ColMajorMatrix::zeros(0, 2);
        let z = at_b(&a, &b);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 2);
        assert!(z.data().iter().all(|&x| x == 0.0));
    }
}
