//! Dense and sparse linear algebra for spectral graph layout.
//!
//! ParHDE's numeric phases (§3) are built from a handful of kernels, all
//! implemented here rather than delegated to MKL/Eigen — mirroring the
//! paper's own finding that its hand-written OpenMP loops beat both for
//! these shapes ("we ... found our implementations to be generally faster"):
//!
//! * [`dense`] — the column-major matrix `S ∈ R^{n×(s+1)}` and friends
//!   (Algorithm 3 line 2 specifies column-major so each BFS writes one
//!   contiguous column).
//! * [`blas1`] — rayon-parallel vector kernels: dot, D-weighted dot, axpy,
//!   scale, norms. These are the inner ops of the DOrtho phase.
//! * [`spmm`] — `P = L·S` computed **implicitly** off the CSR adjacency and
//!   a dense degree array, never materializing the Laplacian (§3.1); plus
//!   an explicit-Laplacian ablation and the normalized-adjacency product
//!   used by the Figure 1 baseline.
//! * [`gemm`] — the small dense product `Z = Sᵀ·P` (the "dgemm" step),
//!   built on a shared 4×4 register-tile microkernel.
//! * [`syrk`] — the symmetric self-product `Z = Aᵀ·A` computing only the
//!   lower triangle (+mirror); bitwise identical to `at_b(a, a)`.
//! * [`fused`] — the one-pass TripleProd `Z = Sᵀ·L·S` that streams `L·S`
//!   through cache-resident row panels instead of materializing it;
//!   bitwise identical to the staged `spmm` + `gemm` pair.
//! * [`center`] — column centering (PHDE) and double centering (PivotMDS).
//! * [`ortho`] — Modified and Classical Gram-Schmidt, plain and D-weighted,
//!   with the paper's degenerate-vector drop rule (Table 7 compares them).
//! * [`eig`] — a cyclic Jacobi eigensolver for the small `s×s` symmetric
//!   problem, and deflated power iteration on the normalized adjacency for
//!   the "exact" drawings (Figure 1 bottom) and §4.5.3.
//! * [`error`] — typed [`error::LinalgError`]s plus non-finite guards; the
//!   `try_*` kernel wrappers report which phase and column first went bad
//!   instead of propagating NaN downstream.
//! * [`backend`] — pluggable compute backends for the hot inner loops: the
//!   scalar reference kernels and an explicit-SIMD (AVX2/FMA f64×4)
//!   implementation selected at runtime by CPU-feature detection, with
//!   per-backend trace counters proving which one served a run.

#![warn(missing_docs)]

pub mod backend;
pub mod blas1;
pub mod center;
pub mod dense;
pub mod eig;
pub mod error;
pub mod fused;
pub mod gemm;
pub mod ortho;
pub mod spmm;
pub mod syrk;

pub use dense::ColMajorMatrix;
pub use error::LinalgError;
